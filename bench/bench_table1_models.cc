// Table 1: Keras benchmark applications - the model zoo this
// reproduction trains, verified against the constructed bucket sets.
#include <cstdio>

#include "bench_util.h"
#include "dnn/zoo.h"

int main() {
  using namespace rcc;
  Table table({"Model", "Trainable", "Depth", "Total Parameters",
               "Size (MB)", "fusion buckets @64MB", "fwd GFLOP/img"});
  for (const auto& spec : dnn::KerasZoo()) {
    const auto tensors = dnn::TensorParameterCounts(spec);
    const auto buckets = dnn::FusionBucketBytes(tensors, 64u << 20);
    size_t total = 0;
    for (size_t t : tensors) total += t;
    char params[32];
    std::snprintf(params, sizeof(params), "%.1fM", total / 1e6);
    table.AddRow({spec.name, std::to_string(spec.trainable_tensors),
                  std::to_string(spec.depth), params,
                  FormatDouble(spec.size_mb, 0),
                  std::to_string(buckets.size()),
                  FormatDouble(spec.forward_flops_per_sample / 1e9, 2)});
  }
  bench::EmitTable(table, "Table 1: Keras benchmark applications",
                   "table1_models.csv");
  return 0;
}
