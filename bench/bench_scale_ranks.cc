// Engine scaling: Scenario III (upscale) from 12 ranks to N for N up to
// 4096, run under both rank-execution backends. For each configuration
// the bench reports wall-clock, peak RSS, and both amortised per
// simulated rank. The threads backend is measured only at the modest
// sizes where thousands of OS threads are not required; the fibers
// backend covers the full ladder — the point of the engine layer is
// that 4096 cooperative ranks fit in one process on one core.
//
// Each configuration runs in a forked child (re-exec of this binary
// with `--one <engine> <ranks>`) so peak RSS is per-run rather than the
// monotone process-wide high-water mark, and the parent reads it from
// wait4()'s rusage. The child prints a single RESULT line on stdout.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ulfm_elastic.h"

namespace {

using namespace rcc;

// Small synthetic spec: one fusion bucket per step, negligible physical
// buffers, so the run time is dominated by the engine (scheduling +
// message passing), which is what this bench measures.
dnn::ModelSpec ScaleProbeSpec() {
  dnn::ModelSpec spec;
  spec.name = "ScaleProbe";
  spec.trainable_tensors = 8;
  spec.depth = 8;
  spec.total_parameters = 2.0e6;
  spec.size_mb = 8.0;
  spec.forward_flops_per_sample = 1.0e8;
  return spec;
}

struct OneResult {
  bool ok = false;
  double wall_s = 0;
  double completion_virtual_s = 0;
  int final_world = 0;
  int steps = 0;
  long maxrss_kb = 0;
};

// Child mode: one engine x size configuration. Scenario III shape: 12
// workers train epoch 0, `ranks - 12` cold joiners are admitted at the
// epoch-1 boundary, epoch 1 runs at the full size.
int RunOne(sim::EngineKind engine, int ranks) {
  horovod::SyntheticPlan plan;
  plan.spec = ScaleProbeSpec();
  plan.initial_world = 12;
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 2;
  plan.epochs = 2;
  plan.max_physical_floats = 2048;
  if (ranks > plan.initial_world) {
    plan.joins.push_back({/*epoch=*/1, /*count=*/ranks - plan.initial_world,
                          /*cold=*/true});
  }

  sim::SimConfig cfg;
  cfg.engine = engine;

  trace::Recorder rec;
  horovod::RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  {
    sim::Cluster cluster(cfg);
    stats = core::RunUlfmElastic(cluster, plan, &rec);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("RESULT wall_s=%.6f completion=%.6f final_world=%d steps=%d\n",
              wall, stats.completion_time, stats.final_world,
              stats.steps_executed);
  std::fflush(stdout);
  return stats.final_world == ranks ? 0 : 1;
}

// Parent mode: fork + re-exec `--one`, parse the child's RESULT line,
// take peak RSS from wait4's rusage.
OneResult Dispatch(const char* self, sim::EngineKind engine, int ranks) {
  OneResult r;
  int fds[2];
  if (pipe(fds) != 0) return r;

  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return r;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    const char* engine_name =
        engine == sim::EngineKind::kFibers ? "fibers" : "threads";
    const std::string ranks_str = std::to_string(ranks);
    execl(self, self, "--one", engine_name, ranks_str.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }

  close(fds[1]);
  std::string out;
  char buf[512];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) out.append(buf, n);
  close(fds[0]);

  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof ru);
  if (wait4(pid, &status, 0, &ru) != pid) return r;

  const char* line = std::strstr(out.c_str(), "RESULT ");
  if (line == nullptr || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "child failed (status %d): %s\n", status,
                 out.c_str());
    return r;
  }
  if (std::sscanf(line,
                  "RESULT wall_s=%lf completion=%lf final_world=%d steps=%d",
                  &r.wall_s, &r.completion_virtual_s, &r.final_world,
                  &r.steps) != 4) {
    return r;
  }
  r.maxrss_kb = ru.ru_maxrss;  // Linux: kilobytes
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcc;

  if (argc == 4 && std::strcmp(argv[1], "--one") == 0) {
    const sim::EngineKind engine = std::strcmp(argv[2], "fibers") == 0
                                       ? sim::EngineKind::kFibers
                                       : sim::EngineKind::kThreads;
    return RunOne(engine, std::atoi(argv[3]));
  }

  struct Config {
    sim::EngineKind engine;
    int ranks;
  };
  std::vector<Config> configs;
  // Overlap window: both backends at sizes where an OS thread per rank
  // is still reasonable.
  for (int n : {12, 48, 192}) {
    configs.push_back({sim::EngineKind::kThreads, n});
  }
  // Fibers carry on alone to the target scale.
  for (int n : {12, 48, 192, 1024, 4096}) {
    configs.push_back({sim::EngineKind::kFibers, n});
  }

  Table table({"engine", "ranks", "wall (s)", "peak RSS (MB)",
               "wall/rank (ms)", "RSS/rank (KB)", "virtual completion (s)",
               "final world"});
  bool fibers_4096_ok = false;
  for (const Config& c : configs) {
    const char* engine_name =
        c.engine == sim::EngineKind::kFibers ? "fibers" : "threads";
    std::printf("running %s x %d ...\n", engine_name, c.ranks);
    std::fflush(stdout);
    const OneResult r = Dispatch(argv[0], c.engine, c.ranks);
    if (!r.ok) {
      std::fprintf(stderr, "config %s x %d failed\n", engine_name, c.ranks);
      continue;
    }
    if (c.engine == sim::EngineKind::kFibers && c.ranks == 4096 &&
        r.final_world == 4096) {
      fibers_4096_ok = true;
    }
    table.AddRow({engine_name, std::to_string(c.ranks),
                  FormatDouble(r.wall_s, 3),
                  FormatDouble(r.maxrss_kb / 1024.0, 1),
                  FormatDouble(r.wall_s * 1000.0 / c.ranks, 3),
                  FormatDouble(static_cast<double>(r.maxrss_kb) / c.ranks, 1),
                  FormatDouble(r.completion_virtual_s, 3),
                  std::to_string(r.final_world)});
  }

  bench::EmitTable(table,
                   "Engine scaling, Scenario III upscale 12 -> N "
                   "(ScaleProbe model, 2 epochs x 2 steps)",
                   "scale_ranks.csv");
  return fibers_4096_ok ? 0 : 1;
}
