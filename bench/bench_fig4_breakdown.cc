// Fig. 4: detailed cost breakdown of Scenario I (downscaling recovery)
// when training ResNet-50 across 24 GPUs, 18 left after resuming from a
// node failure (and 23 after a process failure). The paper breaks the
// Elastic Horovod restoration into: catching the exception, shutting
// down ongoing operations, re-initialising elastic mode, re-initialising
// Gloo, and resuming local + global rendezvous; the ULFM column shows
// the forward-recovery path for contrast.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"

int main() {
  using namespace rcc;
  namespace ph = horovod::phase;
  const auto spec = dnn::ResNet50V2Spec();
  const int world = 24;

  struct PhaseRow {
    const char* label;
    const char* phase;
  };
  const PhaseRow eh_rows[] = {
      {"catch exception", ph::kCatchException},
      {"shutdown ongoing ops", ph::kShutdown},
      {"blacklist host", ph::kBlacklist},
      {"re-initialize elastic mode", ph::kElasticReinit},
      {"re-initialize Gloo", ph::kGlooReinit},
      {"resume local rendezvous", ph::kRendezvousLocal},
      {"resume global rendezvous", ph::kRendezvousGlobal},
      {"NCCL re-init", ph::kNcclReinit},
      {"state broadcast + restore", ph::kStateSync},
      {"re-compute lost mini-batch", ph::kRecompute},
  };
  const PhaseRow ulfm_rows[] = {
      {"revoke + agree + shrink", ph::kUlfmRepair},
      {"NCCL re-init", ph::kNcclReinit},
      {"re-execute failed allreduce", ph::kRetryCollective},
      {"state sync (none needed)", ph::kStateSync},
  };

  for (auto level :
       {horovod::DropPolicy::kProcess, horovod::DropPolicy::kNode}) {
    const char* level_name =
        level == horovod::DropPolicy::kNode ? "node" : "process";

    auto plan = bench::MakeScenarioPlan(spec, bench::Scenario::kDown, level,
                                        world);
    trace::Recorder eh_rec;
    {
      sim::Cluster cluster;
      horovod::RunElasticHorovod(cluster, plan, &eh_rec);
    }
    trace::Recorder ulfm_rec;
    {
      sim::Cluster cluster;
      core::RunUlfmElastic(cluster, plan, &ulfm_rec);
    }

    Table table({"restoration step", "Elastic Horovod (s)", "ULFM MPI (s)"});
    double eh_total = 0, ulfm_total = 0;
    for (const auto& row : eh_rows) {
      const double cost = bench::RecoveryPhaseMean(eh_rec, row.phase);
      eh_total += cost;
      table.AddRow({row.label, FormatDouble(cost, 4), ""});
    }
    for (const auto& row : ulfm_rows) {
      const double cost = bench::RecoveryPhaseMean(ulfm_rec, row.phase);
      ulfm_total += cost;
      table.AddRow({row.label, "", FormatDouble(cost, 4)});
    }
    table.AddRow({"TOTAL", FormatDouble(eh_total, 3),
                  FormatDouble(ulfm_total, 3)});
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Fig. 4: Scenario I cost breakdown, ResNet-50 on %d GPUs, "
                  "dropping the failed %s (%d GPUs remain)",
                  world, level_name,
                  level == horovod::DropPolicy::kNode ? world - 6 : world - 1);
    bench::EmitTable(table, title,
                     std::string("fig4_breakdown_") + level_name + ".csv");
    std::printf("speedup (EH total / ULFM total): %.1fx\n\n",
                eh_total / ulfm_total);
    bench::DumpObservability(ulfm_rec);
  }
  return 0;
}
