// Table 2: recovery capabilities of the two stacks across the four
// dynamic-training cases. The ULFM entries (and Elastic Horovod's
// node-level entries) are *verified by running the scenario*; Elastic
// Horovod's process-level entries are unsupported upstream (the driver
// blacklists whole hosts), reported as an X exactly as the paper does.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace rcc;
  using bench::Scenario;
  using bench::Stack;
  const auto spec = dnn::NasNetMobileSpec();
  const int world = 12;

  auto verified = [&](Stack stack, Scenario scenario,
                      horovod::DropPolicy level) {
    auto costs = bench::RunScenario(stack, spec, scenario, level, world);
    const bool expected_world =
        scenario == Scenario::kDown
            ? costs.final_world < world
            : (scenario == Scenario::kSame ? costs.final_world == world
                                           : costs.final_world == 2 * world);
    return expected_world && costs.total_overhead > 0 ? "Y (verified)"
                                                      : "FAILED";
  };

  Table table({"Dynamic training scenario", "Elastic Horovod", "ULFM MPI"});
  table.AddRow({"Recovery by process", "X (unsupported)",
                verified(Stack::kUlfm, Scenario::kDown,
                         horovod::DropPolicy::kProcess)});
  table.AddRow({"Recovery by node",
                verified(Stack::kElasticHorovod, Scenario::kDown,
                         horovod::DropPolicy::kNode),
                verified(Stack::kUlfm, Scenario::kDown,
                         horovod::DropPolicy::kNode)});
  table.AddRow({"Autoscaling by process", "X (unsupported)",
                verified(Stack::kUlfm, Scenario::kSame,
                         horovod::DropPolicy::kProcess)});
  table.AddRow({"Autoscaling by node",
                verified(Stack::kElasticHorovod, Scenario::kUp,
                         horovod::DropPolicy::kNode),
                verified(Stack::kUlfm, Scenario::kUp,
                         horovod::DropPolicy::kNode)});
  bench::EmitTable(table,
                   "Table 2: recovery capabilities of different "
                   "communication libraries",
                   "table2_capabilities.csv");
  return 0;
}
