// Survivor-exposed admission stall: the blocking epoch-boundary expand
// (rendezvous + full state sync while training is paused) vs the
// asynchronous admission protocol (kvstore snapshot staging overlapped
// with degraded-mode training, then a step-boundary splice + delta
// sync).
//
// Paper Scenario III at VGG-16 scale: 24 survivors, 8 cold joiners
// provisioned at the epoch-1 boundary. The joiner cold start (~28 s)
// is far longer than an epoch, so the blocking path parks every
// survivor on the rendezvous until the joiners arrive and the full
// snapshot broadcasts; the async path keeps training and pays only the
// window-open, splice and delta-sync costs.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"

int main() {
  using namespace rcc;
  namespace ph = horovod::phase;

  horovod::SyntheticPlan plan;
  plan.spec = dnn::Vgg16Spec();
  plan.initial_world = 24;
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 40;
  plan.epochs = 4;
  plan.max_physical_floats = 1024;
  plan.joins.push_back({/*epoch=*/1, /*count=*/8, /*cold=*/true});

  trace::Recorder blocking_rec;
  horovod::RunStats blocking;
  {
    sim::Cluster cluster;
    blocking = core::RunUlfmElastic(cluster, plan, &blocking_rec);
  }

  horovod::SyntheticPlan async_plan = plan;
  async_plan.async_admission = true;
  trace::Recorder async_rec;
  horovod::RunStats async_stats;
  {
    sim::Cluster cluster;
    async_stats = core::RunUlfmElastic(cluster, async_plan, &async_rec);
  }

  // Survivor-exposed stall: virtual time a member spends inside the
  // admission machinery instead of training. Blocking: the expand
  // rendezvous (which waits out the joiner cold start) plus the full
  // state broadcast. Async: opening the window, the splice, and the
  // catch-up delta sync — staging happens off the training path.
  const double blocking_stall =
      bench::RecoveryPhaseMean(blocking_rec, ph::kUlfmExpand) +
      bench::RecoveryPhaseMean(blocking_rec, ph::kStateSync);
  const double async_stall =
      bench::RecoveryPhaseMean(async_rec, ph::kExpandBegin) +
      bench::RecoveryPhaseMean(async_rec, ph::kExpandSplice) +
      bench::RecoveryPhaseMean(async_rec, ph::kDeltaSync);

  Table table({"admission", "survivor stall (s)", "completion (s)",
               "final world"});
  table.AddRow({"blocking expand + state sync",
                FormatDouble(blocking_stall, 3),
                FormatDouble(blocking.completion_time, 3),
                std::to_string(blocking.final_world)});
  table.AddRow({"async stage + splice + delta sync",
                FormatDouble(async_stall, 3),
                FormatDouble(async_stats.completion_time, 3),
                std::to_string(async_stats.final_world)});
  bench::EmitTable(table,
                   "Survivor-exposed admission stall, blocking vs async "
                   "(VGG-16, 24 GPUs + 8 cold joiners at epoch 1)",
                   "admission_stall.csv");
  std::printf("\nstall ratio (blocking / async): %.1fx\n",
              blocking_stall / async_stall);
  bench::DumpObservability(async_rec);
  return blocking_stall >= 5.0 * async_stall ? 0 : 1;
}
