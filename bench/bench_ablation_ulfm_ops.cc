// Ablation: cost of the ULFM recovery primitives themselves (revoke +
// agree + shrink, and connect/merge expansion) against scale and drop
// granularity - the paper's claim that per-process management costs
// stay minimal as the job grows.
#include <atomic>
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "core/resilient.h"
#include "ulfm/ulfm.h"

int main() {
  using namespace rcc;
  namespace ph = horovod::phase;

  Table table({"GPUs", "level", "agreement model (ms)",
               "measured repair (ms)", "nccl rebuild (ms)",
               "expand 1 node (ms)"});
  for (int world : {12, 24, 48, 96, 192}) {
    for (auto level :
         {horovod::DropPolicy::kProcess, horovod::DropPolicy::kNode}) {
      // Measured repair: a failure during one allreduce.
      trace::Recorder rec;
      {
        sim::Cluster cluster;
        std::vector<int> pids(world);
        std::iota(pids.begin(), pids.end(), 0);
        cluster.Spawn(world, [&, pids, level](sim::Endpoint& ep) {
          core::ResilientComm rc(ep, pids, level, &rec);
          if (rc.rank() == world / 2) {
            ep.fabric().Kill(ep.pid());
            return;
          }
          std::vector<float> in(1024, 1.0f), out(1024);
          rc.Allreduce(in.data(), out.data(), in.size(), 1.0).ok();
        });
        cluster.Join();
      }
      // Measured expand of one fresh node (6 workers).
      trace::Recorder exp_rec;
      {
        sim::Cluster cluster;
        std::vector<int> pids(world);
        std::iota(pids.begin(), pids.end(), 0);
        cluster.Spawn(world, [&, pids, level](sim::Endpoint& ep) {
          core::ResilientComm rc(ep, pids, level, &exp_rec);
          rc.Expand("grow", 6).ok();
        });
        for (int j = 0; j < 6; ++j) {
          cluster.SpawnOnFreshNodes(1, [&, level](sim::Endpoint& ep) {
            core::ResilientComm::JoinExisting(ep, "grow", 6, level, &exp_rec);
          }, 0.0);
        }
        cluster.Join();
      }
      sim::SimConfig cfg;
      table.AddRow(
          {std::to_string(world),
           level == horovod::DropPolicy::kNode ? "node" : "process",
           FormatDouble(ulfm::AgreementCost(cfg, world) * 1e3, 3),
           FormatDouble(bench::RecoveryPhaseMean(rec, ph::kUlfmRepair) * 1e3,
                        3),
           FormatDouble(bench::RecoveryPhaseMean(rec, ph::kNcclReinit) * 1e3,
                        3),
           FormatDouble(
               bench::RecoveryPhaseMean(exp_rec, ph::kUlfmExpand) * 1e3, 3)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  bench::EmitTable(table,
                   "Ablation: ULFM primitive costs vs scale "
                   "(revoke+agree+shrink, NCCL rebuild, expand)",
                   "ablation_ulfm_ops.csv");
  return 0;
}
