// Pipeline recovery arms under a single-stage-replica failure: the same
// deterministic mid-run kill replayed with the policy pinned to
// re-route (ReCycle adoption), shrink-the-world, and checkpoint
// restore.
//
// Steady-state throughput after adaptation is nearly identical across
// the arms (the owner redistribution is work-conserving: the bottleneck
// stage carries ~M/dp' microbatches either way), so the honest
// differentiator is the RECOVERY STALL: shrink-the-world tears down and
// re-initialises every sub-communicator (TP and DP, sequentially on
// each rank) and re-broadcasts the full stage shard into every DP
// column, while the re-route rebuilds only the one DP column whose
// membership changed and moves no state when no slot changed hands.
//
// The failure window is therefore anchored on the baseline: it spans
// from the kill to the shrink arm's first post-kill commit — the period
// during which strategy choice matters. Window goodput is committed
// microbatches inside that absolute window per second; all three arms
// commit the identical exactly-once ledger (oracle P10), so the
// comparison is apples-to-apples.
//
// Regime: a large-parameter / modest-FLOP synthetic LM (state >> per-
// step compute, the hybrid-parallel setting ReCycle targets), with the
// NCCL bootstrap constants inflated to stand in for a several-hundred-
// GPU job on this 12-rank world — communicator reconstruction dominates
// recovery at scale, which is exactly the paper's motivation (same
// inflation idiom as bench_policy_adaptive's compute_scale).
//
// The bench exits nonzero unless re-routing sustains at least 2x the
// shrink arm's window goodput (the ISSUE acceptance bar).
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/pipeline_trainer.h"
#include "core/resilient.h"
#include "dnn/zoo.h"
#include "policy/policy.h"
#include "sim/cluster.h"
#include "trace/trace.h"

namespace {

using rcc::FormatDouble;
using rcc::Table;

struct ArmOutcome {
  std::vector<rcc::core::PipelineReport> reports;  // by pid
  double horizon = 0.0;
};

rcc::sim::SimConfig BenchConfig() {
  rcc::sim::SimConfig cfg;
  // Fibers engine: byte-identical replays make the arm comparison
  // exact (same reasoning as bench_policy_adaptive).
  cfg.engine = rcc::sim::EngineKind::kFibers;
  // Communicator bootstrap at large-job scale (NCCL init is O(seconds)
  // beyond a few hundred ranks); the 12-rank world stands in for it.
  cfg.costs.nccl_init_base = 0.5;
  return cfg;
}

// Large-parameter, modest-FLOP synthetic LM: 1.5B params (6 GB fp32)
// with a short-sequence per-sample cost, so shard movement — not
// microbatch compute — dominates recovery.
rcc::dnn::ModelSpec SyntheticLmSpec() {
  rcc::dnn::ModelSpec spec;
  spec.name = "synthetic-lm-1.5b";
  spec.trainable_tensors = 296;
  spec.depth = 48;
  spec.total_parameters = 1.5e9;
  spec.size_mb = 6000;
  spec.forward_flops_per_sample = 1.1e10;
  return spec;
}

ArmOutcome RunArm(int world, const rcc::core::PipelineOptions& opts,
                  double kill_at, int victim) {
  rcc::sim::Cluster cluster(BenchConfig());
  if (kill_at >= 0.0 && victim >= 0) {
    cluster.AddPendingFailure(rcc::sim::FailureEvent{
        rcc::sim::FailScope::kProcess, victim, kill_at});
  }
  std::vector<int> pids(world);
  std::iota(pids.begin(), pids.end(), 0);
  rcc::trace::Recorder rec;
  std::mutex mu;
  ArmOutcome out;
  out.reports.resize(static_cast<size_t>(world));
  cluster.Spawn(world, [&](rcc::sim::Endpoint& ep) {
    rcc::core::ResilientComm rc(ep, pids, rcc::horovod::DropPolicy::kProcess,
                                &rec);
    rcc::core::PipelineTrainer trainer(&rc, opts);
    rcc::core::PipelineReport r = trainer.Run();
    std::lock_guard<std::mutex> lock(mu);
    out.horizon = std::max(out.horizon, ep.now());
    out.reports[static_cast<size_t>(ep.pid())] = std::move(r);
  });
  cluster.Join();
  return out;
}

const rcc::core::PipelineReport* FirstFinisher(const ArmOutcome& o) {
  for (const auto& r : o.reports) {
    if (!r.aborted && !r.commits.empty()) return &r;
  }
  return nullptr;
}

// First commit strictly after the kill, as the finisher observed it;
// -1 when the arm never commits again.
double FirstCommitAfter(const rcc::core::PipelineReport& r, double t) {
  for (double ct : r.commit_times) {
    if (ct > t) return ct;
  }
  return -1.0;
}

int CommitsInWindow(const rcc::core::PipelineReport& r, double lo,
                    double hi) {
  int n = 0;
  for (double ct : r.commit_times) {
    if (ct > lo && ct <= hi) ++n;
  }
  return n;
}

}  // namespace

int main() {
  // 3x2x2 grid over 12 workers: losing one rank breaks exactly one
  // stage replica (its TP partner idles, the two surviving DP replicas
  // of that stage adopt its microbatches).
  rcc::core::PipelineOptions base;
  base.dims = rcc::core::GridDims{0, 2, 2};
  base.microbatches = 6;
  base.microbatch_size = 4;
  base.steps = 12;
  base.checkpoint_interval = 4;
  base.spec = SyntheticLmSpec();
  const int world = 12;
  const int victim = 2;  // slot (d=0, p=1, t=0)

  // Clean replay: pins the failure-free horizon and the kill time.
  rcc::core::PipelineOptions clean = base;
  clean.policy_mode = rcc::policy::Mode::kAdaptive;
  const ArmOutcome dry = RunArm(world, clean, -1.0, -1);
  const rcc::core::PipelineReport* dry_fin = FirstFinisher(dry);
  if (dry_fin == nullptr || dry.horizon <= 0.0) {
    std::fprintf(stderr, "clean pipeline run produced no finisher\n");
    return 1;
  }
  // Kill 40% into the COMMITTING span (founding sub-comm init takes a
  // sizeable prefix of the horizon; the interesting failure is mid-1F1B
  // steady state, not mid-bootstrap).
  const double first_commit = dry_fin->commit_times.front();
  const double kill_at =
      first_commit + 0.4 * (dry.horizon - first_commit);

  struct Arm {
    const char* name;
    rcc::policy::Mode mode;
  };
  const Arm arms[] = {{"reroute", rcc::policy::Mode::kRerouteOnly},
                      {"shrink", rcc::policy::Mode::kShrinkOnly},
                      {"restore", rcc::policy::Mode::kRestoreOnly}};

  ArmOutcome outcomes[3];
  const rcc::core::PipelineReport* fins[3] = {};
  for (int a = 0; a < 3; ++a) {
    rcc::core::PipelineOptions opts = base;
    opts.policy_mode = arms[a].mode;
    std::fprintf(stderr, "running %s arm...\n", arms[a].name);
    outcomes[a] = RunArm(world, opts, kill_at, victim);
    fins[a] = FirstFinisher(outcomes[a]);
    if (fins[a] == nullptr ||
        fins[a]->commits.size() != static_cast<size_t>(base.steps)) {
      std::fprintf(stderr, "%s arm lost commits\n", arms[a].name);
      return 1;
    }
  }

  // The failure window: kill -> the shrink baseline's first post-kill
  // commit (the span its stop-the-world reform keeps goodput at zero).
  const double shrink_back = FirstCommitAfter(*fins[1], kill_at);
  if (shrink_back <= kill_at) {
    std::fprintf(stderr, "shrink arm never recovered\n");
    return 1;
  }
  const double window = shrink_back - kill_at;

  Table table({"arm", "horizon s", "stall s", "window commits",
               "window goodput mb/s", "run goodput mb/s", "reroutes",
               "reforms", "restores", "adopted mb"});
  double window_goodput[3] = {};
  for (int a = 0; a < 3; ++a) {
    const ArmOutcome& o = outcomes[a];
    const double back = FirstCommitAfter(*fins[a], kill_at);
    const double stall = back > kill_at ? back - kill_at : -1.0;
    const int commits_in =
        CommitsInWindow(*fins[a], kill_at, kill_at + window);
    window_goodput[a] =
        static_cast<double>(commits_in) * base.microbatches / window;
    const double run_goodput =
        o.horizon > 0.0 ? static_cast<double>(base.steps) *
                              static_cast<double>(base.microbatches) /
                              o.horizon
                        : 0.0;
    int reroutes = 0;
    int reforms = 0;
    int restores = 0;
    long long adopted = 0;
    for (const auto& r : o.reports) {
      reroutes = std::max(reroutes, r.reroutes);
      reforms = std::max(reforms, r.reforms);
      restores = std::max(restores, r.restores);
      adopted += r.adopted_microbatches;
    }
    table.AddRow({arms[a].name, FormatDouble(o.horizon, 6),
                  FormatDouble(stall, 6), std::to_string(commits_in),
                  FormatDouble(window_goodput[a], 3),
                  FormatDouble(run_goodput, 3), std::to_string(reroutes),
                  std::to_string(reforms), std::to_string(restores),
                  std::to_string(adopted)});
  }

  const double ratio =
      window_goodput[1] > 0.0 ? window_goodput[0] / window_goodput[1] : 0.0;
  std::printf("reroute / shrink window goodput ratio: %.3f (bar: 2.0)\n",
              ratio);
  rcc::bench::EmitTable(
      table,
      "Pipeline recovery arms under a single-stage-replica kill "
      "(synthetic 1.5B-param LM, 3x2x2 grid, kill 40% into the clean "
      "run's committing span, window = kill to the shrink baseline's "
      "first post-kill commit)",
      "pipeline_recovery.csv");
  return ratio >= 2.0 ? 0 : 1;
}
