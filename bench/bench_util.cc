#include "bench_util.h"

#include <filesystem>

#include "core/ulfm_elastic.h"
#include "obs/export.h"

namespace rcc::bench {

const char* StackName(Stack stack) {
  return stack == Stack::kUlfm ? "ULFM MPI" : "Elastic Horovod";
}

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kDown: return "Down";
    case Scenario::kSame: return "Same";
    case Scenario::kUp: return "Up";
  }
  return "?";
}

horovod::SyntheticPlan MakeScenarioPlan(const dnn::ModelSpec& spec,
                                        Scenario scenario,
                                        horovod::DropPolicy level,
                                        int world) {
  horovod::SyntheticPlan plan;
  plan.spec = spec;
  plan.initial_world = world;
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 2;
  plan.epochs = scenario == Scenario::kSame ? 3 : 2;
  plan.max_physical_floats = 1024;
  plan.drop_policy = level;
  // ImageNet-scale epochs: 1.28M images split over the workers; the
  // simulated steps cover the mini-batches around the scripted events,
  // the rest is charged analytically (see SyntheticPlan).
  const double dataset = 1.28e6;
  const int total_steps = std::max(
      plan.steps_per_epoch,
      static_cast<int>(dataset / (plan.batch_per_worker * world)));
  plan.padded_steps_per_epoch = total_steps - plan.steps_per_epoch;
  sim::SimConfig cfg;
  const auto buckets =
      dnn::FusionBucketBytes(dnn::TensorParameterCounts(spec), plan.fusion_bytes);
  double ar_seconds = 0.0;
  for (size_t bytes : buckets) {
    ar_seconds += 2.0 * (world - 1) *
                  (cfg.net.inter_latency +
                   static_cast<double>(bytes) / world / cfg.net.inter_bandwidth);
  }
  plan.padded_step_seconds =
      dnn::StepComputeSeconds(spec, plan.batch_per_worker, cfg.net.gpu_flops) +
      ar_seconds;
  const int gpus_per_node = 6;  // Summit
  switch (scenario) {
    case Scenario::kDown:
      plan.failures.push_back({/*epoch=*/1, /*step=*/0, /*bucket=*/0,
                               /*victim_rank=*/world / 2,
                               sim::FailScope::kProcess});
      break;
    case Scenario::kSame:
      plan.failures.push_back(
          {1, 0, 0, world / 2, sim::FailScope::kProcess});
      plan.joins.push_back(
          {/*epoch=*/2,
           /*count=*/level == horovod::DropPolicy::kNode ? gpus_per_node : 1,
           /*cold=*/false});
      break;
    case Scenario::kUp:
      // Automated doubling of the worker count at the epoch boundary.
      plan.joins.push_back({/*epoch=*/1, /*count=*/world, /*cold=*/true});
      break;
  }
  return plan;
}

double RecoveryPhaseMean(const trace::Recorder& rec,
                         const std::string& name) {
  auto mean = rec.MeanByPhase();
  auto it = mean.find("recovery/" + name);
  return it == mean.end() ? 0.0 : it->second;
}

double RecoveryPhaseMin(const trace::Recorder& rec, const std::string& name) {
  auto by_min = rec.MinByPhase();
  auto it = by_min.find("recovery/" + name);
  return it == by_min.end() ? 0.0 : it->second;
}

double SumRecoveryGroup(const trace::Recorder& rec,
                        const std::vector<std::string>& names) {
  // Min per phase: rendezvous/expand events *wait* for slower
  // participants (e.g. a joiner blocks until the survivors reach the
  // epoch boundary); the fastest participant's duration is the pure
  // reconstruction work. Waiting shows up - correctly - in the
  // end-to-end overhead instead.
  double total = 0;
  for (const std::string& name : names) {
    total += RecoveryPhaseMin(rec, name);
  }
  return total;
}

namespace {

horovod::RunStats RunPlan(Stack stack, const horovod::SyntheticPlan& plan,
                          trace::Recorder* rec) {
  sim::Cluster cluster;  // fresh Summit-like cluster per run
  if (stack == Stack::kUlfm) {
    return core::RunUlfmElastic(cluster, plan, rec);
  }
  return horovod::RunElasticHorovod(cluster, plan, rec);
}

}  // namespace

ScenarioCosts RunScenario(Stack stack, const dnn::ModelSpec& spec,
                          Scenario scenario, horovod::DropPolicy level,
                          int world) {
  namespace ph = horovod::phase;
  horovod::SyntheticPlan faulty = MakeScenarioPlan(spec, scenario, level, world);
  horovod::SyntheticPlan clean = faulty;
  clean.failures.clear();
  clean.joins.clear();

  trace::Recorder clean_rec;
  auto clean_stats = RunPlan(stack, clean, &clean_rec);
  trace::Recorder rec;
  auto stats = RunPlan(stack, faulty, &rec);

  ScenarioCosts costs;
  costs.stack = stack;
  costs.scenario = scenario;
  costs.level = level;
  costs.world = world;
  costs.final_world = stats.final_world;
  if (stack == Stack::kElasticHorovod) {
    costs.reconstruction = SumRecoveryGroup(
        rec, {ph::kCatchException, ph::kShutdown, ph::kBlacklist,
              ph::kElasticReinit, ph::kGlooReinit, ph::kRendezvousLocal,
              ph::kRendezvousGlobal, ph::kNcclReinit});
    costs.recompute = RecoveryPhaseMean(rec, ph::kRecompute);
  } else {
    costs.reconstruction = SumRecoveryGroup(
        rec, {ph::kUlfmRepair, ph::kUlfmExpand, ph::kNcclReinit});
    costs.recompute = RecoveryPhaseMean(rec, ph::kRetryCollective);
  }
  costs.worker_and_state =
      SumRecoveryGroup(rec, {ph::kWorkerInit, ph::kStateSync});
  costs.clean_time = clean_stats.completion_time;
  costs.faulty_time = stats.completion_time;
  costs.total_overhead = stats.completion_time - clean_stats.completion_time;
  // Env-driven observability dump: each scenario overwrites the files,
  // so they hold the final scenario's faulty-run trace and the metrics
  // accumulated over the whole bench.
  obs::DumpIfRequested(&rec);
  return costs;
}

void DumpObservability(const trace::Recorder& rec) {
  obs::DumpIfRequested(&rec);
}

void EmitTable(const Table& table, const std::string& title,
               const std::string& csv_name) {
  table.Print(title);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    table.WriteCsv("bench_results/" + csv_name);
    std::printf("(csv: bench_results/%s)\n", csv_name.c_str());
  }
}

void RunCostFigure(const dnn::ModelSpec& spec, const std::vector<int>& scales,
                   const std::string& figure_id) {
  Table table({"GPUs", "scenario", "level", "stack",
               "reconstruct+rendezvous (s)", "worker init+state (s)",
               "recompute (s)", "total overhead (s)"});
  for (int world : scales) {
    for (Scenario scenario :
         {Scenario::kDown, Scenario::kSame, Scenario::kUp}) {
      for (auto level :
           {horovod::DropPolicy::kProcess, horovod::DropPolicy::kNode}) {
        // Upscaling is level-independent (whole nodes join); run once.
        if (scenario == Scenario::kUp &&
            level == horovod::DropPolicy::kProcess) {
          continue;
        }
        for (Stack stack : {Stack::kElasticHorovod, Stack::kUlfm}) {
          ScenarioCosts c = RunScenario(stack, spec, scenario, level, world);
          table.AddRow(
              {std::to_string(world), ScenarioName(scenario),
               level == horovod::DropPolicy::kNode ? "node" : "process",
               StackName(stack), FormatDouble(c.reconstruction, 3),
               FormatDouble(c.worker_and_state, 3),
               FormatDouble(c.recompute, 3),
               FormatDouble(c.total_overhead, 3)});
          std::printf(".");
          std::fflush(stdout);
        }
      }
    }
  }
  std::printf("\n");
  EmitTable(table,
            figure_id + ": recovery/reconfiguration costs, " + spec.name +
                " (three scenarios, process vs node level)",
            figure_id + "_" + spec.name + ".csv");
}

}  // namespace rcc::bench
