// Shared harness for the figure/table benches: builds the paper's three
// dynamic scenarios (Down / Same / Up) at both recovery levels for both
// stacks, runs them on a Summit-like simulated cluster, and extracts the
// cost split the paper reports:
//
//   (a) communicator reconstruction + rendezvous
//   (b) new-worker initialisation + training-state sync
//   (c) re-computation (Elastic Horovod: the lost mini-batch;
//       ULFM: re-executing the single failed collective)
//
// plus the end-to-end overhead (faulty-run completion minus clean-run
// completion in virtual time).
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "horovod/elastic_horovod.h"
#include "horovod/plan.h"

namespace rcc::bench {

enum class Stack { kUlfm, kElasticHorovod };
enum class Scenario { kDown, kSame, kUp };

const char* StackName(Stack stack);
const char* ScenarioName(Scenario scenario);

struct ScenarioCosts {
  Stack stack;
  Scenario scenario;
  horovod::DropPolicy level;
  int world = 0;             // GPUs before the event
  int final_world = 0;
  double reconstruction = 0; // (a) per-rank mean, seconds
  double worker_and_state = 0;  // (b)
  double recompute = 0;      // (c)
  double total_overhead = 0; // faulty - clean completion time
  double clean_time = 0;
  double faulty_time = 0;
};

// Builds the plan for one scenario instance. `world` must be a multiple
// of the node size for node-level cases.
horovod::SyntheticPlan MakeScenarioPlan(const dnn::ModelSpec& spec,
                                        Scenario scenario,
                                        horovod::DropPolicy level,
                                        int world);

// Runs (clean, faulty) pairs and extracts the cost split.
ScenarioCosts RunScenario(Stack stack, const dnn::ModelSpec& spec,
                          Scenario scenario, horovod::DropPolicy level,
                          int world);

// Aggregation helpers over a recovery-phase trace.
double RecoveryPhaseMean(const trace::Recorder& rec, const std::string& name);
double RecoveryPhaseMin(const trace::Recorder& rec, const std::string& name);
double SumRecoveryGroup(const trace::Recorder& rec,
                        const std::vector<std::string>& names);

// Renders one figure's rows (all scenarios x levels x stacks at the
// given scales) and prints + writes CSV.
void RunCostFigure(const dnn::ModelSpec& spec,
                   const std::vector<int>& scales,
                   const std::string& figure_id);

// Writes `table` as CSV under bench_results/ (best effort) and prints it.
void EmitTable(const Table& table, const std::string& title,
               const std::string& csv_name);

// Env-driven observability dump (RCC_TRACE_JSON / RCC_METRICS_OUT) for
// benches managing their own recorders; RunScenario callers get it
// automatically. Repeated calls overwrite, so the files hold the last
// dumped run.
void DumpObservability(const trace::Recorder& rec);

}  // namespace rcc::bench
