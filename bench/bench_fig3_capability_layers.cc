// Fig. 3 (conceptual): the fault recovery / reconfiguration capability
// of the communication layers. Demonstrated by injecting the same
// process failure under each library and reporting where the failure
// surfaces and what recovery primitive (if any) the library offers.
#include <atomic>
#include <cstdio>

#include "bench_util.h"
#include "gloo/gloo.h"
#include "nccl/nccl.h"
#include "ulfm/ulfm.h"

int main() {
  using namespace rcc;

  // --- Gloo: exception, context permanently broken ---
  std::atomic<int> gloo_exceptions{0};
  {
    sim::Cluster cluster;
    kv::Store store;
    cluster.Spawn(4, [&](sim::Endpoint& ep) {
      auto ctx = gloo::Context::Connect(ep, store, "fig3", 4);
      if (ctx->rank() == 1) {
        ep.fabric().Kill(ep.pid());
        return;
      }
      std::vector<float> in(4096, 1.0f), out(4096);
      try {
        ctx->Allreduce<float>(in.data(), out.data(), in.size());
      } catch (const gloo::IoException&) {
        gloo_exceptions++;
      }
    });
    cluster.Join();
  }

  // --- NCCL: error status, communicator aborted ---
  std::atomic<int> nccl_broken{0};
  {
    sim::Cluster cluster;
    cluster.Spawn(4, [&](sim::Endpoint& ep) {
      auto comm = nccl::Comm::InitRank(ep, {0, 1, 2, 3}, "fig3");
      if (comm == nullptr) return;
      if (comm->rank() == 1) {
        ep.fabric().Kill(ep.pid());
        return;
      }
      std::vector<float> in(100000, 1.0f), out(100000);
      if (!comm->Allreduce<float>(in.data(), out.data(), in.size()).ok() &&
          comm->broken()) {
        nccl_broken++;
      }
    });
    cluster.Join();
  }

  // --- ULFM: error status, shrink + continue on the same job ---
  std::atomic<int> ulfm_recovered{0};
  {
    sim::Cluster cluster;
    cluster.Spawn(4, [&](sim::Endpoint& ep) {
      mpi::Comm comm = mpi::Comm::World(ep, {0, 1, 2, 3});
      if (comm.rank() == 1) {
        ep.fabric().Kill(ep.pid());
        return;
      }
      std::vector<float> in(4096, 1.0f), out(4096);
      Status st = comm.Allreduce(in.data(), out.data(), in.size(),
                                 mpi::AllreduceAlgo::kRing);
      if (st.code() == Code::kProcFailed) ulfm::Revoke(comm);
      auto shrunk = ulfm::Shrink(comm);
      if (shrunk.ok() &&
          shrunk.value().Allreduce(in.data(), out.data(), in.size()).ok()) {
        ulfm_recovered++;
      }
    });
    cluster.Join();
  }

  Table table({"layer", "failure surfaces as", "recovery primitive",
               "training impact", "observed"});
  table.AddRow({"Gloo", "IoException, context broken",
                "none (full re-rendezvous required)",
                "stop + driver restart",
                std::to_string(gloo_exceptions.load()) +
                    "/3 survivors threw"});
  table.AddRow({"NCCL", "async error, communicator aborted",
                "none (ncclCommAbort + re-init)",
                "stop + communicator rebuild",
                std::to_string(nccl_broken.load()) + "/3 survivors broken"});
  table.AddRow({"ULFM MPI", "per-operation error code",
                "revoke / agree / shrink / spawn",
                "repair in place, repeat one collective",
                std::to_string(ulfm_recovered.load()) +
                    "/3 survivors recovered"});
  bench::EmitTable(table,
                   "Fig. 3: fault recovery & reconfiguration capability "
                   "by communication layer",
                   "fig3_capability_layers.csv");
  return 0;
}
