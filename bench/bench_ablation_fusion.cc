// Ablation: Horovod tensor-fusion threshold (the env tuning the paper
// mentions setting up). Larger buckets amortise per-collective latency
// in steady state but make the forward-recovery retry coarser (one
// bigger failed allreduce must be repeated); this sweep quantifies the
// trade-off for VGG-16 on the ULFM stack.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"

int main() {
  using namespace rcc;
  namespace ph = horovod::phase;
  const auto spec = dnn::Vgg16Spec();
  const int world = 24;

  Table table({"fusion threshold", "buckets", "clean run (s)",
               "retry cost on failure (s)", "total overhead (s)"});
  for (size_t mb : {4, 16, 64, 256}) {
    horovod::SyntheticPlan plan = bench::MakeScenarioPlan(
        spec, bench::Scenario::kDown, horovod::DropPolicy::kProcess, world);
    plan.fusion_bytes = mb << 20;
    horovod::SyntheticPlan clean = plan;
    clean.failures.clear();

    trace::Recorder clean_rec;
    horovod::RunStats clean_stats;
    {
      sim::Cluster cluster;
      clean_stats = core::RunUlfmElastic(cluster, clean, &clean_rec);
    }
    trace::Recorder rec;
    horovod::RunStats stats;
    {
      sim::Cluster cluster;
      stats = core::RunUlfmElastic(cluster, plan, &rec);
    }
    const auto buckets = dnn::FusionBucketBytes(
        dnn::TensorParameterCounts(spec), plan.fusion_bytes);
    table.AddRow({std::to_string(mb) + " MB", std::to_string(buckets.size()),
                  FormatDouble(clean_stats.completion_time, 3),
                  FormatDouble(
                      bench::RecoveryPhaseMean(rec, ph::kRetryCollective), 3),
                  FormatDouble(
                      stats.completion_time - clean_stats.completion_time,
                      3)});
    std::printf(".");
    std::fflush(stdout);
    bench::DumpObservability(rec);
  }
  std::printf("\n");
  bench::EmitTable(table,
                   "Ablation: tensor-fusion threshold, VGG-16 on 24 GPUs "
                   "(ULFM stack, process failure)",
                   "ablation_fusion.csv");
  return 0;
}
