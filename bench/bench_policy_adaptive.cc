// Adaptive recovery policy vs the four static strategies, measured as
// chaos campaigns: the same seeded kill schedules replayed under each
// RCC_POLICY mode, goodput = useful optimizer steps (steps_run minus
// checkpoint-restore rollback) per virtual second, averaged over seeds.
// Three failure-rate regimes (calm / moderate / hostile) vary only the
// number of background kills; everything else — shape, replacement
// pool, kill placement stream — is held fixed so the policy choice is
// the only degree of freedom. The bench exits nonzero if adaptive loses
// to any static policy in any regime (the ISSUE acceptance bar).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "common/rng.h"
#include "common/table.h"

namespace {

using rcc::FormatDouble;
using rcc::Table;

const char* kModes[] = {"adaptive", "shrink", "wait", "async", "restore"};

struct Regime {
  const char* name;
  int kills;
};

const Regime kRegimes[] = {{"calm", 1}, {"moderate", 2}, {"hostile", 4}};

constexpr int kSeeds = 5;

rcc::chaos::Schedule MakeSchedule(uint64_t seed, const Regime& regime,
                                  const std::string& mode) {
  rcc::chaos::Schedule s;
  s.seed = seed;
  // Fibers replay (format 2): the threads backend's watch-drain grace is
  // real milliseconds, so its virtual outcomes can wobble by a fraction
  // of a millisecond around failures; the event-queue backend replays
  // byte-identically, which keeps mode comparisons exact.
  s.format = 2;
  s.shape.world = 6;
  s.shape.epochs = 8;
  s.shape.steps_per_epoch = 6;
  s.shape.grad_buckets = 2;
  s.shape.inflight_window = 2;
  s.shape.gpus_per_node = 3;
  s.shape.policy_mode = mode;
  s.shape.replacements = 2;
  // Inflate per-step compute to paper-scale (~20 ms virtual steps): the
  // runner's micro-MLP steps cost microseconds, which would make every
  // recovery-path fixed cost dominate the horizon and collapse the
  // strategy space to shrink-always.
  s.shape.compute_scale = 1e7;
  // Kill placement mirrors the generator: background process kills
  // scattered over the failure-free horizon, drawn from the seed so a
  // regime's schedules differ per seed but are identical across modes.
  const double horizon = rcc::chaos::EstimateHorizon(s);
  rcc::Rng rng(seed * 1000003ull + static_cast<uint64_t>(regime.kills));
  for (int k = 0; k < regime.kills; ++k) {
    rcc::chaos::TimedKill kill;
    kill.scope = rcc::sim::FailScope::kProcess;
    kill.target = 1 + static_cast<int>(rng.NextBelow(
                          static_cast<uint32_t>(s.shape.world - 1)));
    kill.at = 0.05 * horizon + rng.NextDouble() * 0.9 * horizon;
    s.timed.push_back(kill);
  }
  return s;
}

// Useful worker-steps per virtual second, summed over every worker that
// finished with training state. Idle replacements burn no steps and
// hold no state; aborted workers (the kill victims) contribute the
// steps they applied before dying — work the survivors then either
// keep (shrink/async) or partially re-execute (restore's rollback).
double Goodput(const rcc::chaos::CampaignOutcome& outcome) {
  double useful = 0.0;
  for (const auto& w : outcome.results) {
    if (w.idle_replacement) continue;
    useful += w.report.steps_run - w.report.rollback_steps;
  }
  return outcome.horizon > 0.0 ? useful / outcome.horizon : 0.0;
}

}  // namespace

int main() {
  Table table({"regime", "kills", "adaptive", "shrink", "wait", "async",
               "restore", "adaptive wins"});
  bool adaptive_dominates = true;
  for (const Regime& regime : kRegimes) {
    double mean[5] = {};
    for (int m = 0; m < 5; ++m) {
      for (int i = 0; i < kSeeds; ++i) {
        const uint64_t seed = 9000 + static_cast<uint64_t>(i);
        const auto schedule = MakeSchedule(seed, regime, kModes[m]);
        mean[m] += Goodput(rcc::chaos::RunSchedule(schedule));
      }
      mean[m] /= kSeeds;
    }
    bool wins = true;
    for (int m = 1; m < 5; ++m) wins = wins && mean[0] >= mean[m] - 1e-9;
    adaptive_dominates = adaptive_dominates && wins;
    table.AddRow({regime.name, std::to_string(regime.kills),
                  FormatDouble(mean[0], 3), FormatDouble(mean[1], 3),
                  FormatDouble(mean[2], 3), FormatDouble(mean[3], 3),
                  FormatDouble(mean[4], 3), wins ? "yes" : "no"});
  }
  rcc::bench::EmitTable(
      table,
      "Goodput (useful steps / virtual second) by recovery policy, "
      "5 seeds per regime, world 6 + 2 replacements",
      "policy_adaptive.csv");
  return adaptive_dominates ? 0 : 1;
}
