// Ablation: collective-algorithm choice on the simulated fabric
// (google-benchmark). Wall time measures the simulator; the figure of
// merit is the *modeled* time, reported as the modeled_us counter -
// ring must win for large payloads, recursive doubling for small ones.
#include <benchmark/benchmark.h>

#include <atomic>
#include <numeric>

#include "mpi/comm.h"
#include "sim/cluster.h"

namespace {

using namespace rcc;

double RunAllreduce(int world, size_t count, mpi::AllreduceAlgo algo) {
  sim::Cluster cluster;
  std::vector<int> pids(world);
  std::iota(pids.begin(), pids.end(), 0);
  std::atomic<double> modeled{0};
  cluster.Spawn(world, [&, pids](sim::Endpoint& ep) {
    mpi::Comm comm = mpi::Comm::World(ep, pids);
    std::vector<float> in(count, 1.0f), out(count);
    comm.Barrier().ok();
    const double before = ep.now();
    comm.Allreduce(in.data(), out.data(), count, algo).ok();
    if (comm.rank() == 0) modeled = ep.now() - before;
  });
  cluster.Join();
  return modeled.load();
}

void BM_Allreduce(benchmark::State& state, mpi::AllreduceAlgo algo) {
  const int world = static_cast<int>(state.range(0));
  const size_t count = static_cast<size_t>(state.range(1));
  double modeled = 0;
  for (auto _ : state) {
    modeled = RunAllreduce(world, count, algo);
  }
  state.counters["modeled_us"] = modeled * 1e6;
  state.counters["bytes"] = static_cast<double>(count * sizeof(float));
}

void RegisterAll() {
  const auto args = {
      std::pair<int64_t, int64_t>{8, 256},
      std::pair<int64_t, int64_t>{8, 262144},
      std::pair<int64_t, int64_t>{16, 256},
      std::pair<int64_t, int64_t>{16, 262144},
      std::pair<int64_t, int64_t>{48, 65536},
  };
  for (auto [w, n] : args) {
    benchmark::RegisterBenchmark(
        ("Allreduce/ring/w" + std::to_string(w) + "/n" + std::to_string(n))
            .c_str(),
        [](benchmark::State& s) { BM_Allreduce(s, mpi::AllreduceAlgo::kRing); })
        ->Args({w, n})
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Allreduce/recdoubling/w" + std::to_string(w) + "/n" +
         std::to_string(n))
            .c_str(),
        [](benchmark::State& s) {
          BM_Allreduce(s, mpi::AllreduceAlgo::kRecursiveDoubling);
        })
        ->Args({w, n})
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Allreduce/reducebcast/w" + std::to_string(w) + "/n" +
         std::to_string(n))
            .c_str(),
        [](benchmark::State& s) {
          BM_Allreduce(s, mpi::AllreduceAlgo::kReduceBcast);
        })
        ->Args({w, n})
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Allreduce/rabenseifner/w" + std::to_string(w) + "/n" +
         std::to_string(n))
            .c_str(),
        [](benchmark::State& s) {
          BM_Allreduce(s, mpi::AllreduceAlgo::kRabenseifner);
        })
        ->Args({w, n})
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
