// Eq. (1): the fault-recovery cost equation. Sweeps the checkpoint
// interval and the fault rate for the checkpoint-based approach
// (analytic model cross-checked against the simulated Elastic Horovod
// recovery), and contrasts the ULFM approach, whose recovery term is a
// single collective and which pays no checkpoint-saving cost at all.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"
#include "costmodel/costmodel.h"
#include "dnn/zoo.h"

int main() {
  using namespace rcc;
  const auto spec = dnn::ResNet50V2Spec();
  sim::SimConfig cfg;

  // Steady-state throughput of one worker at batch 32 on the modeled GPU.
  const double step_seconds =
      dnn::StepComputeSeconds(spec, 32, cfg.net.gpu_flops);
  costmodel::RecoveryParams params;
  params.checkpoint_bytes = spec.size_mb * 1e6;
  params.steps_per_second = 1.0 / step_seconds;
  params.reconfiguration_cost = 3.0;   // EH reset path at 24 GPUs (Fig. 4)
  params.new_worker_init_cost = 0.0;   // Scenario I: no replacement
  params.fault_rate_per_hour = 2.0;
  params.horizon_hours = 1.0;

  Table table({"ckpt interval (steps)", "saving (s/h)", "loading (s/h)",
               "reconfig (s/h)", "recompute (s/h)", "TOTAL (s/h)"});
  for (int interval : {1, 2, 4, 8, 16, 32, 64, 128}) {
    params.checkpoint_interval_steps = interval;
    auto b = costmodel::Evaluate(cfg, params);
    table.AddRow({std::to_string(interval), FormatDouble(b.saving, 2),
                  FormatDouble(b.loading, 2), FormatDouble(b.reconfigure, 2),
                  FormatDouble(b.recompute, 2), FormatDouble(b.total(), 2)});
  }
  bench::EmitTable(table,
                   "Eq. (1): checkpoint-based recovery cost per hour, "
                   "ResNet-50, 2 faults/h, 24 GPUs",
                   "eq1_interval_sweep.csv");
  std::printf("analytic optimal interval: %d steps\n\n",
              costmodel::OptimalCheckpointIntervalSteps(cfg, params));

  // Fault-rate sweep at the per-mini-batch interval the paper's baseline
  // uses, against the measured ULFM recovery cost per fault.
  auto ulfm = bench::RunScenario(bench::Stack::kUlfm, spec,
                                 bench::Scenario::kDown,
                                 horovod::DropPolicy::kProcess, 24);
  Table rates({"faults/hour", "EH total (s/h, interval=1)",
               "ULFM total (s/h, no checkpoints)"});
  for (double rate : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    params.checkpoint_interval_steps = 1;
    params.fault_rate_per_hour = rate;
    auto b = costmodel::Evaluate(cfg, params);
    rates.AddRow({FormatDouble(rate, 1), FormatDouble(b.total(), 2),
                  FormatDouble(rate * ulfm.total_overhead, 2)});
  }
  bench::EmitTable(rates,
                   "Eq. (1) vs forward recovery: total overhead per hour",
                   "eq1_rate_sweep.csv");
  return 0;
}
