// Ablation: flat ring vs rail-optimized hierarchical allreduce on the
// Summit-like topology (6 GPUs/node). The hierarchical scheme cuts
// inter-node bytes per rank by the node size - the optimisation real
// NCCL applies on exactly the paper's testbed shape.
#include <atomic>
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "nccl/nccl.h"

using namespace rcc;

namespace {

double Run(int world, size_t count, bool hierarchical) {
  sim::Cluster cluster;
  std::vector<int> pids(world);
  std::iota(pids.begin(), pids.end(), 0);
  std::atomic<double> t{0};
  cluster.Spawn(world, [&, pids](sim::Endpoint& ep) {
    auto comm = nccl::Comm::InitRank(ep, pids, "abl");
    if (comm == nullptr) return;
    std::vector<float> in(count, 1.0f), out(count);
    const double before = ep.now();
    Status st = hierarchical
                    ? comm->HierarchicalAllreduce<float>(in.data(),
                                                         out.data(), count)
                    : comm->Allreduce<float>(in.data(), out.data(), count);
    if (!st.ok()) return;
    double cur = t.load();
    const double d = ep.now() - before;
    while (d > cur && !t.compare_exchange_weak(cur, d)) {
    }
  });
  cluster.Join();
  return t.load();
}

}  // namespace

int main() {
  Table table({"GPUs", "payload", "flat ring (ms)", "hierarchical (ms)",
               "speedup"});
  for (int world : {12, 24, 48, 96}) {
    for (size_t mb : {1, 4, 16}) {
      const size_t count = (mb << 20) / sizeof(float);
      const double flat = Run(world, count, false);
      const double hier = Run(world, count, true);
      table.AddRow({std::to_string(world), std::to_string(mb) + " MB",
                    FormatDouble(flat * 1e3, 3), FormatDouble(hier * 1e3, 3),
                    FormatDouble(flat / hier, 2) + "x"});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  bench::EmitTable(table,
                   "Ablation: flat vs rail-optimized hierarchical "
                   "allreduce (6 GPUs/node, Summit-like links)",
                   "ablation_hierarchical.csv");
  return 0;
}
