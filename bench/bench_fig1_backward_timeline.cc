// Fig. 1 (conceptual): backward recovery based on the checkpointed
// training state. Rendered as the measured event timeline of one
// Elastic Horovod failure-recovery episode: the training rolls back to
// the last per-mini-batch commit and re-computes from there.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace rcc;
  const auto spec = dnn::ResNet50V2Spec();
  auto plan = bench::MakeScenarioPlan(spec, bench::Scenario::kDown,
                                      horovod::DropPolicy::kNode, 24);
  trace::Recorder rec;
  sim::Cluster cluster;
  horovod::RunElasticHorovod(cluster, plan, &rec);

  // One surviving rank's recovery episode, ordered by virtual time.
  auto events = rec.events();
  int witness = -1;
  for (const auto& e : events) {
    if (e.phase == std::string("recovery/") + horovod::phase::kCatchException) {
      witness = e.pid;
      break;
    }
  }
  std::vector<trace::Event> mine;
  for (const auto& e : events) {
    if (e.pid == witness && e.phase.rfind("recovery/", 0) == 0) {
      mine.push_back(e);
    }
  }
  std::sort(mine.begin(), mine.end(),
            [](const trace::Event& a, const trace::Event& b) {
              return a.start < b.start;
            });

  Table table({"t_start (s)", "t_end (s)", "phase", "duration"});
  for (const auto& e : mine) {
    table.AddRow({FormatDouble(e.start, 3), FormatDouble(e.end, 3),
                  e.phase.substr(9), FormatSeconds(e.duration())});
  }
  bench::EmitTable(table,
                   "Fig. 1: backward recovery timeline (Elastic Horovod, "
                   "node failure during ResNet-50 training on 24 GPUs, "
                   "one survivor's view)",
                   "fig1_backward_timeline.csv");
  std::printf(
      "\nThe training state rolls back to the last mini-batch commit and\n"
      "the lost mini-batch is re-computed after the full context rebuild\n"
      "(the paper's Fig. 1 checkpoint-rollback arc).\n");
  bench::DumpObservability(rec);
  return 0;
}
