// SLO-grade serving comparison: the resilient serving plane (revoke ->
// agree -> shrink -> replay of the single in-flight decode step, KV
// caches preserved on every survivor) vs a Gloo-style teardown-rebuild
// baseline (full stack re-init, model rebroadcast, every running
// sequence re-decoded from position 0) under the same seeded diurnal
// traffic and the same seeded mid-service failures.
//
// Emits bench_results/serving_slo.csv with TTFT and per-token latency
// quantiles (p50/p99/p999), end-to-end completion time, and the
// goodput-during-recovery figure the availability argument rests on:
// tokens committed per virtual second across exactly the decode steps
// that absorbed a repair. Exit 0 requires that (a) neither stack drops
// or double-completes an admitted request (the replicated-state digests
// agree across every survivor), and (b) the resilient plane sustains
// strictly higher goodput during recovery than the teardown baseline.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/resilient.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "sim/cluster.h"

namespace {

constexpr int kRequests = 400;
constexpr int kWorld = 8;

struct ModeOutcome {
  std::vector<rcc::serve::ServeReport> finished;
  double completion = 0.0;  // max survivor end_time, virtual seconds
};

ModeOutcome RunMode(rcc::serve::RecoveryMode mode) {
  using namespace rcc;
  serve::ServeOptions o;
  o.traffic.seed = 17;
  o.traffic.requests = kRequests;
  o.traffic.base_rps = 60.0;
  o.traffic.diurnal_amplitude = 0.4;
  o.traffic.diurnal_period_s = 3.0;
  o.traffic.min_prompt = 8;
  o.traffic.max_prompt = 32;
  o.traffic.min_decode = 8;
  o.traffic.max_decode = 24;
  o.max_batch = 8;
  o.hidden = 256;
  // Near-capacity operating point: the decode step is sized so the
  // clean-run service rate sits just above the diurnal peak, making the
  // latency quantiles SLO-shaped (batching delay at p50, failure
  // recovery in the tail) instead of saturated-queue artifacts.
  o.flops_per_token = 5e8;
  o.model_bytes = 64e6;
  o.mode = mode;
  o.autoscale.enabled = false;

  // The same seeded failures for both stacks: two mid-service kills.
  const struct {
    int pid;
    double at;
  } kills[] = {{5, 1.5}, {6, 3.5}};

  sim::Cluster cluster;
  std::vector<int> pids(kWorld);
  for (int i = 0; i < kWorld; ++i) pids[static_cast<size_t>(i)] = i;
  std::mutex mu;
  ModeOutcome out;
  cluster.Spawn(kWorld, [&](sim::Endpoint& ep) {
    for (const auto& k : kills) {
      if (ep.pid() == k.pid) ep.ArmKillAt(k.at);
    }
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess, nullptr);
    serve::ServingDriver d(&rc, o);
    serve::ServeReport r = d.Run();
    if (r.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
    std::lock_guard<std::mutex> lock(mu);
    if (!r.aborted) {
      out.completion = std::max(out.completion, r.end_time);
      out.finished.push_back(std::move(r));
    }
  });
  cluster.Join();
  return out;
}

// True when every survivor drained all kRequests exactly once and all
// replicated batcher digests agree (the P8 guarantee, audited here
// outside the chaos harness too).
bool ExactlyOnce(const ModeOutcome& out) {
  if (out.finished.empty()) return false;
  for (const auto& r : out.finished) {
    if (r.completed != kRequests) return false;
    if (r.digest != out.finished[0].digest) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace rcc;
  obs::Registry& reg = obs::Registry::Global();
  reg.ResetAll();

  const ModeOutcome resilient = RunMode(serve::RecoveryMode::kResilient);
  const ModeOutcome teardown = RunMode(serve::RecoveryMode::kTeardownRebuild);

  Table table({"mode", "completed", "dropped", "repairs", "recovery steps",
               "completion (s)", "ttft p50 (ms)", "ttft p99 (ms)",
               "ttft p999 (ms)", "token p50 (ms)", "token p99 (ms)",
               "token p999 (ms)", "recovery goodput (tok/s)"});
  const struct {
    const char* name;
    const ModeOutcome* out;
  } rows[] = {{"resilient", &resilient}, {"teardown", &teardown}};
  double goodput[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    const obs::Labels labels{{"mode", rows[i].name}};
    const obs::Histogram::Snapshot ttft =
        reg.HistogramSnapshot("rcc_serve_ttft_seconds", labels);
    const obs::Histogram::Snapshot tok =
        reg.HistogramSnapshot("rcc_serve_token_seconds", labels);
    const double rec_tokens =
        reg.CounterValue("rcc_serve_recovery_tokens_total", labels);
    const double rec_seconds =
        reg.CounterValue("rcc_serve_recovery_seconds_total", labels);
    goodput[i] = rec_seconds > 0 ? rec_tokens / rec_seconds : 0.0;
    const serve::ServeReport& ref = rows[i].out->finished.empty()
                                        ? serve::ServeReport{}
                                        : rows[i].out->finished.front();
    table.AddRow({rows[i].name, std::to_string(ref.completed),
                  std::to_string(kRequests - ref.completed),
                  std::to_string(ref.repairs),
                  std::to_string(ref.recovery_steps),
                  FormatDouble(rows[i].out->completion, 3),
                  FormatDouble(ttft.Quantile(0.5) * 1e3, 2),
                  FormatDouble(ttft.Quantile(0.99) * 1e3, 2),
                  FormatDouble(ttft.Quantile(0.999) * 1e3, 2),
                  FormatDouble(tok.Quantile(0.5) * 1e3, 2),
                  FormatDouble(tok.Quantile(0.99) * 1e3, 2),
                  FormatDouble(tok.Quantile(0.999) * 1e3, 2),
                  FormatDouble(goodput[i], 1)});
  }
  bench::EmitTable(table,
                   "Serving SLO under two mid-service failures: resilient "
                   "replay vs teardown-rebuild (8 ranks, 400 requests, "
                   "diurnal Poisson arrivals)",
                   "serving_slo.csv");

  const bool no_drops = ExactlyOnce(resilient) && ExactlyOnce(teardown);
  const bool goodput_wins = goodput[0] > goodput[1];
  std::printf(
      "\nrecovery goodput ratio (resilient / teardown): %.1fx; "
      "exactly-once: %s\n",
      goodput[1] > 0 ? goodput[0] / goodput[1] : 0.0,
      no_drops ? "both stacks" : "VIOLATED");
  return no_drops && goodput_wins ? 0 : 1;
}
