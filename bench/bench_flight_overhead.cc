// Flight-recorder steady-state overhead: the same clean VGG-16
// synthetic run (no failures, no joins) timed in real wall-clock with
// the recorder enabled and disabled. Recording is a few relaxed atomics
// per event, so the enabled run must stay within 5% of the disabled
// one; the bench prints the measured overhead and fails (exit 1) past
// the budget.
//
// Every configuration is timed best-of-N to damp scheduler noise: the
// minimum over repetitions estimates the true cost floor of each mode,
// and the modes are interleaved so drift (thermal, cgroup) hits both.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/ulfm_elastic.h"
#include "obs/flight.h"

namespace {

using namespace rcc;

constexpr int kWorld = 8;
constexpr int kReps = 5;

double RunOnce(bool flight_on) {
  horovod::SyntheticPlan plan;
  plan.spec = dnn::Vgg16Spec();
  plan.initial_world = kWorld;
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 25;
  plan.epochs = 2;
  plan.max_physical_floats = 4096;

  obs::flight::SetEnabled(flight_on);
  obs::flight::ResetAll();
  const auto t0 = std::chrono::steady_clock::now();
  {
    sim::Cluster cluster;
    core::RunUlfmElastic(cluster, plan, nullptr);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  double best_on = 0.0, best_off = 0.0;
  std::vector<double> on, off;
  RunOnce(false);  // warm-up (allocators, lazy singletons) — untimed
  for (int r = 0; r < kReps; ++r) {
    off.push_back(RunOnce(false));
    on.push_back(RunOnce(true));
  }
  obs::flight::SetEnabled(true);
  best_off = *std::min_element(off.begin(), off.end());
  best_on = *std::min_element(on.begin(), on.end());
  const double overhead = best_off > 0.0 ? best_on / best_off - 1.0 : 0.0;

  std::printf("flight recorder overhead on VGG-16 synthetic (world=%d, "
              "%d steps):\n", kWorld, 2 * 25);
  std::printf("  off  best-of-%d  %.4fs\n", kReps, best_off);
  std::printf("  on   best-of-%d  %.4fs\n", kReps, best_on);
  std::printf("  overhead %.2f%% (budget 5%%)\n", overhead * 100.0);

  Table table({"mode", "best wall (s)", "overhead (%)"});
  table.AddRow({"off", FormatDouble(best_off, 4), "0"});
  table.AddRow({"on", FormatDouble(best_on, 4),
                FormatDouble(overhead * 100.0, 2)});
  bench::EmitTable(table, "flight recorder overhead",
                   "flight_overhead.csv");

  if (overhead > 0.05) {
    std::printf("FAIL: flight recorder overhead above 5%% budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
