// Fig. 5: costs of recovering/reconfiguring workers when training VGG-16
// in the three scenarios (Down / Same / Up) at process and node level,
// scaling from 12 GPUs to 192 GPUs.
#include "bench_util.h"

int main() {
  rcc::bench::RunCostFigure(rcc::dnn::Vgg16Spec(), {12, 24, 48, 96, 192},
                            "fig5");
  return 0;
}
