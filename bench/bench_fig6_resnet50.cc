// Fig. 6: costs of recovering/reconfiguring workers when training
// ResNet-50 in the three scenarios, 12 to 192 GPUs.
#include "bench_util.h"

int main() {
  rcc::bench::RunCostFigure(rcc::dnn::ResNet50V2Spec(), {12, 24, 48, 96, 192},
                            "fig6");
  return 0;
}
