// Fig. 7: costs of recovering/reconfiguring workers when training
// NasNetMobile in the three scenarios, 12 to 192 GPUs.
#include "bench_util.h"

int main() {
  rcc::bench::RunCostFigure(rcc::dnn::NasNetMobileSpec(),
                            {12, 24, 48, 96, 192}, "fig7");
  return 0;
}
