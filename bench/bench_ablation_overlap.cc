// Ablation: nonblocking bucket pipeline vs blocking allreduce. Sweeps
// the in-flight window on the ULFM stack (clean runs, no failures):
// window 0 runs compute then every bucket allreduce back-to-back; window
// W >= 1 submits each fused bucket's allreduce as soon as its backward
// slice produces it, keeping at most W requests outstanding, and only
// the optimizer step drains the window. Reports the marginal per-step
// time (fixed init cost differenced out), the modeled step-time
// reduction vs the blocking baseline, and the fraction of communication
// hidden under backprop — computed two independent ways: from the
// bench's own wall-clock differencing and from the driver's rcc_step_*
// counters (1 - exposed/service). The two must agree within 2 points;
// the overlap_trace_check ctest greps for the verdict line.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/params.h"

namespace {

using namespace rcc;

horovod::SyntheticPlan BasePlan(const dnn::ModelSpec& spec, int world) {
  horovod::SyntheticPlan plan;
  plan.spec = spec;
  plan.initial_world = world;
  plan.batch_per_worker = 32;
  plan.epochs = 1;
  plan.fusion_bytes = 16u << 20;  // finer buckets: pipeline has stages
  plan.drop_policy = horovod::DropPolicy::kProcess;
  return plan;
}

// Marginal per-step cost of one window setting: two clean runs differing
// only in step count, so rendezvous/init and the final sync difference
// out. The same differencing applies to the driver's rcc_step_* counters
// (global and cumulative, hence the before/after snapshots), yielding
// the marginal comm service/exposed seconds behind the metrics-derived
// overlap fraction.
struct StepCost {
  double wall = 0;     // per-step seconds (virtual time)
  double service = 0;  // per-step comm engine seconds
  double exposed = 0;  // per-step exposed (non-overlapped) comm seconds
};

// `last_rec` receives the longer run's trace (cleared first), so after
// the sweep it holds the final configuration's timeline for
// RCC_TRACE_JSON.
StepCost MeasureStep(const horovod::SyntheticPlan& base, int window,
                     trace::Recorder* last_rec) {
  horovod::SyntheticPlan plan = base;
  plan.inflight_window = window;
  auto& reg = obs::Registry::Global();
  const obs::Labels labels{{"stack", "ulfm"}};
  const char* kService = "rcc_step_comm_service_seconds_total";
  const char* kExposed = "rcc_step_comm_exposed_seconds_total";
  double completion[2] = {0, 0}, service[2] = {0, 0}, exposed[2] = {0, 0};
  const int steps[2] = {2, 10};
  for (int i = 0; i < 2; ++i) {
    plan.steps_per_epoch = steps[i];
    const double service0 = reg.CounterValue(kService, labels);
    const double exposed0 = reg.CounterValue(kExposed, labels);
    trace::Recorder local;
    trace::Recorder* rec = (i == 1 && last_rec != nullptr) ? last_rec : &local;
    rec->Clear();
    sim::Cluster cluster;
    completion[i] = core::RunUlfmElastic(cluster, plan, rec).completion_time;
    service[i] = reg.CounterValue(kService, labels) - service0;
    exposed[i] = reg.CounterValue(kExposed, labels) - exposed0;
  }
  const double dsteps = steps[1] - steps[0];
  StepCost cost;
  cost.wall = (completion[1] - completion[0]) / dsteps;
  cost.service = (service[1] - service[0]) / dsteps;
  cost.exposed = (exposed[1] - exposed[0]) / dsteps;
  return cost;
}

}  // namespace

int main() {
  using namespace rcc;
  const int world = 24;
  const sim::SimConfig cfg;

  trace::Recorder last_rec;
  Table table({"model", "buckets", "window", "step (s)", "vs blocking",
               "overlap ratio", "overlap (metrics)"});
  double max_delta = 0.0;
  bool all_ok = true;
  for (const auto& spec : {dnn::Vgg16Spec(), dnn::ResNet50V2Spec()}) {
    const horovod::SyntheticPlan base = BasePlan(spec, world);
    const size_t buckets =
        dnn::FusionBucketBytes(dnn::TensorParameterCounts(spec),
                               base.fusion_bytes)
            .size();
    const double compute = dnn::StepComputeSeconds(
        spec, base.batch_per_worker, cfg.net.gpu_flops);
    const StepCost blocking = MeasureStep(base, /*window=*/0, &last_rec);
    const double comm = blocking.wall - compute;  // exposed comm, blocking
    for (int window : {0, 1, 2, 4, 8}) {
      const StepCost cost =
          window == 0 ? blocking : MeasureStep(base, window, &last_rec);
      const double hidden = blocking.wall - cost.wall;
      const double bench_ratio = window == 0 ? 0.0 : hidden / comm;
      const double metrics_ratio =
          cost.service > 0 ? 1.0 - cost.exposed / cost.service : 0.0;
      if (window > 0) {
        const double delta = std::abs(bench_ratio - metrics_ratio);
        max_delta = std::max(max_delta, delta);
        all_ok = all_ok && delta <= 0.02;
      }
      table.AddRow(
          {spec.name, std::to_string(buckets), std::to_string(window),
           FormatDouble(cost.wall, 4),
           window == 0
               ? "baseline"
               : "-" + FormatDouble(100.0 * hidden / blocking.wall, 1) + "%",
           window == 0 ? "0%" : FormatDouble(100.0 * bench_ratio, 1) + "%",
           FormatDouble(100.0 * metrics_ratio, 1) + "%"});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  bench::EmitTable(table,
                   "Ablation: allreduce/backprop overlap window, 24 GPUs "
                   "(ULFM stack, clean run, 16 MB fusion buckets)",
                   "ablation_overlap.csv");
  // Cross-check verdict: the counter-derived comm-hidden fraction must
  // track the wall-clock one (|delta| <= 0.02 per pipelined row).
  std::printf("overlap metrics check: %s (max |bench - metrics| = %.4f)\n",
              all_ok ? "OK" : "FAIL", max_delta);
  obs::DumpIfRequested(&last_rec);
  return all_ok ? 0 : 1;
}
