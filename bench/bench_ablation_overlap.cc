// Ablation: nonblocking bucket pipeline vs blocking allreduce. Sweeps
// the in-flight window on the ULFM stack (clean runs, no failures):
// window 0 runs compute then every bucket allreduce back-to-back; window
// W >= 1 submits each fused bucket's allreduce as soon as its backward
// slice produces it, keeping at most W requests outstanding, and only
// the optimizer step drains the window. Reports the marginal per-step
// time (fixed init cost differenced out), the modeled step-time
// reduction vs the blocking baseline, and the fraction of communication
// hidden under backprop.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"
#include "sim/params.h"

namespace {

using namespace rcc;

horovod::SyntheticPlan BasePlan(const dnn::ModelSpec& spec, int world) {
  horovod::SyntheticPlan plan;
  plan.spec = spec;
  plan.initial_world = world;
  plan.batch_per_worker = 32;
  plan.epochs = 1;
  plan.fusion_bytes = 16u << 20;  // finer buckets: pipeline has stages
  plan.drop_policy = horovod::DropPolicy::kProcess;
  return plan;
}

// Marginal per-step seconds: two clean runs differing only in step
// count, so rendezvous/init and the final sync difference out.
double StepSeconds(const horovod::SyntheticPlan& base, int window) {
  horovod::SyntheticPlan plan = base;
  plan.inflight_window = window;
  double completion[2] = {0, 0};
  const int steps[2] = {2, 10};
  for (int i = 0; i < 2; ++i) {
    plan.steps_per_epoch = steps[i];
    trace::Recorder rec;
    sim::Cluster cluster;
    completion[i] = core::RunUlfmElastic(cluster, plan, &rec).completion_time;
  }
  return (completion[1] - completion[0]) / (steps[1] - steps[0]);
}

}  // namespace

int main() {
  using namespace rcc;
  const int world = 24;
  const sim::SimConfig cfg;

  Table table({"model", "buckets", "window", "step (s)", "vs blocking",
               "overlap ratio"});
  for (const auto& spec : {dnn::Vgg16Spec(), dnn::ResNet50V2Spec()}) {
    const horovod::SyntheticPlan base = BasePlan(spec, world);
    const size_t buckets =
        dnn::FusionBucketBytes(dnn::TensorParameterCounts(spec),
                               base.fusion_bytes)
            .size();
    const double compute = dnn::StepComputeSeconds(
        spec, base.batch_per_worker, cfg.net.gpu_flops);
    const double blocking = StepSeconds(base, /*window=*/0);
    const double comm = blocking - compute;  // exposed comm, blocking run
    for (int window : {0, 1, 2, 4, 8}) {
      const double step = window == 0 ? blocking : StepSeconds(base, window);
      const double hidden = blocking - step;
      table.AddRow(
          {spec.name, std::to_string(buckets), std::to_string(window),
           FormatDouble(step, 4),
           window == 0 ? "baseline"
                       : "-" + FormatDouble(100.0 * hidden / blocking, 1) + "%",
           window == 0 ? "0%"
                       : FormatDouble(100.0 * hidden / comm, 1) + "%"});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  bench::EmitTable(table,
                   "Ablation: allreduce/backprop overlap window, 24 GPUs "
                   "(ULFM stack, clean run, 16 MB fusion buckets)",
                   "ablation_overlap.csv");
  return 0;
}
