// Fig. 2 (conceptual): backward recovery vs the proposed forward
// recovery based on ULFM MPI. The paper's point: the smallest recovery
// granularity of the checkpoint-based approach is one mini-batch (all
// ARDs of the batch are re-computed), while the resilient collectives
// re-execute only the single failed allreduce (ARD).
//
// Measured here: the same mid-batch failure injected into both stacks;
// reported: how much work each one repeats and what the repeat costs.
#include <cstdio>

#include "bench_util.h"
#include "core/ulfm_elastic.h"

int main() {
  using namespace rcc;
  namespace ph = horovod::phase;
  const auto spec = dnn::Vgg16Spec();  // 9 fusion buckets => 9 ARDs/step
  const int world = 24;
  auto plan = bench::MakeScenarioPlan(spec, bench::Scenario::kDown,
                                      horovod::DropPolicy::kProcess, world);
  // Fail mid-batch: while reducing the 5th of the step's ARDs.
  plan.failures[0].bucket = 4;

  trace::Recorder eh_rec;
  {
    sim::Cluster cluster;
    horovod::RunElasticHorovod(cluster, plan, &eh_rec);
  }
  trace::Recorder ulfm_rec;
  {
    sim::Cluster cluster;
    core::RunUlfmElastic(cluster, plan, &ulfm_rec);
  }

  const auto buckets =
      dnn::FusionBucketBytes(dnn::TensorParameterCounts(spec), 64u << 20);
  const double eh_recompute = bench::RecoveryPhaseMean(eh_rec, ph::kRecompute);
  const double ulfm_retry =
      bench::RecoveryPhaseMean(ulfm_rec, ph::kRetryCollective);

  Table table({"approach", "recovery granularity", "work repeated",
               "repeat cost (s)"});
  table.AddRow({"checkpoint rollback (Elastic Horovod)", "one mini-batch",
                "full step: compute + " + std::to_string(buckets.size()) +
                    " ARDs",
                FormatDouble(eh_recompute, 3)});
  table.AddRow({"forward recovery (ULFM resilient collectives)",
                "one collective",
                "1 ARD (failed allreduce only)",
                FormatDouble(ulfm_retry, 3)});
  bench::EmitTable(table,
                   "Fig. 2: backward vs forward recovery granularity "
                   "(VGG-16, failure at ARD 5 of the mini-batch, 24 GPUs)",
                   "fig2_recovery_granularity.csv");
  std::printf("\nrepeated-work ratio (EH / ULFM): %.1fx\n",
              eh_recompute / ulfm_retry);
  bench::DumpObservability(ulfm_rec);
  return 0;
}
