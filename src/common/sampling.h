// Audited arrival-time samplers shared by the chaos fuzzer and the
// serving request generator. Both subsystems need seeded, replayable
// event streams; hoisting the draws here means one implementation with
// one set of determinism guarantees:
//
//  - PoissonProcess draws exactly ONE NextExponential per Next() call,
//    matching the historical inline loop in chaos/generator.cc, so every
//    pre-existing chaos seed still produces a byte-identical schedule.
//  - InhomogeneousPoissonProcess uses Lewis-Shedler thinning against a
//    caller-supplied rate function bounded by rate_max; the number of
//    rng draws depends only on (seed, rate fn, rate_max), never on wall
//    time or thread scheduling.
//
// Everything here is a pure function of the Rng it is handed: no
// globals, no clocks, no allocation beyond the object itself.
#pragma once

#include <cmath>
#include <functional>

#include "common/log.h"
#include "common/rng.h"

namespace rcc {

// Homogeneous Poisson process: successive arrival times with
// exponential inter-arrival gaps at a fixed rate (events per virtual
// second). Next() advances and returns the new arrival time; the caller
// decides when the stream ends (horizon, count cap, ...). One rng draw
// per call, including the call that overshoots the caller's horizon —
// that final draw is part of the historical chaos stream contract.
class PoissonProcess {
 public:
  PoissonProcess(Rng* rng, double rate, double start = 0.0)
      : rng_(rng), rate_(rate), t_(start) {
    RCC_CHECK(rng != nullptr);
    RCC_CHECK(rate > 0) << "PoissonProcess rate must be positive";
  }

  double Next() {
    t_ += rng_->NextExponential(rate_);
    return t_;
  }

  double now() const { return t_; }
  double rate() const { return rate_; }

 private:
  Rng* rng_;
  double rate_;
  double t_;
};

// Inhomogeneous Poisson process via Lewis-Shedler thinning: candidate
// arrivals are drawn from a homogeneous process at rate_max and each is
// accepted with probability rate(t)/rate_max. rate(t) must never exceed
// rate_max (checked); a rate of zero at time t simply rejects the
// candidate. Exactly two rng draws per candidate (one exponential, one
// uniform), so the stream layout is a pure function of the inputs.
class InhomogeneousPoissonProcess {
 public:
  InhomogeneousPoissonProcess(Rng* rng, std::function<double(double)> rate,
                              double rate_max, double start = 0.0)
      : candidates_(rng, rate_max, start),
        rng_(rng),
        rate_(std::move(rate)),
        rate_max_(rate_max) {}

  // Next accepted arrival. `horizon` bounds the candidate walk so a
  // rate function that decays to zero cannot spin forever; returns an
  // arrival >= horizon (unaccepted) when the stream is exhausted.
  double Next(double horizon) {
    for (;;) {
      const double t = candidates_.Next();
      if (t >= horizon) return t;
      const double r = rate_(t);
      RCC_CHECK(r <= rate_max_ * (1 + 1e-9))
          << "rate(" << t << ")=" << r << " exceeds rate_max=" << rate_max_;
      if (r > 0 && rng_->NextDouble() * rate_max_ < r) return t;
    }
  }

 private:
  PoissonProcess candidates_;
  Rng* rng_;
  std::function<double(double)> rate_;
  double rate_max_;
};

// Diurnal load curve: a raised cosine around `base` with relative
// `amplitude` in [0, 1] and the given period. amplitude=0 is flat;
// amplitude=1 swings between 0 and 2*base. Peak is at t=0 (callers
// phase-shift by choosing their own origin).
inline double DiurnalRate(double base, double amplitude, double period,
                          double t) {
  if (amplitude <= 0 || period <= 0) return base;
  return base * (1.0 + amplitude * std::cos(6.283185307179586 * t / period));
}

}  // namespace rcc
