#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rcc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

LogLevel ParseLogLevel(const char* spec, LogLevel fallback) {
  if (spec == nullptr || *spec == '\0') return fallback;
  std::string s(spec);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "trace" || s == "0") return LogLevel::kTrace;
  if (s == "debug" || s == "1") return LogLevel::kDebug;
  if (s == "info" || s == "2") return LogLevel::kInfo;
  if (s == "warn" || s == "warning" || s == "3") return LogLevel::kWarn;
  if (s == "error" || s == "4") return LogLevel::kError;
  if (s == "off" || s == "none" || s == "5") return LogLevel::kOff;
  return fallback;
}

namespace {
// Applies RCC_LOG_LEVEL before main() so even static-init logging obeys
// it; explicit SetLogLevel calls still override later.
struct LogEnvInit {
  LogEnvInit() {
    if (const char* e = std::getenv("RCC_LOG_LEVEL")) {
      SetLogLevel(ParseLogLevel(e));
    }
  }
} g_log_env_init;
}  // namespace

namespace internal {

void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  std::ostringstream os;
  os << "CHECK failed at " << file << ':' << line << ": " << cond << ' ';
  prefix_ = os.str();
}

CheckFailure::~CheckFailure() {
  {
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::fprintf(stderr, "%s%s\n", prefix_.c_str(), stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace rcc
