#include "common/status.h"

#include <algorithm>
#include <sstream>

namespace rcc {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kProcFailed: return "PROC_FAILED";
    case Code::kRevoked: return "REVOKED";
    case Code::kTimeout: return "TIMEOUT";
    case Code::kInvalid: return "INVALID";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAborted: return "ABORTED";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kIoError: return "IO_ERROR";
    case Code::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

void Status::MergeFailure(const Status& other) {
  if (other.ok()) return;
  if (ok()) {
    code_ = other.code_;
    msg_ = other.msg_;
  }
  // Failure set union, kept sorted and unique.
  for (int pid : other.failed_pids_) {
    if (std::find(failed_pids_.begin(), failed_pids_.end(), pid) ==
        failed_pids_.end()) {
      failed_pids_.push_back(pid);
    }
  }
  std::sort(failed_pids_.begin(), failed_pids_.end());
  // A revoke supersedes individual process failures: the whole context is
  // unusable until repaired.
  if (other.code_ == Code::kRevoked) code_ = Code::kRevoked;
}

std::string Status::ToString() const {
  std::ostringstream os;
  os << CodeName(code_);
  if (!msg_.empty()) os << ": " << msg_;
  if (!failed_pids_.empty()) {
    os << " (failed pids:";
    for (int pid : failed_pids_) os << ' ' << pid;
    os << ')';
  }
  return os.str();
}

}  // namespace rcc
