// Status / Result error model used across the RCC libraries.
//
// The fabric, MPI and ULFM layers report failures per-operation through
// status codes (mirroring ULFM's relaxed error semantics); exceptions are
// reserved for the Gloo-like layer, which mimics real Gloo behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rcc {

enum class Code : uint8_t {
  kOk = 0,
  kProcFailed,   // a peer process has failed (ULFM: MPIX_ERR_PROC_FAILED)
  kRevoked,      // the communicator was revoked (ULFM: MPIX_ERR_REVOKED)
  kTimeout,      // operation exceeded its (virtual) deadline
  kInvalid,      // invalid argument / precondition violation
  kNotFound,     // missing key / rank / resource
  kAborted,      // operation aborted by shutdown
  kUnavailable,  // resource not (yet) available
  kIoError,      // transport-level error
  kInternal,     // invariant violation inside the library
};

const char* CodeName(Code code);

// A lightweight status: a code, an optional message, and - for
// kProcFailed - the set of failed process ids observed by the operation.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status ProcFailed(std::vector<int> pids, std::string msg = {}) {
    Status s(Code::kProcFailed, std::move(msg));
    s.failed_pids_ = std::move(pids);
    return s;
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  const std::vector<int>& failed_pids() const { return failed_pids_; }

  // Merge another failure observation into this status (used when a
  // collective observes multiple dead peers before returning).
  void MergeFailure(const Status& other);

  std::string ToString() const;

 private:
  Code code_;
  std::string msg_;
  std::vector<int> failed_pids_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }
  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T take() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define RCC_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::rcc::Status rcc_status_ = (expr);           \
    if (!rcc_status_.ok()) return rcc_status_;    \
  } while (0)

}  // namespace rcc
