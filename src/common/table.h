// ASCII table and CSV emission for bench output. Every figure/table bench
// prints a human-readable table to stdout and optionally writes the same
// rows as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace rcc {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Formats the table with aligned columns.
  std::string ToAscii() const;
  std::string ToCsv() const;

  // Prints the ASCII rendering to stdout with an optional title banner.
  void Print(const std::string& title = {}) const;

  // Writes CSV next to the binary; best-effort (bench output is the
  // authoritative record).
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by benches.
std::string FormatSeconds(double s);   // "12.35 s" / "843 ms" / "12.1 us"
std::string FormatBytes(double b);     // "549.0 MB" / "23 GB/s" building block
std::string FormatDouble(double v, int precision = 3);

}  // namespace rcc
