// Binary serialisation used for checkpoints, rendezvous payloads and
// model-state broadcasts. Little-endian, length-prefixed, no alignment
// requirements on the reader side.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace rcc {

class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  void WriteFloats(const float* data, size_t count) {
    WriteU64(count);
    WriteRaw(data, count * sizeof(float));
  }
  void WriteBytes(const std::vector<uint8_t>& b) {
    WriteU64(b.size());
    WriteRaw(b.data(), b.size());
  }
  void WriteRaw(const void* data, size_t bytes) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + bytes);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    RCC_RETURN_IF_ERROR(ReadU64(&n));
    if (n > Remaining()) return Status(Code::kIoError, "string overruns buffer");
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::Ok();
  }
  Status ReadFloats(std::vector<float>* out) {
    uint64_t n = 0;
    RCC_RETURN_IF_ERROR(ReadU64(&n));
    if (n * sizeof(float) > Remaining())
      return Status(Code::kIoError, "float array overruns buffer");
    out->resize(n);
    return ReadRaw(out->data(), n * sizeof(float));
  }
  Status ReadBytes(std::vector<uint8_t>* out) {
    uint64_t n = 0;
    RCC_RETURN_IF_ERROR(ReadU64(&n));
    if (n > Remaining()) return Status(Code::kIoError, "bytes overrun buffer");
    out->resize(n);
    return ReadRaw(out->data(), n);
  }
  Status ReadRaw(void* out, size_t bytes) {
    if (bytes > Remaining())
      return Status(Code::kIoError, "read past end of buffer");
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
    return Status::Ok();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rcc
