#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rcc {

std::string Table::ToAscii() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  std::ostringstream os;
  emit_row(os, header_);
  os << '|';
  for (size_t c = 0; c < width.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) {
    std::printf("\n=== %s ===\n", title.c_str());
  }
  std::fputs(ToAscii().c_str(), stdout);
  std::fflush(stdout);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatSeconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else if (s >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", s * 1e9);
  }
  return buf;
}

std::string FormatBytes(double b) {
  char buf[64];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

}  // namespace rcc
