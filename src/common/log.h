// Minimal thread-safe logging with severity filtering.
//
// Logging in the hot simulation path is off by default; benches and
// examples raise the level explicitly.
#pragma once

#include <sstream>
#include <string>

namespace rcc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global minimum level; messages below it are dropped cheaply. The
// initial level honors the RCC_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off, case-insensitive, or a numeric
// level 0-5); unset or unparseable falls back to warn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses an RCC_LOG_LEVEL-style spec. Returns `fallback` on nullptr or
// unrecognized input.
LogLevel ParseLogLevel(const char* spec, LogLevel fallback = LogLevel::kWarn);

namespace internal {
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define RCC_LOG(level)                                              \
  if (::rcc::LogLevel::level < ::rcc::GetLogLevel()) {              \
  } else                                                            \
    ::rcc::internal::LogMessage(::rcc::LogLevel::level, __FILE__,   \
                                __LINE__)                           \
        .stream()

#define RCC_CHECK(cond)                                                   \
  if (cond) {                                                             \
  } else                                                                  \
    ::rcc::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::string prefix_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace rcc
