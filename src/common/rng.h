// Deterministic, splittable random number generation. Every simulated
// component derives its stream from (seed, component id) so runs are
// reproducible regardless of thread scheduling.
#pragma once

#include <cmath>
#include <cstdint>

namespace rcc {

// SplitMix64: tiny, fast, good enough for workload generation and
// failure-injection jitter; not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ull) {}
  Rng(uint64_t seed, uint64_t stream) : Rng(seed + 0xBF58476D1CE4E5B9ull * (stream + 1)) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble(), u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Exponential with the given rate (used for failure inter-arrival times).
  double NextExponential(double rate) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

 private:
  uint64_t state_;
};

}  // namespace rcc
