// Checked parsing for numeric RCC_* environment knobs.
//
// Every knob used to be read with bare atoi/atof/strtod, which accept
// trailing garbage ("0.05x" parses as 0.05) or silently return 0 for
// full garbage ("five" parses as 0) — a typo'd knob then changes
// behavior without any signal. These helpers require the WHOLE value to
// parse (modulo surrounding whitespace); anything else logs one warning
// naming the knob and falls back to the documented default.
//
// The warning is logged once per (knob, value) so hot paths that
// re-read a knob per call don't spam the log.
#pragma once

#include <cstdint>

namespace rcc::common {

// Integer knob. Accepts decimal with optional sign; rejects partial
// parses, overflow, and empty values. Unset or empty -> fallback
// (silently: absence is not a typo).
int64_t EnvInt64(const char* name, int64_t fallback);
int EnvInt(const char* name, int fallback);

// Floating-point knob, same contract (strtod grammar, full consume).
double EnvDouble(const char* name, double fallback);

// Exposed for tests: parse a raw value string with the same rules the
// env readers apply. Returns false (and leaves *out untouched) on any
// malformed input.
bool ParseInt64(const char* value, int64_t* out);
bool ParseDouble(const char* value, double* out);

}  // namespace rcc::common
