#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "common/log.h"

namespace rcc::common {

namespace {

// One warning per (knob, value): campaigns re-read knobs per step and a
// single typo should not produce megabytes of log.
void WarnOnce(const char* name, const char* value, const char* kind) {
  static std::mutex mu;
  static std::set<std::pair<std::string, std::string>> seen;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen.emplace(name, value).second) return;
  }
  RCC_LOG(kWarn) << name << "=\"" << value << "\" is not a valid " << kind
                 << "; using the documented default";
}

const char* SkipWs(const char* p) {
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p;
}

bool AllWs(const char* p) { return *SkipWs(p) == '\0'; }

}  // namespace

bool ParseInt64(const char* value, int64_t* out) {
  if (value == nullptr || AllWs(value)) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (errno == ERANGE || end == value || !AllWs(end)) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const char* value, double* out) {
  if (value == nullptr || AllWs(value)) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (errno == ERANGE || end == value || !AllWs(end)) return false;
  *out = v;
  return true;
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int64_t out = 0;
  if (!ParseInt64(v, &out)) {
    WarnOnce(name, v, "integer");
    return fallback;
  }
  return out;
}

int EnvInt(const char* name, int fallback) {
  return static_cast<int>(EnvInt64(name, fallback));
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  double out = 0;
  if (!ParseDouble(v, &out)) {
    WarnOnce(name, v, "number");
    return fallback;
  }
  return out;
}

}  // namespace rcc::common
