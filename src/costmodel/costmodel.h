// Analytic recovery-cost model: Equation (1) of the paper.
//
//   C_fault_recovery = C_checkpoint_saving * freq_saving
//                    + Count_fault * ( C_checkpoint_loading
//                                    + C_reconfiguration
//                                    + C_recompute_from_checkpoint
//                                    + C_new_worker_init )
//
// Used by the Eq. (1) ablation bench to sweep the checkpoint-interval
// trade-off (shorter interval -> cheaper recompute, costlier saving) and
// cross-checked against simulated Elastic Horovod runs.
#pragma once

#include "sim/params.h"

namespace rcc::costmodel {

struct RecoveryParams {
  double checkpoint_bytes = 0;       // state size
  double steps_per_second = 0;       // training throughput (steady state)
  int checkpoint_interval_steps = 1; // steps between saves
  double reconfiguration_cost = 0;   // comm-context rebuild (per fault)
  double new_worker_init_cost = 0;   // cold start (per fault, if replacing)
  double fault_rate_per_hour = 0;    // expected faults
  double horizon_hours = 1.0;        // window the cost is accounted over
};

struct RecoveryBreakdown {
  double saving = 0;        // C_checkpoint_saving * freq
  double loading = 0;       // Count_fault * C_checkpoint_loading
  double reconfigure = 0;   // Count_fault * C_re-configuration
  double recompute = 0;     // Count_fault * C_re-compute_from_checkpoint
  double worker_init = 0;   // Count_fault * C_new_worker_init
  double total() const {
    return saving + loading + reconfigure + recompute + worker_init;
  }
};

// Evaluates Eq. (1) over the horizon. Recompute per fault is the
// expected half-interval of lost steps re-executed at steady-state
// throughput.
RecoveryBreakdown Evaluate(const sim::SimConfig& cfg,
                           const RecoveryParams& params);

// The interval minimising total cost (closed form of the saving vs
// recompute trade-off, clamped to >= 1).
int OptimalCheckpointIntervalSteps(const sim::SimConfig& cfg,
                                   const RecoveryParams& params);

// One-fault Eq.1 instantiation for the adaptive recovery policy's
// checkpoint-restore branch: at decision time the rollback distance to
// the last boundary snapshot is known exactly, so the interval is set
// to 2 * rollback_steps (making Eq.1's expected half-interval recompute
// equal the known distance) and rate * horizon is pinned to exactly one
// fault. `saving` is zeroed in the result: boundary snapshots are
// captured under every strategy, so their cost is not part of the
// decision margin.
RecoveryBreakdown EvaluateRestoreDecision(const sim::SimConfig& cfg,
                                          double checkpoint_bytes,
                                          double steps_per_second,
                                          long long rollback_steps);

}  // namespace rcc::costmodel
