#include "costmodel/costmodel.h"

#include <algorithm>
#include <cmath>

namespace rcc::costmodel {

RecoveryBreakdown Evaluate(const sim::SimConfig& cfg,
                           const RecoveryParams& params) {
  RecoveryBreakdown out;
  const double copy_cost =
      params.checkpoint_bytes / cfg.net.host_mem_bandwidth;
  const double horizon_s = params.horizon_hours * 3600.0;
  const double total_steps = params.steps_per_second * horizon_s;
  const double saves =
      total_steps / std::max(1, params.checkpoint_interval_steps);
  const double faults = params.fault_rate_per_hour * params.horizon_hours;

  out.saving = copy_cost * saves;
  out.loading = faults * copy_cost;
  out.reconfigure = faults * params.reconfiguration_cost;
  // Expected lost work at a uniformly-random fault point: half the
  // interval, re-executed at steady-state throughput.
  const double lost_steps = params.checkpoint_interval_steps / 2.0;
  out.recompute = faults * lost_steps / params.steps_per_second;
  out.worker_init = faults * params.new_worker_init_cost;
  return out;
}

int OptimalCheckpointIntervalSteps(const sim::SimConfig& cfg,
                                   const RecoveryParams& params) {
  // d/dI [ copy * S/I + F * I / (2 * rate) ] = 0
  //   => I* = sqrt( 2 * copy * S * rate / F )
  const double copy_cost =
      params.checkpoint_bytes / cfg.net.host_mem_bandwidth;
  const double horizon_s = params.horizon_hours * 3600.0;
  const double total_steps = params.steps_per_second * horizon_s;
  const double faults =
      std::max(1e-9, params.fault_rate_per_hour * params.horizon_hours);
  const double optimal = std::sqrt(2.0 * copy_cost * total_steps *
                                   params.steps_per_second / faults);
  return std::max(1, static_cast<int>(std::lround(optimal)));
}

RecoveryBreakdown EvaluateRestoreDecision(const sim::SimConfig& cfg,
                                          double checkpoint_bytes,
                                          double steps_per_second,
                                          long long rollback_steps) {
  RecoveryParams p;
  p.checkpoint_bytes = checkpoint_bytes;
  p.steps_per_second = std::max(1e-9, steps_per_second);
  const long long interval = 2 * std::max(0ll, rollback_steps);
  p.checkpoint_interval_steps =
      static_cast<int>(std::min<long long>(interval, 1 << 30));
  p.reconfiguration_cost = 0.0;
  p.new_worker_init_cost = 0.0;
  p.fault_rate_per_hour = 1.0;
  p.horizon_hours = 1.0;
  RecoveryBreakdown out = Evaluate(cfg, p);
  out.saving = 0.0;
  return out;
}

}  // namespace rcc::costmodel
