#include "chaos/oracle.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "policy/policy.h"

namespace rcc::chaos {

namespace {

std::string Fmt(const char* oracle, const std::ostringstream& os) {
  return std::string(oracle) + ": " + os.str();
}

// Serving-campaign oracles. P0/P3/P6/P7 keep their trainer meanings;
// P8 is the serving plane's core guarantee: across every repair,
// splice, and voluntary shrink, no admitted request is lost or
// double-completed — all finishers hold the identical completion log
// covering exactly the generated request ids, and the replicated-state
// digests agree bit for bit.
void CheckServingOracles(const Schedule& schedule, const CampaignOutcome& o,
                         std::vector<Violation>* out) {
  const Shape& sh = schedule.shape;
  auto violate = [out](const char* oracle, const std::string& detail) {
    out->push_back(Violation{oracle, detail});
  };

  const int expected_workers = sh.world + sh.serve_standbys;
  if (static_cast<int>(o.results.size()) != expected_workers) {
    std::ostringstream os;
    os << "got " << o.results.size() << " worker results, expected "
       << expected_workers;
    violate("P0", os.str());
  }

  const WorkerResult* ref = nullptr;  // a founder that drained the stream
  int finishers = 0;
  int max_worker_repairs = 0;
  for (const WorkerResult& r : o.results) {
    max_worker_repairs = std::max(max_worker_repairs, r.serve.repairs);
    if (r.serve.aborted || r.serve.left || r.serve.idle_standby) continue;
    ++finishers;
    if (ref == nullptr && r.join_epoch < 0) ref = &r;
  }
  if (ref == nullptr) {
    violate("P0", "no founder drained the request stream (all aborted)");
    return;
  }

  const int requests = sh.serve_requests;
  for (const WorkerResult& r : o.results) {
    if (r.serve.aborted || r.serve.left || r.serve.idle_standby) continue;
    const bool joiner = r.join_epoch >= 0;

    // P3: one shared view of the final membership.
    if (r.serve.final_world != ref->serve.final_world) {
      std::ostringstream os;
      os << "pid " << r.pid << " final_world " << r.serve.final_world
         << " != pid " << ref->pid << "'s " << ref->serve.final_world;
      violate("P3", os.str());
    }

    // P8: exactly-once completion of every admitted request, identical
    // on every finisher (joiners included — their post-splice state sync
    // must hand them the full log).
    if (r.serve.completed != requests) {
      std::ostringstream os;
      os << "pid " << r.pid << (joiner ? " (joiner)" : "") << " completed "
         << r.serve.completed << " of " << requests << " requests";
      violate("P8", os.str());
    }
    std::map<int, int> seen;
    for (const serve::Completion& c : r.serve.completions) ++seen[c.id];
    for (int id = 0; id < requests; ++id) {
      const auto it = seen.find(id);
      const int n = it == seen.end() ? 0 : it->second;
      if (n != 1) {
        std::ostringstream os;
        os << "pid " << r.pid << " completed request " << id << " " << n
           << " times";
        violate("P8", os.str());
        break;  // one divergent log, one violation
      }
    }
    if (&r != ref) {
      if (r.serve.digest != ref->serve.digest) {
        std::ostringstream os;
        os << "pid " << r.pid << " digest " << r.serve.digest << " != pid "
           << ref->pid << "'s " << ref->serve.digest;
        violate("P8", os.str());
      } else if (r.serve.completions.size() != ref->serve.completions.size()) {
        std::ostringstream os;
        os << "pid " << r.pid << " has " << r.serve.completions.size()
           << " completions, pid " << ref->pid << " has "
           << ref->serve.completions.size();
        violate("P8", os.str());
      } else {
        for (size_t i = 0; i < r.serve.completions.size(); ++i) {
          if (!(r.serve.completions[i] == ref->serve.completions[i])) {
            std::ostringstream os;
            os << "pid " << r.pid << " completion " << i
               << " (request " << r.serve.completions[i].id
               << ") differs from pid " << ref->pid << "'s";
            violate("P8", os.str());
            break;
          }
        }
      }
    }
  }

  // P6: every replayed op is at or above the MIN its repair agreed on.
  for (const trace::ReplayEvent& e : o.replay_events) {
    if (e.op_id < e.min_id) {
      std::ostringstream os;
      os << "pid " << e.pid << " replayed op " << e.op_id
         << " below agreed MIN " << e.min_id;
      violate("P6", os.str());
    }
  }

  // P7: counters, spans and reports must cohere (same invariants as the
  // trainer path; the serving plane shares the recovery substrate).
  {
    std::ostringstream os;
    os << "repairs counter " << o.repairs_metric << ", repair spans "
       << o.repair_span_count << ", max worker repairs "
       << max_worker_repairs << ", replayed counter " << o.replayed_metric
       << ", replay events " << o.replay_events.size();
    const std::string ctx = os.str();
    if (o.repair_span_count < static_cast<int>(o.repairs_metric)) {
      violate("P7", "spans fewer than repair increments (" + ctx + ")");
    }
    if (static_cast<int>(o.repairs_metric) < max_worker_repairs) {
      violate("P7", "counter below a worker's repair count (" + ctx + ")");
    }
    if ((o.repairs_metric > 0) != (o.repair_span_count > 0)) {
      violate("P7", "repairs counter and spans disagree on >0 (" + ctx + ")");
    }
    if (static_cast<size_t>(o.replayed_metric) != o.replay_events.size()) {
      violate("P7", "replayed counter != replay events (" + ctx + ")");
    }
  }
}

// Pipeline-campaign oracles. P0/P3/P6/P7 keep their meanings and P9
// still audits the recovery decisions; P10 is the hybrid-parallel core
// guarantee: across every re-route, shrink, and restore, no microbatch
// of any committed step is lost or double-applied in any process group
// — every finisher holds the identical commit ledger, every committed
// (stage, microbatch) names a live owner replica, and each rank's
// executed set is exactly what the agreed mapping assigned to the slot
// it held at commit time.
void CheckPipelineOracles(const Schedule& schedule, const CampaignOutcome& o,
                          std::vector<Violation>* out) {
  const Shape& sh = schedule.shape;
  auto violate = [out](const char* oracle, const std::string& detail) {
    out->push_back(Violation{oracle, detail});
  };
  const int pp = sh.pp_stages > 0 ? sh.pp_stages : 2;
  const int tp = sh.tp_size > 0 ? sh.tp_size : 1;
  const int microbatches = sh.pp_microbatches > 0 ? sh.pp_microbatches : 8;
  const int planned_steps = sh.epochs * sh.steps_per_epoch;

  if (static_cast<int>(o.results.size()) != sh.world) {
    std::ostringstream os;
    os << "got " << o.results.size() << " worker results, expected "
       << sh.world;
    violate("P0", os.str());
  }

  const WorkerResult* ref = nullptr;
  int finishers = 0;
  int max_worker_repairs = 0;
  for (const WorkerResult& r : o.results) {
    if (r.pipe.aborted) continue;
    ++finishers;
    max_worker_repairs = std::max(max_worker_repairs, r.pipe.repairs);
    if (ref == nullptr) ref = &r;
  }
  if (ref == nullptr) {
    violate("P0", "no worker finished the pipeline run (all aborted)");
    return;
  }

  const std::string ref_log = core::FormatCommitLog(ref->pipe.commits);
  for (const WorkerResult& r : o.results) {
    if (r.pipe.aborted) continue;

    // P3: one shared view of the final membership.
    if (r.pipe.final_world != ref->pipe.final_world) {
      std::ostringstream os;
      os << "pid " << r.pid << " final_world " << r.pipe.final_world
         << " != pid " << ref->pid << "'s " << ref->pipe.final_world;
      violate("P3", os.str());
    }

    // P1: exactly-once steps with explicit rollback accounting — every
    // commit event beyond the plan must be a restore re-execution.
    if (r.pipe.steps_run != planned_steps + r.pipe.rollback_steps) {
      std::ostringstream os;
      os << "pid " << r.pid << " observed " << r.pipe.steps_run
         << " commits, planned " << planned_steps << " + rollback "
         << r.pipe.rollback_steps;
      violate("P1", os.str());
    }

    // P10(a): every finisher holds the identical commit ledger covering
    // each planned step exactly once.
    if (static_cast<int>(r.pipe.commits.size()) != planned_steps) {
      std::ostringstream os;
      os << "pid " << r.pid << " ledger holds " << r.pipe.commits.size()
         << " commits, planned " << planned_steps;
      violate("P10", os.str());
      continue;
    }
    if (core::FormatCommitLog(r.pipe.commits) != ref_log) {
      std::ostringstream os;
      os << "pid " << r.pid << " commit ledger differs from pid " << ref->pid
         << "'s";
      violate("P10", os.str());
      continue;
    }

    // P10(b): no microbatch lost, and this rank executed exactly the
    // microbatches the agreed mapping assigned to the slot it held.
    std::set<std::tuple<int64_t, int, int>> expect;
    bool ledger_ok = true;
    for (const core::StepCommit& c : r.pipe.commits) {
      const int slots = static_cast<int>(c.slot_pids.size());
      if (slots % (pp * tp) != 0 ||
          static_cast<int>(c.owner.size()) != pp * microbatches) {
        std::ostringstream os;
        os << "pid " << r.pid << " commit g" << c.gstep
           << " has malformed mapping (" << slots << " slots, "
           << c.owner.size() << " owners)";
        violate("P10", os.str());
        ledger_ok = false;
        break;
      }
      for (int p = 0; p < pp && ledger_ok; ++p) {
        for (int m = 0; m < microbatches; ++m) {
          if (c.owner[p * microbatches + m] < 0) {
            std::ostringstream os;
            os << "commit g" << c.gstep << " lost microbatch m" << m
               << " of stage " << p << " (no owner replica)";
            violate("P10", os.str());
            ledger_ok = false;
            break;
          }
        }
      }
      if (!ledger_ok) break;
      int my_slot = -1;
      for (int i = 0; i < slots; ++i) {
        if (c.slot_pids[i] == r.pid) my_slot = i;
      }
      if (my_slot < 0) continue;  // spare (or unslotted) at this commit
      const int d = my_slot / (pp * tp);
      const int p = (my_slot / tp) % pp;
      for (int m = 0; m < microbatches; ++m) {
        if (c.owner[p * microbatches + m] == d) {
          expect.emplace(c.gstep, p, m);
        }
      }
    }
    if (!ledger_ok) continue;
    std::set<std::tuple<int64_t, int, int>> got;
    bool dup = false;
    for (const core::ExecRecord& e : r.pipe.execs) {
      if (!got.emplace(e.gstep, e.stage, e.mb).second && !dup) {
        std::ostringstream os;
        os << "pid " << r.pid << " double-applied g" << e.gstep << " p"
           << e.stage << " m" << e.mb;
        violate("P10", os.str());
        dup = true;
      }
    }
    if (got != expect) {
      std::ostringstream os;
      os << "pid " << r.pid << " executed " << got.size()
         << " microbatches, the agreed mapping assigned " << expect.size();
      for (const auto& e : expect) {
        if (got.count(e) == 0) {
          os << "; lost g" << std::get<0>(e) << " p" << std::get<1>(e)
             << " m" << std::get<2>(e);
          break;
        }
      }
      for (const auto& e : got) {
        if (expect.count(e) == 0) {
          os << "; unassigned g" << std::get<0>(e) << " p" << std::get<1>(e)
             << " m" << std::get<2>(e);
          break;
        }
      }
      violate("P10", os.str());
    }
  }

  // P3 bounds: survivors only — pipeline campaigns admit nobody.
  if (ref->pipe.final_world < finishers || ref->pipe.final_world > sh.world) {
    std::ostringstream os;
    os << "final_world " << ref->pipe.final_world << " outside ["
       << finishers << ", " << sh.world << "]";
    violate("P3", os.str());
  }

  // P6: every replayed op is at or above the MIN its repair agreed on.
  for (const trace::ReplayEvent& e : o.replay_events) {
    if (e.op_id < e.min_id) {
      std::ostringstream os;
      os << "pid " << e.pid << " replayed op " << e.op_id
         << " below agreed MIN " << e.min_id;
      violate("P6", os.str());
    }
  }

  // P7: counters, spans and reports must cohere (shared recovery
  // substrate, same invariants as the trainer path).
  {
    std::ostringstream os;
    os << "repairs counter " << o.repairs_metric << ", repair spans "
       << o.repair_span_count << ", max worker repairs "
       << max_worker_repairs << ", replayed counter " << o.replayed_metric
       << ", replay events " << o.replay_events.size();
    const std::string ctx = os.str();
    if (o.repair_span_count < static_cast<int>(o.repairs_metric)) {
      violate("P7", "spans fewer than repair increments (" + ctx + ")");
    }
    if (static_cast<int>(o.repairs_metric) < max_worker_repairs) {
      violate("P7", "counter below a worker's repair count (" + ctx + ")");
    }
    if ((o.repairs_metric > 0) != (o.repair_span_count > 0)) {
      violate("P7", "repairs counter and spans disagree on >0 (" + ctx + ")");
    }
    if (static_cast<size_t>(o.replayed_metric) != o.replay_events.size()) {
      violate("P7", "replayed counter != replay events (" + ctx + ")");
    }
  }

  // P9: decision-oracle soundness over the pipeline recovery decisions
  // (same contract as the trainer path: pure re-derivation, best
  // applicable cost under the adaptive mode, per-seq byte agreement).
  policy::Mode mode = policy::Mode::kAdaptive;
  if (!sh.policy_mode.empty()) policy::ModeFromName(sh.policy_mode, &mode);
  if (mode == policy::Mode::kLegacy) mode = policy::Mode::kAdaptive;
  std::map<int64_t, std::pair<int, std::string>> canon;  // seq -> pid,fmt
  for (const WorkerResult& r : o.results) {
    if (r.pipe.aborted) continue;
    for (const policy::Decision& d : r.pipe.decisions) {
      const policy::Decision rd = policy::Decide(mode, d.in);
      if (rd.chosen != d.chosen ||
          std::memcmp(rd.cost, d.cost, sizeof(rd.cost)) != 0) {
        std::ostringstream os;
        os << "pid " << r.pid << " decision seq " << d.in.seq
           << " does not re-derive from its inputs (logged "
           << policy::StrategyName(d.chosen) << ", re-derived "
           << policy::StrategyName(rd.chosen) << ")";
        violate("P9", os.str());
        continue;
      }
      double best = -1.0;
      for (int si = 0; si < policy::kStrategyCount; ++si) {
        const auto s = static_cast<policy::Strategy>(si);
        if (!policy::Applicable(s, d.in)) continue;
        if (best < 0 || d.cost[si] < best) best = d.cost[si];
      }
      const double chosen_cost = d.cost[static_cast<int>(d.chosen)];
      const double tol = 1e-9 + 1e-9 * (best < 0 ? 0.0 : best);
      if (mode == policy::Mode::kAdaptive && best >= 0 &&
          chosen_cost > best + tol) {
        std::ostringstream os;
        os << "pid " << r.pid << " decision seq " << d.in.seq << " chose "
           << policy::StrategyName(d.chosen) << " at cost " << chosen_cost
           << " but best applicable alternative costs " << best;
        violate("P9", os.str());
      }
      const std::string fmt = policy::FormatDecision(d);
      auto [it, inserted] =
          canon.emplace(d.in.seq, std::make_pair(r.pid, fmt));
      if (!inserted && it->second.second != fmt) {
        std::ostringstream os;
        os << "decision seq " << d.in.seq << " differs between pid "
           << it->second.first << " and pid " << r.pid;
        violate("P9", os.str());
      }
    }
  }
}

}  // namespace

bool HasViolation(const std::vector<Violation>& violations,
                  const std::string& oracle) {
  for (const Violation& v : violations) {
    if (oracle.empty() || v.oracle == oracle) return true;
  }
  return false;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << v.oracle << ": " << v.detail << "\n";
  }
  return os.str();
}

std::vector<Violation> CheckOracles(const Schedule& schedule,
                                    const CampaignOutcome& o) {
  std::vector<Violation> out;
  const Shape& sh = schedule.shape;
  auto violate = [&out](const char* oracle, const std::string& detail) {
    out.push_back(Violation{oracle, detail});
  };

  if (sh.serving) {
    CheckServingOracles(schedule, o, &out);
    return out;
  }
  if (sh.pipeline) {
    CheckPipelineOracles(schedule, o, &out);
    return out;
  }

  // Policy campaigns add the provisioned replacement pool to the
  // expected worker count; replacements whose slot was never consumed
  // finish idle and are skipped like aborted workers below.
  int expected_workers = sh.world + sh.replacements;
  for (const auto& [epoch, count] : sh.joins) expected_workers += count;
  if (static_cast<int>(o.results.size()) != expected_workers) {
    std::ostringstream os;
    os << "got " << o.results.size() << " worker results, expected "
       << expected_workers;
    violate("P0", os.str());
  }

  const WorkerResult* ref = nullptr;  // P2 reference replica (a founder)
  int finishers = 0;
  int max_worker_repairs = 0;
  for (const WorkerResult& r : o.results) {
    if (r.report.aborted || r.idle_replacement) continue;
    ++finishers;
    max_worker_repairs = std::max(max_worker_repairs, r.report.repairs);
    if (ref == nullptr && r.join_epoch < 0) ref = &r;
  }
  if (ref == nullptr) {
    violate("P0", "no founder finished (all aborted)");
    return out;  // nothing to compare against
  }

  for (const WorkerResult& r : o.results) {
    if (r.report.aborted || r.idle_replacement) continue;
    const bool joiner = r.join_epoch >= 0;

    // P1: exactly-once optimizer steps, planned from the cursor the
    // worker actually started at. Blocking joiners start at
    // {join_epoch, 0}; async joiners at the (possibly mid-epoch) step
    // boundary their splice landed on. Restore decisions re-execute the
    // rolled-back steps, which the report accounts explicitly — the
    // guarantee stays exact, not approximate.
    const int planned =
        sh.epochs * sh.steps_per_epoch -
        (r.start_epoch * sh.steps_per_epoch + r.start_step) +
        r.report.rollback_steps;
    if (r.report.steps_run != planned) {
      std::ostringstream os;
      os << "pid " << r.pid << (joiner ? " (joiner)" : "") << " ran "
         << r.report.steps_run << " steps, planned " << planned;
      violate("P1", os.str());
    }

    // P3: one shared view of the final membership.
    if (r.report.final_world != ref->report.final_world) {
      std::ostringstream os;
      os << "pid " << r.pid << " final_world " << r.report.final_world
         << " != pid " << ref->pid << "'s " << ref->report.final_world;
      violate("P3", os.str());
    }

    // P4: founders that finish still improved. 5% slack: a schedule can
    // shrink the membership hard enough that the last gradient is
    // noisier than the first.
    if (!joiner && !(r.report.last_loss < r.report.first_loss * 1.05f)) {
      std::ostringstream os;
      os << "pid " << r.pid << " loss " << r.report.first_loss << " -> "
         << r.report.last_loss;
      violate("P4", os.str());
    }

    // P2/P5: bit-identical replicas.
    if (&r != ref) {
      const char* oracle = joiner ? "P5" : "P2";
      if (r.report.final_params.size() != ref->report.final_params.size()) {
        std::ostringstream os;
        os << "pid " << r.pid << " has " << r.report.final_params.size()
           << " params, pid " << ref->pid << " has "
           << ref->report.final_params.size();
        violate(oracle, os.str());
      } else {
        for (size_t i = 0; i < r.report.final_params.size(); ++i) {
          if (r.report.final_params[i] != ref->report.final_params[i]) {
            std::ostringstream os;
            os << "pid " << r.pid << " param " << i << " = "
               << r.report.final_params[i] << " != pid " << ref->pid
               << "'s " << ref->report.final_params[i];
            violate(oracle, os.str());
            break;  // one divergent replica, one violation
          }
        }
      }
    }
  }

  // P3 bounds: membership can exceed the finisher count only by workers
  // that died after their last collective, and never the admitted total.
  if (ref->report.final_world < finishers ||
      ref->report.final_world > expected_workers) {
    std::ostringstream os;
    os << "final_world " << ref->report.final_world << " outside ["
       << finishers << ", " << expected_workers << "]";
    violate("P3", os.str());
  }

  // P6: every replayed op is at or above the MIN its repair agreed on.
  for (const trace::ReplayEvent& e : o.replay_events) {
    if (e.op_id < e.min_id) {
      std::ostringstream os;
      os << "pid " << e.pid << " replayed op " << e.op_id
         << " below agreed MIN " << e.min_id;
      violate("P6", os.str());
    }
  }

  // P7: counters, spans and reports must cohere.
  {
    std::ostringstream os;
    os << "repairs counter " << o.repairs_metric << ", repair spans "
       << o.repair_span_count << ", max worker repairs "
       << max_worker_repairs << ", replayed counter " << o.replayed_metric
       << ", replay events " << o.replay_events.size();
    const std::string ctx = os.str();
    // Every Repair() increments the counter once and records >= 1 span
    // (extra spans come from gpu-rebuild retry rounds).
    if (o.repair_span_count < static_cast<int>(o.repairs_metric)) {
      violate("P7", "spans fewer than repair increments (" + ctx + ")");
    }
    if (static_cast<int>(o.repairs_metric) < max_worker_repairs) {
      violate("P7", "counter below a worker's repair count (" + ctx + ")");
    }
    if ((o.repairs_metric > 0) != (o.repair_span_count > 0)) {
      violate("P7", "repairs counter and spans disagree on >0 (" + ctx + ")");
    }
    if (static_cast<size_t>(o.replayed_metric) != o.replay_events.size()) {
      violate("P7", "replayed counter != replay events (" + ctx + ")");
    }
  }

  // P9: decision-oracle soundness (policy campaigns only). Every logged
  // decision must (a) re-derive bitwise-identically from its own
  // broadcast inputs — the controller is a pure function of what it
  // observed, (b) choose a strategy whose modeled cost is within
  // tolerance of the best applicable alternative under the campaign's
  // mode, and (c) agree byte-for-byte across every member that took
  // part in the same decision seq.
  if (!sh.policy_mode.empty()) {
    policy::Mode mode = policy::Mode::kAdaptive;
    policy::ModeFromName(sh.policy_mode, &mode);
    std::map<int64_t, std::pair<int, std::string>> canon;  // seq -> pid,fmt
    for (const WorkerResult& r : o.results) {
      if (r.report.aborted || r.idle_replacement) continue;
      for (const policy::Decision& d : r.report.decisions) {
        const policy::Decision rd = policy::Decide(mode, d.in);
        if (rd.chosen != d.chosen ||
            std::memcmp(rd.cost, d.cost, sizeof(rd.cost)) != 0) {
          std::ostringstream os;
          os << "pid " << r.pid << " decision seq " << d.in.seq
             << " does not re-derive from its inputs (logged "
             << policy::StrategyName(d.chosen) << ", re-derived "
             << policy::StrategyName(rd.chosen) << ")";
          violate("P9", os.str());
          continue;
        }
        double best = -1.0;
        for (int si = 0; si < policy::kStrategyCount; ++si) {
          const auto s = static_cast<policy::Strategy>(si);
          if (!policy::Applicable(s, d.in)) continue;
          if (best < 0 || d.cost[si] < best) best = d.cost[si];
        }
        const double chosen_cost = d.cost[static_cast<int>(d.chosen)];
        const double tol = 1e-9 + 1e-9 * (best < 0 ? 0.0 : best);
        if (mode == policy::Mode::kAdaptive && best >= 0 &&
            chosen_cost > best + tol) {
          std::ostringstream os;
          os << "pid " << r.pid << " decision seq " << d.in.seq << " chose "
             << policy::StrategyName(d.chosen) << " at cost " << chosen_cost
             << " but best applicable alternative costs " << best;
          violate("P9", os.str());
        }
        const std::string fmt = policy::FormatDecision(d);
        auto [it, inserted] =
            canon.emplace(d.in.seq, std::make_pair(r.pid, fmt));
        if (!inserted && it->second.second != fmt) {
          std::ostringstream os;
          os << "decision seq " << d.in.seq << " differs between pid "
             << it->second.first << " and pid " << r.pid;
          violate("P9", os.str());
        }
      }
    }
  }

  return out;
}

}  // namespace rcc::chaos
