// Seeded schedule generator: draws a randomized campaign — run shape,
// Poisson background kills placed inside the estimated clean-run
// horizon, and adversarial phase-locked injections — from a single
// seed. Same seed + same config => byte-identical Schedule.
//
// Liveness by construction: the generator keeps at least two founders
// that no event can kill (counting node-scope collateral and the kNode
// drop policy's node peers as doomed), so every generated campaign has
// survivors to finish training, complete every expand, and report.
#pragma once

#include <cstdint>

#include "chaos/schedule.h"

namespace rcc::chaos {

struct GenConfig {
  int min_world = 3;
  int max_world = 6;
  int max_timed = 3;        // cap on background kills per campaign
  int max_phased = 2;       // cap on phase-locked injections
  double rate_scale = 1.0;  // scales the expected background-kill count
  bool allow_node_scope = true;
  // Opt-in: campaigns with scheduled joins may route them through the
  // nonblocking admission protocol and land kills inside its in-flight
  // phases (joiner dies while staging, survivor dies mid-splice). Off by
  // default so pre-async seeds keep generating byte-identical schedules.
  bool allow_async = false;
  // Opt-in: some campaigns run the serving plane (continuous-batching
  // ServingDriver + standby autoscaling) instead of the trainer. Off by
  // default so pre-serving seeds keep generating byte-identical
  // schedules — the serving draws happen strictly after every other
  // draw.
  bool allow_serving = false;
  // Opt-in: trainer campaigns run under the online adaptive recovery
  // policy (src/policy) with a small replacement pool, across a drawn
  // failure-rate regime (quiet / moderate / hostile) so the decision
  // controller is exercised over distinct MTBF conditions. Off by
  // default so pre-policy seeds keep generating byte-identical
  // schedules — the policy draws happen strictly after every other
  // draw.
  bool allow_policy = false;
  // Mode stamped on policy campaigns ("adaptive"/"shrink"/"wait"/
  // "async"/"restore"); benches sweep this to compare the controller
  // against each forced static strategy on identical schedules.
  std::string policy_mode = "adaptive";
  // Opt-in: campaigns run the hybrid-parallel PipelineTrainer
  // (DP x PP x TP grid, 1F1B schedule, ReCycle-style re-routing)
  // instead of the data-parallel trainer. Off by default so
  // pre-pipeline seeds keep generating byte-identical schedules — the
  // pipeline draws happen strictly after every other draw.
  bool allow_pp = false;
  // Seed format stamped on generated schedules (1 = threads replay,
  // 2 = fibers replay; see chaos/schedule.h). Does not consume RNG
  // draws, so format-1 generation stays byte-identical to older builds.
  int format = 1;

  // Reads the RCC_CHAOS_* knobs (MIN_WORLD, MAX_WORLD, MAX_TIMED,
  // MAX_PHASED, RATE, NODE_SCOPE, ASYNC, SERVE, POLICY — the last also
  // honoring RCC_POLICY for the mode — and PP) over the defaults
  // above, and stamps `format` 2 when RCC_SIM_ENGINE resolves to
  // fibers.
  static GenConfig FromEnv();
};

Schedule GenerateSchedule(uint64_t seed, const GenConfig& cfg = GenConfig{});

}  // namespace rcc::chaos
