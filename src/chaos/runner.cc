#include "chaos/runner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>

#include "kvstore/kvstore.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "sim/failure.h"

namespace rcc::chaos {

namespace {

// A phase-locked injection in flight: victim entry counting is per
// trigger (pk.victim fixed), so `count` tracks how many times the victim
// has entered the phase — deterministic in the victim's program order.
struct Trigger {
  PhaseKill pk;
  std::atomic<int> count{0};
  explicit Trigger(const PhaseKill& p) : pk(p) {}
};

}  // namespace

// Deterministic serving configuration for a serving-shape campaign.
serve::ServeOptions ServeOptionsFromSchedule(const Schedule& s) {
  const Shape& sh = s.shape;
  serve::ServeOptions o;
  o.traffic.seed = s.seed + 1;  // decoupled from the kill-placement rng
  o.traffic.requests = sh.serve_requests < 8 ? 8 : sh.serve_requests;
  o.traffic.base_rps = sh.serve_rps > 0 ? sh.serve_rps : 50.0;
  o.traffic.min_prompt = 4;
  o.traffic.max_prompt = 8;
  o.traffic.min_decode = 4;
  o.traffic.max_decode = 8;
  o.max_batch = sh.serve_max_batch < 2 ? 2 : sh.serve_max_batch;
  o.hidden = 64;
  o.model_bytes = 1e6;
  o.policy = sh.policy;
  o.autoscale.enabled = true;
  o.autoscale.queue_high = 6;
  o.autoscale.queue_low = 1;
  o.autoscale.low_steps = 16;
  o.autoscale.cooldown_steps = 8;
  o.autoscale.min_world = 2;
  o.autoscale.standby_pool = sh.serve_standbys;
  o.session = "serve-chaos";
  return o;
}

CampaignOutcome RunSchedule(const Schedule& schedule) {
  // Fresh flight rings per schedule: a post-abort dump then holds only
  // this reproducer's history, not the whole campaign's. The metrics
  // registry is reset with them: the policy inputs read the failure
  // counter and the recovery-phase maxima, and those must be
  // campaign-local for a schedule to replay to a byte-identical
  // decision log in a process that already ran other campaigns.
  obs::flight::ResetAll();
  obs::Registry::Global().ResetAll();
  const Shape& sh = schedule.shape;
  sim::SimConfig cfg;
  cfg.gpus_per_node = sh.gpus_per_node;
  // The replay engine is pinned by the seed format, NOT by RCC_SIM_ENGINE:
  // a format-1 reproducer replays byte-identically on the threads backend
  // forever, and a format-2 one on the fibers event queue.
  cfg.engine = schedule.format >= 2 ? sim::EngineKind::kFibers
                                    : sim::EngineKind::kThreads;
  // Serving replicas warm-start: the weights arrive via the admission
  // protocol's background staging, not a full framework cold boot, so a
  // standby can realistically splice inside a serving campaign horizon.
  if (sh.serving) cfg.costs.worker_coldstart = 0.25;
  // Virtual-time compute inflation (policy bench): slows the simulated
  // GPU so step time matches paper-scale models; real time is unchanged.
  if (sh.compute_scale > 1.0) cfg.net.gpu_flops /= sh.compute_scale;
  sim::Cluster cluster(cfg);
  dnn::ClusterDataset data(8, 3, 512, 7);

  core::TrainerOptions opts;
  opts.epochs = sh.epochs;
  opts.steps_per_epoch = sh.steps_per_epoch;
  opts.grad_buckets = sh.grad_buckets;
  opts.inflight_window = sh.inflight_window;
  opts.drop_policy = sh.policy;
  opts.joins = sh.joins;
  kv::Store store;
  if (sh.async_admission) {
    opts.async_admission = true;
    opts.admission_store = &store;
  }
  // Adaptive recovery policy: thread the mode + rendezvous store +
  // replacement pool into every trainer (founders, joiners and
  // replacements all tick collectively).
  policy::Mode pmode = policy::Mode::kLegacy;
  if (!sh.policy_mode.empty()) {
    if (!policy::ModeFromName(sh.policy_mode, &pmode)) {
      pmode = policy::Mode::kAdaptive;
    }
  }
  const bool policy_on = pmode != policy::Mode::kLegacy && !sh.serving;
  if (policy_on) {
    opts.policy_mode = pmode;
    opts.policy_store = &store;
    opts.replacement_pool = sh.replacements;
  }

  std::vector<std::atomic<bool>> flags(0);  // no scripted failures

  trace::Recorder rec;
  std::deque<Trigger> triggers;
  for (const PhaseKill& pk : schedule.phased) triggers.emplace_back(pk);
  rec.SetPhaseStartHook(
      [&triggers](sim::Endpoint& ep, const std::string& phase) {
        for (Trigger& t : triggers) {
          if (t.pk.victim != ep.pid() || t.pk.phase != phase) continue;
          const int c = t.count.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (c == t.pk.occurrence) ep.ArmKillAt(ep.now() + t.pk.delay);
        }
      });

  // Timed kills go through the pending-failure list *before* any spawn:
  // founders are armed at registration (before their threads start) and
  // late-spawned joiners are armed the moment they register — no
  // real-time race between arming and victim progress.
  for (const TimedKill& k : schedule.timed) {
    cluster.AddPendingFailure(sim::FailureEvent{k.scope, k.target, k.at});
  }

  auto& reg = obs::Registry::Global();
  const double repairs0 = reg.CounterValue("rcc_recovery_repairs_total");
  const double replayed0 = reg.CounterValue("rcc_recovery_replayed_ops_total");

  std::vector<int> pids(sh.world);
  std::iota(pids.begin(), pids.end(), 0);
  std::mutex mu;
  std::vector<WorkerResult> results;

  // Joins the cluster and assembles the outcome; shared by the serving
  // and trainer campaign paths.
  auto finalize = [&]() {
    cluster.Join();
    rec.SetPhaseStartHook(nullptr);
    CampaignOutcome out;
    out.results = std::move(results);
    // Thread completion order is real-time; pid order is the
    // deterministic stream the oracles and determinism tests consume.
    std::sort(out.results.begin(), out.results.end(),
              [](const WorkerResult& a, const WorkerResult& b) {
                return a.pid < b.pid;
              });
    for (const WorkerResult& r : out.results) {
      out.horizon = std::max(out.horizon, r.end_time);
    }
    out.repairs_metric =
        reg.CounterValue("rcc_recovery_repairs_total") - repairs0;
    out.replayed_metric =
        reg.CounterValue("rcc_recovery_replayed_ops_total") - replayed0;
    out.repair_span_count = static_cast<int>(
        rec.EventsForPhase(std::string("recovery/") +
                           horovod::phase::kUlfmRepair)
            .size());
    out.replay_events = rec.replay_events();
    std::sort(out.replay_events.begin(), out.replay_events.end(),
              [](const trace::ReplayEvent& a, const trace::ReplayEvent& b) {
                return a.pid != b.pid ? a.pid < b.pid : a.op_id < b.op_id;
              });
    return out;
  };

  if (sh.serving) {
    // Serving-plane campaign: founders drive the continuous batcher over
    // the same resilient substrate; standbys park on the autoscaler's
    // kvstore keys and join through the async admission when queue
    // pressure opens an expand.
    serve::ServeOptions so = ServeOptionsFromSchedule(schedule);
    so.store = &store;
    cluster.Spawn(sh.world, [&, so](sim::Endpoint& ep) {
      core::ResilientComm rc(ep, pids, so.policy, &rec);
      serve::ServingDriver driver(&rc, so);
      WorkerResult r;
      r.pid = ep.pid();
      r.serve = driver.Run();
      r.report.aborted = r.serve.aborted;
      if (r.serve.aborted) obs::flight::DumpOnAbort();
      if (r.serve.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
      r.end_time = ep.now();
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(r));
    });
    for (int i = 0; i < sh.serve_standbys; ++i) {
      cluster.SpawnOnFreshNodes(
          1,
          [&, so, i](sim::Endpoint& ep) {
            WorkerResult r;
            r.pid = ep.pid();
            r.join_epoch = 0;  // standby: a (potential) joiner worker
            r.serve = serve::ServingDriver::RunStandbyJoiner(ep, &store, so,
                                                             i, &rec);
            r.report.aborted = r.serve.aborted;
            if (r.serve.aborted) obs::flight::DumpOnAbort();
            if (r.serve.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
            r.end_time = ep.now();
            std::lock_guard<std::mutex> lock(mu);
            results.push_back(std::move(r));
          },
          /*start_time=*/0.0);
    }
    return finalize();
  }

  if (sh.pipeline) {
    // Hybrid-parallel pipeline campaign: every founder runs the
    // PipelineTrainer over the DP x PP x TP grid. All recovery
    // (re-route / shrink / restore) happens inside the world — no
    // joiner or replacement workers apply here.
    core::PipelineOptions po;
    po.dims.dp = 0;  // derive dp from the founding world
    po.dims.pp = sh.pp_stages > 0 ? sh.pp_stages : 2;
    po.dims.tp = sh.tp_size > 0 ? sh.tp_size : 1;
    po.microbatches = sh.pp_microbatches > 0 ? sh.pp_microbatches : 8;
    po.steps = sh.epochs * sh.steps_per_epoch;
    po.checkpoint_interval = std::max(1, sh.steps_per_epoch);
    po.policy_mode = policy_on ? pmode : policy::Mode::kAdaptive;
    cluster.Spawn(sh.world, [&, po](sim::Endpoint& ep) {
      core::ResilientComm rc(ep, pids, sh.policy, &rec);
      core::PipelineTrainer trainer(&rc, po);
      WorkerResult r;
      r.pid = ep.pid();
      r.pipe = trainer.Run();
      r.report.aborted = r.pipe.aborted;
      if (r.pipe.aborted) obs::flight::DumpOnAbort();
      if (r.pipe.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
      r.end_time = ep.now();
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(r));
    });
    return finalize();
  }

  cluster.Spawn(sh.world, [&](sim::Endpoint& ep) {
    dnn::Model model = dnn::BuildMlp(8, {12}, 3, /*seed=*/99);
    dnn::Sgd opt(model.Params(), opts.sgd);
    core::ResilientComm rc(ep, pids, opts.drop_policy, &rec);
    core::ElasticTrainer trainer(&rc, &model, &opt, &data, opts, &flags);
    WorkerResult r;
    r.pid = ep.pid();
    r.report = trainer.Run();
    // A worker that aborts while its endpoint is still alive has exited
    // the job (e.g. an unrecoverable state-sync error): peers must
    // observe a process failure, not block forever on a silent leaver.
    if (r.report.aborted) obs::flight::DumpOnAbort();
    if (r.report.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
    r.end_time = ep.now();
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(std::move(r));
  });

  for (const auto& [epoch, count] : sh.joins) {
    cluster.SpawnOnFreshNodes(
        count,
        [&, epoch, count](sim::Endpoint& ep) {
          WorkerResult r;
          r.pid = ep.pid();
          r.join_epoch = epoch;
          dnn::Model model = dnn::BuildMlp(8, {12}, 3, /*seed=*/99);
          dnn::Sgd opt(model.Params(), opts.sgd);
          checkpoint::TrainingCursor cursor;
          std::unique_ptr<core::ResilientComm> rc;
          Status synced;
          bool async_path = sh.async_admission;
          if (policy_on) {
            // The members decide wait-vs-async at the boundary and
            // publish the path; a provisioned joiner reads it before
            // picking its admission protocol.
            // Blocking kv wait, NOT a poll: the joiner's virtual clock
            // merges with the members' publication time, so the
            // rendezvous stays deterministic under the threads engine
            // (a poll loop would race its own clock ahead in real time).
            auto path = store.Wait(&ep, "policy/join/" + std::to_string(epoch));
            if (path.ok()) {
              async_path = std::string(path.value().begin(),
                                       path.value().end()) == "async";
            }
          }
          if (async_path) {
            // Nonblocking path: stage the published snapshot through the
            // kvstore while the survivors train, then park for the
            // splice and run the catch-up delta sync.
            rc = core::ResilientComm::JoinAsync(
                ep, &store, "trainer-epoch" + std::to_string(epoch),
                opts.drop_policy, &rec,
                [&](const std::vector<uint8_t>& blob) -> Status {
                  checkpoint::Snapshot snap;
                  snap.blob = blob;
                  return checkpoint::Restore(snap, &model, &opt, &cursor);
                });
            if (rc != nullptr) {
              // Contribute the staged snapshot's global-step position
              // (NOT zero: the agreed spread against the survivors'
              // positions prices the catch-up delta).
              synced = core::ElasticTrainer::DeltaSync(
                  rc.get(), &model, &opt, &cursor, /*receiver=*/true,
                  static_cast<uint64_t>(cursor.epoch) * opts.steps_per_epoch +
                      cursor.step);
            }
          } else {
            rc = core::ResilientComm::JoinExisting(
                ep, "trainer-epoch" + std::to_string(epoch), count,
                opts.drop_policy, &rec);
            if (rc != nullptr) {
              synced = core::ElasticTrainer::SyncState(rc.get(), &model,
                                                       &opt, &cursor, true);
            }
          }
          r.joined_ok = rc != nullptr;
          if (rc == nullptr || !synced.ok()) {
            r.report.aborted = true;
          } else {
            r.start_epoch = cursor.epoch;
            r.start_step = cursor.step;
            core::ElasticTrainer trainer(rc.get(), &model, &opt, &data,
                                         opts, &flags);
            r.report = trainer.Run(cursor, /*joined_at_epoch=*/cursor.epoch);
          }
          // Same exit-is-a-failure rule as the founders: an aborted
          // joiner still registered in the fabric must die visibly.
          if (r.report.aborted) obs::flight::DumpOnAbort();
          if (r.report.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
          r.end_time = ep.now();
          std::lock_guard<std::mutex> lock(mu);
          results.push_back(std::move(r));
        },
        /*start_time=*/0.0);
  }

  // Replacement pool: one parked worker per policy slot. Each polls its
  // slot key until the controller consumes the slot (wait/async
  // admission), the run releases it ("done"), or the deadline passes.
  if (policy_on) {
    for (int slot = 0; slot < sh.replacements; ++slot) {
      cluster.SpawnOnFreshNodes(
          1,
          [&, slot](sim::Endpoint& ep) {
            WorkerResult r;
            r.pid = ep.pid();
            r.join_epoch = 0;  // a (potential) joiner worker
            // Park on the slot key with a blocking kv wait (same
            // deterministic-rendezvous reasoning as the joiner path;
            // the serving standbys park the same way). The run always
            // publishes a terminal value: a consumption ("wait:"/
            // "async:") or the end-of-run "done" release.
            std::string val;
            auto res =
                store.Wait(&ep, "policy/replace/" + std::to_string(slot));
            if (res.ok()) {
              val.assign(res.value().begin(), res.value().end());
            }
            if (val.empty() || val == "done") {
              r.idle_replacement = true;
            } else {
              const bool async_path = val.rfind("async:", 0) == 0;
              const std::string session =
                  val.substr(val.find(':') + 1);
              dnn::Model model = dnn::BuildMlp(8, {12}, 3, /*seed=*/99);
              dnn::Sgd opt(model.Params(), opts.sgd);
              checkpoint::TrainingCursor cursor;
              std::unique_ptr<core::ResilientComm> rc;
              Status synced;
              if (async_path) {
                rc = core::ResilientComm::JoinAsync(
                    ep, &store, session, opts.drop_policy, &rec,
                    [&](const std::vector<uint8_t>& blob) -> Status {
                      checkpoint::Snapshot snap;
                      snap.blob = blob;
                      return checkpoint::Restore(snap, &model, &opt,
                                                 &cursor);
                    });
                if (rc != nullptr) {
                  // Snapshot position, not zero — see the scheduled-join
                  // site above.
                  synced = core::ElasticTrainer::DeltaSync(
                      rc.get(), &model, &opt, &cursor, /*receiver=*/true,
                      static_cast<uint64_t>(cursor.epoch) *
                              opts.steps_per_epoch +
                          cursor.step);
                }
              } else {
                rc = core::ResilientComm::JoinExisting(
                    ep, session, 1, opts.drop_policy, &rec);
                if (rc != nullptr) {
                  synced = core::ElasticTrainer::SyncState(
                      rc.get(), &model, &opt, &cursor, /*receiver=*/true);
                }
              }
              r.joined_ok = rc != nullptr;
              if (rc == nullptr || !synced.ok()) {
                r.report.aborted = true;
              } else {
                r.start_epoch = cursor.epoch;
                r.start_step = cursor.step;
                core::ElasticTrainer trainer(rc.get(), &model, &opt,
                                             &data, opts, &flags);
                // joined_at_epoch -1 (not cursor.epoch): a replacement
                // spliced exactly at an epoch boundary must participate
                // in that boundary's scheduled-join collectives, unlike
                // a scheduled joiner admitted there.
                r.report = trainer.Run(cursor, /*joined_at_epoch=*/-1);
              }
              if (r.report.aborted) obs::flight::DumpOnAbort();
              if (r.report.aborted && ep.alive()) {
                ep.fabric().Kill(ep.pid());
              }
            }
            r.end_time = ep.now();
            std::lock_guard<std::mutex> lock(mu);
            results.push_back(std::move(r));
          },
          /*start_time=*/0.0);
    }
  }

  return finalize();
}

double EstimateHorizon(const Schedule& schedule) {
  Schedule clean = schedule;
  clean.timed.clear();
  clean.phased.clear();
  return RunSchedule(clean).horizon;
}

}  // namespace rcc::chaos
