#include "chaos/shrink.h"

#include <utility>

#include "chaos/runner.h"

namespace rcc::chaos {

namespace {

struct Search {
  std::string oracle;
  int runs = 0;
  int max_runs = 0;

  bool Budget() const { return runs < max_runs; }

  // One deterministic trial; true iff the pinned violation reproduces.
  bool Violates(const Schedule& s, std::vector<Violation>* out) {
    ++runs;
    std::vector<Violation> v = CheckOracles(s, RunSchedule(s));
    const bool hit = HasViolation(v, oracle);
    if (hit && out != nullptr) *out = std::move(v);
    return hit;
  }
};

}  // namespace

ShrinkResult ShrinkSchedule(const Schedule& initial, const std::string& oracle,
                            int max_runs) {
  Search search{oracle, 0, max_runs};
  ShrinkResult best;
  best.schedule = initial;
  // Re-verify the starting point so `violations` always matches
  // `schedule`; a non-reproducing input returns unchanged.
  if (!search.Violates(initial, &best.violations)) {
    best.runs = search.runs;
    return best;
  }

  // Phase 1: ddmin-style greedy removal to a fixpoint. One event at a
  // time keeps every trial meaningful for event lists this small.
  bool removed = true;
  while (removed && search.Budget()) {
    removed = false;
    for (size_t i = 0; i < best.schedule.timed.size() && search.Budget();) {
      Schedule trial = best.schedule;
      trial.timed.erase(trial.timed.begin() + static_cast<long>(i));
      if (search.Violates(trial, &best.violations)) {
        best.schedule = std::move(trial);
        removed = true;
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < best.schedule.phased.size() && search.Budget();) {
      Schedule trial = best.schedule;
      trial.phased.erase(trial.phased.begin() + static_cast<long>(i));
      if (search.Violates(trial, &best.violations)) {
        best.schedule = std::move(trial);
        removed = true;
      } else {
        ++i;
      }
    }
  }

  // Phase 2: bisect each surviving injection time toward the earliest
  // still-violating point (canonicalizes the reproducer; violations are
  // not monotone in time, so this is a bounded heuristic descent).
  for (size_t i = 0; i < best.schedule.timed.size(); ++i) {
    double lo = 0.0;
    double hi = best.schedule.timed[i].at;
    for (int round = 0; round < 6 && search.Budget(); ++round) {
      const double mid = 0.5 * (lo + hi);
      if (mid == hi) break;
      Schedule trial = best.schedule;
      trial.timed[i].at = mid;
      if (search.Violates(trial, &best.violations)) {
        best.schedule = std::move(trial);
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  // Phase 3: collapse phase injections to their simplest form.
  for (size_t i = 0; i < best.schedule.phased.size(); ++i) {
    if (best.schedule.phased[i].occurrence > 1 && search.Budget()) {
      Schedule trial = best.schedule;
      trial.phased[i].occurrence = 1;
      if (search.Violates(trial, &best.violations)) {
        best.schedule = std::move(trial);
      }
    }
    if (best.schedule.phased[i].delay != 0.0 && search.Budget()) {
      Schedule trial = best.schedule;
      trial.phased[i].delay = 0.0;
      if (search.Violates(trial, &best.violations)) {
        best.schedule = std::move(trial);
      }
    }
  }

  best.runs = search.runs;
  return best;
}

}  // namespace rcc::chaos
