// Chaos schedule: one seeded failure campaign against the elastic
// trainer, fully determined by this value. Every kill is executed as a
// virtual-time *self*-kill on the victim's own task (sim/endpoint.h),
// so a schedule replays byte-identically regardless of host thread
// scheduling:
//
//  - TimedKill arms the victim (or every process of a node) before the
//    run starts, via the cluster's pending-failure list, so processes
//    spawned later (joiners) are armed too.
//  - PhaseKill arms the victim when it *enters* a protocol phase for
//    the k-th time (trace::Recorder phase-start hook), which is how the
//    fuzzer lands failures inside the recovery machinery itself:
//    mid-revoke, mid-agree, mid-shrink, mid-replay, mid-join. Phase
//    kills are process-scope only — killing node peers from another
//    task's hook would reintroduce real-time races. Under the kNode
//    drop policy the victim's node peers still leave with it.
//
// Schedules serialize to JSON (doubles at %.17g, so FromJson(ToJson(s))
// round-trips exactly) for reproducer artifacts and --replay.
//
// Seed-format versioning: `format` names the engine backend the
// schedule's deterministic replay is pinned to. Format 1 (the original)
// replays on the `threads` backend and serializes byte-identically to
// pre-versioned reproducers (no "format" field emitted). Format 2
// replays on the `fibers` discrete-event backend, whose event ordering
// (virtual time, pid, spawn sequence) differs from the threads
// backend's real-time interleavings, so the two formats' outcome
// streams are each self-deterministic but not comparable across
// formats. RunSchedule selects the engine from the format, never from
// the environment, so a reproducer replays identically anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "horovod/plan.h"
#include "sim/failure.h"

namespace rcc::chaos {

// Run shape: the trainer configuration the campaign executes against.
struct Shape {
  int world = 4;
  int epochs = 2;
  int steps_per_epoch = 4;
  int grad_buckets = 4;
  int inflight_window = 2;  // 0 = blocking per-bucket allreduce
  int gpus_per_node = 2;
  horovod::DropPolicy policy = horovod::DropPolicy::kProcess;
  std::map<int, int> joins;  // epoch -> joiners admitted at its start
  // Route the scheduled joins through the nonblocking admission protocol
  // (kvstore staging + step-boundary splice) instead of the blocking
  // expand. Absent in pre-async reproducer JSON; defaults to false.
  bool async_admission = false;
  // Serving-plane campaign (opt-in via RCC_CHAOS_SERVE): the run drives
  // the continuous-batching ServingDriver instead of the elastic
  // trainer — epochs/steps/buckets/joins are ignored and the fields
  // below shape the traffic. `serve_standbys` workers park on the
  // autoscaler's standby keys and are admitted by queue pressure.
  // Absent in pre-serving reproducer JSON; defaults keep it off.
  bool serving = false;
  int serve_requests = 0;
  double serve_rps = 0.0;
  int serve_max_batch = 0;
  int serve_standbys = 0;
  // Adaptive recovery policy campaign (opt-in via RCC_CHAOS_POLICY):
  // the trainer runs under this policy mode ("adaptive"/"shrink"/
  // "wait"/"async"/"restore"; empty = legacy, policy off) with
  // `replacements` provisioned replacement workers parked on the
  // policy slot keys. Absent in pre-policy reproducer JSON; defaults
  // keep it off.
  std::string policy_mode;
  int replacements = 0;
  // Hybrid-parallel pipeline campaign (opt-in via RCC_CHAOS_PP): the
  // run drives the PipelineTrainer (DP x PP x TP grid + 1F1B schedule)
  // instead of the data-parallel elastic trainer. `pp_stages`/`tp_size`
  // fix the pipeline and tensor dimensions (dp derives from the world),
  // `pp_microbatches` the per-step microbatch count. Joins/async/serving
  // are cleared on pipeline campaigns. Absent in pre-pipeline
  // reproducer JSON; defaults keep it off.
  bool pipeline = false;
  int pp_stages = 0;
  int tp_size = 0;
  int pp_microbatches = 0;
  // Per-step compute inflation: divides the simulated GPU flop rate so
  // a campaign's virtual step time matches paper-scale models instead
  // of the micro MLP the runner trains. Purely a virtual-time knob
  // (free in real time); the policy bench uses it to make recovery
  // economics meaningful within one campaign. Absent in older
  // reproducer JSON; defaults to 1 (no inflation).
  double compute_scale = 1.0;
};

// Background failure: the target self-kills when its clock reaches `at`.
struct TimedKill {
  sim::FailScope scope = sim::FailScope::kProcess;
  int target = 0;    // pid (kProcess) or node id (kNode)
  double at = 0.0;   // virtual seconds
};

// Adversarial point injection: when `victim` enters `phase` for the
// `occurrence`-th time (1-based), it arms a self-kill `delay` virtual
// seconds later. A phase the victim never enters never fires.
struct PhaseKill {
  int victim = 0;
  std::string phase;
  int occurrence = 1;
  double delay = 0.0;
};

struct Schedule {
  uint64_t seed = 0;  // provenance only; the events below are the truth
  // Engine the replay is pinned to: 1 = threads, 2 = fibers (see the
  // header comment). Absent in pre-versioned JSON; defaults to 1.
  int format = 1;
  Shape shape;
  std::vector<TimedKill> timed;
  std::vector<PhaseKill> phased;

  int EventCount() const {
    return static_cast<int>(timed.size() + phased.size());
  }

  std::string ToJson() const;
  // Strict parse; on failure returns false with a description in *error.
  static bool FromJson(const std::string& text, Schedule* out,
                       std::string* error);
};

bool operator==(const Shape& a, const Shape& b);
bool operator==(const TimedKill& a, const TimedKill& b);
bool operator==(const PhaseKill& a, const PhaseKill& b);
bool operator==(const Schedule& a, const Schedule& b);

}  // namespace rcc::chaos
