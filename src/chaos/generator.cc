#include "chaos/generator.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>

#include "chaos/runner.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/sampling.h"
#include "sim/engine.h"

namespace rcc::chaos {

namespace {

using common::EnvDouble;
using common::EnvInt;

// Protocol spans a victim can be caught inside. Founding bootstrap
// (init/) always runs; the recovery/ spans fire only on campaigns whose
// background kills (or joins, for ulfm_expand) reach them — an unfired
// trigger is a no-op, not an error.
const char* const kPhaseMenu[] = {
    "recovery/ulfm_repair",      // mid-repair (cascading second failure)
    "recovery/revoke",           // mid-revoke
    "recovery/agree",            // mid-agree
    "recovery/shrink",           // mid-shrink
    "recovery/retry_collective", // mid-replay
    "recovery/ulfm_expand",      // mid-join (survivor or joiner side)
    "recovery/nccl_reinit",      // mid-GPU-rebuild
    "init/nccl_reinit",          // mid-founding-bootstrap
};
constexpr int kPhaseMenuSize =
    static_cast<int>(sizeof(kPhaseMenu) / sizeof(kPhaseMenu[0]));

// Founders a schedule's events can kill, counting collateral: a
// node-scope kill takes the whole node, and under the kNode drop policy
// a process kill makes its node peers leave too.
std::set<int> DoomedFounders(const Schedule& s) {
  const Shape& sh = s.shape;
  std::set<int> doomed;
  auto doom_pid = [&](int pid) {
    if (pid < 0 || pid >= sh.world) return;  // joiners don't count here
    doomed.insert(pid);
    if (sh.policy == horovod::DropPolicy::kNode) {
      const int node = pid / sh.gpus_per_node;
      for (int p = 0; p < sh.world; ++p) {
        if (p / sh.gpus_per_node == node) doomed.insert(p);
      }
    }
  };
  for (const TimedKill& k : s.timed) {
    if (k.scope == sim::FailScope::kNode) {
      for (int p = 0; p < sh.world; ++p) {
        if (p / sh.gpus_per_node == k.target) doomed.insert(p);
      }
    } else {
      doom_pid(k.target);
    }
  }
  for (const PhaseKill& k : s.phased) doom_pid(k.victim);
  return doomed;
}

}  // namespace

GenConfig GenConfig::FromEnv() {
  GenConfig cfg;
  cfg.min_world = EnvInt("RCC_CHAOS_MIN_WORLD", cfg.min_world);
  cfg.max_world = EnvInt("RCC_CHAOS_MAX_WORLD", cfg.max_world);
  cfg.max_timed = EnvInt("RCC_CHAOS_MAX_TIMED", cfg.max_timed);
  cfg.max_phased = EnvInt("RCC_CHAOS_MAX_PHASED", cfg.max_phased);
  cfg.rate_scale = EnvDouble("RCC_CHAOS_RATE", cfg.rate_scale);
  cfg.allow_node_scope =
      EnvInt("RCC_CHAOS_NODE_SCOPE", cfg.allow_node_scope ? 1 : 0) != 0;
  cfg.allow_async = EnvInt("RCC_CHAOS_ASYNC", cfg.allow_async ? 1 : 0) != 0;
  cfg.allow_serving =
      EnvInt("RCC_CHAOS_SERVE", cfg.allow_serving ? 1 : 0) != 0;
  cfg.allow_policy =
      EnvInt("RCC_CHAOS_POLICY", cfg.allow_policy ? 1 : 0) != 0;
  cfg.allow_pp = EnvInt("RCC_CHAOS_PP", cfg.allow_pp ? 1 : 0) != 0;
  if (const char* m = std::getenv("RCC_POLICY"); m != nullptr && *m != '\0') {
    cfg.policy_mode = m;
  }
  cfg.format =
      sim::ResolveEngineKind(sim::EngineKind::kAuto) == sim::EngineKind::kFibers
          ? 2
          : 1;
  return cfg;
}

Schedule GenerateSchedule(uint64_t seed, const GenConfig& cfg) {
  Rng rng(seed, /*stream=*/0xC4A05);
  Schedule s;
  s.seed = seed;
  s.format = cfg.format;
  Shape& sh = s.shape;

  const int world_span = std::max(1, cfg.max_world - cfg.min_world + 1);
  sh.world = cfg.min_world + static_cast<int>(rng.NextBelow(world_span));
  sh.epochs = 2 + static_cast<int>(rng.NextBelow(2));           // 2..3
  sh.steps_per_epoch = 3 + static_cast<int>(rng.NextBelow(2));  // 3..4
  const int bucket_menu[] = {1, 2, 4};
  sh.grad_buckets = bucket_menu[rng.NextBelow(3)];
  sh.inflight_window = static_cast<int>(rng.NextBelow(5));      // 0..4
  sh.gpus_per_node = 2 + static_cast<int>(rng.NextBelow(2));    // 2..3
  sh.policy = cfg.allow_node_scope && rng.NextBelow(4) == 0
                  ? horovod::DropPolicy::kNode
                  : horovod::DropPolicy::kProcess;
  if (rng.NextDouble() < 0.5) {
    const int join_epoch = 1 + static_cast<int>(rng.NextBelow(sh.epochs - 1));
    sh.joins[join_epoch] = 1 + static_cast<int>(rng.NextBelow(2));
  }

  // Clean-run virtual completion time bounds the kill window; the
  // estimate is itself a deterministic simulation of this shape.
  const double horizon = EstimateHorizon(s);
  const int nodes = (sh.world + sh.gpus_per_node - 1) / sh.gpus_per_node;

  // Poisson background kills over [5%, 95%] of the horizon, drawn from
  // the shared audited sampler (common/sampling.h). PoissonProcess does
  // exactly one rng draw per Next(), matching the historical inline
  // loop, so pre-existing seeds keep producing byte-identical schedules.
  const double expected_kills = 1.3 * cfg.rate_scale;
  const double window = 0.9 * horizon;
  if (window > 0 && expected_kills > 0) {
    PoissonProcess arrivals(&rng, expected_kills / window, 0.05 * horizon);
    for (;;) {
      const double t = arrivals.Next();
      if (t >= 0.95 * horizon ||
          static_cast<int>(s.timed.size()) >= cfg.max_timed) {
        break;
      }
      TimedKill k;
      const int victim = static_cast<int>(rng.NextBelow(sh.world));
      if (cfg.allow_node_scope && rng.NextBelow(4) == 0) {
        k.scope = sim::FailScope::kNode;
        k.target = victim / sh.gpus_per_node;
      } else {
        k.scope = sim::FailScope::kProcess;
        k.target = victim;
      }
      k.at = t;
      s.timed.push_back(k);
    }
  }

  // Adversarial phase-locked injections.
  int total_joiners = 0;
  for (const auto& [epoch, count] : sh.joins) total_joiners += count;
  const int n_phased =
      cfg.max_phased > 0 ? static_cast<int>(rng.NextBelow(cfg.max_phased + 1))
                         : 0;
  for (int i = 0; i < n_phased; ++i) {
    PhaseKill k;
    // Mostly founders; occasionally a joiner (joiner pids continue after
    // the founders in spawn order).
    if (total_joiners > 0 && rng.NextBelow(3) == 0) {
      k.victim = sh.world + static_cast<int>(rng.NextBelow(total_joiners));
    } else {
      k.victim = static_cast<int>(rng.NextBelow(sh.world));
    }
    k.phase = kPhaseMenu[rng.NextBelow(kPhaseMenuSize)];
    k.occurrence = 1 + static_cast<int>(rng.NextBelow(2));
    k.delay = rng.NextBelow(2) == 0 ? 0.0 : rng.NextDouble() * 2e-3;
    s.phased.push_back(k);
  }

  // A recovery-phase trigger with nothing to recover from never fires;
  // give lone injections a background kill to cascade off.
  if (s.timed.empty() && !s.phased.empty() && sh.joins.empty() &&
      horizon > 0) {
    TimedKill k;
    k.scope = sim::FailScope::kProcess;
    k.target = static_cast<int>(rng.NextBelow(sh.world));
    k.at = 0.05 * horizon + rng.NextDouble() * 0.9 * horizon;
    s.timed.push_back(k);
  }

  // Async-admission campaigns (opt-in). Drawn strictly after every
  // pre-existing draw so that with allow_async off the rng stream — and
  // therefore every old seed's schedule — is byte-identical.
  if (cfg.allow_async && total_joiners > 0 && rng.NextBelow(2) == 0) {
    sh.async_admission = true;
    // Optionally land a kill inside the admission itself: the joiner
    // mid-staging, or a survivor at the splice point.
    const int inject = static_cast<int>(rng.NextBelow(3));
    if (inject > 0) {
      PhaseKill k;
      if (inject == 1) {
        k.victim =
            sh.world + static_cast<int>(rng.NextBelow(total_joiners));
        k.phase = "recovery/state_stage";
      } else {
        k.victim = static_cast<int>(rng.NextBelow(sh.world));
        k.phase = "recovery/expand_splice";
      }
      k.occurrence = 1;
      k.delay = rng.NextDouble() * 1e-3;
      s.phased.push_back(k);
    }
  }

  // Serving-plane campaigns (opt-in). Drawn strictly after every
  // pre-existing draw — including the async-admission block — so with
  // allow_serving off the rng stream and every old seed's schedule stay
  // byte-identical. A serving campaign repurposes the scheduled joiners
  // as autoscaler standbys and ignores the trainer-only shape fields.
  if (cfg.allow_serving && rng.NextBelow(3) != 0) {
    sh.serving = true;
    sh.serve_requests = 24 + static_cast<int>(rng.NextBelow(41));  // 24..64
    sh.serve_rps = 40.0 + rng.NextDouble() * 160.0;
    sh.serve_max_batch = 2 + static_cast<int>(rng.NextBelow(7));  // 2..8
    sh.serve_standbys = std::min(total_joiners, 2);
    sh.joins.clear();
    sh.async_admission = false;
    // Phase kills drawn earlier may target ex-joiner pids; standbys now
    // occupy those spawn slots, and a victim that never spawns is a
    // no-op trigger by construction. Background kills were placed inside
    // the trainer horizon; rescale them into the serving horizon so they
    // still land mid-service (no draws, deterministic).
    const double serve_horizon = EstimateHorizon(s);
    if (horizon > 0 && serve_horizon > 0) {
      for (TimedKill& k : s.timed) k.at *= serve_horizon / horizon;
    }
  }

  // Adaptive-policy campaigns (opt-in). Drawn strictly after every
  // pre-existing draw — including the async and serving blocks — so
  // with allow_policy off the rng stream and every old seed's schedule
  // stay byte-identical. The regime draw varies the background failure
  // pressure per seed (quiet / moderate / hostile) so one campaign
  // batch exercises the controller across distinct observed MTBFs; the
  // liveness trim below still guarantees two untouchable founders.
  if (cfg.allow_policy && !sh.serving) {
    sh.policy_mode = cfg.policy_mode;
    sh.replacements = 1 + static_cast<int>(rng.NextBelow(2));  // 1..2
    const int regime = static_cast<int>(rng.NextBelow(3));     // 0..2
    for (int i = 0; i < regime && horizon > 0; ++i) {
      TimedKill k;
      k.scope = sim::FailScope::kProcess;
      k.target = static_cast<int>(rng.NextBelow(sh.world));
      k.at = 0.05 * horizon + rng.NextDouble() * 0.9 * horizon;
      s.timed.push_back(k);
    }
  }

  // Pipeline campaigns (opt-in). Drawn strictly after every
  // pre-existing draw — including the async, serving, and policy
  // blocks — so with allow_pp off the rng stream and every old seed's
  // schedule stay byte-identical. A pipeline campaign runs the hybrid
  // DP x PP x TP PipelineTrainer; the scheduled joins and the serving
  // plane don't apply to it.
  if (cfg.allow_pp && !sh.serving) {
    sh.pipeline = true;
    sh.pp_stages = 2 + static_cast<int>(rng.NextBelow(2));        // 2..3
    sh.tp_size = 1 + static_cast<int>(rng.NextBelow(2));          // 1..2
    sh.pp_microbatches = 4 + static_cast<int>(rng.NextBelow(5));  // 4..8
    // Found with dp >= 2 so single-replica failures are re-routable.
    const int cell = sh.pp_stages * sh.tp_size;
    if (sh.world < 2 * cell) sh.world = 2 * cell;
    if (sh.policy_mode.empty()) sh.policy_mode = "adaptive";
    sh.joins.clear();
    sh.async_admission = false;
    // Background kills were placed inside the data-parallel trainer's
    // horizon; rescale them into the pipeline horizon so they still
    // land mid-schedule (no draws, deterministic).
    const double pp_horizon = EstimateHorizon(s);
    if (horizon > 0 && pp_horizon > 0) {
      for (TimedKill& k : s.timed) k.at *= pp_horizon / horizon;
    }
  }

  // Liveness: keep enough founders no event can reach — 2 for the
  // data-parallel trainer, a full pp*tp cell for pipeline campaigns
  // (the smallest world that can still hold every stage). Drop events
  // from the back (phase injections first — background kills carry
  // more of the campaign's value) until the guarantee holds. Trimming
  // consumes no rng draws, so raising the floor is replay-safe.
  const int survivor_floor =
      sh.pipeline ? std::max(2, sh.pp_stages * sh.tp_size) : 2;
  for (;;) {
    const int undoomed = sh.world - static_cast<int>(DoomedFounders(s).size());
    if (undoomed >= survivor_floor) break;
    if (!s.phased.empty()) {
      s.phased.pop_back();
    } else if (!s.timed.empty()) {
      s.timed.pop_back();
    } else {
      break;  // no events left; shape alone cannot doom anyone
    }
  }
  (void)nodes;
  return s;
}

}  // namespace rcc::chaos
