// Automatic schedule shrinking: given a violating campaign, produce a
// minimal reproducer. Delta-debugs the event lists (greedy one-at-a-time
// removal to a fixpoint), then simplifies the survivors — bisecting
// timed-kill injection times toward the earliest still-violating point,
// and collapsing phase injections to occurrence 1 / delay 0 where the
// violation persists. Every trial is one deterministic campaign run;
// the whole search is budgeted by `max_runs`.
#pragma once

#include <string>

#include "chaos/oracle.h"
#include "chaos/schedule.h"

namespace rcc::chaos {

struct ShrinkResult {
  Schedule schedule;                  // the minimized reproducer
  std::vector<Violation> violations;  // its (re-verified) violations
  int runs = 0;                       // campaign executions spent
};

// `oracle` pins the violation being chased (e.g. "P2") so the shrinker
// does not wander onto a different bug; empty chases any violation.
ShrinkResult ShrinkSchedule(const Schedule& initial, const std::string& oracle,
                            int max_runs = 80);

}  // namespace rcc::chaos
