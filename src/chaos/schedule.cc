#include "chaos/schedule.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/json_lite.h"

namespace rcc::chaos {

namespace {

std::string Num(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"";
  return out;
}

// Strict numeric field access: *ok collapses to false on any miss.
double GetNum(const obs::json::Value& v, const char* key, bool* ok) {
  const obs::json::Value* f = v.Find(key);
  if (f == nullptr || !f->is_number()) {
    *ok = false;
    return 0.0;
  }
  return f->AsNumber();
}

std::string GetStr(const obs::json::Value& v, const char* key, bool* ok) {
  const obs::json::Value* f = v.Find(key);
  if (f == nullptr || !f->is_string()) {
    *ok = false;
    return {};
  }
  return f->AsString();
}

}  // namespace

bool operator==(const Shape& a, const Shape& b) {
  return a.world == b.world && a.epochs == b.epochs &&
         a.steps_per_epoch == b.steps_per_epoch &&
         a.grad_buckets == b.grad_buckets &&
         a.inflight_window == b.inflight_window &&
         a.gpus_per_node == b.gpus_per_node && a.policy == b.policy &&
         a.joins == b.joins && a.async_admission == b.async_admission &&
         a.serving == b.serving && a.serve_requests == b.serve_requests &&
         a.serve_rps == b.serve_rps &&
         a.serve_max_batch == b.serve_max_batch &&
         a.serve_standbys == b.serve_standbys &&
         a.policy_mode == b.policy_mode && a.replacements == b.replacements &&
         a.pipeline == b.pipeline && a.pp_stages == b.pp_stages &&
         a.tp_size == b.tp_size && a.pp_microbatches == b.pp_microbatches &&
         a.compute_scale == b.compute_scale;
}

bool operator==(const TimedKill& a, const TimedKill& b) {
  return a.scope == b.scope && a.target == b.target && a.at == b.at;
}

bool operator==(const PhaseKill& a, const PhaseKill& b) {
  return a.victim == b.victim && a.phase == b.phase &&
         a.occurrence == b.occurrence && a.delay == b.delay;
}

bool operator==(const Schedule& a, const Schedule& b) {
  return a.seed == b.seed && a.format == b.format && a.shape == b.shape &&
         a.timed == b.timed && a.phased == b.phased;
}

std::string Schedule::ToJson() const {
  std::ostringstream os;
  char seedbuf[32];
  std::snprintf(seedbuf, sizeof(seedbuf), "%" PRIu64, seed);
  os << "{\n  \"seed\": " << seedbuf;
  // Format 1 omits the field so pre-versioned reproducers (and their
  // byte-for-byte golden copies) still round-trip exactly.
  if (format != 1) os << ",\n  \"format\": " << format;
  os << ",\n  \"shape\": {";
  os << "\"world\": " << shape.world
     << ", \"epochs\": " << shape.epochs
     << ", \"steps_per_epoch\": " << shape.steps_per_epoch
     << ", \"grad_buckets\": " << shape.grad_buckets
     << ", \"inflight_window\": " << shape.inflight_window
     << ", \"gpus_per_node\": " << shape.gpus_per_node
     << ", \"policy\": "
     << (shape.policy == horovod::DropPolicy::kNode ? "\"node\""
                                                    : "\"process\"")
     << ", \"async_admission\": "
     << (shape.async_admission ? "true" : "false");
  // Serving fields only appear on serving campaigns, so every
  // pre-serving reproducer still serializes byte-identically.
  if (shape.serving) {
    os << ", \"serving\": true"
       << ", \"serve_requests\": " << shape.serve_requests
       << ", \"serve_rps\": " << Num(shape.serve_rps)
       << ", \"serve_max_batch\": " << shape.serve_max_batch
       << ", \"serve_standbys\": " << shape.serve_standbys;
  }
  // Policy fields only appear on policy campaigns, so every pre-policy
  // reproducer still serializes byte-identically.
  if (!shape.policy_mode.empty()) {
    os << ", \"policy_mode\": " << Quote(shape.policy_mode)
       << ", \"replacements\": " << shape.replacements;
  }
  // Pipeline fields only appear on pipeline campaigns, so every
  // pre-pipeline reproducer still serializes byte-identically.
  if (shape.pipeline) {
    os << ", \"pipeline\": true"
       << ", \"pp_stages\": " << shape.pp_stages
       << ", \"tp_size\": " << shape.tp_size
       << ", \"pp_microbatches\": " << shape.pp_microbatches;
  }
  // Compute inflation only appears when set, so every earlier
  // reproducer still serializes byte-identically.
  if (shape.compute_scale != 1.0) {
    os << ", \"compute_scale\": " << Num(shape.compute_scale);
  }
  os << ", \"joins\": [";
  bool first = true;
  for (const auto& [epoch, count] : shape.joins) {
    if (!first) os << ", ";
    first = false;
    os << "{\"epoch\": " << epoch << ", \"count\": " << count << "}";
  }
  os << "]},\n  \"timed\": [";
  first = true;
  for (const TimedKill& k : timed) {
    if (!first) os << ", ";
    first = false;
    os << "{\"scope\": "
       << (k.scope == sim::FailScope::kNode ? "\"node\"" : "\"process\"")
       << ", \"target\": " << k.target << ", \"at\": " << Num(k.at) << "}";
  }
  os << "],\n  \"phased\": [";
  first = true;
  for (const PhaseKill& k : phased) {
    if (!first) os << ", ";
    first = false;
    os << "{\"victim\": " << k.victim << ", \"phase\": " << Quote(k.phase)
       << ", \"occurrence\": " << k.occurrence
       << ", \"delay\": " << Num(k.delay) << "}";
  }
  os << "]\n}\n";
  return os.str();
}

bool Schedule::FromJson(const std::string& text, Schedule* out,
                        std::string* error) {
  obs::json::Value root;
  if (!obs::json::Parse(text, &root, error)) return false;
  bool ok = true;
  Schedule s;
  s.seed = static_cast<uint64_t>(GetNum(root, "seed", &ok));
  // Optional: absent in reproducers recorded before engine versioning.
  const obs::json::Value* format = root.Find("format");
  if (format != nullptr) {
    if (format->is_number()) {
      s.format = static_cast<int>(format->AsNumber());
      if (s.format < 1 || s.format > 2) {
        if (error != nullptr) {
          *error = "unknown schedule format " + std::to_string(s.format);
        }
        return false;
      }
    } else {
      ok = false;
    }
  }

  const obs::json::Value* shape = root.Find("shape");
  if (shape == nullptr || !shape->is_object()) {
    if (error != nullptr) *error = "missing shape object";
    return false;
  }
  s.shape.world = static_cast<int>(GetNum(*shape, "world", &ok));
  s.shape.epochs = static_cast<int>(GetNum(*shape, "epochs", &ok));
  s.shape.steps_per_epoch =
      static_cast<int>(GetNum(*shape, "steps_per_epoch", &ok));
  s.shape.grad_buckets = static_cast<int>(GetNum(*shape, "grad_buckets", &ok));
  s.shape.inflight_window =
      static_cast<int>(GetNum(*shape, "inflight_window", &ok));
  s.shape.gpus_per_node =
      static_cast<int>(GetNum(*shape, "gpus_per_node", &ok));
  const std::string policy = GetStr(*shape, "policy", &ok);
  if (policy == "node") {
    s.shape.policy = horovod::DropPolicy::kNode;
  } else if (policy == "process") {
    s.shape.policy = horovod::DropPolicy::kProcess;
  } else {
    ok = false;
  }
  // Optional: absent in reproducers recorded before async admission.
  const obs::json::Value* async_adm = shape->Find("async_admission");
  if (async_adm != nullptr) {
    if (async_adm->is_bool()) {
      s.shape.async_admission = async_adm->AsBool();
    } else {
      ok = false;
    }
  }
  // Optional: absent in reproducers recorded before the serving plane.
  const obs::json::Value* serving = shape->Find("serving");
  if (serving != nullptr) {
    if (serving->is_bool()) {
      s.shape.serving = serving->AsBool();
    } else {
      ok = false;
    }
    if (s.shape.serving) {
      s.shape.serve_requests =
          static_cast<int>(GetNum(*shape, "serve_requests", &ok));
      s.shape.serve_rps = GetNum(*shape, "serve_rps", &ok);
      s.shape.serve_max_batch =
          static_cast<int>(GetNum(*shape, "serve_max_batch", &ok));
      s.shape.serve_standbys =
          static_cast<int>(GetNum(*shape, "serve_standbys", &ok));
    }
  }
  // Optional: absent in reproducers recorded before the adaptive policy.
  const obs::json::Value* pmode = shape->Find("policy_mode");
  if (pmode != nullptr) {
    if (pmode->is_string()) {
      s.shape.policy_mode = pmode->AsString();
      s.shape.replacements =
          static_cast<int>(GetNum(*shape, "replacements", &ok));
    } else {
      ok = false;
    }
  }
  // Optional: absent in reproducers recorded before pipeline campaigns.
  const obs::json::Value* pipeline = shape->Find("pipeline");
  if (pipeline != nullptr) {
    if (pipeline->is_bool()) {
      s.shape.pipeline = pipeline->AsBool();
    } else {
      ok = false;
    }
    if (s.shape.pipeline) {
      s.shape.pp_stages = static_cast<int>(GetNum(*shape, "pp_stages", &ok));
      s.shape.tp_size = static_cast<int>(GetNum(*shape, "tp_size", &ok));
      s.shape.pp_microbatches =
          static_cast<int>(GetNum(*shape, "pp_microbatches", &ok));
    }
  }
  // Optional: absent unless a campaign inflates per-step compute.
  const obs::json::Value* cscale = shape->Find("compute_scale");
  if (cscale != nullptr) {
    if (cscale->is_number()) {
      s.shape.compute_scale = cscale->AsNumber();
    } else {
      ok = false;
    }
  }
  const obs::json::Value* joins = shape->Find("joins");
  if (joins == nullptr || !joins->is_array()) {
    ok = false;
  } else {
    for (const obs::json::Value& j : joins->AsArray()) {
      const int epoch = static_cast<int>(GetNum(j, "epoch", &ok));
      const int count = static_cast<int>(GetNum(j, "count", &ok));
      s.shape.joins[epoch] = count;
    }
  }

  const obs::json::Value* timed = root.Find("timed");
  if (timed == nullptr || !timed->is_array()) {
    ok = false;
  } else {
    for (const obs::json::Value& t : timed->AsArray()) {
      TimedKill k;
      const std::string scope = GetStr(t, "scope", &ok);
      if (scope == "node") {
        k.scope = sim::FailScope::kNode;
      } else if (scope == "process") {
        k.scope = sim::FailScope::kProcess;
      } else {
        ok = false;
      }
      k.target = static_cast<int>(GetNum(t, "target", &ok));
      k.at = GetNum(t, "at", &ok);
      s.timed.push_back(k);
    }
  }

  const obs::json::Value* phased = root.Find("phased");
  if (phased == nullptr || !phased->is_array()) {
    ok = false;
  } else {
    for (const obs::json::Value& p : phased->AsArray()) {
      PhaseKill k;
      k.victim = static_cast<int>(GetNum(p, "victim", &ok));
      k.phase = GetStr(p, "phase", &ok);
      k.occurrence = static_cast<int>(GetNum(p, "occurrence", &ok));
      k.delay = GetNum(p, "delay", &ok);
      s.phased.push_back(k);
    }
  }

  if (!ok) {
    if (error != nullptr) *error = "schedule JSON has missing/mistyped fields";
    return false;
  }
  *out = std::move(s);
  return true;
}

}  // namespace rcc::chaos
