// Campaign oracles: the P1–P5 invariants factored out of
// resilience_property_test.cc, generalized to arbitrary schedules, plus
// the replay-audit (P6) and metrics/trace-consistency (P7) checks.
//
//   P0. Liveness/sanity: every spawned worker produced a result and at
//       least one founder finished (the generator guarantees >= 2
//       never-killed founders, so a clean run must exist).
//   P1. Exactly-once steps: every finisher ran exactly its planned
//       optimizer steps — founders epochs*steps, joiners the steps
//       remaining after the start cursor their admission landed them on
//       (blocking: {join_epoch, 0}; async: the splice step boundary).
//       Forward recovery re-runs collectives, never steps.
//   P2. Bit-identical replicas: all finishers hold identical parameters.
//   P3. Membership consistency: all finishers agree on final_world,
//       which is bounded by [#finishers, world + admitted joiners].
//   P4. Loss decrease: founders that finish still improved (with a
//       small slack for heavily-shrunk memberships).
//   P5. Joiner indistinguishability: P2 holds across joiners too; a
//       violation whose divergent replica is a joiner is tagged P5.
//   P6. Replay >= MIN: no rank re-executed an op below the agreed MIN.
//   P7. Metrics/trace consistency: the repairs counter, recovery spans
//       and per-worker repair counts tell one coherent story, and the
//       replayed-ops counter matches the recorded replay events.
//   P8. Serving exactly-once (serving-shape campaigns): no admitted
//       request is lost or double-completed across any repair, splice,
//       or voluntary shrink — every finisher (joiners included) holds
//       the identical completion log covering each generated request
//       exactly once, and the replicated-state digests agree bit for
//       bit. Serving campaigns check P0/P3/P6/P7/P8; the
//       trainer-specific P1/P2/P4/P5 don't apply.
//   P9. Decision-oracle soundness (policy campaigns): every logged
//       recovery decision re-derives bitwise-identically from its own
//       broadcast inputs, the chosen strategy's modeled cost is within
//       tolerance of the best applicable alternative for the campaign's
//       mode, and members that shared a decision seq agree on its
//       formatted record byte for byte. Under the adaptive policy P1's
//       exactly-once guarantee generalizes to steps_run == planned +
//       rollback_steps (restore decisions re-execute accounted steps).
//  P10. Pipeline exactly-once (pipeline-shape campaigns): across every
//       re-route, shrink, and restore, no microbatch of any committed
//       step is lost or double-applied in any process group — every
//       finisher holds the identical commit ledger, every committed
//       (stage, microbatch) names a live owner replica, and each
//       rank's executed set is exactly what the agreed grid mapping
//       assigned to the slot it held at commit time. Pipeline
//       campaigns check P0/P1/P3/P6/P7/P9/P10; the data-parallel
//       trainer's P2/P4/P5 (real-numerics replicas) don't apply.
#pragma once

#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/schedule.h"

namespace rcc::chaos {

struct Violation {
  std::string oracle;  // "P0" .. "P9"
  std::string detail;
};

std::vector<Violation> CheckOracles(const Schedule& schedule,
                                    const CampaignOutcome& outcome);

// True when `violations` contains `oracle` (empty oracle = any).
bool HasViolation(const std::vector<Violation>& violations,
                  const std::string& oracle);

std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace rcc::chaos
