// Campaign runner: executes one chaos Schedule against the real-numerics
// elastic trainer on the virtual-time simulator and collects everything
// the oracles need. Deterministic: same schedule -> same outcome, byte
// for byte (results are keyed and sorted by pid, never by thread
// completion order).
#pragma once

#include <vector>

#include "chaos/schedule.h"
#include "core/elastic_trainer.h"
#include "core/pipeline_trainer.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace rcc::chaos {

// One worker's run: founders have join_epoch == -1; joiners record
// whether JoinExisting + state sync succeeded.
struct WorkerResult {
  int pid = -1;
  int join_epoch = -1;
  bool joined_ok = true;
  // Cursor the worker actually started training from. Founders start at
  // {0, 0}; blocking joiners at {join_epoch, 0}; async joiners at
  // whatever step boundary the splice landed on (possibly mid-epoch, or
  // the end of the run for a finalize splice). The P1 oracle plans
  // steps from here, not from join_epoch.
  int start_epoch = 0;
  int start_step = 0;
  // Policy campaigns: a provisioned replacement whose slot was never
  // consumed (released with "done" or deadline-expired). Idle
  // replacements finish cleanly but hold no training state, so the
  // trainer oracles skip them like the serving oracles skip idle
  // standbys.
  bool idle_replacement = false;
  core::TrainerReport report;
  // Serving campaigns (shape.serving) fill this instead of `report`;
  // report.aborted mirrors serve.aborted so shared bookkeeping (the
  // exit-is-a-failure rule, result counting) stays uniform.
  serve::ServeReport serve;
  // Pipeline campaigns (shape.pipeline) fill this instead of `report`;
  // report.aborted mirrors pipe.aborted for the same reason.
  core::PipelineReport pipe;
  double end_time = 0.0;  // virtual clock when the worker finished/died
};

struct CampaignOutcome {
  std::vector<WorkerResult> results;  // sorted by pid
  double horizon = 0.0;               // max end_time over all workers
  // Global-registry deltas across the run (the process-wide counters are
  // snapshotted around the campaign, so campaigns isolate cleanly).
  double repairs_metric = 0.0;   // rcc_recovery_repairs_total
  double replayed_metric = 0.0;  // rcc_recovery_replayed_ops_total
  // Trace-derived evidence.
  int repair_span_count = 0;                      // recovery/ulfm_repair
  std::vector<trace::ReplayEvent> replay_events;  // replays vs agreed MIN
};

CampaignOutcome RunSchedule(const Schedule& schedule);

// Virtual completion time of the schedule with every event stripped;
// the generator places background kills inside this window.
double EstimateHorizon(const Schedule& schedule);

}  // namespace rcc::chaos
