// Online adaptive recovery policy (the Chameleon loop): on every
// failure / join event the controller chooses among the recovery
// strategies the resilient stack implements —
//
//   shrink-and-continue   keep training degraded on the survivors
//   wait-for-replacement  blocking Expand of a provisioned replacement
//                         (bounded by the virtual-time expand deadline)
//   async admission       nonblocking ExpandAsyncBegin + kvstore staging
//                         + step-boundary splice + delta sync
//   checkpoint restore    roll every member back to the last epoch-
//                         boundary snapshot (Eq.1 loading + recompute)
//   pipeline re-route     hybrid-parallel only: surviving DP peers of a
//                         broken stage adopt its microbatches (ReCycle)
//                         while one grid dimension repairs
//
// — by comparing modeled costs (worker-seconds of lost goodput over the
// remaining horizon) built from a live MTBF estimate, the current world
// size, the snapshot transfer cost, and the measured recovery-phase
// critical path. The decision function is PURE: identical PolicyInputs
// bytes produce identical Decisions on every rank and every replay,
// which is what oracle P9 audits.
//
// SPMD consistency: per-rank views of the world (repairs, metrics) can
// diverge transiently at a step boundary, so rank 0 composes one
// PolicyInputs record per step and broadcasts the serialized bytes
// through the resilient BcastBlob; every member decodes the same bytes
// and runs the same pure Decide(), so actuation (which is collective)
// never diverges. See DESIGN.md §11.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcc::policy {

// The recovery strategies, in fixed order (ties in the adaptive argmin
// break toward the lowest index). kReroute is the hybrid-parallel arm:
// surviving DP peers of a broken pipeline stage adopt its microbatches
// (ReCycle-style bubble filling) instead of retiring the whole replica;
// it only applies when the trainer advertises kFlagReroutable.
enum class Strategy : int32_t {
  kShrink = 0,
  kWait = 1,
  kAsync = 2,
  kRestore = 3,
  kReroute = 4,
};
inline constexpr int kStrategyCount = 5;

const char* StrategyName(Strategy s);

// Controller mode, parsed from RCC_POLICY. kLegacy (the default when the
// knob is unset) keeps the pre-policy behavior byte-identical: no tick
// broadcast, no decisions, no extra collectives.
enum class Mode : int32_t {
  kLegacy = 0,
  kAdaptive = 1,
  kShrinkOnly = 2,
  kWaitOnly = 3,
  kAsyncOnly = 4,
  kRestoreOnly = 5,
  kRerouteOnly = 6,
};

const char* ModeName(Mode m);
// "adaptive" | "shrink" | "wait" | "async" | "restore". Empty string
// maps to kLegacy; unknown strings return false.
bool ModeFromName(const std::string& name, Mode* out);
// RCC_POLICY (unset/empty -> kLegacy, unknown value -> kLegacy).
Mode ModeFromEnv();

// What triggered a decision. kNone ticks carry bookkeeping (slot
// counter, MTBF feed) but no decision.
enum class EventKind : int32_t {
  kNone = 0,
  kFailure = 1,  // the membership shrank since the last tick
  kJoin = 2,     // a scheduled scale-up is due at this boundary
};

const char* EventKindName(EventKind k);

// Live MTBF estimator over virtual time. Failure observations extend
// the window; a world-size *change from outside the failure path* (an
// admission or scheduled join) resets it, because the aggregate failure
// rate scales with the worker count and a stale window would bias the
// estimate. Fed from rcc_failures_observed_total deltas observed at the
// rank-0 policy tick (exact integer counter: deterministic under both
// engines), with observation times taken from the tick's virtual clock.
class MtbfEstimator {
 public:
  // A failure observed at virtual time `t` with `world_after` members
  // remaining. Keeps the window (the shrink IS the observation).
  void ObserveFailure(double t, int world_after);
  // Non-failure membership change (join / replacement admission) at
  // time `t`: resets the window when the size actually changed.
  void OnWorldChange(int world, double t);
  // Mean inter-failure virtual time of the current window; 0 while the
  // window holds fewer than two observations (no estimate yet).
  double Estimate() const;
  int window_failures() const { return n_; }
  double window_start() const { return window_start_; }

 private:
  int world_ = -1;          // last membership the window is valid for
  double window_start_ = 0.0;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  int n_ = 0;
};

// Applicability flags carried in PolicyInputs (rank 0 composes them
// from globally consistent state).
inline constexpr int32_t kFlagStoreOk = 1;    // kvstore available (async)
inline constexpr int32_t kFlagRestoreOk = 2;  // every member holds the
                                              // current boundary snapshot
inline constexpr int32_t kFlagReroutable = 4;  // pipeline grid still routable
                                               // (every stage has a live
                                               // replica) after the failure

// One policy tick, composed by rank 0 and broadcast verbatim. Fixed
// width, little-endian serialization: the broadcast bytes ARE the
// decision input, so replays and cross-rank decode are bit-exact.
struct PolicyInputs {
  int32_t event = 0;         // EventKind
  int32_t seq = 0;           // global decision ordinal (rank-0 counter)
  int32_t world = 0;         // membership after the event
  int32_t lost = 0;          // workers lost (failure) / joiners due (join)
  int32_t replacements = 0;  // provisioned replacement slots remaining
  int32_t slots_used = 0;    // replacement slots consumed so far
  int32_t flags = 0;          // kFlagStoreOk | kFlagRestoreOk | kFlagReroutable
  int32_t replica_ranks = 0;  // ranks per pipeline replica (pp*tp); 0 for
                              // pure-DP trainers (was padding: legacy
                              // encoders always wrote 0 here, so old
                              // blobs decode unchanged)
  int64_t gstep = 0;         // global step at the tick
  int64_t remaining_steps = 0;
  int64_t rollback_steps = 0;  // steps re-run if restoring now
  double now = 0.0;            // rank-0 virtual time at the tick
  double step_seconds = 0.0;   // rank-0 EWMA of per-step wall time
  double mtbf_seconds = 0.0;   // live estimate (0 = unknown)
  double failures_observed = 0.0;  // rcc_failures_observed_total
  double snapshot_bytes = 0.0;
  double staging_seconds = 0.0;  // modeled snapshot transfer cost
  double rebuild_seconds = 0.0;  // measured recovery critical path
  double grace_seconds = 0.0;    // admission rendezvous overhead
};

// 8 * 4 + 3 * 8 + 8 * 8 = 120 bytes.
inline constexpr size_t kPolicyInputsBytes = 120;

std::vector<uint8_t> EncodeInputs(const PolicyInputs& in);
bool DecodeInputs(const std::vector<uint8_t>& blob, PolicyInputs* out);

// One audited decision: the inputs, every strategy's modeled cost
// (+inf = inapplicable given the inputs), and the choice.
struct Decision {
  Mode mode = Mode::kLegacy;
  PolicyInputs in;
  double cost[kStrategyCount] = {0, 0, 0, 0, 0};
  Strategy chosen = Strategy::kShrink;
};

// Pure cost model. Costs are worker-seconds of lost goodput over the
// remaining horizon; see DESIGN.md §11.3 for the exact formulas. The
// restore branch prices loading + recompute through costmodel Eq.1
// terms (checkpoint bytes over host memory bandwidth, half... here the
// exact rollback distance is known, so the recompute term uses it
// instead of Eq.1's expected half interval).
void ModelCosts(const PolicyInputs& in, double cost[kStrategyCount]);

// True when `s` may be actuated given `in` (e.g. wait/async need a
// remaining replacement slot on failures; shrink/restore never apply to
// join events).
bool Applicable(Strategy s, const PolicyInputs& in);

// Pure decision: static modes force their strategy when applicable
// (falling back to shrink on failures / wait on joins), adaptive takes
// the applicable argmin. Deterministic for identical inputs.
Decision Decide(Mode mode, const PolicyInputs& in);

// Canonical, byte-stable rendering (doubles at %.17g) used by the
// decision-log determinism test and the cross-rank P9 comparison.
std::string FormatDecision(const Decision& d);
std::string FormatDecisionLog(const std::vector<Decision>& log);

// Per-rank controller: owns the mode, the estimator and the decision
// log. The trainer feeds every tick (rank 0 composes, everyone decodes)
// through OnTick; decisions are appended only for event ticks.
class PolicyController {
 public:
  explicit PolicyController(Mode mode) : mode_(mode) {}

  Mode mode() const { return mode_; }
  bool active() const { return mode_ != Mode::kLegacy; }

  // Processes one decoded tick: feeds the estimator from the
  // failures_observed delta, tracks the slot counter, and (for event
  // ticks) decides and appends to the log. Returns the decision;
  // EventKind::kNone ticks return a Decision with chosen = kShrink and
  // no log append.
  Decision OnTick(const PolicyInputs& in);

  const std::vector<Decision>& log() const { return log_; }
  MtbfEstimator& estimator() { return est_; }
  int slots_used() const { return slots_used_; }
  int next_seq() const { return next_seq_; }

 private:
  Mode mode_;
  MtbfEstimator est_;
  std::vector<Decision> log_;
  double failures_seen_ = 0.0;
  int slots_used_ = 0;
  int next_seq_ = 0;
};

}  // namespace rcc::policy
