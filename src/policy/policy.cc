#include "policy/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "costmodel/costmodel.h"
#include "sim/params.h"

namespace rcc::policy {

namespace {

// Fraction of the full snapshot transfer the survivors are exposed to
// through the post-splice delta sync (a joiner staged over a handful of
// steps is priced at a sliver of the full state, matching the measured
// async-admission stall being ~2 orders below the blocking one in
// bench_admission_stall). Fixed model constant so the decision function
// stays pure.
constexpr double kAsyncDeltaFrac = 0.05;
// Cap on the expected-readmission multiplier: with an MTBF far below
// the remaining horizon a readmitted worker is modeled to fail again
// and again, but an unbounded multiplier would swamp every other term.
constexpr double kMaxReadmit = 8.0;
// Fraction of an adopted stage's work that is NOT absorbed by pipeline
// bubbles under ReCycle-style re-routing (decoupled 1F1B schedules fill
// roughly half the adopted load into existing bubbles). Fixed model
// constant so the decision function stays pure.
constexpr double kRerouteBubbleFrac = 0.5;

double Inf() { return std::numeric_limits<double>::infinity(); }

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>((static_cast<uint32_t>(v) >> (8 * i)) &
                                        0xff));
  }
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>((static_cast<uint64_t>(v) >> (8 * i)) &
                                        0xff));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutI64(out, static_cast<int64_t>(bits));
}

int32_t GetI32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return static_cast<int32_t>(v);
}

int64_t GetI64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return static_cast<int64_t>(v);
}

double GetF64(const uint8_t* p) {
  const uint64_t bits = static_cast<uint64_t>(GetI64(p));
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kShrink: return "shrink";
    case Strategy::kWait: return "wait";
    case Strategy::kAsync: return "async";
    case Strategy::kRestore: return "restore";
    case Strategy::kReroute: return "reroute";
  }
  return "?";
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kLegacy: return "legacy";
    case Mode::kAdaptive: return "adaptive";
    case Mode::kShrinkOnly: return "shrink";
    case Mode::kWaitOnly: return "wait";
    case Mode::kAsyncOnly: return "async";
    case Mode::kRestoreOnly: return "restore";
    case Mode::kRerouteOnly: return "reroute";
  }
  return "?";
}

bool ModeFromName(const std::string& name, Mode* out) {
  if (name.empty()) { *out = Mode::kLegacy; return true; }
  if (name == "adaptive") { *out = Mode::kAdaptive; return true; }
  if (name == "shrink") { *out = Mode::kShrinkOnly; return true; }
  if (name == "wait") { *out = Mode::kWaitOnly; return true; }
  if (name == "async") { *out = Mode::kAsyncOnly; return true; }
  if (name == "restore") { *out = Mode::kRestoreOnly; return true; }
  if (name == "reroute") { *out = Mode::kRerouteOnly; return true; }
  return false;
}

Mode ModeFromEnv() {
  const char* v = std::getenv("RCC_POLICY");
  Mode m = Mode::kLegacy;
  if (v != nullptr) ModeFromName(v, &m);
  return m;
}

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kFailure: return "failure";
    case EventKind::kJoin: return "join";
  }
  return "?";
}

void MtbfEstimator::ObserveFailure(double t, int world_after) {
  world_ = world_after;
  if (n_ == 0) {
    first_t_ = t;
    last_t_ = t;
  } else {
    first_t_ = std::min(first_t_, t);
    last_t_ = std::max(last_t_, t);
  }
  ++n_;
}

void MtbfEstimator::OnWorldChange(int world, double t) {
  if (world == world_) return;
  world_ = world;
  window_start_ = t;
  first_t_ = last_t_ = 0.0;
  n_ = 0;
}

double MtbfEstimator::Estimate() const {
  if (n_ < 2) return 0.0;
  return (last_t_ - first_t_) / static_cast<double>(n_ - 1);
}

std::vector<uint8_t> EncodeInputs(const PolicyInputs& in) {
  std::vector<uint8_t> out;
  out.reserve(kPolicyInputsBytes);
  PutI32(&out, in.event);
  PutI32(&out, in.seq);
  PutI32(&out, in.world);
  PutI32(&out, in.lost);
  PutI32(&out, in.replacements);
  PutI32(&out, in.slots_used);
  PutI32(&out, in.flags);
  PutI32(&out, in.replica_ranks);
  PutI64(&out, in.gstep);
  PutI64(&out, in.remaining_steps);
  PutI64(&out, in.rollback_steps);
  PutF64(&out, in.now);
  PutF64(&out, in.step_seconds);
  PutF64(&out, in.mtbf_seconds);
  PutF64(&out, in.failures_observed);
  PutF64(&out, in.snapshot_bytes);
  PutF64(&out, in.staging_seconds);
  PutF64(&out, in.rebuild_seconds);
  PutF64(&out, in.grace_seconds);
  return out;
}

bool DecodeInputs(const std::vector<uint8_t>& blob, PolicyInputs* out) {
  if (blob.size() != kPolicyInputsBytes) return false;
  const uint8_t* p = blob.data();
  out->event = GetI32(p); p += 4;
  out->seq = GetI32(p); p += 4;
  out->world = GetI32(p); p += 4;
  out->lost = GetI32(p); p += 4;
  out->replacements = GetI32(p); p += 4;
  out->slots_used = GetI32(p); p += 4;
  out->flags = GetI32(p); p += 4;
  out->replica_ranks = GetI32(p); p += 4;
  out->gstep = GetI64(p); p += 8;
  out->remaining_steps = GetI64(p); p += 8;
  out->rollback_steps = GetI64(p); p += 8;
  out->now = GetF64(p); p += 8;
  out->step_seconds = GetF64(p); p += 8;
  out->mtbf_seconds = GetF64(p); p += 8;
  out->failures_observed = GetF64(p); p += 8;
  out->snapshot_bytes = GetF64(p); p += 8;
  out->staging_seconds = GetF64(p); p += 8;
  out->rebuild_seconds = GetF64(p); p += 8;
  out->grace_seconds = GetF64(p); p += 8;
  return true;
}

bool Applicable(Strategy s, const PolicyInputs& in) {
  const auto ev = static_cast<EventKind>(in.event);
  if (ev == EventKind::kFailure) {
    switch (s) {
      case Strategy::kShrink: return true;
      case Strategy::kWait: return in.replacements > 0;
      case Strategy::kAsync:
        return in.replacements > 0 && (in.flags & kFlagStoreOk) != 0;
      case Strategy::kRestore: return (in.flags & kFlagRestoreOk) != 0;
      case Strategy::kReroute: return (in.flags & kFlagReroutable) != 0;
    }
  }
  if (ev == EventKind::kJoin) {
    switch (s) {
      case Strategy::kShrink: return false;
      case Strategy::kWait: return true;
      case Strategy::kAsync: return (in.flags & kFlagStoreOk) != 0;
      case Strategy::kRestore: return false;
      case Strategy::kReroute: return false;
    }
  }
  return false;
}

void ModelCosts(const PolicyInputs& in, double cost[kStrategyCount]) {
  for (int i = 0; i < kStrategyCount; ++i) cost[i] = Inf();
  const auto ev = static_cast<EventKind>(in.event);
  const double w = static_cast<double>(in.world);
  const double step_s = in.step_seconds > 0 ? in.step_seconds : 1e-6;
  const double t_rem = static_cast<double>(in.remaining_steps) * step_s;
  if (ev == EventKind::kFailure) {
    const double f = static_cast<double>(in.lost < 1 ? 1 : in.lost);
    // Expected admissions of a replacement over the remaining horizon:
    // the cluster-wide MTBF is spread over `world` workers, so the
    // admitted replacement itself re-fails (and pays the admission
    // overhead again) at 1/world of the cluster rate.
    const double readmit =
        1.0 + (in.mtbf_seconds > 0 && w > 0
                   ? std::min(kMaxReadmit, t_rem / (in.mtbf_seconds * w))
                   : 0.0);
    // One replacement slot is admitted per decision; any excess lost
    // capacity stays lost either way.
    const double recovered = std::min(f, 1.0);
    const double residual = (f - recovered) * t_rem;
    if (Applicable(Strategy::kShrink, in)) {
      // Degraded mode: the lost capacity is gone for the rest of the
      // run; the forward-recovery critical path stalls everyone once.
      // In a pipeline grid, shrinking retires the dead rank's WHOLE
      // replica (its surviving pp*tp-1 peers have no stage to stream),
      // not just the ranks that died.
      const double retired =
          in.replica_ranks > 0
              ? std::max(f, static_cast<double>(in.replica_ranks))
              : f;
      cost[0] = retired * t_rem + w * in.rebuild_seconds;
    }
    if (Applicable(Strategy::kWait, in)) {
      // Blocking admission: every survivor stalls for the announce
      // grace + full state sync, per expected admission.
      cost[1] = w * (in.staging_seconds + in.grace_seconds) * readmit +
                residual + w * in.rebuild_seconds;
    }
    if (Applicable(Strategy::kAsync, in)) {
      if (in.staging_seconds >= t_rem) {
        // The splice cannot land inside the remaining horizon: the run
        // stays degraded exactly like shrink and still pays the wasted
        // finalize delta at the end.
        cost[2] = f * t_rem + w * kAsyncDeltaFrac * in.staging_seconds +
                  w * in.rebuild_seconds;
      } else {
        // Overlapped admission: the lost capacity is only missing while
        // the joiner stages in the background; survivors are exposed to
        // the delta sync at splice.
        cost[2] = (recovered * in.staging_seconds +
                   w * kAsyncDeltaFrac * in.staging_seconds) *
                      readmit +
                  residual + w * in.rebuild_seconds;
      }
    }
    if (Applicable(Strategy::kRestore, in)) {
      // Eq.1 (src/costmodel) with the rollback distance known exactly:
      // loading + recompute per member. The bytes are re-derived from
      // staging_seconds against the canonical bandwidth so the branch
      // stays a pure function of the broadcast inputs. The capacity
      // loss matches shrink (restore does not replace workers).
      const sim::SimConfig cfg;
      const costmodel::RecoveryBreakdown bd =
          costmodel::EvaluateRestoreDecision(
              cfg, in.staging_seconds * cfg.net.host_mem_bandwidth,
              1.0 / step_s, in.rollback_steps);
      // Restore does not bypass the forward-recovery repair: the
      // membership still shrinks through the same ULFM critical path,
      // and the rollback's load + recompute comes on top of it.
      cost[3] = f * t_rem + w * (in.rebuild_seconds + bd.total());
    }
    if (Applicable(Strategy::kReroute, in)) {
      // ReCycle-style adoption: surviving DP peers of the broken stage
      // absorb its microbatches into their pipeline bubbles, so only
      // part of the dead ranks' capacity is actually lost (the bubble
      // slack soaks up the rest); the repair touches one dimension, so
      // the stall is the advertised rebuild path alone.
      cost[4] = kRerouteBubbleFrac * f * t_rem + w * in.rebuild_seconds;
    }
    return;
  }
  if (ev == EventKind::kJoin) {
    const double j = static_cast<double>(in.lost < 1 ? 1 : in.lost);
    if (Applicable(Strategy::kWait, in)) {
      // Everyone (including the arrivals) stalls for the blocking
      // rendezvous + full state sync.
      cost[1] = (w + j) * (in.staging_seconds + in.grace_seconds);
    }
    if (Applicable(Strategy::kAsync, in)) {
      // Staging overlaps training; the survivors only pay the splice
      // delta sync.
      cost[2] = w * kAsyncDeltaFrac * in.staging_seconds;
    }
  }
}

Decision Decide(Mode mode, const PolicyInputs& in) {
  Decision d;
  d.mode = mode;
  d.in = in;
  ModelCosts(in, d.cost);
  const auto ev = static_cast<EventKind>(in.event);
  const Strategy fallback =
      ev == EventKind::kJoin ? Strategy::kWait : Strategy::kShrink;
  Strategy forced = fallback;
  bool is_static = true;
  switch (mode) {
    case Mode::kShrinkOnly: forced = Strategy::kShrink; break;
    case Mode::kWaitOnly: forced = Strategy::kWait; break;
    case Mode::kAsyncOnly: forced = Strategy::kAsync; break;
    case Mode::kRestoreOnly: forced = Strategy::kRestore; break;
    case Mode::kRerouteOnly: forced = Strategy::kReroute; break;
    default: is_static = false; break;
  }
  if (is_static) {
    d.chosen = Applicable(forced, in) ? forced : fallback;
    return d;
  }
  // Adaptive: applicable argmin, ties toward the lowest strategy index.
  Strategy best = fallback;
  double best_cost = Inf();
  for (int i = 0; i < kStrategyCount; ++i) {
    const auto s = static_cast<Strategy>(i);
    if (!Applicable(s, in)) continue;
    if (d.cost[i] < best_cost) {
      best_cost = d.cost[i];
      best = s;
    }
  }
  d.chosen = best;
  return d;
}

std::string FormatDecision(const Decision& d) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "seq=%d event=%s world=%d lost=%d repl=%d used=%d flags=%d rr=%d "
      "gstep=%lld rem=%lld rb=%lld now=%.17g step_s=%.17g mtbf=%.17g "
      "fails=%.17g bytes=%.17g stage=%.17g rebuild=%.17g grace=%.17g "
      "cost_shrink=%.17g cost_wait=%.17g cost_async=%.17g "
      "cost_restore=%.17g cost_reroute=%.17g mode=%s chosen=%s",
      d.in.seq, EventKindName(static_cast<EventKind>(d.in.event)), d.in.world,
      d.in.lost, d.in.replacements, d.in.slots_used, d.in.flags,
      d.in.replica_ranks, static_cast<long long>(d.in.gstep),
      static_cast<long long>(d.in.remaining_steps),
      static_cast<long long>(d.in.rollback_steps), d.in.now, d.in.step_seconds,
      d.in.mtbf_seconds, d.in.failures_observed, d.in.snapshot_bytes,
      d.in.staging_seconds, d.in.rebuild_seconds, d.in.grace_seconds,
      d.cost[0], d.cost[1], d.cost[2], d.cost[3], d.cost[4], ModeName(d.mode),
      StrategyName(d.chosen));
  return buf;
}

std::string FormatDecisionLog(const std::vector<Decision>& log) {
  std::string out;
  for (const Decision& d : log) {
    out += FormatDecision(d);
    out += '\n';
  }
  return out;
}

Decision PolicyController::OnTick(const PolicyInputs& in) {
  // Feed the estimator from the tick (identical bytes on every member,
  // so every member's estimator evolves identically from its join on).
  const auto ev = static_cast<EventKind>(in.event);
  failures_seen_ = in.failures_observed;
  if (ev == EventKind::kFailure) {
    est_.ObserveFailure(in.now, in.world);
  } else {
    est_.OnWorldChange(in.world, in.now);
  }
  slots_used_ = in.slots_used;
  if (ev == EventKind::kNone) return Decision{};
  Decision d = Decide(mode_, in);
  next_seq_ = in.seq + 1;
  log_.push_back(d);
  return d;
}

}  // namespace rcc::policy
