// Instrumentation span: trace::Scope plus a registry histogram in one
// RAII object. On destruction the [construction, destruction] interval
// of the endpoint's virtual clock is (a) recorded into the trace
// recorder under `phase` (when a recorder is attached, so the interval
// shows up in the Perfetto export) and (b) observed into the
// `metric{phase=...}` histogram (always, so metrics work even in
// recorder-less paths).
#pragma once

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "sim/endpoint.h"
#include "trace/trace.h"

namespace rcc::obs {

class Span {
 public:
  // `metric` defaults to the cross-layer phase-duration family.
  Span(trace::Recorder* rec, sim::Endpoint& ep, std::string phase,
       const char* metric = "rcc_phase_seconds")
      : rec_(rec), ep_(ep), phase_(std::move(phase)), start_(ep.now()),
        hist_(Registry::Global().GetHistogram(metric, {{"phase", phase_}})) {
    if (rec_ != nullptr) rec_->PhaseStarted(ep_, phase_);
  }

  ~Span() {
    const sim::Seconds end = ep_.now();
    if (rec_ != nullptr) rec_->Record(ep_.pid(), phase_, start_, end);
    hist_->Observe(end - start_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  trace::Recorder* rec_;
  sim::Endpoint& ep_;
  std::string phase_;
  sim::Seconds start_;
  Histogram* hist_;
};

}  // namespace rcc::obs
