#include "obs/trace_json.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "common/log.h"
#include "obs/json_lite.h"

namespace rcc::obs {
namespace {

// Virtual-time tracks per rank: tid 0 carries phase spans, tid 1 the
// per-collective op spans.
constexpr int kPhaseTid = 0;
constexpr int kOpTid = 1;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Virtual seconds -> trace microseconds. Perfetto sorts numerically, so
// plain fixed-point formatting (no exponent) is required.
std::string Micros(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e6;
  return os.str();
}

void AppendMetadata(std::ostringstream& os, int pid, int tid,
                    const char* what, const std::string& name, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << JsonEscape(name)
     << "\"}}";
}

}  // namespace

std::string ToChromeTraceJson(const trace::Recorder& rec) {
  const std::vector<trace::Event> events = rec.events();
  const std::vector<trace::OpEvent> ops = rec.op_events();
  const std::vector<trace::CounterSample> counters = rec.counter_samples();

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Track labels: one "process" per rank, named thread tracks.
  std::set<int> pids;
  for (const auto& e : events) pids.insert(e.pid);
  for (const auto& o : ops) pids.insert(o.pid);
  for (const auto& c : counters) pids.insert(c.pid);
  for (int pid : pids) {
    AppendMetadata(os, pid, kPhaseTid, "process_name",
                   "rank " + std::to_string(pid), &first);
    AppendMetadata(os, pid, kPhaseTid, "thread_name", "phases", &first);
    AppendMetadata(os, pid, kOpTid, "thread_name", "collectives", &first);
  }

  for (const auto& e : events) {
    if (!first) os << ",\n";
    first = false;
    // Category = phase prefix before '/' (init, recovery, step, ...),
    // letting Perfetto filter whole groups.
    const size_t slash = e.phase.find('/');
    const std::string cat =
        slash == std::string::npos ? "phase" : e.phase.substr(0, slash);
    os << "{\"name\":\"" << JsonEscape(e.phase) << "\",\"cat\":\""
       << JsonEscape(cat) << "\",\"ph\":\"X\",\"ts\":" << Micros(e.start)
       << ",\"dur\":" << Micros(e.duration()) << ",\"pid\":" << e.pid
       << ",\"tid\":" << kPhaseTid << "}";
  }

  for (const auto& o : ops) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << JsonEscape(o.algo) << "\",\"cat\":\"coll\","
       << "\"ph\":\"X\",\"ts\":" << Micros(o.submit)
       << ",\"dur\":" << Micros(o.latency()) << ",\"pid\":" << o.pid
       << ",\"tid\":" << kOpTid << ",\"args\":{\"op_id\":" << o.op_id
       << ",\"bytes\":" << Micros(o.bytes / 1e6)  // plain fixed-point
       << ",\"algo\":\"" << JsonEscape(o.algo) << "\"}}";
  }

  // Counter series (ph:"C"): one sample per record; Perfetto renders
  // each distinct name as a per-rank step chart.
  for (const auto& c : counters) {
    if (!first) os << ",\n";
    first = false;
    std::ostringstream val;
    val.setf(std::ios::fixed);
    val.precision(3);
    val << c.value;
    os << "{\"name\":\"" << JsonEscape(c.name) << "\",\"ph\":\"C\",\"ts\":"
       << Micros(c.t) << ",\"pid\":" << c.pid << ",\"tid\":0,\"args\":{\""
       << JsonEscape(c.name) << "\":" << val.str() << "}}";
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool WriteChromeTraceJson(const trace::Recorder& rec,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    RCC_LOG(kError) << "cannot open trace output " << path;
    return false;
  }
  out << ToChromeTraceJson(rec);
  out.flush();
  if (!out) {
    RCC_LOG(kError) << "short write on trace output " << path;
    return false;
  }
  return true;
}

bool ValidateChromeTraceJson(const std::string& json_text, std::string* error,
                             size_t* events_checked,
                             size_t* counters_checked) {
  json::Value doc;
  std::string perr;
  if (!json::Parse(json_text, &doc, &perr)) {
    if (error != nullptr) *error = "parse error: " + perr;
    return false;
  }
  if (!doc.is_object()) {
    if (error != nullptr) *error = "document is not a JSON object";
    return false;
  }
  const json::Value* evs = doc.Find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }
  size_t checked = 0;
  size_t counters = 0;
  for (size_t i = 0; i < evs->AsArray().size(); ++i) {
    const json::Value& e = evs->AsArray()[i];
    if (!e.is_object()) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) + "] is not an object";
      }
      return false;
    }
    const json::Value* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) + "] missing ph";
      }
      return false;
    }
    if (ph->AsString() == "C") {
      const char* bad = nullptr;
      const json::Value* name = e.Find("name");
      if (name == nullptr || !name->is_string()) bad = "name";
      for (const char* field : {"ts", "pid"}) {
        if (bad != nullptr) break;
        const json::Value* v = e.Find(field);
        if (v == nullptr || !v->is_number() ||
            !std::isfinite(v->AsNumber())) {
          bad = field;
        }
      }
      if (bad == nullptr) {
        const json::Value* cargs = e.Find("args");
        if (cargs == nullptr || !cargs->is_object()) {
          bad = "args";
        } else {
          // At least one finite numeric series value.
          bool numeric = false;
          for (const auto& [k, v] : cargs->AsObject()) {
            (void)k;
            if (v.is_number() && std::isfinite(v.AsNumber())) {
              numeric = true;
              break;
            }
          }
          if (!numeric) bad = "args (no finite numeric series)";
        }
      }
      if (bad != nullptr) {
        if (error != nullptr) {
          *error = "traceEvents[" + std::to_string(i) +
                   "] invalid counter field: " + bad;
        }
        return false;
      }
      ++counters;
      continue;
    }
    if (ph->AsString() != "X") continue;  // metadata events checked above
    const char* missing = nullptr;
    const json::Value* name = e.Find("name");
    if (name == nullptr || !name->is_string()) missing = "name";
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      const json::Value* v = e.Find(field);
      if (v == nullptr || !v->is_number() || !std::isfinite(v->AsNumber())) {
        missing = field;
        break;
      }
    }
    const json::Value* dur = e.Find("dur");
    if (missing == nullptr && dur->AsNumber() < 0) missing = "dur (negative)";
    if (missing != nullptr) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) +
                 "] invalid or missing field: " + missing;
      }
      return false;
    }
    ++checked;
  }
  if (checked == 0) {
    if (error != nullptr) *error = "no complete (ph:X) events in trace";
    return false;
  }
  if (events_checked != nullptr) *events_checked = checked;
  if (counters_checked != nullptr) *counters_checked = counters;
  return true;
}

}  // namespace rcc::obs
