// Minimal recursive-descent JSON parser, just enough to validate the
// trace files this library writes (and for tests to round-trip them).
// Not a general-purpose library: numbers parsed via strtod, 256-deep
// nesting cap. \uXXXX escapes decode the full range: surrogate pairs
// combine into one supplementary code point (4-byte UTF-8); a lone
// surrogate is a parse error, never CESU-8 output.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rcc::obs::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return *arr_; }
  const Object& AsObject() const { return *obj_; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// Parses `text` into *out. On failure returns false and describes the
// problem (with byte offset) in *error. Trailing whitespace allowed;
// trailing garbage is an error.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace rcc::obs::json
