// Chrome trace-event JSON export for trace::Recorder, loadable in
// Perfetto / chrome://tracing, plus a schema validator used by tests
// and the ctest check.
//
// Mapping: every trace::Event becomes a complete event (ph:"X") with
// ts/dur in microseconds of virtual time, pid = rank, tid 0 ("phases"
// track). Every trace::OpEvent becomes a ph:"X" on tid 1 ("collectives"
// track) named by its algorithm with {op_id, bytes, algo} args.
// Process/thread name metadata events (ph:"M") label the tracks.
#pragma once

#include <string>

#include "trace/trace.h"

namespace rcc::obs {

// Serializes the recorder's contents as a Chrome trace-event JSON
// object ({"traceEvents":[...],"displayTimeUnit":"ms"}).
std::string ToChromeTraceJson(const trace::Recorder& rec);

// Writes ToChromeTraceJson(rec) to `path`. Returns false (and logs) on
// I/O failure.
bool WriteChromeTraceJson(const trace::Recorder& rec, const std::string& path);

// Validates that `json` parses and is a Chrome trace-event document:
// a traceEvents array whose ph:"X" entries all carry numeric ts, dur,
// pid, tid and a string name. On failure returns false and sets
// `error` to a description; on success `events_checked` (if non-null)
// receives the number of complete events validated.
bool ValidateChromeTraceJson(const std::string& json, std::string* error,
                             size_t* events_checked = nullptr);

}  // namespace rcc::obs
