// Chrome trace-event JSON export for trace::Recorder, loadable in
// Perfetto / chrome://tracing, plus a schema validator used by tests
// and the ctest check.
//
// Mapping: every trace::Event becomes a complete event (ph:"X") with
// ts/dur in microseconds of virtual time, pid = rank, tid 0 ("phases"
// track). Every trace::OpEvent becomes a ph:"X" on tid 1 ("collectives"
// track) named by its algorithm with {op_id, bytes, algo} args. Every
// trace::CounterSample becomes a counter event (ph:"C") named by its
// series ("world_size", "in_flight_window"), rendered by Perfetto as a
// per-rank step chart. Process/thread name metadata events (ph:"M")
// label the tracks.
#pragma once

#include <string>

#include "trace/trace.h"

namespace rcc::obs {

// Serializes the recorder's contents as a Chrome trace-event JSON
// object ({"traceEvents":[...],"displayTimeUnit":"ms"}).
std::string ToChromeTraceJson(const trace::Recorder& rec);

// Writes ToChromeTraceJson(rec) to `path`. Returns false (and logs) on
// I/O failure.
bool WriteChromeTraceJson(const trace::Recorder& rec, const std::string& path);

// Validates that `json` parses and is a Chrome trace-event document:
// a traceEvents array whose ph:"X" entries all carry numeric ts, dur,
// pid, tid and a string name, and whose ph:"C" entries carry a string
// name, finite ts/pid, and an args object with at least one finite
// numeric series value. On failure returns false and sets `error` to a
// description; on success `events_checked` (if non-null) receives the
// number of complete events validated and `counters_checked` (if
// non-null) the number of counter events validated.
bool ValidateChromeTraceJson(const std::string& json, std::string* error,
                             size_t* events_checked = nullptr,
                             size_t* counters_checked = nullptr);

}  // namespace rcc::obs
