#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <sstream>

namespace rcc::obs {
namespace {

// Values are doubles carrying seconds/bytes/counts; print with enough
// precision to round-trip but without scientific clutter for integers.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// Labels with one extra pair spliced in, kept sorted (for the `le`
// bucket label in the histogram exposition).
std::string LabelStringWith(const Labels& labels, const std::string& key,
                            const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  std::sort(all.begin(), all.end());
  return LabelString(all);
}

std::string FormatBound(double b) {
  if (std::isinf(b)) return "+Inf";
  std::ostringstream os;
  os.precision(9);
  os << b;
  return os.str();
}

}  // namespace

std::string LabelString(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  out += "}";
  return out;
}

// --- Histogram ---

double Histogram::BucketBound(int i) {
  return kFirstBound * std::ldexp(1.0, i);  // kFirstBound * 2^i
}

int Histogram::BucketIndex(double v) {
  if (!(v > kFirstBound)) return 0;  // also catches NaN / negatives
  const int idx =
      static_cast<int>(std::ceil(std::log2(v / kFirstBound) - 1e-12));
  return std::min(idx, kBuckets - 1);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAdd(&sum_, v);
  const uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) {
    // First observation seeds min; racing observers fix it up below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  detail::AtomicMin(&min_, v);
  detail::AtomicMax(&max_, v);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.cumulative.reserve(kBuckets);
  uint64_t running = 0;
  for (int i = 0; i < kBuckets; ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    const double bound = (i == kBuckets - 1)
                             ? std::numeric_limits<double>::infinity()
                             : BucketBound(i);
    s.cumulative.emplace_back(bound, running);
  }
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t below = 0;
  double lower = 0.0;
  for (const auto& [bound, cum] : cumulative) {
    if (cum >= target) {
      // Linear interpolation by rank within the containing bucket; the
      // +Inf bucket borrows the observed max as its finite upper edge.
      const double upper = std::isinf(bound) ? max : bound;
      const uint64_t in_bucket = cum - below;
      const double frac =
          in_bucket == 0
              ? 1.0
              : static_cast<double>(target - below) /
                    static_cast<double>(in_bucket);
      const double v = lower + frac * (upper - lower);
      // The true value lies in [min, max]; the bucket edges may not.
      return std::min(max, std::max(min, v));
    }
    below = cum;
    lower = bound;
  }
  return max;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ---

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: instruments outlive exit
  return *g;
}

Registry::Instrument* Registry::GetOrCreate(const std::string& name,
                                            const Labels& labels,
                                            Instrument::Kind kind) {
  const std::string key = LabelString(labels);
  {
    std::shared_lock lock(mu_);
    auto fit = families_.find(name);
    if (fit != families_.end()) {
      auto iit = fit->second.instruments.find(key);
      if (iit != fit->second.instruments.end()) return iit->second.get();
    }
  }
  std::unique_lock lock(mu_);
  Family& fam = families_[name];
  fam.kind = kind;  // first registration decides; mixed kinds are a bug
  auto& slot = fam.instruments[key];
  if (!slot) {
    slot = std::make_unique<Instrument>();
    slot->kind = kind;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    slot->labels = std::move(sorted);
    switch (kind) {
      case Instrument::Kind::kCounter:
        slot->counter = std::make_unique<Counter>();
        break;
      case Instrument::Kind::kGauge:
        slot->gauge = std::make_unique<Gauge>();
        break;
      case Instrument::Kind::kHistogram:
        slot->histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return slot.get();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  return GetOrCreate(name, labels, Instrument::Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(name, labels, Instrument::Kind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  return GetOrCreate(name, labels, Instrument::Kind::kHistogram)
      ->histogram.get();
}

void Registry::SetHelp(const std::string& name, const std::string& help) {
  std::unique_lock lock(mu_);
  families_[name].help = help;
}

const Registry::Instrument* Registry::Find(const std::string& name,
                                           const Labels& labels) const {
  std::shared_lock lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return nullptr;
  auto iit = fit->second.instruments.find(LabelString(labels));
  if (iit == fit->second.instruments.end()) return nullptr;
  return iit->second.get();
}

double Registry::CounterValue(const std::string& name,
                              const Labels& labels) const {
  const Instrument* in = Find(name, labels);
  return in && in->counter ? in->counter->Value() : 0.0;
}

double Registry::GaugeValue(const std::string& name,
                            const Labels& labels) const {
  const Instrument* in = Find(name, labels);
  return in && in->gauge ? in->gauge->Value() : 0.0;
}

Histogram::Snapshot Registry::HistogramSnapshot(const std::string& name,
                                                const Labels& labels) const {
  const Instrument* in = Find(name, labels);
  return in && in->histogram ? in->histogram->TakeSnapshot()
                             : Histogram::Snapshot{};
}

std::string Registry::PrometheusText() const {
  std::shared_lock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << fam.help << "\n";
    os << "# TYPE " << name << " ";
    switch (fam.kind) {
      case Instrument::Kind::kCounter:
        os << "counter\n";
        break;
      case Instrument::Kind::kGauge:
        os << "gauge\n";
        break;
      case Instrument::Kind::kHistogram:
        os << "histogram\n";
        break;
    }
    for (const auto& [key, in] : fam.instruments) {
      switch (in->kind) {
        case Instrument::Kind::kCounter:
          os << name << key << " " << FormatValue(in->counter->Value()) << "\n";
          break;
        case Instrument::Kind::kGauge:
          os << name << key << " " << FormatValue(in->gauge->Value()) << "\n";
          break;
        case Instrument::Kind::kHistogram: {
          const Histogram::Snapshot s = in->histogram->TakeSnapshot();
          // Elide empty interior buckets to keep the exposition small;
          // cumulative counts make the skipped ones recoverable.
          uint64_t prev = 0;
          for (const auto& [bound, cum] : s.cumulative) {
            if (cum == prev && !std::isinf(bound)) continue;
            os << name << "_bucket"
               << LabelStringWith(in->labels, "le", FormatBound(bound)) << " "
               << cum << "\n";
            prev = cum;
          }
          os << name << "_sum" << key << " " << FormatValue(s.sum) << "\n";
          os << name << "_count" << key << " " << s.count << "\n";
          // Summary-style quantile series estimated from the buckets
          // (rank-interpolated, clamped to the observed range) so SLO
          // dashboards get p50/p99/p999 without client-side bucket math.
          for (const double q : {0.5, 0.9, 0.99, 0.999}) {
            os << name
               << LabelStringWith(in->labels, "quantile", FormatBound(q))
               << " " << FormatValue(s.Quantile(q)) << "\n";
          }
          break;
        }
      }
    }
  }
  return os.str();
}

std::string Registry::CsvText() const {
  std::shared_lock lock(mu_);
  std::ostringstream os;
  os << "metric,labels,type,value,count,sum,mean,min,max,p50,p90,p99,p999\n";
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, in] : fam.instruments) {
      // Labels cell is quoted: the canonical label string contains
      // commas and double quotes.
      std::string quoted = "\"";
      for (char c : key) {
        if (c == '"') quoted += "\"\"";
        else quoted.push_back(c);
      }
      quoted += "\"";
      switch (in->kind) {
        case Instrument::Kind::kCounter:
          os << name << "," << quoted << ",counter,"
             << FormatValue(in->counter->Value()) << ",,,,,,,,,\n";
          break;
        case Instrument::Kind::kGauge:
          os << name << "," << quoted << ",gauge,"
             << FormatValue(in->gauge->Value()) << ",,,,,,,,,\n";
          break;
        case Instrument::Kind::kHistogram: {
          const Histogram::Snapshot s = in->histogram->TakeSnapshot();
          os << name << "," << quoted << ",histogram,," << s.count << ","
             << FormatValue(s.sum) << "," << FormatValue(s.Mean()) << ","
             << FormatValue(s.min) << "," << FormatValue(s.max) << ","
             << FormatValue(s.Quantile(0.5)) << ","
             << FormatValue(s.Quantile(0.9)) << ","
             << FormatValue(s.Quantile(0.99)) << ","
             << FormatValue(s.Quantile(0.999)) << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

void Registry::ResetAll() {
  std::unique_lock lock(mu_);
  for (auto& [name, fam] : families_) {
    for (auto& [key, in] : fam.instruments) {
      switch (in->kind) {
        case Instrument::Kind::kCounter:
          in->counter->Reset();
          break;
        case Instrument::Kind::kGauge:
          in->gauge->Reset();
          break;
        case Instrument::Kind::kHistogram:
          in->histogram->Reset();
          break;
      }
    }
  }
}

}  // namespace rcc::obs
