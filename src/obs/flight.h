// Always-on flight recorder: a per-rank, fixed-size ring buffer of
// structured binary events recorded from the hot paths of the resilient
// stack — collective post/complete/replay (op ids), every ULFM state
// transition (revoke/agree/shrink/expand/splice, with round numbers),
// admission-protocol rounds, serving batcher admits/completions, and
// kvstore waits.
//
// Recording costs a few relaxed atomics per event (one fetch_add to
// claim a slot, relaxed field stores, one release store publishing the
// slot's sequence number), so it stays on by default even in chaos
// campaigns and scale smokes. Readers (DumpAll, postmortem tests)
// snapshot a ring seqlock-style: a slot whose sequence is odd or moved
// during the copy is being overwritten and is skipped.
//
// Dumps — one JSON file per rank, flight_rank<pid>.json — are triggered
// automatically on worker abort (DumpOnAbort), on a proven fiber-
// scheduler stall (sim stall observer, installed by InstallStallDump),
// on an oracle violation in the chaos runner, and on a serving SLO
// breach. tools/postmortem merges the per-rank dumps into one causal
// timeline and names the root-cause rank (see obs/postmortem.h).
//
// Knobs: RCC_FLIGHT (0 disables, default on), RCC_FLIGHT_RING (events
// per rank, default 4096), RCC_FLIGHT_DIR (dump directory, default ".").
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rcc::obs::flight {

// Event kinds. The a/b/c payload fields are kind-specific:
//
//   kCollPost       a=op id          b=element count   c=declared bytes
//   kCollComplete   a=op id                            c=latency (s)
//   kCollSvc        a=op id          b=ok (0/1)        c=service time (s)
//   kCollReplay     a=op id          b=agreed MIN id
//   kRevoke         a=comm context id
//   kAgree          a=agree round    b=MIN value       c=duration (s)
//   kShrink         a=survivors      b=failed count    c=duration (s)
//   kExpand         a=new world      b=expected joiners c=duration (s)
//   kExpandBegin    a=expected joiners
//   kExpandRound    a=round number   b=verdict (0 pending/1 spliced/
//                                      2 aborted)
//   kExpandSplice   a=admitted count                   c=duration since
//                                                        window open (s)
//   kExpandAbort                                       c=duration since
//                                                        window open (s)
//   kJoinAnnounce / kJoinStaged / kJoinWithdraw         (joiner side)
//   kJoinSpliced    a=admitted count
//   kLeave                                              (voluntary)
//   kRepairBegin    a=repair ordinal
//   kRepairDone     a=repair ordinal                   c=duration (s)
//   kRecoveryPhase  a=Phase code     b=repair ordinal  c=duration (s)
//   kFailureDetected a=failed pid
//   kSelfAbort
//   kServeAdmit     a=newly scheduled b=waiting after  c=prompt tokens
//   kServeComplete  a=request id     b=tokens          c=done-admit (s)
//   kKvWaitBegin    a=FNV-1a key hash (low 53 bits: double-exact)
//   kKvWaitEnd      a=FNV-1a key hash                  c=wait time (s)
//   kPolicyInputs   a=world after     b=event kind     c=MTBF estimate
//                     the event         (policy::        (s, 0 unknown)
//                                        EventKind)
//   kPolicyDecision a=chosen strategy b=decision seq   c=chosen modeled
//                     (policy::                          cost (worker-s)
//                      Strategy)
//
// kPolicyInputs/kPolicyDecision are recorded back-to-back by the same
// rank for every policy decision; tools/postmortem pairs them by
// adjacency to print the POLICY attribution lines.
enum class Ev : uint16_t {
  kCollPost = 1,
  kCollComplete,
  kCollSvc,
  kCollReplay,
  kRevoke,
  kAgree,
  kShrink,
  kExpand,
  kExpandBegin,
  kExpandRound,
  kExpandSplice,
  kExpandAbort,
  kJoinAnnounce,
  kJoinStaged,
  kJoinWithdraw,
  kJoinSpliced,
  kLeave,
  kRepairBegin,
  kRepairDone,
  kRecoveryPhase,
  kFailureDetected,
  kSelfAbort,
  kServeAdmit,
  kServeComplete,
  kKvWaitBegin,
  kKvWaitEnd,
  kPolicyInputs,
  kPolicyDecision,
};

const char* EvName(Ev kind);

// Recovery critical-path phases (kRecoveryPhase's `a` field). The same
// durations are observed into the rcc_recovery_phase_seconds{phase=...}
// histograms at the recording site, so a postmortem's per-phase sums
// match the metric deltas exactly.
enum class Phase : int64_t {
  kRevoke = 1,
  kAgree = 2,
  kShrink = 3,
  kRebuild = 4,
  kReplay = 5,
};

const char* PhaseName(Phase p);

struct Event {
  uint64_t index = 0;  // global record index on this rank (monotonic)
  double t = 0.0;      // virtual time
  Ev kind = Ev::kCollPost;
  int64_t a = 0;
  int64_t b = 0;
  double c = 0.0;
};

// One rank's ring. Obtained once via ForRank and cached by call sites;
// never deallocated while the process lives.
class Ring {
 public:
  Ring(int pid, uint64_t slots);
  ~Ring();
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  int pid() const { return pid_; }

  // Hot path: claims a slot and publishes the event. Safe from any
  // task/thread; a concurrent snapshot skips slots caught mid-write.
  void Record(Ev kind, double t, int64_t a = 0, int64_t b = 0,
              double c = 0.0);

  // Events still in the ring, oldest first. Lock-free readers: events
  // overwritten or in-flight during the copy are dropped.
  std::vector<Event> Snapshot() const;

  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  // Events pushed out of the ring by wraparound.
  uint64_t dropped() const;

  // JSON dump of this ring ({"schema":"rcc-flight-v1",...}).
  std::string ToJson(const std::string& reason) const;

  // Empties the ring in place. Only safe between runs (no concurrent
  // writers); cached Ring pointers stay valid. Used by ResetAll.
  void Reset();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 2*index+1 while writing, 2*index+2 done
    std::atomic<double> t{0.0};
    std::atomic<uint16_t> kind{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<double> c{0.0};
  };

  int pid_;
  uint64_t slots_;
  std::atomic<uint64_t> head_{0};
  Slot* ring_;
};

// Global on/off. Initialized from RCC_FLIGHT (default on); SetEnabled
// overrides at runtime (the overhead bench toggles it). Call sites
// guard Record with Enabled() — one relaxed atomic load.
bool Enabled();
void SetEnabled(bool on);

// The ring for `pid`, created on first use (RCC_FLIGHT_RING slots,
// default 4096). Never null, valid for the process lifetime.
Ring* ForRank(int pid);

// Empties every ring and clears the MTBF failure set. The chaos runner
// calls this at run start so each run's dumps are self-contained.
void ResetAll();

// Dump directory: `dir_override` if non-empty, else RCC_FLIGHT_DIR,
// else ".".
std::string DumpDir(const std::string& dir_override = "");

// Writes every rank's ring as <dir>/<prefix>flight_rank<pid>.json and
// returns the paths. `reason` is stamped into each file.
std::vector<std::string> DumpAll(const std::string& reason,
                                 const std::string& dir_override = "",
                                 const std::string& prefix = "");

// Worker-abort trigger: dumps all rings, overwriting any previous abort
// dump (a later abort has strictly more history, so the last dump is
// the most complete picture). Respects Enabled().
void DumpOnAbort();

// Installs a sim stall observer that dumps all rings (reason "stall")
// right before the stall handler / fatal abort fires. Idempotent.
void InstallStallDump();

// Failure observations feeding the Chameleon-facing live metrics:
// called once per failed pid per repair by the recovery path. The first
// observation of a pid updates rcc_failures_observed_total and the
// rcc_mtbf_seconds gauge (mean inter-failure virtual time across the
// run so far). Duplicate detections of the same pid (every survivor
// repairs the same failure) are ignored. ResetAll clears the set.
void NoteFailureDetected(int failed_pid, double t);

// Records one recovery phase: a kRecoveryPhase flight event on `ring`
// plus an observation into rcc_recovery_phase_seconds{phase=...} with
// the identical duration value.
void RecordRecoveryPhase(Ring* ring, Phase phase, double t_end,
                         int64_t repair_ordinal, double duration);

}  // namespace rcc::obs::flight
