// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms, all with label support.
//
// Design goals, in order:
//   1. Lock-cheap hot paths. Recording into an instrument is a handful
//      of relaxed atomics (a CAS-add for the double counters, a
//      fetch_add for histogram buckets) - no mutex, no allocation.
//      Looking an instrument up takes a shared lock on the registry map;
//      instrumented call sites either cache the returned pointer
//      (instruments are never deallocated while the registry lives) or
//      tolerate the read-mostly lookup, which only takes the exclusive
//      lock on first registration.
//   2. One registry per process (Registry::Global()), matching how the
//      simulated cluster runs every rank as a thread of one process:
//      cross-rank aggregation is free, and benches snapshot/diff the
//      registry around a run to get per-run deltas.
//   3. Text exposition in Prometheus format plus CSV, so any bench or
//      example can drop a scrapeable snapshot via RCC_METRICS_OUT (see
//      obs/export.h).
//
// Histograms are log-bucketed (powers of two over a seconds-oriented
// range): recovery spans stretch from microseconds (revoke) to tens of
// seconds (cold-start rendezvous), which a fixed linear layout cannot
// cover; the exponential layout gives ~3 significant bits everywhere at
// 64 buckets.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace rcc::obs {

// Sorted (key, value) pairs identifying one instrument of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// Lock-free add for std::atomic<double> (fetch_add on doubles is C++20
// but not universally lowered; the CAS loop is portable and the
// contention case - many ranks on one counter - stays short).
inline void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}
inline void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}
inline void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonically increasing value (events, bytes, accumulated seconds).
class Counter {
 public:
  void Add(double v) { detail::AtomicAdd(&value_, v); }
  void Increment() { Add(1.0); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-write-wins instantaneous value (world size, in-flight depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { detail::AtomicAdd(&value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed histogram. Bucket i collects observations in
// (kFirstBound * 2^(i-1), kFirstBound * 2^i]; bucket 0 additionally
// takes everything <= kFirstBound, the last bucket everything above the
// range (+Inf bucket in the Prometheus exposition).
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kFirstBound = 1e-9;  // 1 ns in seconds-units

  void Observe(double v);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    // Cumulative counts per upper bound, Prometheus-style; the final
    // entry's bound is +infinity.
    std::vector<std::pair<double, uint64_t>> cumulative;

    double Mean() const { return count == 0 ? 0.0 : sum / count; }
    // Quantile q in [0, 1] estimated from the bucket counts:
    // rank-interpolated within the containing bucket and clamped to the
    // observed [min, max], so the estimate's error is bounded by the
    // bucket width (~a factor of 2 worst case, exact at min/max).
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  static double BucketBound(int i);  // upper bound of bucket i
  static int BucketIndex(double v);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Process-wide instrument registry. Get* registers on first use and
// returns a pointer that stays valid for the registry's lifetime, so
// hot paths can cache it. Metric names should already be
// Prometheus-shaped (snake_case, unit-suffixed); the exporters only
// escape label values.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  // Optional HELP text attached to a metric family.
  void SetHelp(const std::string& name, const std::string& help);

  // Point lookups for tests and benches (0 / empty when absent).
  double CounterValue(const std::string& name, const Labels& labels = {}) const;
  double GaugeValue(const std::string& name, const Labels& labels = {}) const;
  Histogram::Snapshot HistogramSnapshot(const std::string& name,
                                        const Labels& labels = {}) const;

  // Prometheus text exposition (families sorted by name, instruments by
  // label string; histogram as _bucket/_sum/_count series plus
  // summary-style {quantile="0.5|0.9|0.99|0.999"} estimates).
  std::string PrometheusText() const;
  // Flat CSV: metric,labels,type,value,count,sum,mean,min,max,
  // p50,p90,p99,p999 (quantile columns filled for histograms only).
  std::string CsvText() const;

  // Zeroes every instrument, keeping registrations (a fresh bench run).
  void ResetAll();

 private:
  struct Instrument {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Instrument::Kind kind;
    std::string help;
    // label-key -> instrument; key is the serialized sorted label set.
    std::map<std::string, std::unique_ptr<Instrument>> instruments;
  };

  Instrument* GetOrCreate(const std::string& name, const Labels& labels,
                          Instrument::Kind kind);
  const Instrument* Find(const std::string& name, const Labels& labels) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, Family> families_;
};

// Serializes labels canonically ("{a=\"x\",b=\"y\"}", empty string for
// no labels); shared by the registry key and the Prometheus exporter.
std::string LabelString(const Labels& labels);

}  // namespace rcc::obs
