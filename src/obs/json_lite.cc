#include "obs/json_lite.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace rcc::obs::json {
namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(Value* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(), out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* lit, Value v, Value* out) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return Fail("invalid literal");
    pos_ += n;
    *out = std::move(v);
    return true;
  }

  bool ParseNumber(Value* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) return Fail("invalid number");
    pos_ += static_cast<size_t>(end - begin);
    *out = Value(d);
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else return Fail("invalid \\u escape");
    }
    *out = cp;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate in \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape MUST follow, and
            // the pair combines into one supplementary code point
            // (emitting the halves separately would produce CESU-8).
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("high surrogate not followed by low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          // UTF-8 encode (1..4 bytes).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    Array arr;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = Value(std::move(arr));
      return true;
    }
    while (true) {
      Value v;
      SkipWs();
      if (!ParseValue(&v, depth + 1)) return false;
      arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return Fail("expected ',' or ']'");
    }
    *out = Value(std::move(arr));
    return true;
  }

  bool ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    Object obj;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = Value(std::move(obj));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':'");
      }
      SkipWs();
      Value v;
      if (!ParseValue(&v, depth + 1)) return false;
      obj.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return Fail("expected ',' or '}'");
    }
    *out = Value(std::move(obj));
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  return Parser(text, error).ParseDocument(out);
}

}  // namespace rcc::obs::json
