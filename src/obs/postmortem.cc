#include "obs/postmortem.h"

#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "obs/json_lite.h"
#include "policy/policy.h"

namespace rcc::obs::postmortem {
namespace {

// Reverse of flight::EvName. Unknown names map to 0 (event kept in the
// timeline but ignored by the analyses).
flight::Ev EvFromName(const std::string& name) {
  static const std::unordered_map<std::string, flight::Ev>* map = [] {
    auto* m = new std::unordered_map<std::string, flight::Ev>();
    for (uint16_t k = 1;
         k <= static_cast<uint16_t>(flight::Ev::kPolicyDecision); ++k) {
      const auto ev = static_cast<flight::Ev>(k);
      (*m)[flight::EvName(ev)] = ev;
    }
    return m;
  }();
  auto it = map->find(name);
  return it == map->end() ? static_cast<flight::Ev>(0) : it->second;
}

double NumberOr(const json::Value* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

// The op id an event refers to, or INT64_MIN when the event kind has no
// op identity (used as the timeline's secondary sort key: op-less
// events sort before same-time op events).
int64_t OpKey(const flight::Event& e) {
  switch (e.kind) {
    case flight::Ev::kCollPost:
    case flight::Ev::kCollComplete:
    case flight::Ev::kCollSvc:
    case flight::Ev::kCollReplay:
      return e.a;
    default:
      return std::numeric_limits<int64_t>::min();
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(std::isfinite(v) ? buf : "null");
}

}  // namespace

bool ParseDumpJson(const std::string& text, RankDump* out,
                   std::string* error) {
  json::Value root;
  if (!json::Parse(text, &root, error)) return false;
  const json::Value* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "rcc-flight-v1") {
    *error = "not an rcc-flight-v1 dump";
    return false;
  }
  const json::Value* pid = root.Find("pid");
  const json::Value* events = root.Find("events");
  if (pid == nullptr || !pid->is_number() || events == nullptr ||
      !events->is_array()) {
    *error = "missing pid or events";
    return false;
  }
  out->pid = static_cast<int>(pid->AsNumber());
  if (const json::Value* r = root.Find("reason"); r != nullptr &&
                                                  r->is_string()) {
    out->reason = r->AsString();
  }
  out->ring = static_cast<uint64_t>(NumberOr(root.Find("ring"), 0));
  out->recorded = static_cast<uint64_t>(NumberOr(root.Find("recorded"), 0));
  out->dropped = static_cast<uint64_t>(NumberOr(root.Find("dropped"), 0));
  out->events.clear();
  out->events.reserve(events->AsArray().size());
  for (const json::Value& ev : events->AsArray()) {
    const json::Value* name = ev.Find("ev");
    if (name == nullptr || !name->is_string()) {
      *error = "event without \"ev\" kind";
      return false;
    }
    flight::Event e;
    e.index = static_cast<uint64_t>(NumberOr(ev.Find("i"), 0));
    e.t = NumberOr(ev.Find("t"), 0.0);
    e.kind = EvFromName(name->AsString());
    e.a = static_cast<int64_t>(NumberOr(ev.Find("a"), 0));
    e.b = static_cast<int64_t>(NumberOr(ev.Find("b"), 0));
    e.c = NumberOr(ev.Find("c"), 0.0);
    out->events.push_back(e);
  }
  return true;
}

bool ParseDumpFile(const std::string& path, RankDump* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseDumpJson(ss.str(), out, error);
}

std::vector<std::string> ListDumpFiles(const std::string& dir) {
  std::vector<std::string> paths;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return paths;
  while (const dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name.find("flight_rank") == std::string::npos) continue;
    if (name.size() < 5 || name.compare(name.size() - 5, 5, ".json") != 0)
      continue;
    paths.push_back(dir + "/" + name);
  }
  closedir(d);
  std::sort(paths.begin(), paths.end());
  return paths;
}

Report Analyze(std::vector<RankDump> dumps) {
  Report rep;
  rep.dumps = std::move(dumps);

  // Merged causal timeline keyed (virtual time, op id, pid, ring index).
  for (const RankDump& d : rep.dumps) {
    for (const flight::Event& e : d.events) {
      rep.timeline.push_back({e.t, d.pid, e});
    }
  }
  std::sort(rep.timeline.begin(), rep.timeline.end(),
            [](const TimelineEntry& x, const TimelineEntry& y) {
              if (x.t != y.t) return x.t < y.t;
              const int64_t xo = OpKey(x.e), yo = OpKey(y.e);
              if (xo != yo) return xo < yo;
              if (x.pid != y.pid) return x.pid < y.pid;
              return x.e.index < y.e.index;
            });

  // Collective lifecycles.
  for (const TimelineEntry& te : rep.timeline) {
    const flight::Event& e = te.e;
    auto touch = [&](int64_t op) -> OpLifecycle& {
      OpLifecycle& l = rep.ops[op];
      l.op_id = op;
      return l;
    };
    switch (e.kind) {
      case flight::Ev::kCollPost: {
        OpLifecycle& l = touch(e.a);
        if (l.posted_by.empty()) l.first_post_t = e.t;
        l.posted_by.push_back(te.pid);
        break;
      }
      case flight::Ev::kCollComplete: {
        OpLifecycle& l = touch(e.a);
        l.completed_by.push_back(te.pid);
        l.last_complete_t = std::max(l.last_complete_t, e.t);
        break;
      }
      case flight::Ev::kCollReplay: {
        touch(e.a).replayed_by.push_back(te.pid);
        break;
      }
      default:
        break;
    }
  }
  for (auto& [op, l] : rep.ops) {
    l.stalled = !l.posted_by.empty() && l.completed_by.empty();
  }

  // Per-repair recovery attribution.
  for (const TimelineEntry& te : rep.timeline) {
    if (te.e.kind != flight::Ev::kRecoveryPhase) continue;
    const int phase = static_cast<int>(te.e.a);
    if (phase < 1 || phase > 5) continue;
    RepairBreakdown& rb = rep.repairs[te.e.b];
    rb.repair = te.e.b;
    rb.critical[phase] = std::max(rb.critical[phase], te.e.c);
    rb.total[phase] += te.e.c;
  }
  for (auto& [repair, rb] : rep.repairs) {
    // Count distinct reporting ranks via the replay-phase events (every
    // rank emits each phase once per repair; any phase would do).
    int ranks = 0;
    for (const TimelineEntry& te : rep.timeline) {
      if (te.e.kind == flight::Ev::kRecoveryPhase && te.e.b == repair &&
          te.e.a == static_cast<int64_t>(flight::Phase::kRevoke)) {
        ++ranks;
      }
    }
    rb.ranks = ranks;
  }

  // Policy-decision attribution: the controller records kPolicyInputs
  // and kPolicyDecision back-to-back on the deciding rank's ring, so
  // pairing is by adjacency within each rank's own event stream.
  for (const RankDump& d : rep.dumps) {
    const flight::Event* pending = nullptr;
    for (const flight::Event& e : d.events) {
      if (e.kind == flight::Ev::kPolicyInputs) {
        pending = &e;
        continue;
      }
      if (e.kind == flight::Ev::kPolicyDecision && pending != nullptr) {
        PolicyNote n;
        n.pid = d.pid;
        n.t = e.t;
        n.seq = e.b;
        n.event = static_cast<int>(pending->b);
        n.world = static_cast<int>(pending->a);
        n.mtbf = pending->c;
        n.strategy = static_cast<int>(e.a);
        n.cost = e.c;
        rep.policy.push_back(n);
      }
      pending = nullptr;
    }
  }
  std::sort(rep.policy.begin(), rep.policy.end(),
            [](const PolicyNote& x, const PolicyNote& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.pid != y.pid) return x.pid < y.pid;
              return x.seq < y.seq;
            });

  // Root cause.
  const TimelineEntry* first_abort = nullptr;
  const TimelineEntry* first_detect = nullptr;
  for (const TimelineEntry& te : rep.timeline) {
    if (te.e.kind == flight::Ev::kSelfAbort && first_abort == nullptr) {
      first_abort = &te;
    }
    if (te.e.kind == flight::Ev::kFailureDetected &&
        first_detect == nullptr) {
      first_detect = &te;
    }
  }
  char detail[160];
  if (first_abort != nullptr) {
    rep.root_cause.rank = first_abort->pid;
    rep.root_cause.kind = "self_abort";
    std::snprintf(detail, sizeof(detail),
                  "rank %d aborted first at t=%.9g", first_abort->pid,
                  first_abort->t);
    rep.root_cause.detail = detail;
  } else if (first_detect != nullptr) {
    rep.root_cause.rank = static_cast<int>(first_detect->e.a);
    rep.root_cause.kind = "first_failure";
    std::snprintf(detail, sizeof(detail),
                  "rank %d detected the failure of rank %d at t=%.9g",
                  first_detect->pid, static_cast<int>(first_detect->e.a),
                  first_detect->t);
    rep.root_cause.detail = detail;
  } else {
    // Straggler analysis: earliest stalled op; the guilty rank is one
    // that never posted it — it went quiet while peers entered the
    // collective and parked forever.
    const OpLifecycle* stalled = nullptr;
    for (const auto& [op, l] : rep.ops) {
      if (l.stalled && (stalled == nullptr || op < stalled->op_id)) {
        stalled = &l;
      }
    }
    if (stalled != nullptr) {
      // Last event time per rank = when each rank last made progress.
      std::map<int, double> last_t;
      for (const RankDump& d : rep.dumps) {
        double t = 0.0;
        for (const flight::Event& e : d.events) t = std::max(t, e.t);
        last_t[d.pid] = t;
      }
      int guilty = -1;
      double guilty_t = std::numeric_limits<double>::infinity();
      for (const auto& [pid, t] : last_t) {
        const bool posted =
            std::find(stalled->posted_by.begin(), stalled->posted_by.end(),
                      pid) != stalled->posted_by.end();
        if (posted) continue;
        if (t < guilty_t) {
          guilty = pid;
          guilty_t = t;
        }
      }
      if (guilty < 0) {
        // Everyone posted yet nobody completed: blame the rank that
        // went quiet first anyway.
        for (const auto& [pid, t] : last_t) {
          if (t < guilty_t) {
            guilty = pid;
            guilty_t = t;
          }
        }
      }
      rep.root_cause.rank = guilty;
      rep.root_cause.kind = "straggler";
      std::snprintf(detail, sizeof(detail),
                    "op %lld posted by %zu rank(s), completed by none; "
                    "rank %d never posted (last event t=%.9g)",
                    static_cast<long long>(stalled->op_id),
                    stalled->posted_by.size(), guilty, guilty_t);
      rep.root_cause.detail = detail;
    }
  }
  return rep;
}

std::string FormatReport(const Report& rep) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "ROOT-CAUSE rank=%d kind=%s %s\n",
                rep.root_cause.rank, rep.root_cause.kind.c_str(),
                rep.root_cause.detail.c_str());
  out.append(line);

  size_t stalled = 0, replayed = 0, completed = 0;
  for (const auto& [op, l] : rep.ops) {
    if (l.stalled) ++stalled;
    if (!l.replayed_by.empty()) ++replayed;
    if (!l.completed_by.empty()) ++completed;
  }
  std::snprintf(line, sizeof(line),
                "ranks=%zu events=%zu ops=%zu completed=%zu replayed=%zu "
                "stalled=%zu repairs=%zu\n",
                rep.dumps.size(), rep.timeline.size(), rep.ops.size(),
                completed, replayed, stalled, rep.repairs.size());
  out.append(line);

  for (const auto& [repair, rb] : rep.repairs) {
    double crit_sum = 0.0, total_sum = 0.0;
    for (int p = 1; p <= 5; ++p) {
      crit_sum += rb.critical[p];
      total_sum += rb.total[p];
    }
    std::snprintf(line, sizeof(line),
                  "repair %lld (%d rank(s)): critical path %.9gs, "
                  "rank-seconds %.9g\n",
                  static_cast<long long>(repair), rb.ranks, crit_sum,
                  total_sum);
    out.append(line);
    for (int p = 1; p <= 5; ++p) {
      std::snprintf(line, sizeof(line), "  %-8s %.9gs (sum %.9gs)\n",
                    flight::PhaseName(static_cast<flight::Phase>(p)),
                    rb.critical[p], rb.total[p]);
      out.append(line);
    }
  }

  for (const PolicyNote& n : rep.policy) {
    std::snprintf(line, sizeof(line),
                  "POLICY rank=%d t=%.9g seq=%lld event=%s world=%d "
                  "mtbf=%.9g chosen=%s cost=%.9g\n",
                  n.pid, n.t, static_cast<long long>(n.seq),
                  policy::EventKindName(static_cast<policy::EventKind>(
                      n.event)),
                  n.world, n.mtbf,
                  policy::StrategyName(static_cast<policy::Strategy>(
                      n.strategy)),
                  n.cost);
    out.append(line);
  }

  for (const auto& [op, l] : rep.ops) {
    if (!l.stalled) continue;
    std::string posted;
    for (size_t i = 0; i < l.posted_by.size() && i < 16; ++i) {
      if (i > 0) posted.push_back(',');
      posted.append(std::to_string(l.posted_by[i]));
    }
    std::snprintf(line, sizeof(line),
                  "stalled op %lld: posted at t=%.9g by [%s]%s\n",
                  static_cast<long long>(op), l.first_post_t,
                  posted.c_str(),
                  l.posted_by.size() > 16 ? ",..." : "");
    out.append(line);
  }
  return out;
}

std::string ReportToJson(const Report& rep) {
  std::string out = "{\"root_cause\":{\"rank\":";
  out.append(std::to_string(rep.root_cause.rank));
  out.append(",\"kind\":\"");
  out.append(rep.root_cause.kind);
  out.append("\"},\"ranks\":");
  out.append(std::to_string(rep.dumps.size()));
  out.append(",\"events\":");
  out.append(std::to_string(rep.timeline.size()));
  out.append(",\"repairs\":[");
  bool first = true;
  for (const auto& [repair, rb] : rep.repairs) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"repair\":");
    out.append(std::to_string(repair));
    out.append(",\"ranks\":");
    out.append(std::to_string(rb.ranks));
    for (int p = 1; p <= 5; ++p) {
      out.append(",\"");
      out.append(flight::PhaseName(static_cast<flight::Phase>(p)));
      out.append("\":{\"critical\":");
      AppendDouble(&out, rb.critical[p]);
      out.append(",\"sum\":");
      AppendDouble(&out, rb.total[p]);
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("],\"policy\":[");
  first = true;
  for (const PolicyNote& n : rep.policy) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"rank\":");
    out.append(std::to_string(n.pid));
    out.append(",\"t\":");
    AppendDouble(&out, n.t);
    out.append(",\"seq\":");
    out.append(std::to_string(n.seq));
    out.append(",\"event\":\"");
    out.append(policy::EventKindName(static_cast<policy::EventKind>(
        n.event)));
    out.append("\",\"world\":");
    out.append(std::to_string(n.world));
    out.append(",\"mtbf\":");
    AppendDouble(&out, n.mtbf);
    out.append(",\"chosen\":\"");
    out.append(policy::StrategyName(static_cast<policy::Strategy>(
        n.strategy)));
    out.append("\",\"cost\":");
    AppendDouble(&out, n.cost);
    out.push_back('}');
  }
  out.append("],\"stalled_ops\":[");
  first = true;
  for (const auto& [op, l] : rep.ops) {
    if (!l.stalled) continue;
    if (!first) out.push_back(',');
    first = false;
    out.append(std::to_string(op));
  }
  out.append("]}\n");
  return out;
}

}  // namespace rcc::obs::postmortem
