// Environment-driven observability dumps shared by benches, examples
// and tests:
//
//   RCC_TRACE_JSON=<path>   write the run's trace::Recorder as Chrome
//                           trace-event JSON (open in Perfetto)
//   RCC_METRICS_OUT=<path>  write the global metrics registry as
//                           Prometheus text at <path> and CSV at
//                           <path>.csv (or, when <path> ends in .csv,
//                           CSV there and Prometheus alongside)
//
// Callers invoke DumpIfRequested once per run; a later call overwrites
// an earlier one, so the files hold the final run's data.
#pragma once

#include <string>

#include "trace/trace.h"

namespace rcc::obs {

// True when the respective env knob is set (to a non-empty path).
bool TraceJsonRequested();
bool MetricsOutRequested();

// Writes whichever outputs the environment asks for. `rec` may be null
// (metrics only). Returns false if any requested write failed.
bool DumpIfRequested(const trace::Recorder* rec);

// Unconditional writers, for callers managing their own paths.
bool WriteMetricsFiles(const std::string& path);

}  // namespace rcc::obs
