// Cross-rank post-mortem forensics over flight-recorder dumps. Parses
// the per-rank flight_rank<pid>.json files the recorder writes on
// abort/stall/oracle-violation/SLO-breach, merges them into one causal
// timeline keyed (virtual time, op id, pid), reconstructs each
// collective's lifecycle across ranks (who posted, who completed, who
// replayed), names the root-cause rank, and attributes each repair's
// recovery time across the revoke→agree→shrink/rebuild→replay phases.
//
// Root-cause rules, in order:
//   1. self_abort     — the rank with the earliest kSelfAbort event;
//   2. first_failure  — the victim pid named by the earliest
//                       kFailureDetected event (mid-run kills: every
//                       survivor detects the same pid);
//   3. straggler      — for the earliest collective op that was posted
//                       by some rank but completed by none, the rank
//                       that never posted it (tie-broken by earliest
//                       last-event time: the rank that stopped making
//                       progress first). Catches planted stalls where
//                       nobody died, someone just went quiet.
//
// The library half lives in rcc_obs so tests can assert on the analysis
// directly; tools/postmortem is a thin CLI over it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace rcc::obs::postmortem {

// One parsed flight_rank<pid>.json.
struct RankDump {
  int pid = -1;
  std::string reason;
  uint64_t ring = 0;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  std::vector<flight::Event> events;  // oldest first, as dumped
};

// One merged-timeline entry: a flight event plus its originating rank.
struct TimelineEntry {
  double t = 0.0;
  int pid = -1;
  flight::Event e;
};

// A collective op's lifecycle reconstructed across ranks.
struct OpLifecycle {
  int64_t op_id = -1;
  std::vector<int> posted_by;
  std::vector<int> completed_by;
  std::vector<int> replayed_by;
  double first_post_t = 0.0;
  double last_complete_t = 0.0;
  // Posted somewhere, completed nowhere: the op everyone is stuck on.
  bool stalled = false;
};

// Per-repair recovery attribution from kRecoveryPhase events. Indexing
// by flight::Phase value (1..5); index 0 unused.
struct RepairBreakdown {
  int64_t repair = 0;
  // Critical path: the slowest rank's duration for each phase (the wall
  // time the repair actually spent there).
  double critical[6] = {};
  // Sum across ranks — comparable 1:1 with the
  // rcc_recovery_phase_seconds{phase=...} histogram-sum deltas, which
  // get one observation per rank per repair.
  double total[6] = {};
  int ranks = 0;  // ranks that reported this repair
};

struct RootCause {
  int rank = -1;
  // "self_abort" | "first_failure" | "straggler" | "unknown"
  std::string kind = "unknown";
  std::string detail;
};

// One recovery-policy decision reconstructed from a rank's adjacent
// kPolicyInputs + kPolicyDecision flight events (the controller records
// them back-to-back on the deciding rank's ring).
struct PolicyNote {
  int pid = -1;
  double t = 0.0;      // decision event time
  int64_t seq = 0;     // global decision ordinal
  int event = 0;       // policy::EventKind value from the inputs event
  int world = 0;       // membership after the event
  double mtbf = 0.0;   // live MTBF estimate fed to the decision (s)
  int strategy = 0;    // policy::Strategy value chosen
  double cost = 0.0;   // chosen strategy's modeled cost (worker-seconds)
};

struct Report {
  std::vector<RankDump> dumps;
  std::vector<TimelineEntry> timeline;  // sorted (t, op id, pid, index)
  std::map<int64_t, OpLifecycle> ops;
  std::map<int64_t, RepairBreakdown> repairs;
  // Sorted (t, pid, seq); one entry per rank per decision.
  std::vector<PolicyNote> policy;
  RootCause root_cause;
};

// Parses one dump's JSON text. On failure returns false with *error set.
bool ParseDumpJson(const std::string& text, RankDump* out,
                   std::string* error);

// Reads + parses one dump file.
bool ParseDumpFile(const std::string& path, RankDump* out,
                   std::string* error);

// All <dir>/*flight_rank*.json paths, sorted.
std::vector<std::string> ListDumpFiles(const std::string& dir);

// Merges the dumps and runs the full analysis.
Report Analyze(std::vector<RankDump> dumps);

// Human-readable report. The first line is machine-greppable:
//   ROOT-CAUSE rank=<N> kind=<kind> <detail>
std::string FormatReport(const Report& report);

// The same report as JSON (for downstream tooling).
std::string ReportToJson(const Report& report);

}  // namespace rcc::obs::postmortem
