#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "common/env.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace rcc::obs::flight {
namespace {

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

std::atomic<bool> g_enabled{[] {
  const char* v = std::getenv("RCC_FLIGHT");
  return !(v != nullptr && (v[0] == '0' || v[0] == 'f' || v[0] == 'F') );
}()};

uint64_t RingSlots() {
  static const uint64_t slots = [] {
    const int64_t n = common::EnvInt64("RCC_FLIGHT_RING", 4096);
    return static_cast<uint64_t>(n >= 16 ? n : 4096);
  }();
  return slots;
}

// Ring registry. Rings are created on first use and live for the whole
// process (call sites cache the pointer); ResetAll empties them in
// place instead of deallocating.
struct State {
  std::mutex mu;
  std::map<int, std::unique_ptr<Ring>> rings;
  // Failure observations (deduped by pid) for the MTBF estimator.
  std::set<int> failed_pids;
  double first_failure_t = 0.0;
  double last_failure_t = 0.0;
};

State& GlobalState() {
  static State* s = new State();
  return *s;
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g prints inf/nan, which JSON forbids; clamp to null.
  if (buf[0] == 'i' || buf[0] == 'n' || buf[1] == 'i' || buf[1] == 'n') {
    out->append("null");
  } else {
    out->append(buf);
  }
}

}  // namespace

const char* EvName(Ev kind) {
  switch (kind) {
    case Ev::kCollPost: return "coll_post";
    case Ev::kCollComplete: return "coll_complete";
    case Ev::kCollSvc: return "coll_svc";
    case Ev::kCollReplay: return "coll_replay";
    case Ev::kRevoke: return "revoke";
    case Ev::kAgree: return "agree";
    case Ev::kShrink: return "shrink";
    case Ev::kExpand: return "expand";
    case Ev::kExpandBegin: return "expand_begin";
    case Ev::kExpandRound: return "expand_round";
    case Ev::kExpandSplice: return "expand_splice";
    case Ev::kExpandAbort: return "expand_abort";
    case Ev::kJoinAnnounce: return "join_announce";
    case Ev::kJoinStaged: return "join_staged";
    case Ev::kJoinWithdraw: return "join_withdraw";
    case Ev::kJoinSpliced: return "join_spliced";
    case Ev::kLeave: return "leave";
    case Ev::kRepairBegin: return "repair_begin";
    case Ev::kRepairDone: return "repair_done";
    case Ev::kRecoveryPhase: return "recovery_phase";
    case Ev::kFailureDetected: return "failure_detected";
    case Ev::kSelfAbort: return "self_abort";
    case Ev::kServeAdmit: return "serve_admit";
    case Ev::kServeComplete: return "serve_complete";
    case Ev::kKvWaitBegin: return "kv_wait_begin";
    case Ev::kKvWaitEnd: return "kv_wait_end";
    case Ev::kPolicyInputs: return "policy_inputs";
    case Ev::kPolicyDecision: return "policy_decision";
  }
  return "unknown";
}

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kRevoke: return "revoke";
    case Phase::kAgree: return "agree";
    case Phase::kShrink: return "shrink";
    case Phase::kRebuild: return "rebuild";
    case Phase::kReplay: return "replay";
  }
  return "unknown";
}

Ring::Ring(int pid, uint64_t slots)
    : pid_(pid), slots_(slots), ring_(new Slot[slots]) {}

Ring::~Ring() { delete[] ring_; }

void Ring::Record(Ev kind, double t, int64_t a, int64_t b, double c) {
  const uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring_[i % slots_];
  // Seqlock publication: odd while the fields are being replaced, then
  // 2*i+2 (even, index-stamped) once the event is whole. A reader that
  // sees any other value skips the slot.
  s.seq.store(2 * i + 1, std::memory_order_relaxed);
  s.t.store(t, std::memory_order_relaxed);
  s.kind.store(static_cast<uint16_t>(kind), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.c.store(c, std::memory_order_relaxed);
  s.seq.store(2 * i + 2, std::memory_order_release);
}

std::vector<Event> Ring::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > slots_ ? head - slots_ : 0;
  std::vector<Event> out;
  out.reserve(head - first);
  for (uint64_t i = first; i < head; ++i) {
    const Slot& s = ring_[i % slots_];
    if (s.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
    Event e;
    e.index = i;
    e.t = s.t.load(std::memory_order_relaxed);
    e.kind = static_cast<Ev>(s.kind.load(std::memory_order_relaxed));
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.c = s.c.load(std::memory_order_relaxed);
    // Re-check: if a writer lapped us mid-copy the fields are torn.
    if (s.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
    out.push_back(e);
  }
  return out;
}

uint64_t Ring::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > slots_ ? head - slots_ : 0;
}

std::string Ring::ToJson(const std::string& reason) const {
  const std::vector<Event> events = Snapshot();
  std::string out;
  out.reserve(96 + events.size() * 80);
  out.append("{\"schema\":\"rcc-flight-v1\",\"pid\":");
  out.append(std::to_string(pid_));
  out.append(",\"reason\":\"");
  for (char ch : reason) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) >= 0x20) out.push_back(ch);
  }
  out.append("\",\"ring\":");
  out.append(std::to_string(slots_));
  out.append(",\"recorded\":");
  out.append(std::to_string(recorded()));
  out.append(",\"dropped\":");
  out.append(std::to_string(dropped()));
  out.append(",\"events\":[");
  for (size_t k = 0; k < events.size(); ++k) {
    const Event& e = events[k];
    if (k > 0) out.push_back(',');
    out.append("\n{\"i\":");
    out.append(std::to_string(e.index));
    out.append(",\"t\":");
    AppendJsonDouble(&out, e.t);
    out.append(",\"ev\":\"");
    out.append(EvName(e.kind));
    out.append("\",\"a\":");
    out.append(std::to_string(e.a));
    out.append(",\"b\":");
    out.append(std::to_string(e.b));
    out.append(",\"c\":");
    AppendJsonDouble(&out, e.c);
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

void Ring::Reset() {
  // Only safe between runs (no concurrent writers): unpublish every
  // slot, then rewind the head.
  for (uint64_t k = 0; k < slots_; ++k) {
    ring_[k].seq.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

Ring* ForRank(int pid) {
  InstallStallDump();
  State& st = GlobalState();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.rings.find(pid);
  if (it == st.rings.end()) {
    it = st.rings.emplace(pid, std::make_unique<Ring>(pid, RingSlots()))
             .first;
  }
  return it->second.get();
}

void ResetAll() {
  State& st = GlobalState();
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto& [pid, ring] : st.rings) ring->Reset();
  st.failed_pids.clear();
  st.first_failure_t = 0.0;
  st.last_failure_t = 0.0;
}

std::string DumpDir(const std::string& dir_override) {
  if (!dir_override.empty()) return dir_override;
  if (const char* v = Env("RCC_FLIGHT_DIR")) return v;
  return ".";
}

std::vector<std::string> DumpAll(const std::string& reason,
                                 const std::string& dir_override,
                                 const std::string& prefix) {
  State& st = GlobalState();
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    rings.reserve(st.rings.size());
    for (auto& [pid, ring] : st.rings) rings.push_back(ring.get());
  }
  // Serialize dumps: concurrent aborts (threads engine) must not write
  // the same files at once.
  static std::mutex dump_mu;
  std::lock_guard<std::mutex> dump_lock(dump_mu);
  const std::string dir = DumpDir(dir_override);
  std::vector<std::string> paths;
  for (Ring* ring : rings) {
    const std::string path = dir + "/" + prefix + "flight_rank" +
                             std::to_string(ring->pid()) + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      RCC_LOG(kError) << "flight: cannot open " << path;
      continue;
    }
    out << ring->ToJson(reason);
    out.flush();
    if (!out) {
      RCC_LOG(kError) << "flight: short write on " << path;
      continue;
    }
    paths.push_back(path);
  }
  if (!paths.empty()) {
    RCC_LOG(kInfo) << "flight: dumped " << paths.size() << " ring(s) to "
                   << dir << " (reason: " << reason << ")";
  }
  return paths;
}

void DumpOnAbort() {
  if (!Enabled()) return;
  // Every abort re-dumps (overwriting the previous files): a later
  // abort has strictly more history in its rings, so the last dump is
  // the most complete picture.
  DumpAll("abort");
}

void InstallStallDump() {
  static const bool installed = [] {
    sim::SetStallObserver([](const std::string& report) {
      if (!Enabled()) return;
      DumpAll("stall: " + report);
    });
    return true;
  }();
  (void)installed;
}

void NoteFailureDetected(int failed_pid, double t) {
  State& st = GlobalState();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.failed_pids.insert(failed_pid).second) return;
  const size_t n = st.failed_pids.size();
  if (n == 1) {
    st.first_failure_t = t;
    st.last_failure_t = t;
  } else {
    st.first_failure_t = std::min(st.first_failure_t, t);
    st.last_failure_t = std::max(st.last_failure_t, t);
  }
  static Counter* failures =
      Registry::Global().GetCounter("rcc_failures_observed_total");
  static Gauge* mtbf = Registry::Global().GetGauge("rcc_mtbf_seconds");
  failures->Increment();
  // MTBF estimate over the run so far: mean inter-failure virtual time,
  // or time-to-first-failure while only one failure has been seen.
  mtbf->Set(n >= 2 ? (st.last_failure_t - st.first_failure_t) /
                         static_cast<double>(n - 1)
                   : st.first_failure_t);
}

void RecordRecoveryPhase(Ring* ring, Phase phase, double t_end,
                         int64_t repair_ordinal, double duration) {
  if (ring != nullptr && Enabled()) {
    ring->Record(Ev::kRecoveryPhase, t_end, static_cast<int64_t>(phase),
                 repair_ordinal, duration);
  }
  static Histogram* hists[6] = {};
  const int idx = static_cast<int>(phase);
  if (idx < 1 || idx > 5) return;
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& reg = Registry::Global();
    reg.SetHelp("rcc_recovery_phase_seconds",
                "Per-phase recovery duration (revoke/agree/shrink/"
                "rebuild/replay), one observation per repair per rank.");
    for (int p = 1; p <= 5; ++p) {
      hists[p] = reg.GetHistogram(
          "rcc_recovery_phase_seconds",
          {{"phase", PhaseName(static_cast<Phase>(p))}});
    }
  });
  hists[idx]->Observe(duration);
}

}  // namespace rcc::obs::flight
