#include "obs/export.h"

#include <cstdlib>
#include <fstream>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace_json.h"

namespace rcc::obs {
namespace {

const char* Env(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

bool WriteFileOrLog(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    RCC_LOG(kError) << "cannot open " << path;
    return false;
  }
  out << contents;
  out.flush();
  if (!out) {
    RCC_LOG(kError) << "short write on " << path;
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool TraceJsonRequested() { return Env("RCC_TRACE_JSON") != nullptr; }
bool MetricsOutRequested() { return Env("RCC_METRICS_OUT") != nullptr; }

bool WriteMetricsFiles(const std::string& path) {
  Registry& reg = Registry::Global();
  std::string prom_path = path;
  std::string csv_path = path + ".csv";
  if (EndsWith(path, ".csv")) {
    csv_path = path;
    prom_path = path.substr(0, path.size() - 4) + ".prom";
  }
  bool ok = WriteFileOrLog(prom_path, reg.PrometheusText());
  ok = WriteFileOrLog(csv_path, reg.CsvText()) && ok;
  return ok;
}

bool DumpIfRequested(const trace::Recorder* rec) {
  bool ok = true;
  if (const char* path = Env("RCC_TRACE_JSON"); path != nullptr &&
                                                rec != nullptr) {
    ok = WriteChromeTraceJson(*rec, path) && ok;
  }
  if (const char* path = Env("RCC_METRICS_OUT")) {
    ok = WriteMetricsFiles(path) && ok;
  }
  return ok;
}

}  // namespace rcc::obs
