#include "kvstore/kvstore.h"

#include <cstring>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace rcc::kv {
namespace {

// Per-operation traffic counter (the rendezvous path is O(P) reads per
// joiner, worth watching at scale).
void CountOp(const char* op) {
  obs::Registry::Global()
      .GetCounter("rcc_kv_ops_total", {{"op", op}})
      ->Increment();
}

// The store key count, updated wherever the map mutates.
void SetKeysGauge(size_t n) {
  obs::Registry::Global()
      .GetGauge("rcc_kv_keys")
      ->Set(static_cast<double>(n));
}

// Stable 53-bit key fingerprint (FNV-1a, truncated) so blocking waits
// can be correlated across ranks in flight-recorder dumps without
// storing strings in the fixed-size ring. 53 bits keeps the hash
// exactly representable as a double, so it survives the JSON dump →
// postmortem parse round-trip bit-identically.
int64_t KeyHash(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int64_t>(h & ((1ull << 53) - 1));
}

}  // namespace

Status Store::Set(sim::Endpoint* ep, const std::string& key,
                  std::vector<uint8_t> value) {
  CountOp("set");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = data_[key];
  entry.value = std::move(value);
  entry.visible_at = ep != nullptr ? ep->now() : 0.0;
  ++entry.version;
  SetKeysGauge(data_.size());
  wp_.NotifyAll();
  return Status::Ok();
}

Status Store::SetString(sim::Endpoint* ep, const std::string& key,
                        const std::string& value) {
  return Set(ep, key, std::vector<uint8_t>(value.begin(), value.end()));
}

Result<std::vector<uint8_t>> Store::Get(sim::Endpoint* ep,
                                        const std::string& key) {
  CountOp("get");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) {
    return Status(Code::kNotFound, "kv: no such key: " + key);
  }
  if (ep != nullptr) ep->AdvanceTo(it->second.visible_at + roundtrip_);
  return it->second.value;
}

Result<std::string> Store::GetString(sim::Endpoint* ep,
                                     const std::string& key) {
  auto r = Get(ep, key);
  if (!r.ok()) return r.status();
  return std::string(r.value().begin(), r.value().end());
}

Result<std::vector<uint8_t>> Store::Wait(sim::Endpoint* ep,
                                         const std::string& key) {
  CountOp("wait");
  Charge(ep);
  obs::flight::Ring* fly = nullptr;
  double wait_begin = 0.0;
  if (ep != nullptr && obs::flight::Enabled()) {
    fly = obs::flight::ForRank(ep->pid());
    wait_begin = ep->now();
    fly->Record(obs::flight::Ev::kKvWaitBegin, wait_begin, KeyHash(key));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = data_.find(key);
    if (it != data_.end()) {
      if (ep != nullptr) ep->AdvanceTo(it->second.visible_at + roundtrip_);
      if (fly != nullptr) {
        fly->Record(obs::flight::Ev::kKvWaitEnd, ep->now(), KeyHash(key), 0,
                    ep->now() - wait_begin);
      }
      return it->second.value;
    }
    if (ep != nullptr && !ep->alive()) {
      return Status(Code::kAborted, "kv wait: caller died");
    }
    // Threads backend: real-time poll so a killed waiter unblocks (the
    // virtual time is merged from the writer's publication stamp, not
    // from this poll interval). Fibers backend: the park is woken by the
    // next write, by Fabric::Kill, or at quiescence.
    wp_.WaitFor(lock, 2e-3);
  }
}

Result<Entry> Store::WaitEntry(sim::Endpoint* ep, const std::string& key) {
  CountOp("wait_entry");
  Charge(ep);
  obs::flight::Ring* fly = nullptr;
  double wait_begin = 0.0;
  if (ep != nullptr && obs::flight::Enabled()) {
    fly = obs::flight::ForRank(ep->pid());
    wait_begin = ep->now();
    fly->Record(obs::flight::Ev::kKvWaitBegin, wait_begin, KeyHash(key));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = data_.find(key);
    if (it != data_.end()) {
      if (ep != nullptr) ep->AdvanceTo(it->second.visible_at + roundtrip_);
      if (fly != nullptr) {
        fly->Record(obs::flight::Ev::kKvWaitEnd, ep->now(), KeyHash(key), 0,
                    ep->now() - wait_begin);
      }
      return it->second;
    }
    if (ep != nullptr && !ep->alive()) {
      return Status(Code::kAborted, "kv wait: caller died");
    }
    wp_.WaitFor(lock, 2e-3);
  }
}

Status Store::Delete(sim::Endpoint* ep, const std::string& key) {
  CountOp("delete");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  data_.erase(key);
  SetKeysGauge(data_.size());
  return Status::Ok();
}

Result<int64_t> Store::AddAndGet(sim::Endpoint* ep, const std::string& key,
                                 int64_t delta) {
  CountOp("add_and_get");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = data_[key];
  int64_t current = 0;
  if (entry.value.size() == sizeof(int64_t)) {
    std::memcpy(&current, entry.value.data(), sizeof(current));
  }
  current += delta;
  entry.value.resize(sizeof(current));
  std::memcpy(entry.value.data(), &current, sizeof(current));
  entry.visible_at = ep != nullptr ? ep->now() : 0.0;
  ++entry.version;
  SetKeysGauge(data_.size());
  wp_.NotifyAll();
  return current;
}

Result<bool> Store::CompareAndSwap(sim::Endpoint* ep, const std::string& key,
                                   uint64_t expected_version,
                                   std::vector<uint8_t> value) {
  CountOp("compare_and_swap");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  const uint64_t version = it == data_.end() ? 0 : it->second.version;
  if (version != expected_version) return false;
  Entry& entry = data_[key];
  entry.value = std::move(value);
  entry.visible_at = ep != nullptr ? ep->now() : 0.0;
  ++entry.version;
  wp_.NotifyAll();
  return true;
}

std::vector<std::string> Store::ListPrefix(sim::Endpoint* ep,
                                           const std::string& prefix) {
  CountOp("list_prefix");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

Result<uint64_t> Store::VersionOf(sim::Endpoint* ep, const std::string& key) {
  CountOp("version_of");
  Charge(ep);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) {
    return Status(Code::kNotFound, "kv: no such key: " + key);
  }
  return it->second.version;
}

void Store::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  data_.clear();
  SetKeysGauge(0);
  wp_.NotifyAll();
}

size_t Store::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

}  // namespace rcc::kv
