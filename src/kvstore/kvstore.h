// An etcd-like in-process key-value store used for rendezvous by the
// Gloo-like stack (and by worker-discovery in both stacks).
//
// Every operation performed through an Endpoint charges one client
// round-trip to that rank's virtual clock; values carry the (virtual)
// time they became visible so waiters observe causally-consistent time.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/endpoint.h"
#include "sim/engine.h"

namespace rcc::kv {

struct Entry {
  std::vector<uint8_t> value;
  sim::Seconds visible_at = 0.0;  // virtual time the write became visible
  uint64_t version = 0;
};

class Store {
 public:
  explicit Store(sim::Seconds roundtrip = 0.5e-3) : roundtrip_(roundtrip) {}

  // `ep` may be null (test / orchestrator access, no time charged).
  Status Set(sim::Endpoint* ep, const std::string& key,
             std::vector<uint8_t> value);
  Status SetString(sim::Endpoint* ep, const std::string& key,
                   const std::string& value);

  Result<std::vector<uint8_t>> Get(sim::Endpoint* ep, const std::string& key);
  Result<std::string> GetString(sim::Endpoint* ep, const std::string& key);

  // Blocks until the key exists (or the caller dies). Virtual time merges
  // with the writer's publication time.
  Result<std::vector<uint8_t>> Wait(sim::Endpoint* ep, const std::string& key);

  // Like Wait but returns the full entry (value + version + publication
  // time): snapshot staging reads the version so a joiner can tell which
  // iteration of a re-published snapshot it restored.
  Result<Entry> WaitEntry(sim::Endpoint* ep, const std::string& key);

  Status Delete(sim::Endpoint* ep, const std::string& key);

  // Atomic fetch-add on an integer-valued key (missing key counts as 0);
  // returns the post-add value. Used to allocate rendezvous slots.
  Result<int64_t> AddAndGet(sim::Endpoint* ep, const std::string& key,
                            int64_t delta);

  // Compare-and-swap on the entry version (0 = "must not exist").
  // Returns true on success.
  Result<bool> CompareAndSwap(sim::Endpoint* ep, const std::string& key,
                              uint64_t expected_version,
                              std::vector<uint8_t> value);

  // Keys with the given prefix, sorted.
  std::vector<std::string> ListPrefix(sim::Endpoint* ep,
                                      const std::string& prefix);

  Result<uint64_t> VersionOf(sim::Endpoint* ep, const std::string& key);

  // Drops every key (a fresh rendezvous round).
  void Clear();

  size_t size() const;

 private:
  void Charge(sim::Endpoint* ep) const {
    if (ep != nullptr) ep->Busy(roundtrip_);
  }

  mutable std::mutex mu_;
  sim::WaitPoint wp_;
  std::map<std::string, Entry> data_;
  sim::Seconds roundtrip_;
};

}  // namespace rcc::kv
