// The Elastic Horovod baseline: checkpoint-based backward recovery over
// Gloo (host coordination) + NCCL (gradient allreduce), reproducing the
// recovery path the paper profiles in Fig. 4:
//
//   exception caught -> shutdown ongoing ops -> blacklist host ->
//   re-initialize elastic mode -> re-initialize Gloo -> local + global
//   rendezvous -> NCCL re-init -> state broadcast -> re-compute the lost
//   mini-batch.
//
// Membership changes (failures and joins) always tear the whole context
// down and rebuild it through a fresh KV-store rendezvous round; there
// is no per-collective recovery.
#pragma once

#include <memory>

#include "horovod/plan.h"
#include "kvstore/kvstore.h"
#include "sim/cluster.h"
#include "trace/trace.h"

namespace rcc::horovod {

// Runs the synthetic plan with the Elastic Horovod stack on `cluster`.
// Spawns the initial workers and the scripted joiners; blocks until
// training completes. Phase costs are recorded into `rec`.
RunStats RunElasticHorovod(sim::Cluster& cluster, const SyntheticPlan& plan,
                           trace::Recorder* rec);

}  // namespace rcc::horovod
