#include "horovod/plan.h"

#include <map>

#include "common/rng.h"

namespace rcc::horovod {

std::vector<Bucket> MakeBuckets(const dnn::ModelSpec& spec,
                                size_t fusion_bytes,
                                size_t max_physical_floats, uint64_t seed) {
  const auto tensor_params = dnn::TensorParameterCounts(spec);
  const auto bucket_bytes = dnn::FusionBucketBytes(tensor_params, fusion_bytes);
  std::vector<Bucket> buckets;
  buckets.reserve(bucket_bytes.size());
  Rng rng(seed, /*stream=*/7);
  for (size_t bytes : bucket_bytes) {
    Bucket b;
    const size_t floats = bytes / sizeof(float);
    b.data.resize(std::min(floats, max_physical_floats));
    for (float& v : b.data) v = rng.NextFloat(-1.0f, 1.0f);
    b.virtual_bytes = static_cast<double>(bytes);
    buckets.push_back(std::move(b));
  }
  return buckets;
}

double ReconstructionCost(const std::map<std::string, double>& by_phase,
                          bool elastic_horovod) {
  auto get = [&](const char* k) {
    auto it = by_phase.find(k);
    return it == by_phase.end() ? 0.0 : it->second;
  };
  if (elastic_horovod) {
    return get(phase::kCatchException) + get(phase::kShutdown) +
           get(phase::kBlacklist) + get(phase::kElasticReinit) +
           get(phase::kGlooReinit) + get(phase::kRendezvousLocal) +
           get(phase::kRendezvousGlobal) + get(phase::kNcclReinit);
  }
  return get(phase::kUlfmRepair) + get(phase::kUlfmExpand) +
         get(phase::kNcclReinit);
}

}  // namespace rcc::horovod
