// Shared data-parallel training middleware: gradient buckets (tensor
// fusion), synthetic training plans and elastic scenario scripts used by
// BOTH stacks - the Elastic Horovod baseline (this library) and the
// ULFM-integrated trainer (rcc::core), mirroring how the paper
// integrates ULFM *into* Horovod.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dnn/zoo.h"
#include "sim/failure.h"
#include "sim/params.h"

namespace rcc::horovod {

// A gradient bucket: small physical buffer + declared wire size. The
// physical floats are really reduced (numerics exercised); the virtual
// size drives the time model so full-size models fit in RAM at 192
// simulated GPUs (DESIGN.md "declared-size buckets").
struct Bucket {
  std::vector<float> data;
  double virtual_bytes = 0;
  double cost_scale() const {
    const double physical = static_cast<double>(data.size()) * sizeof(float);
    return physical > 0 ? virtual_bytes / physical : 1.0;
  }
};

// Builds the bucket set for a zoo spec: tensor sizes -> fusion buckets
// -> physical buffers capped at `max_physical_floats` each.
std::vector<Bucket> MakeBuckets(const dnn::ModelSpec& spec,
                                size_t fusion_bytes,
                                size_t max_physical_floats = 2048,
                                uint64_t seed = 42);

// Recovery granularity (the runtime flag the paper exposes; Elastic
// Horovod only supports kNode - Table 2).
enum class DropPolicy { kProcess, kNode };

// A scripted failure: the victim *rank of the current membership* dies
// while reducing bucket `bucket` of step `step` in epoch `epoch`.
// kNode scope takes the victim's whole node down.
struct ScriptedFailure {
  int epoch = 0;
  int step = 0;
  int bucket = 0;
  int victim_rank = 0;
  sim::FailScope scope = sim::FailScope::kProcess;
};

// A scripted join: `count` workers are admitted at the start of `epoch`.
// `cold` workers pay the full cold-start (library load + CUDA context);
// warm ones only the warm-start (pre-provisioned replacement).
struct ScriptedJoin {
  int epoch = 0;
  int count = 0;
  bool cold = true;
};

struct SyntheticPlan {
  dnn::ModelSpec spec;
  int initial_world = 12;
  int batch_per_worker = 32;
  int steps_per_epoch = 8;
  int epochs = 2;
  size_t fusion_bytes = 64u << 20;  // Horovod default fusion threshold
  size_t max_physical_floats = 2048;
  bool response_cache = true;       // skip per-op negotiation when cached
  // Rest-of-epoch padding: the simulated steps cover the mini-batches
  // around the scripted events; the remaining `padded_steps_per_epoch`
  // mini-batches of an ImageNet-scale epoch are charged analytically at
  // `padded_step_seconds` each (plus the per-step checkpoint commit for
  // the Elastic Horovod stack). This keeps epoch *lengths* realistic -
  // which is what lets ULFM overlap worker provisioning with degraded-
  // mode training - without simulating thousands of collectives.
  int padded_steps_per_epoch = 0;
  double padded_step_seconds = 0.0;
  // Nonblocking pipeline: 0 = blocking baseline (compute, then every
  // bucket's allreduce back-to-back). >= 1 overlaps bucketed allreduce
  // with backprop: each bucket's reduction is submitted as soon as its
  // backward slice produces it, with at most `inflight_window` ops
  // outstanding, and the optimizer step waits for all of them.
  int inflight_window = 0;
  // Asynchronous joiner admission: scripted joins open a nonblocking
  // rendezvous at the epoch boundary and splice the merged communicator
  // at a later step boundary once the joiners have staged the model
  // state in the background, instead of stalling every survivor for the
  // joiners' full bring-up (blocking ExpandComm).
  bool async_admission = false;
  DropPolicy drop_policy = DropPolicy::kNode;
  std::vector<ScriptedFailure> failures;
  std::vector<ScriptedJoin> joins;
};

// Aggregate outcome of one synthetic run.
struct RunStats {
  double completion_time = 0;  // virtual seconds, max over participants
  int final_world = 0;
  int steps_executed = 0;      // global steps completed (any worker)
  int resets = 0;              // EH resets / ULFM repairs performed
};

// Phase names shared by both runners so figure benches can align
// breakdowns (Fig. 4's x axis).
namespace phase {
inline constexpr const char* kCatchException = "catch_exception";
inline constexpr const char* kShutdown = "shutdown";
inline constexpr const char* kBlacklist = "blacklist";
inline constexpr const char* kElasticReinit = "elastic_reinit";
inline constexpr const char* kGlooReinit = "gloo_reinit";
inline constexpr const char* kRendezvousLocal = "rendezvous_local";
inline constexpr const char* kRendezvousGlobal = "rendezvous_global";
inline constexpr const char* kNcclReinit = "nccl_reinit";
inline constexpr const char* kStateSync = "state_sync";
inline constexpr const char* kRecompute = "recompute";
inline constexpr const char* kUlfmRepair = "ulfm_repair";       // revoke+agree+shrink
inline constexpr const char* kUlfmExpand = "ulfm_expand";       // connect/merge
inline constexpr const char* kRetryCollective = "retry_collective";
inline constexpr const char* kWorkerInit = "worker_init";       // cold/warm start
// Asynchronous admission phases (overlapped with degraded training).
inline constexpr const char* kExpandBegin = "expand_begin";     // open window
inline constexpr const char* kStateStage = "state_stage";       // joiner pulls snapshot
inline constexpr const char* kExpandSplice = "expand_splice";   // install merged comm
inline constexpr const char* kDeltaSync = "delta_sync";         // catch-up broadcast
}  // namespace phase

// Sum of the comm-reconstruction phases for one stack (used by the
// Fig. 5-7 cost split).
double ReconstructionCost(const std::map<std::string, double>& by_phase,
                          bool elastic_horovod);

}  // namespace rcc::horovod
