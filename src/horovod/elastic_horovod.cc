#include "horovod/elastic_horovod.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>

#include "coll/request.h"
#include "common/log.h"
#include "common/serial.h"
#include "gloo/gloo.h"
#include "nccl/nccl.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rcc::horovod {

namespace {

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load();
  while (value > cur && !target->compare_exchange_weak(cur, value)) {
  }
}

struct RoundMeta {
  int world = 0;
  // >= 0: this round ends (join-reset) when training reaches the start
  // of this epoch. -1: the round ends only through an exception (or
  // training completion).
  int join_trigger_epoch = -1;
};

struct JoinerSpec {
  int start_round = 0;
  bool cold = true;
};

struct Session {
  SyntheticPlan plan;
  std::unique_ptr<kv::Store> store;
  trace::Recorder* rec = nullptr;
  std::vector<Bucket> proto_buckets;
  std::vector<RoundMeta> rounds;
  std::vector<JoinerSpec> joiners;
  double step_compute_seconds = 0;
  double model_virtual_bytes = 0;
  std::vector<std::atomic<bool>> failure_done;
  std::atomic<double> completion{0};
  std::atomic<int> resets{0};

  explicit Session(size_t nfailures) : failure_done(nfailures) {
    for (auto& f : failure_done) f.store(false);
  }
};

// Builds the per-round membership script from the plan (workers advance
// rounds in lockstep: every reset - exception or join - is global).
void PrecomputeRounds(const SyntheticPlan& plan, int gpus_per_node,
                      Session* ss) {
  ss->rounds.push_back(RoundMeta{plan.initial_world, -1});
  auto end_round_with_join = [&](int epoch, int count, bool cold) {
    ss->rounds.back().join_trigger_epoch = epoch;
    RoundMeta next{ss->rounds.back().world + count, -1};
    for (int j = 0; j < count; ++j) {
      ss->joiners.push_back(
          JoinerSpec{static_cast<int>(ss->rounds.size()), cold});
    }
    ss->rounds.push_back(next);
  };
  for (int e = 0; e < plan.epochs; ++e) {
    for (const ScriptedJoin& join : plan.joins) {
      if (join.epoch == e) end_round_with_join(e, join.count, join.cold);
    }
    for (const ScriptedFailure& f : plan.failures) {
      if (f.epoch != e) continue;
      const bool whole_node = f.scope == sim::FailScope::kNode ||
                              plan.drop_policy == DropPolicy::kNode;
      const int dec = whole_node ? gpus_per_node : 1;
      RoundMeta next{ss->rounds.back().world - dec, -1};
      RCC_CHECK(next.world > 0) << "failure script removes every worker";
      ss->rounds.push_back(next);
    }
  }
}

std::vector<uint8_t> EncodeCursor(int epoch, int step) {
  ByteWriter w;
  w.WriteI32(epoch);
  w.WriteI32(step);
  std::vector<uint8_t> blob = w.Take();
  blob.resize(4096, 0);  // physical stand-in for the model state
  return blob;
}

Status DecodeCursor(const std::vector<uint8_t>& blob, int* epoch,
                    int* step) {
  ByteReader r(blob);
  int32_t e = 0, s = 0;
  RCC_RETURN_IF_ERROR(r.ReadI32(&e));
  RCC_RETURN_IF_ERROR(r.ReadI32(&s));
  *epoch = e;
  *step = s;
  return Status::Ok();
}

class EhWorker {
 public:
  EhWorker(sim::Endpoint& ep, std::shared_ptr<Session> ss, int start_round,
           bool joiner, bool cold)
      : ep_(ep),
        ss_(std::move(ss)),
        round_(start_round),
        joiner_(joiner),
        cold_(cold),
        buckets_(ss_->proto_buckets),
        have_state_(!joiner),
        in_recovery_(joiner) {}

  void Run() {
    const auto& costs = ep_.fabric().config().costs;
    if (joiner_) {
      // Elastic Horovod only launches new workers when the driver resets:
      // the cold start sits on the recovery critical path.
      auto signal =
          ss_->store->Wait(&ep_, "round_start/" + std::to_string(round_));
      if (!signal.ok()) return;
      obs::Span scope(ss_->rec, ep_, Ph(phase::kWorkerInit));
      ep_.Busy(cold_ ? costs.worker_coldstart : costs.worker_warmstart);
    }

    while (ep_.alive() && epoch_ < ss_->plan.epochs) {
      try {
        if (!RunRound()) break;
      } catch (const gloo::IoException& ex) {
        if (!ep_.alive()) break;  // the victim itself
        if (!HandleException(ex)) break;
      }
    }
    AtomicMax(&ss_->completion, ep_.now());
  }

 private:
  // One rendezvous round + its training segment. Returns false when this
  // worker is done (training complete). Throws IoException on failure.
  bool RunRound() {
    const auto& costs = ep_.fabric().config().costs;
    const RoundMeta& meta = ss_->rounds[round_];
    const std::string tag = std::to_string(round_);

    {
      // Host-level (local) rendezvous: slot registration with the local
      // agent before the store-wide round.
      obs::Span scope(ss_->rec, ep_, Ph(phase::kRendezvousLocal));
      ep_.Busy(2 * costs.kv_roundtrip);
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kRendezvousGlobal));
      ctx_ = gloo::Context::Connect(ep_, *ss_->store, "round/" + tag,
                                    meta.world);
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kNcclReinit));
      // NCCL reorders ranks by detected topology; the rendezvous arrival
      // order is irrelevant to the ring it builds.
      std::vector<int> ring_order = ctx_->pids();
      std::sort(ring_order.begin(), ring_order.end());
      gpu_ = nccl::Comm::InitRank(ep_, ring_order, "round/" + tag);
      if (gpu_ == nullptr) {
        throw gloo::IoException(
            Status(Code::kProcFailed, "nccl init failed"));
      }
    }
    SyncState(tag);

    // --- training segment ---
    while (epoch_ < ss_->plan.epochs) {
      if (step_ == 0 && meta.join_trigger_epoch == epoch_) {
        JoinReset();
        return true;
      }
      const bool recompute = recompute_pending_;
      recompute_pending_ = false;
      if (recompute) {
        obs::Span scope(ss_->rec, ep_, std::string("recovery/") + phase::kRecompute);
        TrainStep();
      } else {
        TrainStep();
      }
      CommitStep();
      ++step_;
      if (step_ >= ss_->plan.steps_per_epoch) {
        // Rest of the epoch, analytically (incl. per-mini-batch commits).
        if (ss_->plan.padded_steps_per_epoch > 0) {
          const double commit =
              ss_->model_virtual_bytes /
              ep_.fabric().config().net.host_mem_bandwidth;
          ep_.Busy(ss_->plan.padded_steps_per_epoch *
                   (ss_->plan.padded_step_seconds + commit));
        }
        step_ = 0;
        ++epoch_;
      }
    }
    return false;
  }

  void TrainStep() {
    const sim::Seconds step_start = ep_.now();
    gpu_->TakeServiceSeconds();  // drop pre-step traffic (init barrier &c)
    if (ss_->plan.inflight_window < 1) {
      TrainStepBlocking();
    } else {
      TrainStepPipelined();
    }
    RecordStepMetrics(ep_.now() - step_start);
  }

  // Per-step driver metrics: wall time, its compute/comm split, and the
  // exposed (non-overlapped) communication. Comm service comes from the
  // GPU communicator's per-comm accumulator, so host-side gloo traffic
  // (state sync, negotiation) never pollutes the comm-hidden fraction.
  void RecordStepMetrics(double wall) {
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"stack", "elastic_horovod"}};
    const double compute = ss_->step_compute_seconds;
    const double service = gpu_->TakeServiceSeconds();
    const double exposed = wall > compute ? wall - compute : 0.0;
    reg.GetCounter("rcc_steps_total", labels)->Increment();
    reg.GetCounter("rcc_step_seconds_total", labels)->Add(wall);
    reg.GetCounter("rcc_step_compute_seconds_total", labels)->Add(compute);
    reg.GetCounter("rcc_step_comm_service_seconds_total", labels)
        ->Add(service);
    reg.GetCounter("rcc_step_comm_exposed_seconds_total", labels)
        ->Add(exposed);
    reg.GetHistogram("rcc_step_seconds", labels)->Observe(wall);
    reg.GetGauge("rcc_world_size", labels)
        ->Set(static_cast<double>(ctx_->size()));
  }

  void TrainStepBlocking() {
    ep_.Busy(ss_->step_compute_seconds);
    for (size_t b = 0; b < buckets_.size(); ++b) {
      MaybeDie(static_cast<int>(b));
      if (!ep_.alive()) {
        throw gloo::IoException(Status(Code::kAborted, "self killed"));
      }
      Negotiate(b);
      Bucket& bucket = buckets_[b];
      std::vector<float> out(bucket.data.size());
      gpu_->set_cost_scale(bucket.cost_scale());
      Status st = gpu_->Allreduce<float>(bucket.data.data(), out.data(),
                                         bucket.data.size());
      if (!st.ok()) throw gloo::IoException(st);
      // Average and write back (SPMD optimizer step).
      const float inv = 1.0f / static_cast<float>(ctx_->size());
      for (size_t i = 0; i < out.size(); ++i) bucket.data[i] = out[i] * inv;
    }
  }

  // Overlapped step: backprop produces buckets in order, each bucket's
  // allreduce is submitted the moment its backward slice finishes, and
  // only the optimizer step waits for the stragglers. Step time becomes
  // max(compute, comm) per pipeline stage instead of compute + comm.
  void TrainStepPipelined() {
    const auto window = static_cast<size_t>(ss_->plan.inflight_window);
    ep_.Busy(ss_->step_compute_seconds / 3.0);  // forward pass
    const double backward = ss_->step_compute_seconds * 2.0 / 3.0;
    double total_bytes = 0;
    for (const Bucket& bucket : buckets_) total_bytes += bucket.virtual_bytes;
    std::vector<std::vector<float>> outs(buckets_.size());
    std::vector<coll::Request> reqs(buckets_.size());
    size_t oldest = 0;  // first request still outstanding
    // The outs/reqs buffers feed live worker threads: every submitted
    // request must be joined before this frame unwinds.
    auto drain = [&](size_t submitted) {
      Status first;
      for (; oldest < submitted; ++oldest) {
        Status st = gpu_->Wait(&reqs[oldest]);
        if (first.ok() && !st.ok()) first = st;
      }
      return first;
    };
    for (size_t b = 0; b < buckets_.size(); ++b) {
      // Backward slice producing this bucket's gradients.
      const double frac = total_bytes > 0
                              ? buckets_[b].virtual_bytes / total_bytes
                              : 1.0 / static_cast<double>(buckets_.size());
      ep_.Busy(backward * frac);
      MaybeDie(static_cast<int>(b));
      if (!ep_.alive()) {
        drain(b);
        throw gloo::IoException(Status(Code::kAborted, "self killed"));
      }
      Negotiate(b);
      Bucket& bucket = buckets_[b];
      outs[b].resize(bucket.data.size());
      gpu_->set_cost_scale(bucket.cost_scale());
      reqs[b] = gpu_->IAllreduce<float>(bucket.data.data(), outs[b].data(),
                                        bucket.data.size());
      gpu_->set_cost_scale(1.0);
      if (b + 1 - oldest > window) {
        Status st = gpu_->Wait(&reqs[oldest]);
        ++oldest;
        if (!st.ok()) {
          drain(b + 1);
          throw gloo::IoException(st);
        }
      }
    }
    Status st = drain(buckets_.size());
    if (!st.ok()) throw gloo::IoException(st);
    if (ss_->rec != nullptr) {
      for (const coll::Request& req : reqs) {
        ss_->rec->RecordOp(ep_.pid(), req.info().op_id, req.info().algo,
                           req.info().bytes, req.submit_time(),
                           req.complete_time());
      }
    }
    // Optimizer step after the whole window completed.
    const float inv = 1.0f / static_cast<float>(ctx_->size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      for (size_t i = 0; i < outs[b].size(); ++i) {
        buckets_[b].data[i] = outs[b][i] * inv;
      }
    }
  }

  void Negotiate(size_t b) {
    if (ss_->plan.response_cache) return;
    // Uncached response negotiation: a small host-side allgather
    // coordinating which tensors are ready (Horovod's control plane).
    obs::Span scope(ss_->rec, ep_, "negotiation");
    uint64_t ready = b;
    std::vector<uint64_t> all(ctx_->size());
    ctx_->Allgather<uint64_t>(&ready, all.data(), 1);
  }

  void CommitStep() {
    // Elastic Horovod commits the training state every mini-batch (the
    // paper's "minimum checkpoint interval of one mini-batch").
    ep_.Busy(ss_->model_virtual_bytes /
             ep_.fabric().config().net.host_mem_bandwidth);
  }

  void MaybeDie(int bucket) {
    const auto& failures = ss_->plan.failures;
    for (size_t i = 0; i < failures.size(); ++i) {
      const ScriptedFailure& f = failures[i];
      if (f.epoch == epoch_ && f.step == step_ && f.bucket == bucket &&
          f.victim_rank == ctx_->rank() && !ss_->failure_done[i].load()) {
        ss_->failure_done[i].store(true);
        if (f.scope == sim::FailScope::kNode) {
          ep_.fabric().KillNode(ep_.node());
        } else {
          ep_.fabric().Kill(ep_.pid());
        }
        return;
      }
    }
  }

  // State broadcast from the lowest-ranked worker that has state, then
  // restore (joiners and survivors both re-sync after a reset).
  void SyncState(const std::string& tag) {
    obs::Span scope(ss_->rec, ep_, Ph(phase::kStateSync));
    if (have_state_) {
      ByteWriter w;
      w.WriteI32(ctx_->rank());
      ss_->store->CompareAndSwap(&ep_, "root/" + tag, 0, w.Take());
    }
    auto root_blob = ss_->store->Wait(&ep_, "root/" + tag);
    if (!root_blob.ok()) {
      throw gloo::IoException(root_blob.status());
    }
    ByteReader r(root_blob.value());
    int32_t root = 0;
    if (!r.ReadI32(&root).ok()) {
      throw gloo::IoException(Status(Code::kInternal, "bad root record"));
    }
    std::vector<uint8_t> blob = EncodeCursor(epoch_, step_);
    ctx_->set_cost_scale(ss_->model_virtual_bytes /
                         static_cast<double>(blob.size()));
    ctx_->Broadcast<uint8_t>(blob.data(), blob.size(), root);
    ctx_->set_cost_scale(1.0);
    int e = 0, s = 0;
    if (!DecodeCursor(blob, &e, &s).ok()) {
      throw gloo::IoException(Status(Code::kInternal, "bad state blob"));
    }
    epoch_ = e;
    step_ = s;
    have_state_ = true;
    // Materialising the restored tensors into the framework.
    ep_.Busy(ss_->model_virtual_bytes /
             ep_.fabric().config().net.host_mem_bandwidth);
    in_recovery_ = false;
  }

  // Driver-coordinated reset admitting scheduled joiners (no exception).
  void JoinReset() {
    in_recovery_ = true;
    const auto& costs = ep_.fabric().config().costs;
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kShutdown));
      ep_.Busy(costs.eh_shutdown);
      gpu_->Abort();
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kElasticReinit));
      ep_.Busy(costs.eh_elastic_reinit);
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kGlooReinit));
      ep_.Busy(costs.eh_gloo_reinit);
    }
    AdvanceRound();
  }

  bool HandleException(const gloo::IoException& ex) {
    in_recovery_ = true;
    const auto& costs = ep_.fabric().config().costs;
    ss_->resets.fetch_add(1);
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kCatchException));
      ep_.Busy(costs.eh_exception_catch);
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kShutdown));
      ep_.Busy(costs.eh_shutdown);
      if (gpu_ != nullptr) gpu_->Abort();
    }
    const bool whole_node = plan_drops_node(ex);
    if (whole_node) {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kBlacklist));
      ep_.Busy(costs.eh_blacklist_probe);
      // If my own host is blacklisted, leave training (Elastic Horovod
      // drops the whole node).
      for (int pid : ctx_->pids()) {
        if (!ep_.fabric().IsAlive(pid) &&
            ep_.fabric().NodeOf(pid) == ep_.node()) {
          return false;
        }
      }
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kElasticReinit));
      ep_.Busy(costs.eh_elastic_reinit);
    }
    {
      obs::Span scope(ss_->rec, ep_, Ph(phase::kGlooReinit));
      ep_.Busy(costs.eh_gloo_reinit);
    }
    recompute_pending_ = true;
    AdvanceRound();
    return true;
  }

  bool plan_drops_node(const gloo::IoException& ex) const {
    if (ss_->plan.drop_policy == DropPolicy::kNode) return true;
    // Even at process granularity a node-scope failure takes the whole
    // node down in hardware.
    for (int pid : ex.status().failed_pids()) {
      int alive_on_node = 0;
      for (int other : ctx_->pids()) {
        if (ep_.fabric().NodeOf(other) == ep_.fabric().NodeOf(pid) &&
            ep_.fabric().IsAlive(other)) {
          ++alive_on_node;
        }
      }
      if (alive_on_node == 0) return true;
    }
    return false;
  }

  void AdvanceRound() {
    ++round_;
    RCC_CHECK(round_ < static_cast<int>(ss_->rounds.size()))
        << "round script exhausted";
    // Wake any joiner waiting for this round (first resetter wins).
    ss_->store->CompareAndSwap(&ep_, "round_start/" + std::to_string(round_),
                               0, {1});
  }

  std::string Ph(const char* name) const {
    return (in_recovery_ ? std::string("recovery/") : std::string("init/")) +
           name;
  }

  sim::Endpoint& ep_;
  std::shared_ptr<Session> ss_;
  int round_;
  bool joiner_;
  bool cold_;
  std::vector<Bucket> buckets_;
  std::unique_ptr<gloo::Context> ctx_;
  std::unique_ptr<nccl::Comm> gpu_;
  int epoch_ = 0;
  int step_ = 0;
  bool have_state_;
  bool in_recovery_;
  bool recompute_pending_ = false;
};

}  // namespace

RunStats RunElasticHorovod(sim::Cluster& cluster, const SyntheticPlan& plan,
                           trace::Recorder* rec) {
  auto ss = std::make_shared<Session>(plan.failures.size());
  ss->plan = plan;
  ss->rec = rec;
  ss->store = std::make_unique<kv::Store>(
      cluster.config().costs.kv_roundtrip);
  ss->proto_buckets =
      MakeBuckets(plan.spec, plan.fusion_bytes, plan.max_physical_floats);
  ss->step_compute_seconds = dnn::StepComputeSeconds(
      plan.spec, plan.batch_per_worker, cluster.config().net.gpu_flops);
  ss->model_virtual_bytes = plan.spec.size_mb * 1e6;
  PrecomputeRounds(plan, cluster.config().gpus_per_node, ss.get());

  auto original = [ss](sim::Endpoint& ep) {
    EhWorker(ep, ss, /*start_round=*/0, /*joiner=*/false, /*cold=*/false)
        .Run();
  };
  cluster.Spawn(plan.initial_world, original);
  for (const JoinerSpec& spec : ss->joiners) {
    auto joiner = [ss, spec](sim::Endpoint& ep) {
      EhWorker(ep, ss, spec.start_round, /*joiner=*/true, spec.cold).Run();
    };
    cluster.SpawnOnFreshNodes(1, joiner, /*start_time=*/0.0);
  }
  cluster.Join();

  RunStats stats;
  stats.completion_time = ss->completion.load();
  stats.final_world = ss->rounds.back().world;
  stats.steps_executed = plan.epochs * plan.steps_per_epoch;
  stats.resets = ss->resets.load();
  return stats;
}

}  // namespace rcc::horovod
