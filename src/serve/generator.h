// Open-loop request generator: Poisson arrivals (optionally modulated
// by a diurnal load curve) with per-request prompt/decode sizes, all
// drawn from the shared audited samplers in common/sampling.h.
//
// GenerateArrivals is a *pure function* of its config — no clocks, no
// engine state — so the stream is identical on every rank, under both
// engine backends (threads/fibers), and on a joiner admitted mid-run.
// The serving driver replays the stream against virtual time instead of
// generating online; open-loop means arrivals never backpressure.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"

namespace rcc::serve {

struct TrafficConfig {
  uint64_t seed = 1;
  int requests = 256;            // stream length; the run drains it fully
  double base_rps = 50.0;        // mean arrival rate (requests / vsecond)
  double diurnal_amplitude = 0;  // 0 = flat Poisson; (0,1] = load curve
  double diurnal_period_s = 60;  // virtual period of the curve
  int min_prompt = 8;            // prompt tokens, uniform [min, max]
  int max_prompt = 64;
  int min_decode = 4;            // decode tokens, uniform [min, max]
  int max_decode = 32;
};

// Environment knobs (RCC_SERVE_SEED, RCC_SERVE_REQUESTS, RCC_SERVE_RPS,
// RCC_SERVE_DIURNAL, RCC_SERVE_PERIOD) over the given defaults.
TrafficConfig TrafficFromEnv(TrafficConfig defaults = {});

// The full arrival stream, sorted by (arrival, id), ids dense from 0.
std::vector<Request> GenerateArrivals(const TrafficConfig& cfg);

}  // namespace rcc::serve
