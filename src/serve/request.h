// Serving-plane data types: one inference request and its completion
// record. Requests are generated up front as a pure function of the
// traffic seed (serve/generator.h), so every SPMD rank — and a joiner
// admitted mid-run — sees the identical request stream without any
// cross-rank coordination.
#pragma once

#include <cstdint>
#include <vector>

namespace rcc::serve {

struct Request {
  int id = 0;              // dense index into the generated stream
  double arrival = 0.0;    // virtual seconds (open-loop: never blocks)
  int prompt_tokens = 0;   // prefill size (priced into the admit step)
  int decode_tokens = 0;   // tokens to generate before completion
};

// Lifecycle timestamps of one finished request, in virtual seconds.
// admit is when the continuous batcher scheduled it into the running
// batch; first_token is the end of its first decode step (TTFT =
// first_token - arrival); done is the final token's commit time.
struct Completion {
  int id = 0;
  double arrival = 0.0;
  double admit = 0.0;
  double first_token = 0.0;
  double done = 0.0;
  int tokens = 0;  // decode tokens committed (== request.decode_tokens)
};

inline bool operator==(const Completion& a, const Completion& b) {
  return a.id == b.id && a.arrival == b.arrival && a.admit == b.admit &&
         a.first_token == b.first_token && a.done == b.done &&
         a.tokens == b.tokens;
}

}  // namespace rcc::serve
