#include "serve/server.h"

#include <cstring>

#include "common/serial.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "sim/params.h"

namespace rcc::serve {

namespace {

const char* ModeName(RecoveryMode m) {
  return m == RecoveryMode::kResilient ? "resilient" : "teardown";
}

}  // namespace

ServingDriver::ServingDriver(core::ResilientComm* rc, const ServeOptions& opts)
    : rc_(rc),
      opts_(opts),
      stream_(GenerateArrivals(opts.traffic)),
      batcher_(opts.max_batch),
      ctl_(opts.autoscale),
      last_repairs_(rc->repairs()) {
  rc_->SetReplayHook(
      [this](int64_t /*op_id*/, int64_t /*min_id*/) { ++decode_replays_; });
}

std::string ServingDriver::StandbyKey(const std::string& session, int index) {
  return "serve/" + session + "/standby/" + std::to_string(index);
}

ServeReport ServingDriver::Run() {
  // Founders: agree on the serving epoch's start clock. The init
  // barrier leaves per-rank residuals (microseconds of skew), and
  // admission stamps must be bit-identical everywhere.
  if (t_sync_ < rc_->endpoint().now()) t_sync_ = rc_->endpoint().now();
  if (!AgreeClock().ok()) return Finish(/*aborted=*/true);
  return Loop();
}

ServeReport ServingDriver::RunStandbyJoiner(sim::Endpoint& ep, kv::Store* store,
                                            const ServeOptions& opts, int index,
                                            trace::Recorder* rec) {
  ServeReport r;
  auto entry = store->WaitEntry(&ep, StandbyKey(opts.session, index));
  if (!entry.ok()) {
    r.aborted = true;
    return r;
  }
  const std::string session(entry.value().value.begin(),
                            entry.value().value.end());
  if (session.empty()) {
    // Released at drain without being needed.
    r.idle_standby = true;
    return r;
  }
  std::vector<uint8_t> staged;
  auto rc = core::ResilientComm::JoinAsync(
      ep, store, session, opts.policy, rec,
      [&staged](const std::vector<uint8_t>& b) {
        staged = b;
        return Status::Ok();
      });
  if (rc == nullptr) {
    r.aborted = true;
    return r;
  }
  ServingDriver d(rc.get(), opts);
  // The staged snapshot restores the weights + a (stale) serving cursor
  // in the background; the post-splice sync below replaces the cursor
  // with the survivors' live state.
  if (!d.RestoreState(staged).ok() || !d.SpliceSync(/*receiver=*/true).ok()) {
    r.aborted = true;
    return r;
  }
  return d.Loop();
}

ServeReport ServingDriver::Loop() {
  sim::Endpoint& ep = rc_->endpoint();
  const size_t hidden = static_cast<size_t>(opts_.hidden < 1 ? 1 : opts_.hidden);
  std::vector<float> send(hidden), recv(hidden);
  size_t exported_completions = 0;
  int64_t exported_replays = 0;
  obs::flight::Ring* fly = obs::flight::ForRank(ep.pid());
  size_t flight_completions = batcher_.completions().size();

  for (;;) {
    if (!PollAdmission(/*finalize=*/false)) return Finish(/*aborted=*/true);

    int prompt_tokens = 0;
    const int scheduled = batcher_.Admit(stream_, t_sync_, &prompt_tokens);
    if (scheduled > 0 && obs::flight::Enabled()) {
      fly->Record(obs::flight::Ev::kServeAdmit, t_sync_, scheduled,
                  batcher_.waiting(), static_cast<double>(prompt_tokens));
    }

    if (batcher_.running() == 0) {
      if (batcher_.Drained(static_cast<int>(stream_.size()))) {
        if (!PollAdmission(/*finalize=*/true)) return Finish(/*aborted=*/true);
        ReleaseStandbys();
        break;
      }
      // Idle: jump the agreed clock to the next arrival. Every rank
      // computes the same target, so no re-agreement is needed.
      const double next =
          stream_[static_cast<size_t>(batcher_.next_arrival())].arrival;
      if (next > t_sync_) t_sync_ = next;
      ep.AdvanceTo(t_sync_);
      continue;
    }

    // Scaling decisions pause while an admission is in flight so the
    // rendezvous membership cannot change under the joiner.
    if (!rc_->expand_pending()) {
      const int load = batcher_.waiting() + batcher_.running();
      const ScaleDecision d = ctl_.Decide(batcher_.waiting(), load,
                                          rc_->size(), batcher_.steps());
      if (d == ScaleDecision::kExpand) {
        if (!BeginExpand()) return Finish(/*aborted=*/true);
      } else if (d == ScaleDecision::kShrink) {
        ++report_.shrinks;
        if (rc_->rank() == rc_->size() - 1) {
          ulfm::LeaveGracefully(ep, rc_->host());
          ServeReport r = Finish(/*aborted=*/false);
          r.left = true;
          return r;
        }
        // Survivors fall through; their decode step repairs down.
      }
    }

    // One decode step: prefill for the newly scheduled sequences plus
    // one token for every running sequence, then the tensor-parallel
    // activation allreduce. A failure anywhere inside is repaired by
    // the resilient op, which re-executes only this step.
    const double step_start = t_sync_;
    const int batch = batcher_.batch_tokens();
    ep.Compute(opts_.flops_per_token * (batch + prompt_tokens));
    const int64_t step_id = batcher_.steps();
    for (size_t i = 0; i < hidden; ++i) {
      send[i] = static_cast<float>((step_id + static_cast<int64_t>(i)) % 97 +
                                   rc_->rank() + 1) *
                1e-3f;
    }
    Status st =
        rc_->Allreduce(send.data(), recv.data(), hidden, opts_.decode_cost_scale);
    if (!st.ok()) return Finish(/*aborted=*/true);

    const int rdelta = rc_->repairs() - last_repairs_;
    const bool recovery = rdelta > 0;
    if (recovery) {
      last_repairs_ = rc_->repairs();
      report_.repairs += rdelta;
      ++report_.recovery_steps;
      if (opts_.mode == RecoveryMode::kTeardownRebuild) {
        TeardownPenalty();
        if (!ep.alive()) return Finish(/*aborted=*/true);
      }
    }

    if (!AgreeClock().ok()) return Finish(/*aborted=*/true);
    const double step_seconds = t_sync_ - step_start;
    batcher_.CommitStep(stream_, t_sync_, recv[0], step_seconds);

    const std::vector<Completion>& done_list = batcher_.completions();
    if (obs::flight::Enabled()) {
      for (size_t i = flight_completions; i < done_list.size(); ++i) {
        const Completion& c = done_list[i];
        fly->Record(obs::flight::Ev::kServeComplete, c.done, c.id, c.tokens,
                    c.done - c.admit);
      }
    }
    flight_completions = done_list.size();

    std::vector<double> ttft = batcher_.TakeFirstTokenLatencies();
    if (rc_->rank() == 0) {
      ExportStepMetrics(step_seconds, batch, recovery);
      obs::Registry& reg = obs::Registry::Global();
      const obs::Labels labels{{"mode", ModeName(opts_.mode)}};
      obs::Histogram* h = reg.GetHistogram("rcc_serve_ttft_seconds", labels);
      for (double v : ttft) h->Observe(v);
      const size_t done = batcher_.completions().size();
      reg.GetCounter("rcc_serve_completions_total", labels)
          ->Add(static_cast<double>(done - exported_completions));
      exported_completions = done;
      reg.GetCounter("rcc_serve_decode_replays_total", labels)
          ->Add(static_cast<double>(decode_replays_ - exported_replays));
      exported_replays = decode_replays_;
    } else {
      // Keep the export cursors current so a later rank-0 handover only
      // exports the post-handover deltas.
      exported_completions = batcher_.completions().size();
      exported_replays = decode_replays_;
    }
  }
  return Finish(/*aborted=*/false);
}

Status ServingDriver::AgreeClock() {
  const double now = rc_->endpoint().now();
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(now));
  std::memcpy(&bits, &now, sizeof(bits));
  std::vector<uint64_t> all;
  RCC_RETURN_IF_ERROR(rc_->AllgatherU64(bits, &all));
  double agreed = t_sync_;
  for (uint64_t b : all) {
    double v = 0.0;
    std::memcpy(&v, &b, sizeof(v));
    if (v > agreed) agreed = v;
  }
  t_sync_ = agreed;
  return Status::Ok();
}

bool ServingDriver::PollAdmission(bool finalize) {
  if (!rc_->expand_pending()) return true;
  const core::ResilientComm::PollResult pr = rc_->ExpandPoll(finalize);
  if (pr == core::ResilientComm::PollResult::kSpliced) {
    if (!SpliceSync(/*receiver=*/false).ok()) return rc_->endpoint().alive();
    ++report_.expands;
  }
  // kAborted means the expand was abandoned (timeout); the membership is
  // unchanged and serving continues degraded. Only our own death stops us.
  return rc_->endpoint().alive();
}

Status ServingDriver::SpliceSync(bool receiver) {
  // The serving cursor is small (weights were staged asynchronously), so
  // the splice-time sync is cheap — this is the payoff of PR 4's async
  // admission for inference.
  std::vector<uint8_t> blob;
  if (!receiver && rc_->rank() == 0) blob = SerializeState();
  RCC_RETURN_IF_ERROR(rc_->BcastBlob(&blob, 0, 1.0));
  if (receiver) RCC_RETURN_IF_ERROR(RestoreState(blob));
  return Status::Ok();
}

bool ServingDriver::BeginExpand() {
  const int slot = ctl_.expands_begun() - 1;  // Decide() already advanced it
  const std::string session =
      opts_.session + "-exp" + std::to_string(slot);
  sim::Endpoint& ep = rc_->endpoint();
  if (opts_.store == nullptr) return true;  // nothing to wake; serve on
  if (rc_->rank() == 0) {
    if (!opts_.store->SetString(&ep, StandbyKey(opts_.session, slot), session)
             .ok()) {
      return ep.alive();
    }
  }
  const std::vector<uint8_t> snap = SerializeState();
  const Status st = rc_->ExpandAsyncBegin(opts_.store, session, /*joiner_count=*/1,
                                          snap, opts_.model_bytes);
  return st.ok() || ep.alive();
}

void ServingDriver::TeardownPenalty() {
  // Gloo-style recovery: the surviving job tears down, re-initializes the
  // stack from scratch, rebroadcasts the full model state, and has lost
  // every KV cache. Charged on top of the (already paid) repair that the
  // shared substrate performed, standing in for the whole
  // exception-unwind + re-bootstrap sequence of the baseline runtime.
  sim::Endpoint& ep = rc_->endpoint();
  const sim::SimConfig& cfg = ep.fabric().config();
  ep.Busy(cfg.costs.eh_exception_catch + cfg.costs.eh_shutdown +
          cfg.costs.eh_gloo_reinit + cfg.costs.eh_elastic_reinit);
  ep.Busy(nccl::Comm::InitCost(cfg, rc_->size()));
  std::vector<uint8_t> blob;
  if (rc_->rank() == 0) blob = SerializeState();
  const double scale =
      blob.empty() ? opts_.model_bytes
                   : opts_.model_bytes / static_cast<double>(blob.size());
  (void)rc_->BcastBlob(&blob, 0, scale);
  batcher_.RestartRunning();
}

void ServingDriver::ReleaseStandbys() {
  if (opts_.store == nullptr || rc_->rank() != 0) return;
  for (int i = ctl_.expands_begun(); i < opts_.autoscale.standby_pool; ++i) {
    (void)opts_.store->SetString(&rc_->endpoint(),
                                 StandbyKey(opts_.session, i), "");
  }
}

void ServingDriver::ExportStepMetrics(double step_seconds, int committed_tokens,
                                      bool recovery_step) {
  obs::Registry& reg = obs::Registry::Global();
  const obs::Labels labels{{"mode", ModeName(opts_.mode)}};
  obs::Histogram* tok = reg.GetHistogram("rcc_serve_token_seconds", labels);
  for (int i = 0; i < committed_tokens; ++i) tok->Observe(step_seconds);
  reg.GetCounter("rcc_serve_tokens_total", labels)
      ->Add(static_cast<double>(committed_tokens));
  reg.GetGauge("rcc_serve_queue_depth", labels)->Set(batcher_.waiting());
  reg.GetGauge("rcc_serve_world_size", labels)->Set(rc_->size());
  const double goodput =
      step_seconds > 0 ? committed_tokens / step_seconds : 0.0;
  reg.GetGauge("rcc_serve_goodput_tokens_per_s", labels)->Set(goodput);
  if (recovery_step) {
    reg.GetCounter("rcc_serve_recovery_steps_total", labels)->Increment();
    reg.GetCounter("rcc_serve_recovery_seconds_total", labels)
        ->Add(step_seconds);
    reg.GetCounter("rcc_serve_recovery_tokens_total", labels)
        ->Add(static_cast<double>(committed_tokens));
    reg.GetGauge("rcc_serve_goodput_during_recovery_tokens_per_s", labels)
        ->Set(goodput);
  }
}

ServeReport ServingDriver::Finish(bool aborted) {
  if (aborted && obs::flight::Enabled()) {
    sim::Endpoint& ep = rc_->endpoint();
    obs::flight::ForRank(ep.pid())->Record(obs::flight::Ev::kSelfAbort,
                                           ep.now());
    obs::flight::DumpOnAbort();
  }
  ServeReport r = report_;
  r.aborted = aborted;
  // Repairs that landed after the last step's bookkeeping (e.g. inside
  // the final clock agreement) still count.
  r.repairs += rc_->repairs() - last_repairs_;
  r.completed = static_cast<int>(batcher_.completions().size());
  r.digest = batcher_.digest();
  r.completions = batcher_.completions();
  r.final_world = rc_->size();
  r.steps = batcher_.steps();
  r.end_time = t_sync_;
  return r;
}

std::vector<uint8_t> ServingDriver::SerializeState() const {
  ByteWriter w;
  w.WriteF64(t_sync_);
  w.WriteBytes(batcher_.Serialize());
  ctl_.Serialize(&w);
  return w.data();
}

Status ServingDriver::RestoreState(const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  RCC_RETURN_IF_ERROR(r.ReadF64(&t_sync_));
  std::vector<uint8_t> b;
  RCC_RETURN_IF_ERROR(r.ReadBytes(&b));
  RCC_RETURN_IF_ERROR(batcher_.Restore(b));
  RCC_RETURN_IF_ERROR(ctl_.Restore(&r));
  if (!r.AtEnd()) return Status(Code::kIoError, "trailing serving state");
  return Status::Ok();
}

}  // namespace rcc::serve
