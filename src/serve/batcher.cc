#include "serve/batcher.h"

#include <cmath>

#include "common/serial.h"

namespace rcc::serve {

namespace {

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;  // FNV-1a prime
}

}  // namespace

int Batcher::Admit(const std::vector<Request>& stream, double now,
                   int* prompt_tokens) {
  while (next_arrival_ < static_cast<int>(stream.size()) &&
         stream[static_cast<size_t>(next_arrival_)].arrival <= now) {
    waiting_.push_back(stream[static_cast<size_t>(next_arrival_)].id);
    ++next_arrival_;
  }
  int scheduled = 0;
  int prompts = 0;
  while (!waiting_.empty() &&
         static_cast<int>(running_.size()) < max_batch_) {
    Seq s;
    s.id = waiting_.front();
    waiting_.pop_front();
    s.admit = now;
    prompts += stream[static_cast<size_t>(s.id)].prompt_tokens;
    running_.push_back(s);
    ++scheduled;
  }
  if (prompt_tokens != nullptr) *prompt_tokens = prompts;
  return scheduled;
}

int Batcher::batch_tokens() const {
  return static_cast<int>(running_.size());
}

void Batcher::CommitStep(const std::vector<Request>& stream, double now,
                         float reduced, double step_seconds) {
  ++steps_;
  // Quantize the reduced value so the digest tolerates no drift at all:
  // bit-identical reductions (the resilient-collective guarantee) give
  // bit-identical digests on every rank.
  uint64_t rbits;
  const double rd = static_cast<double>(reduced);
  static_assert(sizeof(rbits) == sizeof(rd));
  __builtin_memcpy(&rbits, &rd, sizeof(rbits));
  std::vector<Seq> still;
  still.reserve(running_.size());
  for (Seq& s : running_) {
    s.pos += 1;
    if (s.first_token < 0) {
      s.first_token = now;
      const Request& r = stream[static_cast<size_t>(s.id)];
      fresh_ttft_.push_back(now - r.arrival);
    }
    digest_ = FnvMix(digest_, static_cast<uint64_t>(s.id));
    digest_ = FnvMix(digest_, static_cast<uint64_t>(s.pos));
    digest_ = FnvMix(digest_, rbits);
    const Request& r = stream[static_cast<size_t>(s.id)];
    if (s.pos >= r.decode_tokens) {
      Completion c;
      c.id = s.id;
      c.arrival = r.arrival;
      c.admit = s.admit;
      c.first_token = s.first_token;
      c.done = now;
      c.tokens = s.pos;
      completions_.push_back(c);
    } else {
      still.push_back(s);
    }
  }
  running_ = std::move(still);
  (void)step_seconds;  // carried by the driver's metric export
}

void Batcher::RestartRunning() {
  for (Seq& s : running_) {
    s.pos = 0;
    // TTFT already served stays served; re-decode only stretches done.
  }
}

std::vector<double> Batcher::TakeFirstTokenLatencies() {
  std::vector<double> out = std::move(fresh_ttft_);
  fresh_ttft_.clear();
  return out;
}

std::vector<uint8_t> Batcher::Serialize() const {
  ByteWriter w;
  w.WriteI32(max_batch_);
  w.WriteI32(next_arrival_);
  w.WriteI64(steps_);
  w.WriteU64(digest_);
  w.WriteU64(waiting_.size());
  for (int id : waiting_) w.WriteI32(id);
  w.WriteU64(running_.size());
  for (const Seq& s : running_) {
    w.WriteI32(s.id);
    w.WriteI32(s.pos);
    w.WriteF64(s.admit);
    w.WriteF64(s.first_token);
  }
  w.WriteU64(completions_.size());
  for (const Completion& c : completions_) {
    w.WriteI32(c.id);
    w.WriteF64(c.arrival);
    w.WriteF64(c.admit);
    w.WriteF64(c.first_token);
    w.WriteF64(c.done);
    w.WriteI32(c.tokens);
  }
  return w.data();
}

Status Batcher::Restore(const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  uint64_t n = 0;
  RCC_RETURN_IF_ERROR(r.ReadI32(&max_batch_));
  RCC_RETURN_IF_ERROR(r.ReadI32(&next_arrival_));
  RCC_RETURN_IF_ERROR(r.ReadI64(&steps_));
  RCC_RETURN_IF_ERROR(r.ReadU64(&digest_));
  RCC_RETURN_IF_ERROR(r.ReadU64(&n));
  waiting_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    int id = 0;
    RCC_RETURN_IF_ERROR(r.ReadI32(&id));
    waiting_.push_back(id);
  }
  RCC_RETURN_IF_ERROR(r.ReadU64(&n));
  running_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    Seq s;
    RCC_RETURN_IF_ERROR(r.ReadI32(&s.id));
    RCC_RETURN_IF_ERROR(r.ReadI32(&s.pos));
    RCC_RETURN_IF_ERROR(r.ReadF64(&s.admit));
    RCC_RETURN_IF_ERROR(r.ReadF64(&s.first_token));
    running_.push_back(s);
  }
  RCC_RETURN_IF_ERROR(r.ReadU64(&n));
  completions_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    Completion c;
    RCC_RETURN_IF_ERROR(r.ReadI32(&c.id));
    RCC_RETURN_IF_ERROR(r.ReadF64(&c.arrival));
    RCC_RETURN_IF_ERROR(r.ReadF64(&c.admit));
    RCC_RETURN_IF_ERROR(r.ReadF64(&c.first_token));
    RCC_RETURN_IF_ERROR(r.ReadF64(&c.done));
    RCC_RETURN_IF_ERROR(r.ReadI32(&c.tokens));
    completions_.push_back(c);
  }
  fresh_ttft_.clear();
  if (!r.AtEnd()) return Status(Code::kIoError, "trailing serving state");
  return Status::Ok();
}

}  // namespace rcc::serve
