// Load-driven autoscaling policy for the serving plane. Decide() is a
// pure function of SPMD-replicated inputs (queue depth, in-batch load,
// world size, step index) plus controller state that is itself part of
// the replicated serving cursor — so every rank reaches the identical
// scaling decision at the identical step, with zero coordination:
//
//   kExpand  queue depth has reached queue_high and a standby worker is
//            available: rank 0 publishes the snapshot and every member
//            opens the async admission window (ExpandAsyncBegin); the
//            batch keeps decoding while the joiner stages.
//   kShrink  load stayed at or below queue_low for low_steps
//            consecutive decode steps: the highest-ranked member leaves
//            via ulfm::LeaveGracefully and the survivors' next decode
//            step repairs the membership down.
//
// A cooldown separates consecutive actions so a splice's queue drain
// cannot immediately trigger the opposite decision.
#pragma once

#include <cstdint>

#include "common/serial.h"
#include "common/status.h"

namespace rcc::serve {

struct AutoscaleConfig {
  bool enabled = false;
  int min_world = 1;        // never shrink below
  int max_world = 1 << 20;  // never expand above
  int queue_high = 16;      // waiting-queue depth that triggers expand
  int queue_low = 1;        // load (waiting + running) of a "low" step
  int low_steps = 48;       // consecutive low steps before shrink
  int cooldown_steps = 32;  // steps between scaling actions
  int standby_pool = 0;     // joiners available for admission
};

enum class ScaleDecision { kNone, kExpand, kShrink };

class AutoscaleController {
 public:
  explicit AutoscaleController(const AutoscaleConfig& cfg) : cfg_(cfg) {}

  // One decision per decode step; mutates the replicated streak state.
  ScaleDecision Decide(int queue_depth, int load, int world, int64_t step);

  // Expands begun so far (names the kvstore session / standby slot).
  int expands_begun() const { return expands_; }
  int shrinks() const { return shrinks_; }

  // Controller state rides inside the serving state blob so a joiner's
  // copy agrees with the survivors'.
  void Serialize(ByteWriter* w) const;
  Status Restore(ByteReader* r);

 private:
  AutoscaleConfig cfg_;
  int expands_ = 0;
  int shrinks_ = 0;
  int low_streak_ = 0;
  int64_t last_action_step_ = -(1ll << 40);  // no cooldown at start
};

}  // namespace rcc::serve
