#include "serve/autoscale.h"

namespace rcc::serve {

ScaleDecision AutoscaleController::Decide(int queue_depth, int load,
                                          int world, int64_t step) {
  if (!cfg_.enabled) return ScaleDecision::kNone;
  // Streak accounting runs every step, even inside the cooldown, so a
  // lull that starts during the cooldown still counts toward shrink.
  if (load <= cfg_.queue_low) {
    ++low_streak_;
  } else {
    low_streak_ = 0;
  }
  if (step - last_action_step_ < cfg_.cooldown_steps) {
    return ScaleDecision::kNone;
  }
  if (queue_depth >= cfg_.queue_high && world < cfg_.max_world &&
      expands_ < cfg_.standby_pool) {
    ++expands_;
    last_action_step_ = step;
    low_streak_ = 0;
    return ScaleDecision::kExpand;
  }
  if (low_streak_ >= cfg_.low_steps && world > cfg_.min_world) {
    ++shrinks_;
    last_action_step_ = step;
    low_streak_ = 0;
    return ScaleDecision::kShrink;
  }
  return ScaleDecision::kNone;
}

void AutoscaleController::Serialize(ByteWriter* w) const {
  w->WriteI32(expands_);
  w->WriteI32(shrinks_);
  w->WriteI32(low_streak_);
  w->WriteI64(last_action_step_);
}

Status AutoscaleController::Restore(ByteReader* r) {
  RCC_RETURN_IF_ERROR(r->ReadI32(&expands_));
  RCC_RETURN_IF_ERROR(r->ReadI32(&shrinks_));
  RCC_RETURN_IF_ERROR(r->ReadI32(&low_streak_));
  RCC_RETURN_IF_ERROR(r->ReadI64(&last_action_step_));
  return Status::Ok();
}

}  // namespace rcc::serve
