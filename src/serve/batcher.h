// Continuous-batching scheduler state. This is the SPMD-replicated
// serving cursor: every tensor-parallel rank holds an identical copy
// and mutates it with identical inputs (the shared arrival stream, the
// synchronized virtual clock, the bit-identical allreduced decode
// value), so after any shrink the survivors' batchers already agree and
// NO in-flight request loses its sequence state — the repair replays
// only the interrupted decode step, never the batch.
//
// Request lifecycle:  generated -> waiting (arrival <= now) ->
// running (scheduled into the batch, admit stamped) -> one token per
// decode step -> completed (decode_tokens committed).
//
// The whole state round-trips through Serialize/Restore for async
// joiner admission: the pre-staged snapshot plus a post-splice delta
// broadcast make the joiner's copy (including the completion log, so
// its end-of-run stream equals the survivors') byte-equal.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "serve/request.h"

namespace rcc::serve {

class Batcher {
 public:
  explicit Batcher(int max_batch) : max_batch_(max_batch < 1 ? 1 : max_batch) {}

  // Moves every generated request with arrival <= now into the waiting
  // queue (FIFO by id; the stream is arrival-sorted), then fills the
  // running batch up to max_batch, stamping admit times. Returns the
  // number of requests newly scheduled into the batch; when
  // `prompt_tokens` is non-null it receives their summed prompt lengths
  // (the prefill work this step must pay).
  int Admit(const std::vector<Request>& stream, double now,
            int* prompt_tokens = nullptr);

  // Commits one decode token to every running sequence at virtual time
  // `now`, folding the allreduced step value into the state digest
  // (bit-identical across ranks <=> identical decode results). Finished
  // sequences move to the completion log. `step_seconds` is the decode
  // step's wall duration (per-token latency for every running seq).
  void CommitStep(const std::vector<Request>& stream, double now,
                  float reduced, double step_seconds);

  // Tear-down-and-rebuild baseline semantics: a failure destroys the KV
  // caches, so every running sequence restarts decode from position 0
  // (prompt recompute + all tokens again). Waiting/completed untouched.
  void RestartRunning();

  int waiting() const { return static_cast<int>(waiting_.size()); }
  int running() const { return static_cast<int>(running_.size()); }
  int batch_tokens() const;  // decode positions in flight this step
  // Next unadmitted arrival index into the stream.
  int next_arrival() const { return next_arrival_; }
  bool Drained(int stream_size) const {
    return next_arrival_ >= stream_size && waiting_.empty() &&
           running_.empty();
  }

  const std::vector<Completion>& completions() const { return completions_; }
  uint64_t digest() const { return digest_; }
  int64_t steps() const { return steps_; }

  // Per-seq TTFT observations from the last CommitStep (virtual
  // seconds), drained by the caller for metric export.
  std::vector<double> TakeFirstTokenLatencies();

  std::vector<uint8_t> Serialize() const;
  Status Restore(const std::vector<uint8_t>& blob);

 private:
  struct Seq {
    int id = 0;
    int pos = 0;  // decode tokens committed so far
    double admit = 0.0;
    double first_token = -1.0;  // < 0 until the first commit
  };

  int max_batch_;
  int next_arrival_ = 0;
  std::deque<int> waiting_;        // request ids, FIFO
  std::vector<Seq> running_;       // scheduled batch, admission order
  std::vector<Completion> completions_;
  std::vector<double> fresh_ttft_;
  uint64_t digest_ = 1469598103934665603ull;  // FNV-1a offset basis
  int64_t steps_ = 0;
};

}  // namespace rcc::serve
