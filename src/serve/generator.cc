#include "serve/generator.h"

#include "common/env.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/sampling.h"

namespace rcc::serve {

using common::EnvDouble;
using common::EnvInt;

TrafficConfig TrafficFromEnv(TrafficConfig d) {
  d.seed = static_cast<uint64_t>(EnvInt("RCC_SERVE_SEED",
                                        static_cast<int>(d.seed)));
  d.requests = EnvInt("RCC_SERVE_REQUESTS", d.requests);
  d.base_rps = EnvDouble("RCC_SERVE_RPS", d.base_rps);
  d.diurnal_amplitude = EnvDouble("RCC_SERVE_DIURNAL", d.diurnal_amplitude);
  d.diurnal_period_s = EnvDouble("RCC_SERVE_PERIOD", d.diurnal_period_s);
  return d;
}

std::vector<Request> GenerateArrivals(const TrafficConfig& cfg) {
  RCC_CHECK(cfg.requests >= 0);
  RCC_CHECK(cfg.base_rps > 0) << "serve traffic needs a positive rate";
  RCC_CHECK(cfg.min_prompt > 0 && cfg.max_prompt >= cfg.min_prompt);
  RCC_CHECK(cfg.min_decode > 0 && cfg.max_decode >= cfg.min_decode);

  // Distinct streams for arrival times and request sizes, so tweaking
  // one knob cannot shift the other's draws.
  Rng arrivals_rng(cfg.seed, /*stream=*/0x5E21E);
  Rng sizes_rng(cfg.seed, /*stream=*/0x5E21F);

  std::vector<Request> out;
  out.reserve(static_cast<size_t>(cfg.requests));
  const bool diurnal = cfg.diurnal_amplitude > 0 && cfg.diurnal_period_s > 0;
  PoissonProcess flat(&arrivals_rng, cfg.base_rps);
  auto rate = [&cfg](double t) {
    return DiurnalRate(cfg.base_rps, cfg.diurnal_amplitude,
                       cfg.diurnal_period_s, t);
  };
  InhomogeneousPoissonProcess curved(
      &arrivals_rng, rate, cfg.base_rps * (1.0 + cfg.diurnal_amplitude));
  // The count cap (not a horizon) ends the stream: the driver drains
  // every generated request, which is what oracle P8 audits against.
  constexpr double kNoHorizon = 1e30;
  for (int i = 0; i < cfg.requests; ++i) {
    Request r;
    r.id = i;
    r.arrival = diurnal ? curved.Next(kNoHorizon) : flat.Next();
    r.prompt_tokens =
        cfg.min_prompt + static_cast<int>(sizes_rng.NextBelow(
                             cfg.max_prompt - cfg.min_prompt + 1));
    r.decode_tokens =
        cfg.min_decode + static_cast<int>(sizes_rng.NextBelow(
                             cfg.max_decode - cfg.min_decode + 1));
    out.push_back(r);
  }
  return out;
}

}  // namespace rcc::serve
