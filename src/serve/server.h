// The serving driver: SPMD continuous-batched decode over a
// ResilientComm.
//
// Every tensor-parallel rank runs the identical loop against the
// identical precomputed arrival stream (serve/generator.h) and an
// identical replicated Batcher, so the batch composition, token
// commits, and completion log are pure functions of the traffic seed
// and the failure schedule:
//
//   admit arrivals -> (autoscale decision) -> prefill+decode compute ->
//   TP allreduce over ResilientComm -> agree on the step clock ->
//   commit one token per running sequence
//
// Failure mid-decode: the resilient allreduce repairs internally
// (revoke/agree/shrink/GPU rebuild) and re-executes ONLY the in-flight
// decode step; the batcher state — every admitted request's sequence
// position, i.e. its KV cache — is untouched on the survivors, so no
// in-flight request is dropped and the token is committed exactly once
// (the commit runs strictly after the resilient op returns).
//
// The step clock: virtual timestamps entering the replicated state
// (admission cutoffs, TTFT, completion times) must be bit-identical on
// every rank, while raw endpoint clocks can skew by per-hop residuals
// inside message-passing collectives. After each decode step the ranks
// run a small resilient allgather and adopt the MAX of their clocks as
// the authoritative step time; admission and commits only ever read
// that agreed value. This models the batch scheduler's coordination
// round and costs one host-side small collective per step.
//
// Autoscaling (serve/autoscale.h): queue pressure opens PR 4's async
// admission (ExpandAsyncBegin + per-step polls, standby joiners parked
// on a kvstore key), sustained low load makes the highest rank leave
// via ulfm::LeaveGracefully, with the survivors repairing down on their
// next decode step.
//
// RecoveryMode::kTeardownRebuild is the Gloo-style baseline: the same
// failure instead charges the full exception-catch / shutdown /
// gloo+elastic reinit / fresh NCCL bootstrap / whole-state rebroadcast
// sequence, and the restart destroys the KV caches, so every running
// sequence re-decodes from position 0. Same substrate, same failure
// schedule — only the recovery semantics differ, which is what
// bench_serving_slo measures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/resilient.h"
#include "serve/autoscale.h"
#include "serve/batcher.h"
#include "serve/generator.h"

namespace rcc::serve {

enum class RecoveryMode { kResilient, kTeardownRebuild };

struct ServeOptions {
  TrafficConfig traffic;
  int max_batch = 8;
  int hidden = 256;               // floats allreduced per decode step
  double flops_per_token = 6e9;   // decode compute per sequence per step
  double decode_cost_scale = 1.0; // declared/physical wire-byte ratio
  // Declared size of the staged joiner snapshot (weights + serving
  // state) and of the baseline's post-teardown state rebroadcast.
  double model_bytes = 64e6;
  RecoveryMode mode = RecoveryMode::kResilient;
  horovod::DropPolicy policy = horovod::DropPolicy::kProcess;
  AutoscaleConfig autoscale;
  kv::Store* store = nullptr;     // admission rendezvous + standby wakeups
  std::string session = "serve";
};

struct ServeReport {
  bool aborted = false;       // this rank died mid-run
  bool left = false;          // voluntary autoscale departure
  bool idle_standby = false;  // standby released without ever joining
  int completed = 0;
  uint64_t digest = 0;   // replicated-state digest (cross-rank audit)
  std::vector<Completion> completions;
  int repairs = 0;
  int recovery_steps = 0;  // decode steps that contained >= 1 repair
  int expands = 0;         // splices observed by this rank
  int shrinks = 0;         // voluntary-shrink decisions observed
  int final_world = 0;
  int64_t steps = 0;
  double end_time = 0.0;
};

class ServingDriver {
 public:
  ServingDriver(core::ResilientComm* rc, const ServeOptions& opts);

  // Founders: serve the whole stream; returns when it is drained (or
  // this rank dies / leaves).
  ServeReport Run();

  // Kvstore key a standby joiner parks on; the serving rank 0 writes
  // the expand session name into slot `index` when autoscaling up, and
  // the empty string at drain to release unused standbys.
  static std::string StandbyKey(const std::string& session, int index);

  // Standby joiner: park on StandbyKey(session, index), then run the
  // async admission (JoinAsync + post-splice state sync) and keep
  // serving as a member. Returns aborted=true if the admission failed
  // or this rank died; left=false always (joiners don't re-leave).
  static ServeReport RunStandbyJoiner(sim::Endpoint& ep, kv::Store* store,
                                      const ServeOptions& opts, int index,
                                      trace::Recorder* rec);

 private:
  ServeReport Loop();
  // Snapshot of the replicated state into a report for this rank.
  ServeReport Finish(bool aborted);
  // Agree on the authoritative step clock (resilient MAX-allgather).
  Status AgreeClock();
  // Handles a pending async expand at a step boundary; returns false if
  // this rank died.
  bool PollAdmission(bool finalize);
  Status SpliceSync(bool receiver);
  bool BeginExpand();  // false: this rank died
  void TeardownPenalty();
  void ReleaseStandbys();
  void ExportStepMetrics(double step_seconds, int committed_tokens,
                         bool recovery_step);
  std::vector<uint8_t> SerializeState() const;
  Status RestoreState(const std::vector<uint8_t>& blob);

  core::ResilientComm* rc_;
  ServeOptions opts_;
  std::vector<Request> stream_;
  Batcher batcher_;
  AutoscaleController ctl_;
  double t_sync_ = 0.0;  // agreed step clock (identical on every rank)
  int last_repairs_ = 0;
  int64_t decode_replays_ = 0;
  ServeReport report_;
};

}  // namespace rcc::serve
