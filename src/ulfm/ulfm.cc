#include "ulfm/ulfm.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <cmath>
#include <map>
#include <mutex>
#include <set>

#include <cstdlib>

#include "common/env.h"
#include "common/log.h"
#include "obs/flight.h"
#include "sim/engine.h"

namespace rcc::ulfm {

namespace {

using common::EnvDouble;

int CeilLog2(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

// ---------------------------------------------------------------------
// Agreement synchronizer (see header: idealized ERA with explicit cost).
// ---------------------------------------------------------------------
struct AgreeState {
  std::mutex mu;
  sim::WaitPoint wp;
  std::map<int, int> flags;               // pid -> contributed flag
  std::map<int, int64_t> values;          // pid -> contributed value
  std::map<int, sim::Seconds> arrivals;   // pid -> arrival virtual time
  bool done = false;
  AgreeOutcome outcome;
  sim::Seconds finish_time = 0.0;
  int leavers = 0;
  int expected_leavers = 0;
};

std::mutex g_agree_mu;
std::map<std::string, std::shared_ptr<AgreeState>> g_agree_registry;

std::shared_ptr<AgreeState> AgreeStateFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_agree_mu);
  auto it = g_agree_registry.find(key);
  if (it != g_agree_registry.end()) return it->second;
  auto state = std::make_shared<AgreeState>();
  g_agree_registry.emplace(key, state);
  return state;
}

void ReleaseAgreeState(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_agree_mu);
  g_agree_registry.erase(key);
}

// ---------------------------------------------------------------------
// Expand synchronizer (connect/accept + intercomm merge analogue).
// ---------------------------------------------------------------------
struct ExpandState {
  std::mutex mu;
  sim::WaitPoint wp;
  bool survivors_known = false;
  std::vector<int> old_group_pids;        // captured from the first survivor
  std::set<int> survivor_arrived;
  std::set<int> joiner_arrived;
  std::map<int, sim::Seconds> arrivals;
  bool done = false;
  bool aborted = false;  // rendezvous abandoned (grace expired)
  std::shared_ptr<mpi::CommGroup> new_group;
  sim::Seconds finish_time = 0.0;
  int leavers = 0;
  int expected_leavers = 0;
  int64_t op_counter = 0;  // survivors' resilient-op counter (max)
};

std::mutex g_expand_mu;
std::map<std::string, std::shared_ptr<ExpandState>> g_expand_registry;

std::shared_ptr<ExpandState> ExpandStateFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_expand_mu);
  auto it = g_expand_registry.find(key);
  if (it != g_expand_registry.end()) return it->second;
  auto state = std::make_shared<ExpandState>();
  g_expand_registry.emplace(key, state);
  return state;
}

void ReleaseExpandState(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_expand_mu);
  g_expand_registry.erase(key);
}

}  // namespace

sim::Seconds AgreementCost(const sim::SimConfig& cfg, int nranks) {
  // ERA: two sweeps of a binary tree of small control messages.
  const sim::Seconds per_hop = cfg.net.inter_latency +
                               cfg.net.send_overhead + cfg.net.recv_overhead +
                               64.0 / cfg.net.inter_bandwidth;
  return 2.0 * CeilLog2(std::max(nranks, 2)) * per_hop;
}

std::vector<int> FailureAck(mpi::Comm& comm) {
  std::set<int> acked = comm.locally_observed_failures();
  for (int pid : comm.pids()) {
    if (!comm.endpoint().fabric().IsAlive(pid)) acked.insert(pid);
  }
  comm.NoteFailedPids({acked.begin(), acked.end()});
  return {acked.begin(), acked.end()};
}

std::vector<int> FailureGetAcked(mpi::Comm& comm) {
  const std::set<int>& acked = comm.locally_observed_failures();
  return {acked.begin(), acked.end()};
}

void Revoke(mpi::Comm& comm) {
  sim::Endpoint& ep = comm.endpoint();
  sim::Fabric& fabric = ep.fabric();
  ep.Busy(fabric.config().costs.ulfm_revoke_propagation);
  comm.group()->revoke.Cancel();
  fabric.WakeAll();
  if (obs::flight::Enabled()) {
    obs::flight::ForRank(ep.pid())->Record(obs::flight::Ev::kRevoke,
                                           ep.now(), comm.context_id());
  }
}

void LeaveGracefully(sim::Endpoint& ep, mpi::Comm& comm) {
  if (!ep.alive()) return;
  // Revoke-then-die: the revoke wakes peers parked in collectives so
  // they observe the departure at the next blocking point instead of a
  // transport timeout; the fabric kill makes the departure a normal
  // acked failure for the subsequent agree/shrink.
  Revoke(comm);
  if (obs::flight::Enabled()) {
    obs::flight::ForRank(ep.pid())->Record(obs::flight::Ev::kLeave, ep.now());
  }
  ep.fabric().Kill(ep.pid());
}

Result<AgreeOutcome> Agree(mpi::Comm& comm, int flag, int64_t value) {
  sim::Endpoint& ep = comm.endpoint();
  sim::Fabric& fabric = ep.fabric();
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  ep.Busy(fabric.config().costs.ulfm_errhandler_dispatch);
  // Busy may have fired an armed self-kill: a rank that dies in the
  // dispatch window must not contribute — survivors would otherwise
  // count its flag/value or not depending on thread timing.
  if (!ep.alive()) {
    return Status(Code::kAborted, "caller died entering agree");
  }

  const uint64_t agree_round = comm.NextAgreeSeq();
  const sim::Seconds agree_enter = ep.now();
  const std::string key = std::to_string(comm.context_id()) + "/agree/" +
                          std::to_string(agree_round);
  auto state = AgreeStateFor(key);
  const std::vector<int>& members = comm.pids();

  std::unique_lock<std::mutex> lock(state->mu);
  state->flags[ep.pid()] = flag;
  state->values[ep.pid()] = value;
  state->arrivals[ep.pid()] = ep.now();
  state->wp.NotifyAll();

  while (!state->done) {
    if (!ep.alive()) return Status(Code::kAborted, "caller died in agree");
    // Complete once every still-alive member has contributed.
    bool complete = true;
    for (int pid : members) {
      if (state->flags.count(pid) == 0 && fabric.IsAlive(pid)) {
        complete = false;
        break;
      }
    }
    if (complete) {
      AgreeOutcome outcome;
      outcome.flag = ~0;
      outcome.min_value = std::numeric_limits<int64_t>::max();
      sim::Seconds latest = 0.0;
      int alive_contributors = 0;
      for (const auto& [pid, f] : state->flags) {
        outcome.flag &= f;
        outcome.min_value = std::min(outcome.min_value, state->values[pid]);
        latest = std::max(latest, state->arrivals[pid]);
        if (fabric.IsAlive(pid)) ++alive_contributors;
      }
      for (int pid : members) {
        if (!fabric.IsAlive(pid)) outcome.failed_pids.push_back(pid);
      }
      std::sort(outcome.failed_pids.begin(), outcome.failed_pids.end());
      state->outcome = std::move(outcome);
      state->finish_time =
          latest + AgreementCost(fabric.config(),
                                 static_cast<int>(members.size()));
      state->expected_leavers = alive_contributors;
      state->done = true;
      state->wp.NotifyAll();
      break;
    }
    // Real-time poll so that deaths (which do not notify this condvar)
    // are observed; virtual time is taken from finish_time, not from
    // this polling interval.
    state->wp.WaitFor(lock, 200e-6);
  }

  AgreeOutcome outcome = state->outcome;
  ep.AdvanceTo(state->finish_time);
  comm.NoteFailedPids(outcome.failed_pids);
  ++state->leavers;
  const bool last = state->leavers >= state->expected_leavers;
  lock.unlock();
  if (last) ReleaseAgreeState(key);
  if (obs::flight::Enabled()) {
    obs::flight::ForRank(ep.pid())->Record(
        obs::flight::Ev::kAgree, ep.now(),
        static_cast<int64_t>(agree_round), outcome.min_value,
        ep.now() - agree_enter);
  }
  return outcome;
}

Result<mpi::Comm> Shrink(mpi::Comm& comm) {
  sim::Endpoint& ep = comm.endpoint();
  const sim::Seconds shrink_enter = ep.now();
  auto agreed = Agree(comm, /*flag=*/1);
  if (!agreed.ok()) return agreed.status();

  std::vector<int> survivors;
  for (int pid : comm.pids()) {
    if (std::find(agreed.value().failed_pids.begin(),
                  agreed.value().failed_pids.end(),
                  pid) == agreed.value().failed_pids.end()) {
      survivors.push_back(pid);
    }
  }
  if (survivors.empty()) {
    return Status(Code::kInternal, "shrink: no survivors");
  }

  // Real shrink performs a second agreement to allocate the new context
  // id; charge its cost (clocks stay aligned: everyone left the first
  // agreement at the same virtual time).
  ep.Busy(AgreementCost(ep.fabric().config(),
                        static_cast<int>(survivors.size())));

  auto group = mpi::GetOrCreateGroup(
      mpi::GroupKey(comm.context_id(), "shrink", survivors), survivors);
  mpi::Comm next(&ep, group);
  next.set_cost_scale(comm.cost_scale());
  if (next.rank() == 0) {
    ep.fabric().PurgeContext(comm.context_id());
  }
  if (obs::flight::Enabled()) {
    obs::flight::ForRank(ep.pid())->Record(
        obs::flight::Ev::kShrink, ep.now(),
        static_cast<int64_t>(survivors.size()),
        static_cast<int64_t>(agreed.value().failed_pids.size()),
        ep.now() - shrink_enter);
  }
  return next;
}

Result<mpi::Comm> ExpandComm(sim::Endpoint& ep, mpi::Comm* old_comm,
                             const std::string& session,
                             int expected_joiners, int64_t op_counter,
                             int64_t* agreed_counter) {
  sim::Fabric& fabric = ep.fabric();
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  const std::string key =
      "expand/f" + std::to_string(fabric.id()) + "/" + session;
  auto state = ExpandStateFor(key);

  // A survivor whose armed kill has matured dies *before* registering
  // arrival; the completeness check below skips dead non-arrived
  // survivors, so the expand completes without it, deterministically.
  // (Joiners must register first — survivors wait for exactly
  // `expected_joiners` arrivals — and are reaped in the wait loop.)
  if (old_comm != nullptr && ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "survivor killed entering expand");
  }
  const sim::Seconds expand_enter = ep.now();

  std::unique_lock<std::mutex> lock(state->mu);
  if (old_comm != nullptr) {
    if (!state->survivors_known) {
      state->old_group_pids = old_comm->pids();
      state->survivors_known = true;
    }
    state->survivor_arrived.insert(ep.pid());
    state->op_counter = std::max(state->op_counter, op_counter);
  } else {
    state->joiner_arrived.insert(ep.pid());
  }
  state->arrivals[ep.pid()] = ep.now();
  state->wp.NotifyAll();

  const double grace_ms = ExpandGraceMs();
  const auto real_start = std::chrono::steady_clock::now();
  // Fibers backend: the real-time grace would break determinism, so the
  // window "expires" when the event queue quiesces instead — if nothing
  // in the simulation can make progress, the missing joiner can never
  // arrive, which is exactly the condition the real-time grace detects.
  const bool on_fiber = sim::OnFiberTask();
  bool grace_expired = false;
  while (!state->done) {
    if (!ep.alive()) return Status(Code::kAborted, "caller died in expand");
    // An arrived joiner with a matured kill dies here: it already
    // counted toward expected_joiners (no survivor deadlock) and stays
    // in the membership; the first resilient op repairs it away.
    if (old_comm == nullptr && ep.MaybeSelfKill()) {
      return Status(Code::kAborted, "joiner killed in expand");
    }
    bool complete = state->survivors_known || expected_joiners == 0;
    if (state->survivors_known) {
      for (int pid : state->old_group_pids) {
        if (fabric.IsAlive(pid) && state->survivor_arrived.count(pid) == 0) {
          complete = false;
          break;
        }
      }
    }
    if (static_cast<int>(state->joiner_arrived.size()) < expected_joiners) {
      complete = false;
    }
    if (complete) {
      // Membership: surviving old ranks in old order, then joiners by pid.
      std::vector<int> pids;
      for (int pid : state->old_group_pids) {
        if (state->survivor_arrived.count(pid) != 0 && fabric.IsAlive(pid)) {
          pids.push_back(pid);
        }
      }
      std::vector<int> joiners(state->joiner_arrived.begin(),
                               state->joiner_arrived.end());
      std::sort(joiners.begin(), joiners.end());
      pids.insert(pids.end(), joiners.begin(), joiners.end());

      sim::Seconds latest = 0.0;
      int alive_count = 0;
      for (int pid : pids) {
        latest = std::max(latest, state->arrivals[pid]);
        if (fabric.IsAlive(pid)) ++alive_count;
      }
      const int total = static_cast<int>(pids.size());
      // connect/accept: one verbs-class connection per tree level, then
      // an agreement-priced intercomm merge.
      const sim::Seconds cost =
          fabric.config().costs.conn_setup_verbs * CeilLog2(total) +
          AgreementCost(fabric.config(), total);
      state->new_group = mpi::GetOrCreateGroup(key, pids);
      state->finish_time = latest + cost;
      state->expected_leavers = alive_count;
      state->done = true;
      state->wp.NotifyAll();
      break;
    }
    // Deadline: the rendezvous cannot complete (a provisioned joiner
    // died before arriving, or was never launched). The first arrived
    // participant whose real-time grace expires abandons the expand for
    // everyone; the virtual cost is the admission deadline charged past
    // the latest arrival — survivors "waited it out", then gave up.
    if (grace_ms > 0 &&
        (on_fiber ? grace_expired
                  : std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - real_start)
                            .count() >= grace_ms)) {
      sim::Seconds latest = 0.0;
      for (const auto& [pid, t] : state->arrivals) {
        latest = std::max(latest, t);
      }
      state->finish_time = latest + ExpandTimeout();
      state->expected_leavers = static_cast<int>(state->arrivals.size());
      state->aborted = true;
      state->done = true;
      state->wp.NotifyAll();
      break;
    }
    if (!state->wp.WaitFor(lock, 200e-6)) grace_expired = true;
  }

  if (state->aborted) {
    ep.AdvanceTo(state->finish_time);
    ++state->leavers;
    const bool last = state->leavers >= state->expected_leavers;
    lock.unlock();
    if (last) ReleaseExpandState(key);
    if (obs::flight::Enabled()) {
      obs::flight::ForRank(ep.pid())->Record(
          obs::flight::Ev::kExpandAbort, ep.now(), 0, 0,
          ep.now() - expand_enter);
    }
    return Status(Code::kTimeout,
                  "expand timed out waiting for rendezvous arrivals");
  }

  auto group = state->new_group;
  if (agreed_counter != nullptr) *agreed_counter = state->op_counter;
  ep.AdvanceTo(state->finish_time);
  ++state->leavers;
  const bool last = state->leavers >= state->expected_leavers;
  lock.unlock();
  if (last) ReleaseExpandState(key);
  if (obs::flight::Enabled()) {
    obs::flight::ForRank(ep.pid())->Record(
        obs::flight::Ev::kExpand, ep.now(),
        static_cast<int64_t>(group->pids.size()), expected_joiners,
        ep.now() - expand_enter);
  }

  mpi::Comm next(&ep, group);
  if (old_comm != nullptr) {
    next.set_cost_scale(old_comm->cost_scale());
    if (next.rank() == 0) fabric.PurgeContext(old_comm->context_id());
  }
  return next;
}

// ---------------------------------------------------------------------
// Nonblocking expand (asynchronous joiner admission).
// ---------------------------------------------------------------------

namespace {

// One collective poll round at a step boundary.
struct AsyncRound {
  std::map<int, sim::Seconds> times;  // survivor pid -> poll time
  int64_t op_counter = 0;             // max of the pollers' contributions
  bool done = false;
  ExpandStatus status = ExpandStatus::kPending;
};

struct AsyncExpandState {
  std::mutex mu;
  sim::WaitPoint wp;
  // Fixed by ExpandBegin.
  bool begun = false;
  std::vector<int> old_group_pids;
  std::map<int, sim::Seconds> begin_times;  // survivor pid -> Begin time
  int expected_joiners = 0;
  sim::Seconds timeout = 0.0;
  bool announce_closed = false;
  // Joiner progress (virtual timestamps; decisions compare these to the
  // deadline, never to real time).
  std::map<int, sim::Seconds> announced;
  std::map<int, sim::Seconds> staged;
  std::set<int> withdrawn;
  bool abort_requested = false;
  // Poll rounds and the terminal decision. deque: a parked poller holds
  // a reference to its round while a faster survivor may already be
  // opening the next one.
  std::deque<AsyncRound> rounds;
  bool decided = false;
  ExpandStatus final_status = ExpandStatus::kPending;
  std::vector<int> admitted;
  bool prestaged = false;
  std::shared_ptr<mpi::CommGroup> new_group;
  sim::Seconds splice_time = 0.0;
  int64_t op_counter = 0;
  int leavers = 0;
  int expected_leavers = 0;
};

std::mutex g_async_mu;
std::map<std::string, std::shared_ptr<AsyncExpandState>> g_async_registry;

std::shared_ptr<AsyncExpandState> AsyncStateFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_async_mu);
  auto it = g_async_registry.find(key);
  if (it != g_async_registry.end()) return it->second;
  auto state = std::make_shared<AsyncExpandState>();
  g_async_registry.emplace(key, state);
  return state;
}

void ReleaseAsyncState(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_async_mu);
  g_async_registry.erase(key);
}

std::string AsyncKey(sim::Fabric& fabric, const std::string& session) {
  return "expandx/f" + std::to_string(fabric.id()) + "/" + session;
}

// Round k's virtual facts are resolved once every live old-group member
// has polled it and every announced joiner has staged, withdrawn or
// died. Each of those is fixed in the respective thread's own program
// order, so blocking on them (in real time) keeps decisions a pure
// function of virtual timestamps.
bool AsyncRoundComplete(const AsyncExpandState& state, size_t round,
                        sim::Fabric& fabric) {
  if (!state.announce_closed) return false;  // Begin still collecting
  const AsyncRound& r = state.rounds[round];
  for (int pid : state.old_group_pids) {
    if (r.times.count(pid) == 0 && fabric.IsAlive(pid)) return false;
  }
  for (const auto& [jpid, t] : state.announced) {
    (void)t;
    if (state.staged.count(jpid) == 0 && state.withdrawn.count(jpid) == 0 &&
        fabric.IsAlive(jpid)) {
      return false;
    }
  }
  return true;
}

// Decides round `round` (caller holds state->mu; completeness checked).
void AsyncDecide(AsyncExpandState* state, size_t round, bool finalize,
                 const std::string& key, sim::Fabric& fabric) {
  AsyncRound& r = state->rounds[round];
  if (r.done) return;
  sim::Seconds latest_begin = 0.0;
  for (const auto& [pid, t] : state->begin_times) {
    latest_begin = std::max(latest_begin, t);
  }
  const sim::Seconds deadline = latest_begin + state->timeout;
  sim::Seconds boundary = 0.0;  // this round's latest poll time
  for (const auto& [pid, t] : r.times) boundary = std::max(boundary, t);
  // Admission set: joiners that finished staging at or before the
  // deadline. A staged joiner that died afterwards stays admitted (like
  // an arrived-then-killed ExpandComm joiner): the merged communicator's
  // first resilient op repairs it away.
  std::vector<int> admitted;
  sim::Seconds latest_stage = 0.0;
  for (const auto& [jpid, t] : state->staged) {
    if (state->withdrawn.count(jpid) != 0) continue;
    if (t <= deadline) {
      admitted.push_back(jpid);
      latest_stage = std::max(latest_stage, t);
    }
  }
  std::sort(admitted.begin(), admitted.end());

  ExpandStatus decision;
  if (state->abort_requested || admitted.empty()) {
    decision = ExpandStatus::kAborted;
  } else if (finalize || boundary >= latest_stage) {
    decision = ExpandStatus::kSpliced;
  } else {
    decision = ExpandStatus::kPending;  // staged past this boundary
  }
  r.status = decision;
  r.done = true;
  if (decision == ExpandStatus::kPending) {
    state->wp.NotifyAll();
    return;
  }

  state->decided = true;
  state->final_status = decision;
  state->op_counter = r.op_counter;
  int alive_waiters = 0;
  for (const auto& [jpid, t] : state->announced) {
    (void)t;
    if (fabric.IsAlive(jpid)) ++alive_waiters;
  }
  if (decision == ExpandStatus::kSpliced) {
    state->admitted = admitted;
    // Membership: this round's pollers in old rank order, then the
    // admitted joiners by pid (pollers cannot die while parked in the
    // round — chaos kills are virtual-time self-kills — so the list is
    // exactly the live survivors).
    std::vector<int> pids;
    for (int pid : state->old_group_pids) {
      if (r.times.count(pid) != 0) pids.push_back(pid);
    }
    pids.insert(pids.end(), admitted.begin(), admitted.end());
    const int total = static_cast<int>(pids.size());
    const sim::Seconds cost =
        fabric.config().costs.conn_setup_verbs * CeilLog2(total) +
        AgreementCost(fabric.config(), total);
    state->splice_time = std::max(boundary, latest_stage) + cost;
    state->new_group = mpi::GetOrCreateGroup(key + "/spliced", pids);
    state->prestaged =
        r.times.size() == state->old_group_pids.size() &&
        admitted.size() == state->announced.size() &&
        static_cast<int>(state->announced.size()) == state->expected_joiners;
  }
  state->expected_leavers =
      static_cast<int>(r.times.size()) + alive_waiters;
  state->wp.NotifyAll();
}

// Leaver bookkeeping shared by survivors and joiners; the last live
// participant of a decided expand releases the registry entry.
void AsyncLeave(std::unique_lock<std::mutex>& lock,
                const std::shared_ptr<AsyncExpandState>& state,
                const std::string& key) {
  ++state->leavers;
  const bool last =
      state->decided && state->leavers >= state->expected_leavers;
  lock.unlock();
  if (last) ReleaseAsyncState(key);
}

}  // namespace

sim::Seconds ExpandTimeout() {
  return EnvDouble("RCC_EXPAND_TIMEOUT", 45.0);
}

double ExpandGraceMs() { return EnvDouble("RCC_EXPAND_GRACE_MS", 2000.0); }

Status ExpandBegin(sim::Endpoint& ep, mpi::Comm& comm,
                   const std::string& session, int expected_joiners,
                   sim::Seconds timeout, ExpandOp* op) {
  sim::Fabric& fabric = ep.fabric();
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  ep.Busy(fabric.config().costs.ulfm_errhandler_dispatch);
  if (ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "survivor died opening expand");
  }
  const std::string key = AsyncKey(fabric, session);
  auto state = AsyncStateFor(key);

  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->begun) {
    state->old_group_pids = comm.pids();
    state->expected_joiners = expected_joiners;
    state->timeout = timeout;
    state->begun = true;
  }
  state->begin_times[ep.pid()] = ep.now();
  state->wp.NotifyAll();

  // Wait (real time only) for the provisioned joiners to announce.
  // Healthy joiners announce at spawn, long before any epoch boundary;
  // the grace binds only when a joiner never launches, and closing the
  // window then treats it as failed (the poll rounds abort or proceed
  // with whoever did announce).
  const double grace_ms = ExpandGraceMs();
  const auto real_start = std::chrono::steady_clock::now();
  // Fibers: window closes on event-queue quiescence (see ExpandComm).
  const bool on_fiber = sim::OnFiberTask();
  bool grace_expired = false;
  while (!state->announce_closed &&
         static_cast<int>(state->announced.size()) < expected_joiners) {
    if (!ep.alive()) {
      return Status(Code::kAborted, "survivor died opening expand");
    }
    if (grace_ms > 0 &&
        (on_fiber ? grace_expired
                  : std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - real_start)
                            .count() >= grace_ms)) {
      break;
    }
    if (!state->wp.WaitFor(lock, 200e-6)) grace_expired = true;
  }
  state->announce_closed = true;
  state->wp.NotifyAll();

  op->key = key;
  op->session = session;
  op->polls = 0;
  op->active = true;
  return Status::Ok();
}

Result<ExpandStatus> ExpandTest(sim::Endpoint& ep, mpi::Comm& comm,
                                ExpandOp* op, int64_t op_counter,
                                bool finalize,
                                std::unique_ptr<mpi::Comm>* merged,
                                SpliceOutcome* outcome) {
  sim::Fabric& fabric = ep.fabric();
  if (!op->active) return Status(Code::kInvalid, "no expand in progress");
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  if (ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "survivor died at poll boundary");
  }
  auto state = AsyncStateFor(op->key);

  std::unique_lock<std::mutex> lock(state->mu);
  const size_t round = static_cast<size_t>(op->polls);
  ++op->polls;
  if (state->rounds.size() <= round) state->rounds.resize(round + 1);
  AsyncRound& r = state->rounds[round];
  r.times[ep.pid()] = ep.now();
  r.op_counter = std::max(r.op_counter, op_counter);
  state->wp.NotifyAll();

  while (!r.done) {
    if (!ep.alive()) {
      return Status(Code::kAborted, "survivor died in expand poll");
    }
    if (AsyncRoundComplete(*state, round, fabric)) {
      AsyncDecide(state.get(), round, finalize, op->key, fabric);
      continue;
    }
    state->wp.WaitFor(lock, 200e-6);
  }

  if (obs::flight::Enabled()) {
    // b: round verdict — 0 pending, 1 spliced, 2 aborted.
    const int64_t verdict = r.status == ExpandStatus::kPending  ? 0
                            : r.status == ExpandStatus::kSpliced ? 1
                                                                 : 2;
    obs::flight::ForRank(ep.pid())->Record(obs::flight::Ev::kExpandRound,
                                           ep.now(),
                                           static_cast<int64_t>(round),
                                           verdict);
  }

  if (r.status == ExpandStatus::kPending) return ExpandStatus::kPending;

  op->active = false;
  if (r.status == ExpandStatus::kAborted) {
    AsyncLeave(lock, state, op->key);
    return ExpandStatus::kAborted;
  }

  if (outcome != nullptr) {
    outcome->admitted = state->admitted;
    outcome->prestaged = state->prestaged;
    outcome->agreed_counter = state->op_counter;
  }
  auto group = state->new_group;
  ep.AdvanceTo(state->splice_time);
  AsyncLeave(lock, state, op->key);

  mpi::Comm next(&ep, group);
  next.set_cost_scale(comm.cost_scale());
  if (next.rank() == 0) fabric.PurgeContext(comm.context_id());
  *merged = std::make_unique<mpi::Comm>(std::move(next));
  return ExpandStatus::kSpliced;
}

void ExpandAbort(sim::Endpoint& ep, const std::string& session) {
  auto state = AsyncStateFor(AsyncKey(ep.fabric(), session));
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->decided) return;
  state->abort_requested = true;
  state->wp.NotifyAll();
}

Status AnnounceJoiner(sim::Endpoint& ep, const std::string& session) {
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  if (ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "joiner died before announcing");
  }
  auto state = AsyncStateFor(AsyncKey(ep.fabric(), session));
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->announced.count(ep.pid()) != 0) return Status::Ok();
  if (state->announce_closed) {
    return Status(Code::kUnavailable, "expand announce window closed");
  }
  state->announced[ep.pid()] = ep.now();
  state->wp.NotifyAll();
  return Status::Ok();
}

Status MarkJoinerStaged(sim::Endpoint& ep, const std::string& session) {
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  if (ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "joiner died while staging");
  }
  auto state = AsyncStateFor(AsyncKey(ep.fabric(), session));
  std::lock_guard<std::mutex> lock(state->mu);
  state->staged[ep.pid()] = ep.now();
  state->wp.NotifyAll();
  return Status::Ok();
}

void WithdrawJoiner(sim::Endpoint& ep, const std::string& session) {
  auto state = AsyncStateFor(AsyncKey(ep.fabric(), session));
  std::lock_guard<std::mutex> lock(state->mu);
  state->withdrawn.insert(ep.pid());
  state->wp.NotifyAll();
}

Result<mpi::Comm> AwaitSplice(sim::Endpoint& ep, const std::string& session,
                              SpliceOutcome* outcome) {
  sim::Fabric& fabric = ep.fabric();
  const std::string key = AsyncKey(fabric, session);
  auto state = AsyncStateFor(key);

  std::unique_lock<std::mutex> lock(state->mu);
  while (!state->decided) {
    if (!ep.alive()) {
      return Status(Code::kAborted, "joiner died awaiting splice");
    }
    // An armed kill maturing while parked fires here (its virtual time
    // is at or before this joiner's staged clock, so the outcome is a
    // pure function of virtual time).
    if (ep.MaybeSelfKill()) {
      state->wp.NotifyAll();
      return Status(Code::kAborted, "joiner killed awaiting splice");
    }
    if (state->begun) {
      bool any_survivor = false;
      for (int pid : state->old_group_pids) {
        if (fabric.IsAlive(pid)) any_survivor = true;
      }
      if (!any_survivor) {
        return Status(Code::kUnavailable, "no survivors left to splice");
      }
    }
    state->wp.WaitFor(lock, 200e-6);
  }

  const bool admitted =
      state->final_status == ExpandStatus::kSpliced &&
      std::find(state->admitted.begin(), state->admitted.end(), ep.pid()) !=
          state->admitted.end();
  if (!admitted) {
    AsyncLeave(lock, state, key);
    return Status(Code::kTimeout,
                  "not admitted: expand aborted or staged past deadline");
  }
  if (outcome != nullptr) {
    outcome->admitted = state->admitted;
    outcome->prestaged = state->prestaged;
    outcome->agreed_counter = state->op_counter;
  }
  auto group = state->new_group;
  ep.AdvanceTo(state->splice_time);
  AsyncLeave(lock, state, key);
  return mpi::Comm(&ep, group);
}

}  // namespace rcc::ulfm
