#include "ulfm/ulfm.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>

#include "common/log.h"

namespace rcc::ulfm {

namespace {

int CeilLog2(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

// ---------------------------------------------------------------------
// Agreement synchronizer (see header: idealized ERA with explicit cost).
// ---------------------------------------------------------------------
struct AgreeState {
  std::mutex mu;
  std::condition_variable cv;
  std::map<int, int> flags;               // pid -> contributed flag
  std::map<int, int64_t> values;          // pid -> contributed value
  std::map<int, sim::Seconds> arrivals;   // pid -> arrival virtual time
  bool done = false;
  AgreeOutcome outcome;
  sim::Seconds finish_time = 0.0;
  int leavers = 0;
  int expected_leavers = 0;
};

std::mutex g_agree_mu;
std::map<std::string, std::shared_ptr<AgreeState>> g_agree_registry;

std::shared_ptr<AgreeState> AgreeStateFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_agree_mu);
  auto it = g_agree_registry.find(key);
  if (it != g_agree_registry.end()) return it->second;
  auto state = std::make_shared<AgreeState>();
  g_agree_registry.emplace(key, state);
  return state;
}

void ReleaseAgreeState(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_agree_mu);
  g_agree_registry.erase(key);
}

// ---------------------------------------------------------------------
// Expand synchronizer (connect/accept + intercomm merge analogue).
// ---------------------------------------------------------------------
struct ExpandState {
  std::mutex mu;
  std::condition_variable cv;
  bool survivors_known = false;
  std::vector<int> old_group_pids;        // captured from the first survivor
  std::set<int> survivor_arrived;
  std::set<int> joiner_arrived;
  std::map<int, sim::Seconds> arrivals;
  bool done = false;
  std::shared_ptr<mpi::CommGroup> new_group;
  sim::Seconds finish_time = 0.0;
  int leavers = 0;
  int expected_leavers = 0;
  int64_t op_counter = 0;  // survivors' resilient-op counter (max)
};

std::mutex g_expand_mu;
std::map<std::string, std::shared_ptr<ExpandState>> g_expand_registry;

std::shared_ptr<ExpandState> ExpandStateFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_expand_mu);
  auto it = g_expand_registry.find(key);
  if (it != g_expand_registry.end()) return it->second;
  auto state = std::make_shared<ExpandState>();
  g_expand_registry.emplace(key, state);
  return state;
}

void ReleaseExpandState(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_expand_mu);
  g_expand_registry.erase(key);
}

}  // namespace

sim::Seconds AgreementCost(const sim::SimConfig& cfg, int nranks) {
  // ERA: two sweeps of a binary tree of small control messages.
  const sim::Seconds per_hop = cfg.net.inter_latency +
                               cfg.net.send_overhead + cfg.net.recv_overhead +
                               64.0 / cfg.net.inter_bandwidth;
  return 2.0 * CeilLog2(std::max(nranks, 2)) * per_hop;
}

std::vector<int> FailureAck(mpi::Comm& comm) {
  std::set<int> acked = comm.locally_observed_failures();
  for (int pid : comm.pids()) {
    if (!comm.endpoint().fabric().IsAlive(pid)) acked.insert(pid);
  }
  comm.NoteFailedPids({acked.begin(), acked.end()});
  return {acked.begin(), acked.end()};
}

std::vector<int> FailureGetAcked(mpi::Comm& comm) {
  const std::set<int>& acked = comm.locally_observed_failures();
  return {acked.begin(), acked.end()};
}

void Revoke(mpi::Comm& comm) {
  sim::Fabric& fabric = comm.endpoint().fabric();
  comm.endpoint().Busy(fabric.config().costs.ulfm_revoke_propagation);
  comm.group()->revoke.Cancel();
  fabric.WakeAll();
}

Result<AgreeOutcome> Agree(mpi::Comm& comm, int flag, int64_t value) {
  sim::Endpoint& ep = comm.endpoint();
  sim::Fabric& fabric = ep.fabric();
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  ep.Busy(fabric.config().costs.ulfm_errhandler_dispatch);
  // Busy may have fired an armed self-kill: a rank that dies in the
  // dispatch window must not contribute — survivors would otherwise
  // count its flag/value or not depending on thread timing.
  if (!ep.alive()) {
    return Status(Code::kAborted, "caller died entering agree");
  }

  const std::string key =
      std::to_string(comm.context_id()) + "/agree/" +
      std::to_string(comm.NextAgreeSeq());
  auto state = AgreeStateFor(key);
  const std::vector<int>& members = comm.pids();

  std::unique_lock<std::mutex> lock(state->mu);
  state->flags[ep.pid()] = flag;
  state->values[ep.pid()] = value;
  state->arrivals[ep.pid()] = ep.now();
  state->cv.notify_all();

  while (!state->done) {
    if (!ep.alive()) return Status(Code::kAborted, "caller died in agree");
    // Complete once every still-alive member has contributed.
    bool complete = true;
    for (int pid : members) {
      if (state->flags.count(pid) == 0 && fabric.IsAlive(pid)) {
        complete = false;
        break;
      }
    }
    if (complete) {
      AgreeOutcome outcome;
      outcome.flag = ~0;
      outcome.min_value = std::numeric_limits<int64_t>::max();
      sim::Seconds latest = 0.0;
      int alive_contributors = 0;
      for (const auto& [pid, f] : state->flags) {
        outcome.flag &= f;
        outcome.min_value = std::min(outcome.min_value, state->values[pid]);
        latest = std::max(latest, state->arrivals[pid]);
        if (fabric.IsAlive(pid)) ++alive_contributors;
      }
      for (int pid : members) {
        if (!fabric.IsAlive(pid)) outcome.failed_pids.push_back(pid);
      }
      std::sort(outcome.failed_pids.begin(), outcome.failed_pids.end());
      state->outcome = std::move(outcome);
      state->finish_time =
          latest + AgreementCost(fabric.config(),
                                 static_cast<int>(members.size()));
      state->expected_leavers = alive_contributors;
      state->done = true;
      state->cv.notify_all();
      break;
    }
    // Real-time poll so that deaths (which do not notify this condvar)
    // are observed; virtual time is taken from finish_time, not from
    // this polling interval.
    state->cv.wait_for(lock, std::chrono::microseconds(200));
  }

  AgreeOutcome outcome = state->outcome;
  ep.AdvanceTo(state->finish_time);
  comm.NoteFailedPids(outcome.failed_pids);
  ++state->leavers;
  const bool last = state->leavers >= state->expected_leavers;
  lock.unlock();
  if (last) ReleaseAgreeState(key);
  return outcome;
}

Result<mpi::Comm> Shrink(mpi::Comm& comm) {
  sim::Endpoint& ep = comm.endpoint();
  auto agreed = Agree(comm, /*flag=*/1);
  if (!agreed.ok()) return agreed.status();

  std::vector<int> survivors;
  for (int pid : comm.pids()) {
    if (std::find(agreed.value().failed_pids.begin(),
                  agreed.value().failed_pids.end(),
                  pid) == agreed.value().failed_pids.end()) {
      survivors.push_back(pid);
    }
  }
  if (survivors.empty()) {
    return Status(Code::kInternal, "shrink: no survivors");
  }

  // Real shrink performs a second agreement to allocate the new context
  // id; charge its cost (clocks stay aligned: everyone left the first
  // agreement at the same virtual time).
  ep.Busy(AgreementCost(ep.fabric().config(),
                        static_cast<int>(survivors.size())));

  auto group = mpi::GetOrCreateGroup(
      mpi::GroupKey(comm.context_id(), "shrink", survivors), survivors);
  mpi::Comm next(&ep, group);
  next.set_cost_scale(comm.cost_scale());
  if (next.rank() == 0) {
    ep.fabric().PurgeContext(comm.context_id());
  }
  return next;
}

Result<mpi::Comm> ExpandComm(sim::Endpoint& ep, mpi::Comm* old_comm,
                             const std::string& session,
                             int expected_joiners, int64_t op_counter,
                             int64_t* agreed_counter) {
  sim::Fabric& fabric = ep.fabric();
  if (!ep.alive()) return Status(Code::kAborted, "caller is dead");
  const std::string key =
      "expand/f" + std::to_string(fabric.id()) + "/" + session;
  auto state = ExpandStateFor(key);

  // A survivor whose armed kill has matured dies *before* registering
  // arrival; the completeness check below skips dead non-arrived
  // survivors, so the expand completes without it, deterministically.
  // (Joiners must register first — survivors wait for exactly
  // `expected_joiners` arrivals — and are reaped in the wait loop.)
  if (old_comm != nullptr && ep.MaybeSelfKill()) {
    return Status(Code::kAborted, "survivor killed entering expand");
  }

  std::unique_lock<std::mutex> lock(state->mu);
  if (old_comm != nullptr) {
    if (!state->survivors_known) {
      state->old_group_pids = old_comm->pids();
      state->survivors_known = true;
    }
    state->survivor_arrived.insert(ep.pid());
    state->op_counter = std::max(state->op_counter, op_counter);
  } else {
    state->joiner_arrived.insert(ep.pid());
  }
  state->arrivals[ep.pid()] = ep.now();
  state->cv.notify_all();

  while (!state->done) {
    if (!ep.alive()) return Status(Code::kAborted, "caller died in expand");
    // An arrived joiner with a matured kill dies here: it already
    // counted toward expected_joiners (no survivor deadlock) and stays
    // in the membership; the first resilient op repairs it away.
    if (old_comm == nullptr && ep.MaybeSelfKill()) {
      return Status(Code::kAborted, "joiner killed in expand");
    }
    bool complete = state->survivors_known || expected_joiners == 0;
    if (state->survivors_known) {
      for (int pid : state->old_group_pids) {
        if (fabric.IsAlive(pid) && state->survivor_arrived.count(pid) == 0) {
          complete = false;
          break;
        }
      }
    }
    if (static_cast<int>(state->joiner_arrived.size()) < expected_joiners) {
      complete = false;
    }
    if (complete) {
      // Membership: surviving old ranks in old order, then joiners by pid.
      std::vector<int> pids;
      for (int pid : state->old_group_pids) {
        if (state->survivor_arrived.count(pid) != 0 && fabric.IsAlive(pid)) {
          pids.push_back(pid);
        }
      }
      std::vector<int> joiners(state->joiner_arrived.begin(),
                               state->joiner_arrived.end());
      std::sort(joiners.begin(), joiners.end());
      pids.insert(pids.end(), joiners.begin(), joiners.end());

      sim::Seconds latest = 0.0;
      int alive_count = 0;
      for (int pid : pids) {
        latest = std::max(latest, state->arrivals[pid]);
        if (fabric.IsAlive(pid)) ++alive_count;
      }
      const int total = static_cast<int>(pids.size());
      // connect/accept: one verbs-class connection per tree level, then
      // an agreement-priced intercomm merge.
      const sim::Seconds cost =
          fabric.config().costs.conn_setup_verbs * CeilLog2(total) +
          AgreementCost(fabric.config(), total);
      state->new_group = mpi::GetOrCreateGroup(key, pids);
      state->finish_time = latest + cost;
      state->expected_leavers = alive_count;
      state->done = true;
      state->cv.notify_all();
      break;
    }
    state->cv.wait_for(lock, std::chrono::microseconds(200));
  }

  auto group = state->new_group;
  if (agreed_counter != nullptr) *agreed_counter = state->op_counter;
  ep.AdvanceTo(state->finish_time);
  ++state->leavers;
  const bool last = state->leavers >= state->expected_leavers;
  lock.unlock();
  if (last) ReleaseExpandState(key);

  mpi::Comm next(&ep, group);
  if (old_comm != nullptr) {
    next.set_cost_scale(old_comm->cost_scale());
    if (next.rank() == 0) fabric.PurgeContext(old_comm->context_id());
  }
  return next;
}

}  // namespace rcc::ulfm
