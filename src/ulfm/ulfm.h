// The ULFM (User-Level Failure Mitigation) extension over rcc::mpi.
//
// Mirrors the MPIX_* API surface the paper builds on:
//   FailureAck / FailureGetAcked  - acknowledge & query observed failures
//   Revoke                        - interrupt all in-flight operations
//   Agree                         - fault-tolerant agreement (flag AND +
//                                   consistent failure set)
//   Shrink                        - rebuild a sane communicator from the
//                                   survivors
//   ExpandComm                    - admit replacement/new workers
//                                   (connect + intercomm-merge analogue)
//
// Agreement is implemented as an idealized synchronizer with an explicit
// ERA-style cost model (2*ceil(log2 P) small-message rounds): Open MPI's
// real agreement algorithm is out of scope, but its *cost shape* - the
// quantity the paper measures - is preserved. See DESIGN.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mpi/comm.h"
#include "sim/endpoint.h"

namespace rcc::ulfm {

// Acknowledges all failures this rank can currently observe on the
// communicator (locally reported errors + transport-level death
// notifications) and returns them, pid-sorted.
std::vector<int> FailureAck(mpi::Comm& comm);

// Returns the pids acknowledged so far (same snapshot rule as
// FailureAck; provided for API parity with MPIX_Comm_failure_get_acked).
std::vector<int> FailureGetAcked(mpi::Comm& comm);

// Revokes the communicator: every rank blocked in an operation on it is
// interrupted with kRevoked, and all future operations fail the same
// way. Idempotent.
void Revoke(mpi::Comm& comm);

struct AgreeOutcome {
  int flag = 0;                    // bitwise AND of all contributions
  int64_t min_value = 0;           // MIN of all contributed values
  std::vector<int> failed_pids;    // consistent failed set (pid-sorted)
};

// Fault-tolerant agreement across the communicator. Every *surviving*
// caller receives the same outcome; processes that die before or during
// the agreement are excluded and reported in `failed_pids`. Works on
// revoked communicators (it is the first step of recovery).
//
// Besides the standard MPIX bitwise-AND flag, the agreement carries a
// MIN-reduced int64 payload (`value`): the resilient-collective layer
// uses it to agree on the earliest outstanding operation after a repair
// (real ULFM applications encode such data into the flag bits).
Result<AgreeOutcome> Agree(mpi::Comm& comm, int flag, int64_t value = 0);

// Shrink: agreement on the failed set, then a new communicator over the
// survivors (old ranks' order preserved). The old communicator's queued
// traffic is purged.
Result<mpi::Comm> Shrink(mpi::Comm& comm);

// Voluntary departure (load-driven downscale): the caller revokes the
// communicator so peers parked in a collective are interrupted promptly,
// then leaves the fabric. To the survivors this is indistinguishable
// from a process failure — the standard revoke/agree/shrink repair
// removes the leaver — which is exactly the point: downscale reuses the
// audited recovery path instead of growing a second membership protocol.
// Call between operations (nothing of the caller's is in flight); the
// caller's endpoint is dead afterwards.
void LeaveGracefully(sim::Endpoint& ep, mpi::Comm& comm);

// Admits `expected_joiners` new processes into a communicator.
// Survivors call with their (shrunk) communicator; joiners call with
// old_comm == nullptr. `session` must be globally unique per expand
// operation and identical on every participant. Survivors keep ranks
// 0..S-1; joiners receive ranks S.. ordered by pid.
//
// Like MPI_Comm_accept the expand blocks until every expected joiner
// arrives, but with a deadline: if the rendezvous has not completed
// within the real-time grace (RCC_EXPAND_GRACE_MS, a misprovision
// valve), the expand is abandoned on every arrived participant with
// Code::kTimeout after charging the virtual deadline (RCC_EXPAND_TIMEOUT
// past the latest arrival), so a provisioned joiner that dies before
// arriving no longer stalls the survivors forever.
// `op_counter` / `agreed_counter` synchronize the resilient layer's
// per-rank operation ids across the rendezvous: survivors publish their
// counter (identical on every survivor — SPMD op streams) and every
// participant reads the agreed value back, so a joiner's subsequent ops
// share ids with the survivors' and the post-repair MIN agreement
// compares like with like.
Result<mpi::Comm> ExpandComm(sim::Endpoint& ep, mpi::Comm* old_comm,
                             const std::string& session,
                             int expected_joiners, int64_t op_counter = 0,
                             int64_t* agreed_counter = nullptr);

// ---------------------------------------------------------------------
// Nonblocking expand: asynchronous joiner admission.
//
// The blocking ExpandComm parks every survivor for the whole rendezvous.
// The nonblocking protocol splits admission into three survivor-side
// calls so training continues while joiners provision and stage state:
//
//   ExpandBegin  - opens the rendezvous at a step boundary. Joiners must
//                  have announced themselves (AnnounceJoiner, issued at
//                  provisioning time); Begin fixes the candidate set and
//                  the virtual admission deadline and returns.
//   ExpandTest   - one collective poll round per step boundary. Returns
//                  kPending while joiners are still staging, kSpliced
//                  with the merged communicator once every admitted
//                  joiner staged at or before this boundary, or kAborted
//                  when no joiner can make the deadline (all dead,
//                  withdrawn, or staged past it) - survivors then simply
//                  keep training degraded.
//   ExpandAbort  - requests a consistent abort at the next poll round.
//
// Joiners run AnnounceJoiner -> (pull state, pre-establish transports)
// -> MarkJoinerStaged -> AwaitSplice, which parks until the survivors'
// deciding round and returns the merged communicator (or a kTimeout /
// kAborted status when excluded).
//
// Determinism: every decision is a pure function of virtual timestamps
// (announce / stage / poll times vs the deadline). Poll rounds block in
// *real* time until those virtual facts are resolved — the same
// discipline as Agree — so campaigns replay byte-identically; the only
// real-time input is the announce grace, which binds only for joiners
// that never spawn.
// ---------------------------------------------------------------------

enum class ExpandStatus { kPending, kSpliced, kAborted };

// Per-survivor handle on one nonblocking expand.
struct ExpandOp {
  std::string key;
  std::string session;
  int polls = 0;      // completed poll rounds
  bool active = false;
};

// Decision payload of the deciding round (survivors and admitted
// joiners observe the same values).
struct SpliceOutcome {
  std::vector<int> admitted;  // joiner pids spliced in, pid-sorted
  // True when the spliced membership equals the candidate set Begin
  // announced (all survivors present, every announced joiner staged in
  // time): the joiners pre-established the merged transports during
  // staging, so the splice-side communicator bootstrap is already paid.
  bool prestaged = false;
  int64_t agreed_counter = 0;  // survivors' resilient-op counter
};

// Env knobs (read per call so tests can pin them):
//   RCC_EXPAND_TIMEOUT   virtual seconds a joiner has to finish staging,
//                        measured from the survivors' ExpandBegin
//                        (default 45; above the cold-start cost).
//   RCC_EXPAND_GRACE_MS  real-time grace for rendezvous arrival before
//                        the expand is abandoned (default 2000; <= 0
//                        disables). A misprovision valve: healthy
//                        joiners announce at spawn, long before it.
sim::Seconds ExpandTimeout();
double ExpandGraceMs();

// Survivor side. Opens the nonblocking expand over `comm`'s membership.
// Waits (real time, grace-bounded, zero virtual cost beyond the
// errhandler dispatch) until the provisioned joiners have announced,
// then closes the announce window — joiners that never announced are
// treated as failed. Never blocks on co-survivors.
Status ExpandBegin(sim::Endpoint& ep, mpi::Comm& comm,
                   const std::string& session, int expected_joiners,
                   sim::Seconds timeout, ExpandOp* op);

// Survivor side, collective at a step boundary. Blocks (real time only)
// until this round's virtual facts are known, then returns the round's
// decision. On kSpliced: `*merged` receives the merged communicator
// (surviving old ranks in order, then admitted joiners by pid), the
// caller's clock advances to the splice time, and `*outcome` is filled.
// On kAborted (as a *value*) the expand is over and the caller keeps
// training degraded. An error status means the caller itself died.
// `finalize` turns the round into a terminal resolve: instead of waiting
// for a future boundary past the joiners' staging times, the survivors
// idle forward and splice (or abort) now — used at the end of training
// so parked joiners always unblock.
Result<ExpandStatus> ExpandTest(sim::Endpoint& ep, mpi::Comm& comm,
                                ExpandOp* op, int64_t op_counter,
                                bool finalize,
                                std::unique_ptr<mpi::Comm>* merged,
                                SpliceOutcome* outcome);

// Requests a consistent abort: the next poll round (on every survivor)
// decides kAborted. Safe from any single rank; no-op once decided.
void ExpandAbort(sim::Endpoint& ep, const std::string& session);

// Joiner side. Announce at provisioning time (before any cold-start
// cost): the survivors' Begin counts announcements against the expected
// joiner count. Idempotent. Fails with kUnavailable if the announce
// window already closed (this joiner is treated as never-arrived).
Status AnnounceJoiner(sim::Endpoint& ep, const std::string& session);

// Joiner side: records that state staging finished at this joiner's
// current virtual time. Admission compares that time to the deadline.
Status MarkJoinerStaged(sim::Endpoint& ep, const std::string& session);

// Joiner side: voluntarily leaves the admission (staging failed while
// this process is still alive). Survivors treat it like a death.
void WithdrawJoiner(sim::Endpoint& ep, const std::string& session);

// Joiner side: parks until the survivors' deciding round. Returns the
// merged communicator when admitted; kTimeout when the expand resolved
// without this joiner (aborted, or staged past the deadline);
// kUnavailable when every survivor died first; kAborted on self-death.
Result<mpi::Comm> AwaitSplice(sim::Endpoint& ep, const std::string& session,
                              SpliceOutcome* outcome);

// Cost model for one agreement over `nranks` participants; exposed so
// benches can report it and tests can check clock advancement.
sim::Seconds AgreementCost(const sim::SimConfig& cfg, int nranks);

}  // namespace rcc::ulfm
