// The ULFM (User-Level Failure Mitigation) extension over rcc::mpi.
//
// Mirrors the MPIX_* API surface the paper builds on:
//   FailureAck / FailureGetAcked  - acknowledge & query observed failures
//   Revoke                        - interrupt all in-flight operations
//   Agree                         - fault-tolerant agreement (flag AND +
//                                   consistent failure set)
//   Shrink                        - rebuild a sane communicator from the
//                                   survivors
//   ExpandComm                    - admit replacement/new workers
//                                   (connect + intercomm-merge analogue)
//
// Agreement is implemented as an idealized synchronizer with an explicit
// ERA-style cost model (2*ceil(log2 P) small-message rounds): Open MPI's
// real agreement algorithm is out of scope, but its *cost shape* - the
// quantity the paper measures - is preserved. See DESIGN.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mpi/comm.h"
#include "sim/endpoint.h"

namespace rcc::ulfm {

// Acknowledges all failures this rank can currently observe on the
// communicator (locally reported errors + transport-level death
// notifications) and returns them, pid-sorted.
std::vector<int> FailureAck(mpi::Comm& comm);

// Returns the pids acknowledged so far (same snapshot rule as
// FailureAck; provided for API parity with MPIX_Comm_failure_get_acked).
std::vector<int> FailureGetAcked(mpi::Comm& comm);

// Revokes the communicator: every rank blocked in an operation on it is
// interrupted with kRevoked, and all future operations fail the same
// way. Idempotent.
void Revoke(mpi::Comm& comm);

struct AgreeOutcome {
  int flag = 0;                    // bitwise AND of all contributions
  int64_t min_value = 0;           // MIN of all contributed values
  std::vector<int> failed_pids;    // consistent failed set (pid-sorted)
};

// Fault-tolerant agreement across the communicator. Every *surviving*
// caller receives the same outcome; processes that die before or during
// the agreement are excluded and reported in `failed_pids`. Works on
// revoked communicators (it is the first step of recovery).
//
// Besides the standard MPIX bitwise-AND flag, the agreement carries a
// MIN-reduced int64 payload (`value`): the resilient-collective layer
// uses it to agree on the earliest outstanding operation after a repair
// (real ULFM applications encode such data into the flag bits).
Result<AgreeOutcome> Agree(mpi::Comm& comm, int flag, int64_t value = 0);

// Shrink: agreement on the failed set, then a new communicator over the
// survivors (old ranks' order preserved). The old communicator's queued
// traffic is purged.
Result<mpi::Comm> Shrink(mpi::Comm& comm);

// Admits `expected_joiners` new processes into a communicator.
// Survivors call with their (shrunk) communicator; joiners call with
// old_comm == nullptr. `session` must be globally unique per expand
// operation and identical on every participant. Survivors keep ranks
// 0..S-1; joiners receive ranks S.. ordered by pid.
//
// Note: like MPI_Comm_accept, the expand blocks until every expected
// joiner arrives; a joiner that dies before arriving stalls the
// operation (the elastic layer only admits provisioned workers).
// `op_counter` / `agreed_counter` synchronize the resilient layer's
// per-rank operation ids across the rendezvous: survivors publish their
// counter (identical on every survivor — SPMD op streams) and every
// participant reads the agreed value back, so a joiner's subsequent ops
// share ids with the survivors' and the post-repair MIN agreement
// compares like with like.
Result<mpi::Comm> ExpandComm(sim::Endpoint& ep, mpi::Comm* old_comm,
                             const std::string& session,
                             int expected_joiners, int64_t op_counter = 0,
                             int64_t* agreed_counter = nullptr);

// Cost model for one agreement over `nranks` participants; exposed so
// benches can report it and tests can check clock advancement.
sim::Seconds AgreementCost(const sim::SimConfig& cfg, int nranks);

}  // namespace rcc::ulfm
