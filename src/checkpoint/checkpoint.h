// In-memory checkpoint store (the paper's evaluation explicitly limits
// itself to memory checkpoints). A checkpoint captures the full
// training state: model parameters, optimizer state, and the training
// cursor (epoch/step), versioned by step.
//
// Save/restore charge virtual time proportional to the *declared* state
// size at host memory bandwidth, so checkpoint cost participates in the
// Eq. (1) trade-off exactly as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "dnn/model.h"
#include "dnn/optimizer.h"
#include "sim/endpoint.h"

namespace rcc::checkpoint {

struct TrainingCursor {
  int epoch = 0;
  int step = 0;            // step within the epoch
  int global_step = 0;     // monotonic across epochs
};

struct Snapshot {
  std::vector<uint8_t> blob;  // serialized model + optimizer + cursor
  TrainingCursor cursor;
  double declared_bytes = 0;  // size used by the time model
};

// Serialises (model, optimizer, cursor) into a snapshot blob.
Snapshot Capture(const dnn::Model& model, const dnn::Sgd& opt,
                 const TrainingCursor& cursor, double declared_bytes = -1);

// Restores a snapshot into an existing model/optimizer (layouts must
// match).
Status Restore(const Snapshot& snap, dnn::Model* model, dnn::Sgd* opt,
               TrainingCursor* cursor);

// Per-process in-memory store keeping the most recent `capacity`
// snapshots (Elastic Horovod keeps the latest state object).
class Store {
 public:
  explicit Store(size_t capacity = 2) : capacity_(capacity) {}

  // Saves a snapshot, charging ep's clock for the serialisation copy.
  void Save(sim::Endpoint& ep, Snapshot snap);
  // Latest snapshot at or before `global_step` (or the latest overall
  // when global_step < 0). Charges the copy-out cost.
  std::optional<Snapshot> Load(sim::Endpoint& ep, int global_step = -1) const;

  size_t size() const;
  int latest_step() const;

  // Cost model exposed for Eq. (1): time to save/load a state of
  // `bytes` at host memory bandwidth.
  static double CopyCost(const sim::SimConfig& cfg, double bytes) {
    return bytes / cfg.net.host_mem_bandwidth;
  }

 private:
  mutable std::mutex mu_;
  std::map<int, Snapshot> by_step_;
  size_t capacity_;
};

}  // namespace rcc::checkpoint
