#include "checkpoint/checkpoint.h"

namespace rcc::checkpoint {

Snapshot Capture(const dnn::Model& model, const dnn::Sgd& opt,
                 const TrainingCursor& cursor, double declared_bytes) {
  ByteWriter w;
  w.WriteI32(cursor.epoch);
  w.WriteI32(cursor.step);
  w.WriteI32(cursor.global_step);
  model.Serialize(&w);
  opt.Serialize(&w);
  Snapshot snap;
  snap.cursor = cursor;
  snap.blob = w.Take();
  snap.declared_bytes = declared_bytes < 0
                            ? static_cast<double>(snap.blob.size())
                            : declared_bytes;
  return snap;
}

Status Restore(const Snapshot& snap, dnn::Model* model, dnn::Sgd* opt,
               TrainingCursor* cursor) {
  ByteReader r(snap.blob);
  int32_t epoch = 0, step = 0, global_step = 0;
  RCC_RETURN_IF_ERROR(r.ReadI32(&epoch));
  RCC_RETURN_IF_ERROR(r.ReadI32(&step));
  RCC_RETURN_IF_ERROR(r.ReadI32(&global_step));
  RCC_RETURN_IF_ERROR(model->Deserialize(&r));
  RCC_RETURN_IF_ERROR(opt->Deserialize(&r));
  cursor->epoch = epoch;
  cursor->step = step;
  cursor->global_step = global_step;
  return Status::Ok();
}

void Store::Save(sim::Endpoint& ep, Snapshot snap) {
  ep.Busy(CopyCost(ep.fabric().config(), snap.declared_bytes));
  std::lock_guard<std::mutex> lock(mu_);
  by_step_[snap.cursor.global_step] = std::move(snap);
  while (by_step_.size() > capacity_) by_step_.erase(by_step_.begin());
}

std::optional<Snapshot> Store::Load(sim::Endpoint& ep,
                                    int global_step) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_step_.empty()) return std::nullopt;
  auto it = by_step_.end();
  if (global_step < 0) {
    --it;
  } else {
    it = by_step_.upper_bound(global_step);
    if (it == by_step_.begin()) return std::nullopt;
    --it;
  }
  ep.Busy(CopyCost(ep.fabric().config(), it->second.declared_bytes));
  return it->second;
}

size_t Store::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_step_.size();
}

int Store::latest_step() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_step_.empty() ? -1 : by_step_.rbegin()->first;
}

}  // namespace rcc::checkpoint
