// Rank-execution engine: the scheduler layer between simulated ranks and
// the OS. Every blocking point in the simulator (fabric receives, KV
// waits, ULFM agreement states, request chaining) parks on a WaitPoint
// instead of a raw std::condition_variable, which lets the same code run
// on either backend:
//
//  * kThreads — every task is a real OS thread and a WaitPoint is exactly
//    a condition variable. This is today's behavior, bit-for-bit: chaos
//    seeds recorded before the engine existed replay identically.
//  * kFibers — tasks are cooperative stackful contexts (ucontext) driven
//    by a discrete-event run queue ordered by (virtual time, pid,
//    sequence). No OS threads are created: the external caller's thread
//    pumps the scheduler inside blocking calls (Cluster::Join,
//    TaskHandle::Join). 10k+ ranks fit in one process, and the whole
//    simulation is single-threaded, hence deterministic.
//
// Real-time waits (WaitFor) have no meaning under fibers; they map onto
// *quiescence*: when the run queue drains and nothing can make progress,
// timeout-parked fibers are woken with a timeout verdict. That is the
// fiber-mode equivalent of "the grace period passed and nobody spoke" —
// deterministic, and it fires exactly when the drain the grace period was
// waiting for has provably finished. Expiry respects the waits' relative
// time scales: at each quiescence the scheduler expires only the waiters
// parked with the smallest not-yet-expired timeout value (a 0s
// death-watch grace before a 200us protocol poll before a 2ms kv poll),
// and any progress restarts that ladder from the bottom. A drained queue
// with the ladder exhausted is a stall — the deterministic image of a
// deadlock that would hang the threads backend.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/params.h"

namespace rcc::sim {

class Engine;
class FiberEngine;
struct FiberTask;

// Resolves kAuto against the RCC_SIM_ENGINE environment variable
// ("threads" | "fibers"; default threads). Explicit kinds pass through.
EngineKind ResolveEngineKind(EngineKind requested);

std::unique_ptr<Engine> MakeEngine(EngineKind kind);

// Process-wide handler invoked when the fibers scheduler proves a stall
// (run queue drained, quiescence ladder exhausted, tasks still parked)
// right before the fatal check aborts. CLI smokes install one to exit
// with a distinct status code instead of a generic abort; pass nullptr
// to clear. Threads-backend deadlocks simply hang and cannot be proven
// here — callers pair the handler with a real-time watchdog.
void SetStallHandler(std::function<void(const std::string& report)> handler);

// Secondary stall hook invoked just before the stall handler (and before
// the fatal check when no handler is installed). Unlike SetStallHandler
// — which tools own to pick an exit path — the observer is for passive
// instrumentation: the obs flight recorder installs one that dumps every
// rank's event ring so a proven deadlock always leaves forensics behind,
// whatever the handler then does. Pass nullptr to clear.
void SetStallObserver(std::function<void(const std::string& report)> observer);

// True when the calling context is a fiber task (cooperative backend).
// Blocking code uses this to pick quiescence semantics over real-clock
// deadlines.
bool OnFiberTask();

// Cooperative yield for busy-wait loops (spinning on a flag another rank
// sets). Under threads this is std::this_thread::yield(); under fibers
// the calling fiber re-queues itself *behind* every runnable peer at the
// same virtual time (deterministically: yields sort after normal entries,
// then by yield sequence) so the peer being spun on can actually run.
// Code that can park on a WaitPoint should do that instead.
void YieldTask();

struct TaskOptions {
  // Deterministic tie-break key for the run queue (the simulated rank's
  // pid; collective-op tasks use the submitting rank's pid).
  int pid = 0;
  // The task's virtual clock, read by the scheduler while the task is
  // runnable-but-not-running to order the run queue. May be null (treated
  // as virtual time 0).
  const Seconds* clock = nullptr;
};

// A joinable handle onto one engine task. Copyable (shared); Join is
// idempotent. Under fibers, Join pumps the scheduler when called from the
// external thread and parks when called from another fiber.
class TaskHandle {
 public:
  TaskHandle() = default;

  bool joinable() const { return impl_ != nullptr; }
  void Join();

 private:
  friend class ThreadsEngine;
  friend class FiberEngine;
  struct Impl {
    virtual ~Impl() = default;
    virtual void Join() = 0;
  };
  explicit TaskHandle(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

class Engine {
 public:
  virtual ~Engine() = default;
  virtual EngineKind kind() const = 0;

  // Starts a task. Under threads this is std::thread; under fibers the
  // task is queued at *opts.clock and runs when the scheduler reaches it.
  virtual TaskHandle Spawn(TaskOptions opts, std::function<void()> fn) = 0;

  // Wakes every fiber parked with a timeout (WaitFor) so it re-checks its
  // predicate, exactly as a quiescence round would. Used by Fabric::Kill:
  // a death must interrupt real-time-style poll loops (KV waiters on a
  // key that will now never be written) even while other fibers still
  // have work. No-op under threads (real timeouts fire on their own).
  virtual void WakeAllTimeoutParked() = 0;
};

// A parkable wait primitive replacing raw condition_variable waits.
//
// Callers hold an external lock guarding their predicate and loop:
//
//   std::unique_lock<std::mutex> lock(mu);
//   while (!pred()) wp.Wait(lock);
//
// Semantics by calling context:
//  * pure threads (no live fiber engine in the process): Wait is exactly
//    cv.wait(lock), WaitFor exactly cv.wait_for(lock, dur) — preserving
//    the legacy backend bit-for-bit;
//  * a fiber task: the fiber parks on its engine, releasing the external
//    lock across the park; NotifyAll unparks it back onto the run queue
//    at its virtual clock;
//  * an external OS thread while a fiber engine is live: the thread pumps
//    the scheduler between predicate checks (fibers can only run on a
//    thread that lends them time).
//
// Spurious wakeups are allowed in every mode; callers must re-check their
// predicate (they all already do — that is the cv contract).
class WaitPoint {
 public:
  WaitPoint();
  ~WaitPoint();
  WaitPoint(const WaitPoint&) = delete;
  WaitPoint& operator=(const WaitPoint&) = delete;

  void Wait(std::unique_lock<std::mutex>& lock);

  // Returns false when the wait "timed out": a real-clock expiry under
  // threads, a quiescence wake under fibers (see file comment). Returns
  // true when notified (or on a spurious wake).
  bool WaitFor(std::unique_lock<std::mutex>& lock, double real_seconds);

  // Wakes every waiter (threads and fibers). Does not require any lock
  // to be held, but callers conventionally hold their predicate lock.
  void NotifyAll();

 private:
  struct FiberWaiter {
    std::shared_ptr<FiberTask> task;  // keeps stale entries safe to filter
    uint64_t park_epoch;
  };

  std::condition_variable cv_;       // thread-backed waiters
  std::mutex waiters_mu_;            // guards fiber_waiters_
  std::vector<FiberWaiter> fiber_waiters_;
};

}  // namespace rcc::sim
