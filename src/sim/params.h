// Calibration constants for the simulated cluster.
//
// Defaults model a Summit-like machine (the paper's testbed): 6 V100-class
// GPUs per node, 23 GB/s node injection bandwidth, NVLink-class intra-node
// links. Software-path constants (rendezvous, driver re-init, worker
// cold-start) are set to the magnitudes the paper's Fig. 4-7 narrative
// describes and are overridable per run.
#pragma once

#include <cstddef>

namespace rcc::sim {

using Seconds = double;

// Hardware / LogGP-style network parameters.
struct NetParams {
  // Inter-node (host network, InfiniBand-class).
  Seconds inter_latency = 1.5e-6;        // one-way latency
  double inter_bandwidth = 23.0e9;       // bytes/s, Summit node injection bw

  // Intra-node (NVLink-class, used by the NCCL-like layer).
  Seconds intra_latency = 0.8e-6;
  double intra_bandwidth = 50.0e9;       // bytes/s

  // Per-message software overhead at sender and receiver (MPI-class).
  Seconds send_overhead = 0.4e-6;
  Seconds recv_overhead = 0.4e-6;

  // Compute rate of one simulated GPU for training math (fp32, with a
  // realistic efficiency factor applied to the V100 peak).
  double gpu_flops = 7.8e12;

  // Host memory bandwidth (in-memory checkpoint save/restore).
  double host_mem_bandwidth = 8.0e9;

  // Time from a process dying to a peer operation observing it (heartbeat /
  // transport error propagation).
  Seconds failure_detect_latency = 5.0e-3;

  // Simulation artifact (real milliseconds, not virtual time): when a
  // *watched* peer dies, a blocked receive waits this long before the
  // watch fires, so collectives that are still drainable (the awaited
  // message comes from a live rank that simply has not executed its send
  // yet) complete instead of being preempted. This guarantees that all
  // survivors observe a failure in the same logical operation. A receive
  // from the dead process itself still fails immediately.
  double watch_drain_grace_real_ms = 50.0;
};

// Software-path cost constants for the two stacks' recovery paths.
struct RuntimeCosts {
  // --- shared ---
  Seconds kv_roundtrip = 0.5e-3;         // one KV-store client round trip
  Seconds conn_setup_tcp = 5.0e-3;       // Gloo-like TCP pair connect
  Seconds conn_setup_verbs = 0.8e-3;     // MPI-like verbs QP setup
  Seconds nccl_init_base = 90.0e-3;      // NCCL communicator bootstrap
  Seconds nccl_init_per_rank = 12.0e-3;  // topology discovery + ring build

  // --- Elastic Horovod (baseline) recovery path, per Fig. 4 phases ---
  Seconds eh_exception_catch = 0.08;     // surfacing exception to the driver
  Seconds eh_shutdown = 0.35;            // stop ongoing ops, drain queues
  Seconds eh_elastic_reinit = 1.2;       // re-initialize elastic mode (driver)
  Seconds eh_gloo_reinit = 0.9;          // reload / re-init the Gloo library
  Seconds eh_blacklist_probe = 0.15;     // per failed host: probe + blacklist

  // --- ULFM path ---
  Seconds ulfm_errhandler_dispatch = 0.5e-3;  // error handler invocation
  Seconds ulfm_revoke_propagation = 2.0e-3;   // token flood to all ranks

  // --- worker admission (both stacks) ---
  // Cold-starting a worker: spawning the process, loading libraries,
  // creating the CUDA context, importing the framework. Dominates upscale
  // cost in the paper, paid once per admitted worker.
  Seconds worker_coldstart = 28.0;
  // Warm rejoin of an already-provisioned replacement (Scenario II at the
  // process level): process spawn + CUDA context only.
  Seconds worker_warmstart = 3.5;
};

// Rank-execution backend (see sim/engine.h). kAuto resolves from the
// RCC_SIM_ENGINE environment variable ("threads" | "fibers"), defaulting
// to kThreads, when the Fabric is constructed.
enum class EngineKind { kAuto, kThreads, kFibers };

struct SimConfig {
  NetParams net;
  RuntimeCosts costs;
  int gpus_per_node = 6;   // Summit: 6 V100 per node
  EngineKind engine = EngineKind::kAuto;
};

}  // namespace rcc::sim
