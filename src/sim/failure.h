// Failure plans: declarative, deterministic fault injection in virtual
// time. A plan lists (target, granularity, virtual time) events and is
// applied to a cluster's endpoints before or during a run.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/cluster.h"

namespace rcc::sim {

enum class FailScope { kProcess, kNode };

struct FailureEvent {
  FailScope scope = FailScope::kProcess;
  int target = 0;      // pid (kProcess) or node id (kNode)
  Seconds at = 0.0;    // virtual time at which the target self-kills
};

class FailurePlan {
 public:
  FailurePlan& KillProcess(int pid, Seconds at) {
    events_.push_back({FailScope::kProcess, pid, at});
    return *this;
  }
  FailurePlan& KillNode(int node, Seconds at) {
    events_.push_back({FailScope::kNode, node, at});
    return *this;
  }

  const std::vector<FailureEvent>& events() const { return events_; }

  // Arms the self-kill triggers on the cluster's endpoints. Node events
  // arm every currently-registered pid on that node.
  void ApplyTo(Cluster& cluster) const;

  // Generates a Poisson process of process failures over [0, horizon)
  // across `world` pids; used by the Eq. (1) ablation.
  static FailurePlan Poisson(double rate_per_second, Seconds horizon,
                             int world, uint64_t seed);

 private:
  std::vector<FailureEvent> events_;
};

}  // namespace rcc::sim
