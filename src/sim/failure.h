// Failure plans: declarative, deterministic fault injection in virtual
// time. A plan lists (target, granularity, virtual time) events and is
// applied to a cluster's endpoints before or during a run.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/cluster.h"
#include "sim/failure_event.h"

namespace rcc::sim {

class FailurePlan {
 public:
  FailurePlan& KillProcess(int pid, Seconds at) {
    events_.push_back({FailScope::kProcess, pid, at});
    return *this;
  }
  FailurePlan& KillNode(int node, Seconds at) {
    events_.push_back({FailScope::kNode, node, at});
    return *this;
  }

  const std::vector<FailureEvent>& events() const { return events_; }

  // Arms the self-kill triggers on the cluster's endpoints. Node events
  // arm every currently-registered pid on that node.
  void ApplyTo(Cluster& cluster) const;

  // Generates a Poisson process of process failures over [0, horizon)
  // across `world` pids; used by the Eq. (1) ablation.
  static FailurePlan Poisson(double rate_per_second, Seconds horizon,
                             int world, uint64_t seed);

 private:
  std::vector<FailureEvent> events_;
};

}  // namespace rcc::sim
