#include "sim/cluster.h"

#include "common/log.h"
#include "sim/failure.h"

namespace rcc::sim {

int Cluster::AllocateSlotNode() {
  const int node = next_slot_ / config().gpus_per_node;
  ++next_slot_;
  return node;
}

void Cluster::AddPendingFailure(const FailureEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_kills_.push_back(ev);
}

void Cluster::ArmFromPending(int pid, int node, Endpoint& ep) {
  for (const FailureEvent& ev : pending_kills_) {
    const bool hit =
        ev.scope == FailScope::kNode ? ev.target == node : ev.target == pid;
    if (hit) ep.ArmKillAt(ev.at);
  }
}

std::vector<int> Cluster::Spawn(int n, const RankFn& fn, Seconds start_time) {
  std::vector<int> pids;
  pids.reserve(n);
  std::lock_guard<std::mutex> lock(mu_);
  // Register every process before starting any task: rank 0 may message
  // rank n-1 immediately.
  for (int i = 0; i < n; ++i) {
    const int node = AllocateSlotNode();
    const int pid = fabric_->RegisterProcess(node);
    RCC_CHECK(pid == static_cast<int>(endpoints_.size()))
        << "pid/endpoint indexing out of sync";
    endpoints_.push_back(
        std::make_unique<Endpoint>(fabric_.get(), pid, start_time));
    ArmFromPending(pid, node, *endpoints_.back());
    pids.push_back(pid);
  }
  for (int pid : pids) {
    Endpoint* ep = endpoints_[pid].get();
    TaskOptions opts;
    opts.pid = pid;
    opts.clock = ep->clock();
    tasks_.push_back(fabric_->engine().Spawn(opts, [fn, ep] { fn(*ep); }));
  }
  return pids;
}

std::vector<int> Cluster::SpawnOnFreshNodes(int n, const RankFn& fn,
                                            Seconds start_time) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int per_node = config().gpus_per_node;
    if (next_slot_ % per_node != 0) {
      next_slot_ += per_node - next_slot_ % per_node;
    }
  }
  return Spawn(n, fn, start_time);
}

int Cluster::SpawnOn(int node, const RankFn& fn, Seconds start_time) {
  std::lock_guard<std::mutex> lock(mu_);
  const int pid = fabric_->RegisterProcess(node);
  RCC_CHECK(pid == static_cast<int>(endpoints_.size()))
      << "pid/endpoint indexing out of sync";
  endpoints_.push_back(
      std::make_unique<Endpoint>(fabric_.get(), pid, start_time));
  Endpoint* ep = endpoints_.back().get();
  ArmFromPending(pid, node, *ep);
  TaskOptions opts;
  opts.pid = pid;
  opts.clock = ep->clock();
  tasks_.push_back(fabric_->engine().Spawn(opts, [fn, ep] { fn(*ep); }));
  return pid;
}

Endpoint& Cluster::endpoint(int pid) {
  std::lock_guard<std::mutex> lock(mu_);
  RCC_CHECK(pid >= 0 && pid < static_cast<int>(endpoints_.size()))
      << "unknown pid " << pid;
  return *endpoints_[pid];
}

void Cluster::Join() {
  // Ranks admitted while we join add new tasks; loop until stable.
  size_t joined = 0;
  for (;;) {
    TaskHandle task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (joined >= tasks_.size()) break;
      task = tasks_[joined];
      ++joined;
    }
    if (task.joinable()) task.Join();
  }
}

int Cluster::nodes_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int per_node = config().gpus_per_node;
  return (next_slot_ + per_node - 1) / per_node;
}

}  // namespace rcc::sim
