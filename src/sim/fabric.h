// The message fabric: the simulated interconnect all communication
// libraries (MPI-like, Gloo-like, NCCL-like) are built on.
//
// Every simulated rank is an engine task with its own *virtual clock*:
// a real OS thread under the `threads` backend, a cooperative fiber on a
// discrete-event run queue under `fibers` (see sim/engine.h; selected by
// SimConfig::engine / RCC_SIM_ENGINE). Messages carry the sender's
// departure time; a receive merges
//   arrival = depart + latency + cost_bytes / bandwidth
// into the receiver's clock (LogGP-style). Intra-node and inter-node
// links use distinct latency/bandwidth parameters. Blocked receives park
// on a WaitPoint, so the same code runs on either backend.
//
// Failure semantics:
//  * Kill(pid) / KillNode(node) mark processes dead and wake all blocked
//    receivers (including fibers parked in timeout waits, whose
//    predicates may now never be satisfied).
//  * A receive whose awaited partner is dead returns kProcFailed after
//    charging the failure-detection latency (ULFM-style per-operation
//    error).
//  * A receive may carry a DeathWatch (the Gloo-like layer watches its
//    whole membership: any member death is context-fatal, like a TCP RST
//    tearing down the process group).
//  * A receive may carry a CancelToken (ULFM revoke: interrupting ranks
//    blocked inside a broken collective).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "sim/engine.h"
#include "sim/params.h"

namespace rcc::sim {

inline constexpr int kAnySource = -1;

struct Message {
  int src = -1;
  int dst = -1;
  uint64_t channel = 0;  // (context id << 16) | phase, composed by callers
  int tag = 0;
  Seconds depart = 0.0;      // sender's virtual time at send
  double cost_bytes = 0.0;   // size used by the time model (may exceed payload)
  std::vector<uint8_t> payload;
};

// Composes a channel key from a communication-context id and a phase
// discriminator (collective kind, protocol step...).
inline uint64_t ChannelKey(uint64_t context_id, uint16_t phase) {
  return (context_id << 16) | phase;
}
inline uint64_t ChannelContext(uint64_t channel) { return channel >> 16; }

// Set once by a revoke; observed by receives blocked on the revoked
// context. Never reset (a revoked context is repaired by building a new
// one with a fresh token).
class CancelToken {
 public:
  void Cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

class Fabric {
 public:
  explicit Fabric(SimConfig cfg) : cfg_(cfg), id_(NextFabricId()) {
    cfg_.engine = ResolveEngineKind(cfg.engine);
    engine_ = MakeEngine(cfg_.engine);
  }

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const SimConfig& config() const { return cfg_; }

  // The rank-execution engine every task of this simulation runs on.
  Engine& engine() const { return *engine_; }

  // Process-wide unique fabric id: namespaces communicator-group cache
  // keys so distinct simulations never alias (pids restart at 0 per
  // fabric).
  uint64_t id() const { return id_; }

  // Registers a new process on `node`; returns its pid. Thread-safe,
  // usable mid-run (dynamic worker admission).
  int RegisterProcess(int node);

  void Kill(int pid);
  void KillNode(int node);
  bool IsAlive(int pid) const;
  int NodeOf(int pid) const;

  // Membership queries are O(answer), not O(world): counts are atomics
  // and the alive/dead pid sets are maintained incrementally on
  // register/kill (10k-rank simulations poll these on hot paths).
  int ProcessCount() const {
    return proc_count_.load(std::memory_order_acquire);
  }
  int AliveCount() const {
    return alive_count_.load(std::memory_order_acquire);
  }
  std::vector<int> AlivePids() const;
  std::vector<int> DeadPids() const;

  // Sends a message. Non-blocking (eager, buffered). Sending to a dead
  // process silently drops the message: like a real transport, the sender
  // only learns about the failure when it next *waits* on that peer.
  Status Send(Message msg);

  // Blocks until a message matching (src, channel, tag) is available, the
  // awaited peer dies, a watched process dies, the token is cancelled, or
  // this process itself is killed. On success merges network time into
  // *now and charges the receive overhead.
  Status Recv(int self, Seconds* now, int src, uint64_t channel, int tag,
              Message* out, const CancelToken* cancel = nullptr,
              const std::vector<int>* death_watch = nullptr);

  // Non-blocking variant: kUnavailable if nothing matches right now.
  Status TryRecv(int self, Seconds* now, int src, uint64_t channel, int tag,
                 Message* out);

  // Drops all queued messages belonging to a retired communication
  // context (called when a communicator/context is freed after shrink).
  void PurgeContext(uint64_t context_id);

  // Wakes every blocked receive so it can re-check its cancel/death
  // predicates (used by revoke).
  void WakeAll();

 private:
  struct Mailbox {
    std::deque<Message> queue;
    WaitPoint wp;
  };
  struct Proc {
    int node = 0;
    bool alive = true;
    std::unique_ptr<Mailbox> mbox;
  };

  // Returns arrival time of msg at dst given link parameters.
  Seconds ArrivalTime(const Message& msg, int dst_node) const;

  bool FindMatch(Mailbox& mbox, int src, uint64_t channel, int tag,
                 Message* out);  // requires mu_ held
  void MarkDead(int pid);        // requires mu_ held

  static uint64_t NextFabricId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1);
  }

  mutable std::mutex mu_;
  std::vector<Proc> procs_;
  std::vector<int> alive_pids_;                // sorted; guarded by mu_
  std::vector<int> dead_pids_;                 // sorted; guarded by mu_
  std::vector<std::vector<int>> node_pids_;    // node -> pids; guarded by mu_
  std::atomic<int> proc_count_{0};
  std::atomic<int> alive_count_{0};
  SimConfig cfg_;
  uint64_t id_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace rcc::sim
