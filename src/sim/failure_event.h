// FailureEvent: one declarative fault-injection event, shared between
// the plan layer (sim/failure.h) and the cluster's late-arming queue
// (sim/cluster.h). Split into its own header so both can include it
// without a cycle (failure.h needs Cluster for ApplyTo; cluster.h needs
// FailureEvent for AddPendingFailure).
#pragma once

#include "sim/params.h"

namespace rcc::sim {

enum class FailScope { kProcess, kNode };

struct FailureEvent {
  FailScope scope = FailScope::kProcess;
  int target = 0;      // pid (kProcess) or node id (kNode)
  Seconds at = 0.0;    // virtual time at which the target self-kills
};

}  // namespace rcc::sim
