#include "sim/fabric.h"
#include <chrono>

#include <algorithm>

#include "common/log.h"

namespace rcc::sim {

int Fabric::RegisterProcess(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Proc proc;
  proc.node = node;
  proc.alive = true;
  proc.mbox = std::make_unique<Mailbox>();
  procs_.push_back(std::move(proc));
  const int pid = static_cast<int>(procs_.size()) - 1;
  alive_pids_.push_back(pid);  // pids ascend, so the index stays sorted
  if (node >= static_cast<int>(node_pids_.size())) {
    node_pids_.resize(node + 1);
  }
  node_pids_[node].push_back(pid);
  proc_count_.store(pid + 1, std::memory_order_release);
  alive_count_.fetch_add(1, std::memory_order_acq_rel);
  return pid;
}

void Fabric::MarkDead(int pid) {
  procs_[pid].alive = false;
  auto it = std::lower_bound(alive_pids_.begin(), alive_pids_.end(), pid);
  if (it != alive_pids_.end() && *it == pid) alive_pids_.erase(it);
  dead_pids_.insert(
      std::lower_bound(dead_pids_.begin(), dead_pids_.end(), pid), pid);
  alive_count_.fetch_sub(1, std::memory_order_acq_rel);
}

void Fabric::Kill(int pid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid < 0 || pid >= static_cast<int>(procs_.size())) return;
  if (!procs_[pid].alive) return;
  MarkDead(pid);
  // Wake everything: any rank blocked on this peer (directly or through a
  // death watch) must re-evaluate. Fibers parked in timeout waits (KV
  // poll loops) are woken too — their predicate may now never hold.
  for (auto& proc : procs_) proc.mbox->wp.NotifyAll();
  engine_->WakeAllTimeoutParked();
}

void Fabric::KillNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  if (node >= 0 && node < static_cast<int>(node_pids_.size())) {
    for (int pid : node_pids_[node]) {
      if (procs_[pid].alive) {
        MarkDead(pid);
        any = true;
      }
    }
  }
  if (any) {
    for (auto& proc : procs_) proc.mbox->wp.NotifyAll();
    engine_->WakeAllTimeoutParked();
  }
}

bool Fabric::IsAlive(int pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid < 0 || pid >= static_cast<int>(procs_.size())) return false;
  return procs_[pid].alive;
}

int Fabric::NodeOf(int pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  RCC_CHECK(pid >= 0 && pid < static_cast<int>(procs_.size()))
      << "NodeOf: unknown pid " << pid;
  return procs_[pid].node;
}

std::vector<int> Fabric::AlivePids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_pids_;
}

std::vector<int> Fabric::DeadPids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_pids_;
}

Seconds Fabric::ArrivalTime(const Message& msg, int dst_node) const {
  const int src_node = procs_[msg.src].node;
  const NetParams& net = cfg_.net;
  const bool local = (src_node == dst_node);
  const Seconds latency = local ? net.intra_latency : net.inter_latency;
  const double bandwidth = local ? net.intra_bandwidth : net.inter_bandwidth;
  return msg.depart + latency + msg.cost_bytes / bandwidth;
}

Status Fabric::Send(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (msg.src < 0 || msg.src >= static_cast<int>(procs_.size())) {
    return Status(Code::kInvalid, "send from unknown pid");
  }
  if (msg.dst < 0 || msg.dst >= static_cast<int>(procs_.size())) {
    return Status(Code::kNotFound, "send to unregistered pid");
  }
  if (!procs_[msg.src].alive) return Status(Code::kAborted, "sender is dead");
  Proc& dst = procs_[msg.dst];
  if (!dst.alive) {
    // Eagerly buffered transports drop traffic to dead peers; the sender
    // observes the failure at its next blocking operation on this peer.
    return Status::Ok();
  }
  dst.mbox->queue.push_back(std::move(msg));
  dst.mbox->wp.NotifyAll();
  return Status::Ok();
}

bool Fabric::FindMatch(Mailbox& mbox, int src, uint64_t channel, int tag,
                       Message* out) {
  for (auto it = mbox.queue.begin(); it != mbox.queue.end(); ++it) {
    if (it->channel == channel && it->tag == tag &&
        (src == kAnySource || it->src == src)) {
      *out = std::move(*it);
      mbox.queue.erase(it);
      return true;
    }
  }
  return false;
}

Status Fabric::Recv(int self, Seconds* now, int src, uint64_t channel,
                    int tag, Message* out, const CancelToken* cancel,
                    const std::vector<int>* death_watch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (self < 0 || self >= static_cast<int>(procs_.size())) {
    return Status(Code::kInvalid, "recv on unknown pid");
  }
  if (src != kAnySource &&
      (src < 0 || src >= static_cast<int>(procs_.size()))) {
    return Status(Code::kNotFound, "recv from unregistered pid");
  }
  Mailbox& mbox = *procs_[self].mbox;
  bool watch_armed = false;
  bool watch_expired = false;
  std::chrono::steady_clock::time_point watch_deadline{};  // threads backend
  for (;;) {
    if (!procs_[self].alive) return Status(Code::kAborted, "receiver is dead");
    // Delivered data is consumed even when the context is about to be
    // cancelled: matching first keeps completed point-to-point semantics.
    if (FindMatch(mbox, src, channel, tag, out)) {
      const Seconds arrival = ArrivalTime(*out, procs_[self].node);
      *now = std::max(*now, arrival) + cfg_.net.recv_overhead;
      return Status::Ok();
    }
    if (cancel != nullptr && cancel->cancelled()) {
      return Status(Code::kRevoked, "context revoked");
    }
    if (src != kAnySource && !procs_[src].alive) {
      *now += cfg_.net.failure_detect_latency;
      return Status::ProcFailed({src}, "peer failed");
    }
    if (death_watch != nullptr) {
      std::vector<int> dead;
      for (int pid : *death_watch) {
        if (pid >= 0 && pid < static_cast<int>(procs_.size()) &&
            !procs_[pid].alive) {
          dead.push_back(pid);
        }
      }
      if (!dead.empty()) {
        // Grace period: let drainable in-flight chains complete so every
        // survivor fails in the same logical op (see
        // NetParams::watch_drain_grace_real_ms). Under threads this is a
        // real-time deadline; under fibers the grace runs to quiescence
        // (WaitFor reports timeout exactly when nothing else can run, so
        // everything drainable has provably drained).
        if (!watch_armed) {
          watch_armed = true;
          if (!OnFiberTask()) {
            watch_deadline = std::chrono::steady_clock::now() +
                             std::chrono::microseconds(static_cast<int64_t>(
                                 cfg_.net.watch_drain_grace_real_ms * 1000));
          }
        } else if (watch_expired) {
          *now += cfg_.net.failure_detect_latency;
          return Status::ProcFailed(std::move(dead), "watched peer failed");
        }
        if (OnFiberTask()) {
          if (!mbox.wp.WaitFor(lock, 0.0)) watch_expired = true;
        } else {
          const double remaining =
              std::chrono::duration<double>(
                  watch_deadline - std::chrono::steady_clock::now())
                  .count();
          if (remaining <= 0.0 || !mbox.wp.WaitFor(lock, remaining)) {
            watch_expired = true;
          }
        }
        continue;
      }
    }
    mbox.wp.Wait(lock);
  }
}

Status Fabric::TryRecv(int self, Seconds* now, int src, uint64_t channel,
                       int tag, Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (self < 0 || self >= static_cast<int>(procs_.size())) {
    return Status(Code::kInvalid, "recv on unknown pid");
  }
  if (!procs_[self].alive) return Status(Code::kAborted, "receiver is dead");
  Mailbox& mbox = *procs_[self].mbox;
  if (FindMatch(mbox, src, channel, tag, out)) {
    const Seconds arrival = ArrivalTime(*out, procs_[self].node);
    *now = std::max(*now, arrival) + cfg_.net.recv_overhead;
    return Status::Ok();
  }
  return Status(Code::kUnavailable, "no matching message");
}

void Fabric::PurgeContext(uint64_t context_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& proc : procs_) {
    auto& q = proc.mbox->queue;
    q.erase(std::remove_if(q.begin(), q.end(),
                           [context_id](const Message& m) {
                             return ChannelContext(m.channel) == context_id;
                           }),
            q.end());
  }
}

void Fabric::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& proc : procs_) proc.mbox->wp.NotifyAll();
}

}  // namespace rcc::sim
