// Endpoint: a simulated rank's handle onto the fabric. Owns the rank's
// virtual clock and the deterministic self-kill trigger used for failure
// injection in virtual time.
#pragma once

#include <atomic>
#include <limits>
#include <vector>

#include "common/status.h"
#include "sim/fabric.h"

namespace rcc::sim {

class Endpoint {
 public:
  Endpoint(Fabric* fabric, int pid, Seconds start_time = 0.0)
      : fabric_(fabric), pid_(pid), now_(start_time) {}

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  Fabric& fabric() const { return *fabric_; }
  int pid() const { return pid_; }
  int node() const { return fabric_->NodeOf(pid_); }
  Seconds now() const { return now_; }
  // Stable address of this rank's virtual clock: the engine's run queue
  // orders a parked task by *clock() (read only while the rank is not
  // running, so the read is race-free).
  const Seconds* clock() const { return &now_; }
  bool alive() const { return fabric_->IsAlive(pid_); }

  // --- virtual time ---
  void AdvanceTo(Seconds t) {
    if (t > now_) now_ = t;
  }
  // Busy time on this rank (software path, GPU kernel, ...).
  void Busy(Seconds s) {
    now_ += s;
    MaybeSelfKill();
  }
  // Training math at the configured GPU rate.
  void Compute(double flops) { Busy(flops / fabric_->config().net.gpu_flops); }

  // --- failure injection ---
  // The rank kills itself the first time its clock reaches `t` inside a
  // fabric operation. Deterministic in virtual time, independent of real
  // thread scheduling.
  void SetKillAtTime(Seconds t) { kill_at_.store(t, std::memory_order_release); }
  // Like SetKillAtTime but keeps the *earliest* armed trigger: several
  // failure-plan events (node sweep + targeted kill + chaos injection)
  // may arm the same rank.
  void ArmKillAt(Seconds t) {
    Seconds cur = kill_at_.load(std::memory_order_acquire);
    while (t < cur &&
           !kill_at_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }
  // Immediately marks this rank dead at its next operation.
  void KillNow() { SetKillAtTime(0.0); }
  // The scheduled self-kill time (readable from any thread; background
  // collective workers replicate the MaybeSelfKill check against their
  // private op clocks).
  Seconds kill_at() const { return kill_at_.load(std::memory_order_acquire); }
  // Checks the trigger; returns true if this rank just died.
  bool MaybeSelfKill() {
    const Seconds t = kill_at_.load(std::memory_order_acquire);
    if (now_ >= t) {
      fabric_->Kill(pid_);
      return true;
    }
    return false;
  }

  // --- communication ---
  // cost_bytes < 0 means "use payload size".
  Status Send(int dst, uint64_t channel, int tag,
              std::vector<uint8_t> payload, double cost_bytes = -1.0) {
    if (MaybeSelfKill()) return Status(Code::kAborted, "sender killed");
    now_ += fabric_->config().net.send_overhead;
    Message msg;
    msg.src = pid_;
    msg.dst = dst;
    msg.channel = channel;
    msg.tag = tag;
    msg.depart = now_;
    msg.cost_bytes =
        cost_bytes < 0 ? static_cast<double>(payload.size()) : cost_bytes;
    msg.payload = std::move(payload);
    return fabric_->Send(std::move(msg));
  }

  Status Recv(int src, uint64_t channel, int tag, Message* out,
              const CancelToken* cancel = nullptr,
              const std::vector<int>* death_watch = nullptr) {
    if (MaybeSelfKill()) return Status(Code::kAborted, "receiver killed");
    Status s = fabric_->Recv(pid_, &now_, src, channel, tag, out, cancel,
                             death_watch);
    if (s.ok() && MaybeSelfKill()) {
      return Status(Code::kAborted, "receiver killed");
    }
    return s;
  }

  Status TryRecv(int src, uint64_t channel, int tag, Message* out) {
    if (MaybeSelfKill()) return Status(Code::kAborted, "receiver killed");
    return fabric_->TryRecv(pid_, &now_, src, channel, tag, out);
  }

 private:
  Fabric* fabric_;
  int pid_;
  Seconds now_;
  std::atomic<Seconds> kill_at_{std::numeric_limits<Seconds>::infinity()};
};

}  // namespace rcc::sim
