// Cluster: thread lifecycle for simulated ranks, node slot allocation,
// dynamic worker admission and failure-plan application.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/endpoint.h"
#include "sim/fabric.h"

namespace rcc::sim {

struct FailureEvent;  // sim/failure.h

using RankFn = std::function<void(Endpoint&)>;

class Cluster {
 public:
  explicit Cluster(SimConfig cfg = SimConfig{})
      : fabric_(std::make_unique<Fabric>(cfg)) {}
  ~Cluster() { Join(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Fabric& fabric() { return *fabric_; }
  const SimConfig& config() const { return fabric_->config(); }

  // Spawns `n` processes packed onto nodes (gpus_per_node slots per node,
  // continuing from the last allocated slot). Each runs `fn` on its own
  // thread with its clock starting at `start_time`. Returns the pids.
  std::vector<int> Spawn(int n, const RankFn& fn, Seconds start_time = 0.0);

  // Spawns `n` processes starting on a *fresh* node boundary (replacement
  // and upscale workers arrive on newly allocated nodes, as on a real
  // scheduler after blacklisting).
  std::vector<int> SpawnOnFreshNodes(int n, const RankFn& fn,
                                     Seconds start_time);

  // Spawns one process on an explicit node.
  int SpawnOn(int node, const RankFn& fn, Seconds start_time);

  // Endpoint handle for failure injection / inspection. Valid for the
  // cluster's lifetime.
  Endpoint& endpoint(int pid);

  // Registers a failure event that must also arm processes spawned
  // *after* the plan was applied: a replacement landing on an
  // already-doomed node (or a pid that does not exist yet) is armed the
  // moment it registers, before its thread starts. FailurePlan::ApplyTo
  // records every event here.
  void AddPendingFailure(const FailureEvent& ev);

  // Waits for every rank thread spawned so far (including ones admitted
  // while joining) to finish.
  void Join();

  int nodes_allocated() const;

 private:
  int AllocateSlotNode();  // packed allocation
  void ArmFromPending(int pid, int node, Endpoint& ep);  // requires mu_ held

  std::unique_ptr<Fabric> fabric_;
  mutable std::mutex mu_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // index == pid
  // (scope, target, at) triples shadowing FailureEvent; kept as plain
  // fields to avoid a header cycle with sim/failure.h.
  struct PendingKill {
    bool node_scope = false;
    int target = 0;
    Seconds at = 0.0;
  };
  std::vector<PendingKill> pending_kills_;
  int next_slot_ = 0;  // packed slot counter (node = slot / gpus_per_node)
};

}  // namespace rcc::sim
