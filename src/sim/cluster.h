// Cluster: task lifecycle for simulated ranks, node slot allocation,
// dynamic worker admission and failure-plan application. Ranks run as
// engine tasks (OS threads or fibers, per the fabric's engine).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/endpoint.h"
#include "sim/engine.h"
#include "sim/fabric.h"
#include "sim/failure_event.h"

namespace rcc::sim {

using RankFn = std::function<void(Endpoint&)>;

class Cluster {
 public:
  explicit Cluster(SimConfig cfg = SimConfig{})
      : fabric_(std::make_unique<Fabric>(cfg)) {}
  ~Cluster() { Join(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Fabric& fabric() { return *fabric_; }
  const SimConfig& config() const { return fabric_->config(); }

  // Spawns `n` processes packed onto nodes (gpus_per_node slots per node,
  // continuing from the last allocated slot). Each runs `fn` as an engine
  // task with its clock starting at `start_time`. Returns the pids.
  std::vector<int> Spawn(int n, const RankFn& fn, Seconds start_time = 0.0);

  // Spawns `n` processes starting on a *fresh* node boundary (replacement
  // and upscale workers arrive on newly allocated nodes, as on a real
  // scheduler after blacklisting).
  std::vector<int> SpawnOnFreshNodes(int n, const RankFn& fn,
                                     Seconds start_time);

  // Spawns one process on an explicit node.
  int SpawnOn(int node, const RankFn& fn, Seconds start_time);

  // Endpoint handle for failure injection / inspection. Valid for the
  // cluster's lifetime.
  Endpoint& endpoint(int pid);

  // Registers a failure event that must also arm processes spawned
  // *after* the plan was applied: a replacement landing on an
  // already-doomed node (or a pid that does not exist yet) is armed the
  // moment it registers, before its task starts. FailurePlan::ApplyTo
  // records every event here.
  void AddPendingFailure(const FailureEvent& ev);

  // Waits for every rank task spawned so far (including ones admitted
  // while joining) to finish. Under the fibers backend this is where the
  // calling thread pumps the event loop.
  void Join();

  int nodes_allocated() const;

 private:
  int AllocateSlotNode();  // packed allocation
  void ArmFromPending(int pid, int node, Endpoint& ep);  // requires mu_ held

  std::unique_ptr<Fabric> fabric_;
  mutable std::mutex mu_;
  std::vector<TaskHandle> tasks_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // index == pid
  std::vector<FailureEvent> pending_kills_;
  int next_slot_ = 0;  // packed slot counter (node = slot / gpus_per_node)
};

}  // namespace rcc::sim
