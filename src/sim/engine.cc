#include "sim/engine.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>
#include <string>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/log.h"

// TSan needs to be told about stack switches or it reports false races
// between code that ran on different fibers of the same OS thread.
#if defined(__SANITIZE_THREAD__)
#define RCC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RCC_TSAN_FIBERS 1
#endif
#endif
#ifdef RCC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace rcc::sim {

namespace {

size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

// Fiber stack size: RCC_SIM_FIBER_STACK_KB (default 256). Stacks are
// mmap'd MAP_NORESERVE so 10k ranks only commit the pages they touch.
size_t FiberStackBytes() {
  static const size_t bytes = [] {
    double kb = common::EnvDouble("RCC_SIM_FIBER_STACK_KB", 256.0);
    if (kb <= 0) kb = 256.0;
    size_t b = static_cast<size_t>(kb * 1024.0);
    const size_t min_bytes = 64 * 1024;
    if (b < min_bytes) b = min_bytes;
    const size_t page = PageSize();
    return (b + page - 1) / page * page;
  }();
  return bytes;
}

// Stall handler storage: written by SetStallHandler before a run, read
// at the (single-threaded) point the scheduler proves a stall.
std::function<void(const std::string&)>& StallHandlerSlot() {
  static std::function<void(const std::string&)> handler;
  return handler;
}

// Observer storage, same discipline as the handler slot. Invoked before
// the handler so forensic dumps land even when the handler exits.
std::function<void(const std::string&)>& StallObserverSlot() {
  static std::function<void(const std::string&)> observer;
  return observer;
}

}  // namespace

void SetStallHandler(std::function<void(const std::string&)> handler) {
  StallHandlerSlot() = std::move(handler);
}

void SetStallObserver(std::function<void(const std::string&)> observer) {
  StallObserverSlot() = std::move(observer);
}

struct FiberTask : std::enable_shared_from_this<FiberTask> {
  enum class St { kRunnable, kRunning, kParked, kDone };

  uint64_t id = 0;
  int pid = 0;
  const Seconds* clock = nullptr;
  std::function<void()> fn;

  ucontext_t ctx{};
  void* stack_base = nullptr;  // mmap base (guard page + usable stack)
#ifdef RCC_TSAN_FIBERS
  void* tsan_fiber = nullptr;
#endif

  // All fields below are guarded by the engine mutex, except where a
  // field is only ever touched by the scheduler thread while the task is
  // not runnable.
  St state = St::kRunnable;
  uint64_t park_epoch = 0;   // bumped on every wake; stale waiter filter
  bool pending_park = false; // fiber announced a park; scheduler commits it
  bool pending_yield = false;  // fiber yielded; requeue behind same-time peers
  bool timeout_park = false; // parked via WaitFor (quiescence-wakeable)
  double park_timeout = 0.0;  // WaitFor's real-seconds value (ladder rung)
  bool wake_pending = false; // NotifyAll raced the park handshake
  bool woke_by_timeout = false;
  FiberEngine* engine = nullptr;
};

namespace {
thread_local FiberTask* tls_current_task = nullptr;
std::mutex g_fiber_engines_mu;
std::vector<FiberEngine*>& GlobalFiberEngines() {
  static std::vector<FiberEngine*>* v = new std::vector<FiberEngine*>();
  return *v;
}
std::atomic<int> g_fiber_engine_count{0};
}  // namespace

bool OnFiberTask() { return tls_current_task != nullptr; }

// ---------------------------------------------------------------------
// Threads backend: a task is a real OS thread, a handle is the thread.
// ---------------------------------------------------------------------

class ThreadsEngine : public Engine {
 public:
  EngineKind kind() const override { return EngineKind::kThreads; }

  TaskHandle Spawn(TaskOptions, std::function<void()> fn) override {
    auto impl = std::make_shared<ThreadImpl>();
    impl->th = std::thread(std::move(fn));
    return TaskHandle(impl);
  }

  void WakeAllTimeoutParked() override {}

 private:
  struct ThreadImpl : TaskHandle::Impl {
    std::thread th;
    std::mutex mu;
    void Join() override {
      std::lock_guard<std::mutex> g(mu);
      if (th.joinable()) th.join();
    }
    ~ThreadImpl() override {
      if (th.joinable()) th.join();
    }
  };
};

// ---------------------------------------------------------------------
// Fibers backend: a discrete-event scheduler over ucontext fibers.
// ---------------------------------------------------------------------

class FiberEngine : public Engine {
 public:
  FiberEngine() {
    std::lock_guard<std::mutex> g(g_fiber_engines_mu);
    GlobalFiberEngines().push_back(this);
    g_fiber_engine_count.store(static_cast<int>(GlobalFiberEngines().size()),
                               std::memory_order_release);
  }

  ~FiberEngine() override {
    {
      std::lock_guard<std::mutex> g(g_fiber_engines_mu);
      auto& v = GlobalFiberEngines();
      v.erase(std::remove(v.begin(), v.end(), this), v.end());
      g_fiber_engine_count.store(static_cast<int>(v.size()),
                                 std::memory_order_release);
    }
    // Detach surviving task structs (stale WaitPoint entries may still
    // hold shared_ptrs to them) and release every stack.
    std::lock_guard<std::mutex> g(mu_);
    for (auto& t : tasks_) {
#ifdef RCC_TSAN_FIBERS
      if (t->tsan_fiber != nullptr) {
        __tsan_destroy_fiber(t->tsan_fiber);
        t->tsan_fiber = nullptr;
      }
#endif
      t->engine = nullptr;
    }
    for (void* base : all_stacks_) {
      munmap(base, PageSize() + FiberStackBytes());
    }
  }

  EngineKind kind() const override { return EngineKind::kFibers; }

  TaskHandle Spawn(TaskOptions opts, std::function<void()> fn) override {
    auto t = std::make_shared<FiberTask>();
    t->engine = this;
    t->pid = opts.pid;
    t->clock = opts.clock;
    t->fn = std::move(fn);
    AllocStack(t.get());
    getcontext(&t->ctx);
    t->ctx.uc_stack.ss_sp = static_cast<char*>(t->stack_base) + PageSize();
    t->ctx.uc_stack.ss_size = FiberStackBytes();
    t->ctx.uc_link = nullptr;
    const uintptr_t p = reinterpret_cast<uintptr_t>(t.get());
    makecontext(&t->ctx, reinterpret_cast<void (*)()>(&FiberEngine::FiberMain),
                2, static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffu));
#ifdef RCC_TSAN_FIBERS
    t->tsan_fiber = __tsan_create_fiber(0);
#endif
    {
      std::lock_guard<std::mutex> g(mu_);
      t->id = next_task_id_++;
      tasks_.push_back(t);
      t->state = FiberTask::St::kRunnable;
      PushLocked(t.get());
      ProgressLocked();
    }
    auto impl = std::make_shared<FiberImpl>();
    impl->engine = this;
    impl->task = t;
    return TaskHandle(impl);
  }

  void WakeAllTimeoutParked() override {
    std::lock_guard<std::mutex> g(mu_);
    // External stimulus (a death, typically): wake with a *notified*
    // verdict so waiters re-check their predicate — only the scheduler's
    // quiescence round may deliver the timeout verdict that grace-period
    // code reads as "nothing can ever progress".
    WakeTimeoutParkedLocked(/*timeout_verdict=*/false);
    ProgressLocked();  // re-arm quiescence detection
  }

  // Parks the current fiber (must be called from a fiber of this engine,
  // with no engine locks held). Returns true if woken by Unpark, false
  // on a quiescence wake.
  bool ParkCurrent(bool timeout_park, double timeout_seconds = 0.0) {
    FiberTask* t = tls_current_task;
    RCC_CHECK(t != nullptr && t->engine == this)
        << "ParkCurrent outside a fiber of this engine";
    {
      std::lock_guard<std::mutex> g(mu_);
      t->pending_park = true;
      t->timeout_park = timeout_park;
      t->park_timeout = timeout_seconds;
      t->woke_by_timeout = false;
    }
    SwitchToScheduler(t);
    bool notified;
    {
      std::lock_guard<std::mutex> g(mu_);
      ++t->park_epoch;  // invalidate stale WaitPoint entries
      notified = !t->woke_by_timeout;
      t->timeout_park = false;
    }
    return notified;
  }

  // Cooperative yield: re-queues the calling fiber behind every runnable
  // peer at the same virtual time and returns to the scheduler.
  void YieldCurrent() {
    FiberTask* t = tls_current_task;
    RCC_CHECK(t != nullptr && t->engine == this)
        << "YieldCurrent outside a fiber of this engine";
    {
      std::lock_guard<std::mutex> g(mu_);
      t->pending_yield = true;
    }
    SwitchToScheduler(t);
  }

  // Moves a parked task back onto the run queue if `park_epoch` still
  // matches (stale wait-list entries are filtered here).
  void Unpark(FiberTask* t, uint64_t park_epoch) {
    std::lock_guard<std::mutex> g(mu_);
    if (t->park_epoch != park_epoch || t->state == FiberTask::St::kDone) {
      return;
    }
    if (t->state == FiberTask::St::kParked) {
      t->state = FiberTask::St::kRunnable;
      t->woke_by_timeout = false;
      PushLocked(t);
      ProgressLocked();
      return;
    }
    if (t->state == FiberTask::St::kRunning) {
      // The waiter registered on the WaitPoint but has not finished the
      // park handshake; flag the wake so the scheduler requeues it.
      t->wake_pending = true;
      ProgressLocked();
      return;
    }
    if (t->state == FiberTask::St::kRunnable) {
      // Quiescence-woken but not yet run: upgrade the verdict to a real
      // notification.
      t->woke_by_timeout = false;
      ProgressLocked();
    }
  }

  uint64_t CurrentParkEpoch(FiberTask* t) {
    std::lock_guard<std::mutex> g(mu_);
    return t->park_epoch;
  }

  bool TaskDone(FiberTask* t) {
    std::lock_guard<std::mutex> g(mu_);
    return t->state == FiberTask::St::kDone;
  }

  void JoinTask(FiberTask* t) {
    if (OnFiberTask()) {
      // Another fiber waits for this task (request chaining, ~State):
      // park on the engine-wide completion WaitPoint and re-check.
      std::unique_lock<std::mutex> lock(join_mu_);
      while (!TaskDone(t)) done_wp_.Wait(lock);
      return;
    }
    for (;;) {
      if (TaskDone(t)) return;
      std::unique_lock<std::mutex> pl(pump_mu_, std::try_to_lock);
      if (pl.owns_lock()) {
        RunScheduler([this, t] { return TaskDone(t); });
        if (!TaskDone(t) && StallObserverSlot()) {
          StallObserverSlot()(StallReport("JoinTask"));
        }
        if (!TaskDone(t) && StallHandlerSlot()) {
          StallHandlerSlot()(StallReport("JoinTask"));
        }
        RCC_CHECK(TaskDone(t)) << StallReport("JoinTask");
        return;
      }
      // Someone else is pumping; their progress may complete our task.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  // Pumps the scheduler from an external thread until nothing more can
  // run (used by WaitPoint waits on non-fiber threads). Returns true if
  // any progress happened (or another thread holds the pump).
  bool TryPump() {
    std::unique_lock<std::mutex> pl(pump_mu_, std::try_to_lock);
    if (!pl.owns_lock()) return true;
    uint64_t before;
    {
      std::lock_guard<std::mutex> g(mu_);
      before = progress_counter_;
    }
    RunScheduler(nullptr);
    std::lock_guard<std::mutex> g(mu_);
    return progress_counter_ != before;
  }

 private:
  friend class WaitPoint;

  struct FiberImpl : TaskHandle::Impl {
    FiberEngine* engine = nullptr;
    std::shared_ptr<FiberTask> task;
    void Join() override { engine->JoinTask(task.get()); }
  };

  struct RunEntry {
    Seconds t;
    int pid;
    uint64_t seq;
    FiberTask* task;
    bool operator>(const RunEntry& o) const {
      if (t != o.t) return t > o.t;
      if (pid != o.pid) return pid > o.pid;
      return seq > o.seq;
    }
  };

  void AllocStack(FiberTask* t) {
    const size_t page = PageSize();
    const size_t total = page + FiberStackBytes();
    void* base = nullptr;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!stack_pool_.empty()) {
        base = stack_pool_.back();
        stack_pool_.pop_back();
      }
    }
    if (base == nullptr) {
      base = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK, -1,
                  0);
      RCC_CHECK(base != MAP_FAILED) << "fiber stack mmap failed";
      // Guard page below the stack catches overflows as a fault instead
      // of silent corruption of a neighboring fiber.
      mprotect(base, page, PROT_NONE);
      std::lock_guard<std::mutex> g(mu_);
      all_stacks_.push_back(base);
    }
    t->stack_base = base;
  }

  // Requires mu_ held. Queue key is (virtual time, pid, sequence): the
  // documented deterministic tie-break order (seed format 2).
  void PushLocked(FiberTask* t) {
    const Seconds vt = t->clock != nullptr ? *t->clock : 0.0;
    queue_.push(RunEntry{vt, t->pid, next_seq_++, t});
  }

  // Requires mu_ held. A yielded fiber sorts after every normal entry at
  // its virtual time (pid key saturated), then by yield order — still
  // fully deterministic.
  void PushYieldedLocked(FiberTask* t) {
    const Seconds vt = t->clock != nullptr ? *t->clock : 0.0;
    queue_.push(RunEntry{vt, std::numeric_limits<int>::max(), next_seq_++, t});
  }

  // Requires mu_ held.
  void ProgressLocked() {
    ++progress_counter_;
    quiesce_armed_ = false;
  }

  // Requires mu_ held. Wakes every WaitFor-parked fiber in task-id order
  // (deterministic). `timeout_verdict` true marks the wake as a
  // quiescence expiry (WaitFor returns false); false re-checks only.
  bool WakeTimeoutParkedLocked(bool timeout_verdict) {
    bool any = false;
    for (auto& t : tasks_) {
      if (t->state == FiberTask::St::kParked && t->timeout_park) {
        t->woke_by_timeout = timeout_verdict;
        t->state = FiberTask::St::kRunnable;
        PushLocked(t.get());
        any = true;
      }
    }
    return any;
  }

  static void FiberMain(unsigned hi, unsigned lo) {
    auto* t = reinterpret_cast<FiberTask*>(
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
    t->fn();
    t->fn = nullptr;  // run closure destructors on the fiber, in order
    {
      std::lock_guard<std::mutex> g(t->engine->mu_);
      t->state = FiberTask::St::kDone;
    }
    t->engine->SwitchToScheduler(t);
    RCC_CHECK(false) << "resumed a completed fiber";
  }

  void SwitchToScheduler(FiberTask* t) {
#ifdef RCC_TSAN_FIBERS
    __tsan_switch_to_fiber(sched_tsan_fiber_, 0);
#endif
    swapcontext(&t->ctx, &sched_ctx_);
  }

  // Runs one fiber until it parks or completes. Requires pump_mu_ held,
  // mu_ not held, and `t` in state kRunnable.
  void RunTask(FiberTask* t) {
    {
      std::lock_guard<std::mutex> g(mu_);
      t->state = FiberTask::St::kRunning;
    }
    tls_current_task = t;
#ifdef RCC_TSAN_FIBERS
    __tsan_switch_to_fiber(t->tsan_fiber, 0);
#endif
    swapcontext(&sched_ctx_, &t->ctx);
    tls_current_task = nullptr;
    bool done = false;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (t->state == FiberTask::St::kDone) {
        done = true;
        if (t->stack_base != nullptr) {
          stack_pool_.push_back(t->stack_base);
          t->stack_base = nullptr;
        }
#ifdef RCC_TSAN_FIBERS
        if (t->tsan_fiber != nullptr) {
          __tsan_destroy_fiber(t->tsan_fiber);
          t->tsan_fiber = nullptr;
        }
#endif
        ProgressLocked();
      } else if (t->pending_yield) {
        t->pending_yield = false;
        t->state = FiberTask::St::kRunnable;
        PushYieldedLocked(t);
      } else if (t->pending_park) {
        t->pending_park = false;
        t->state = FiberTask::St::kParked;
        if (t->wake_pending) {
          t->wake_pending = false;
          t->state = FiberTask::St::kRunnable;
          t->woke_by_timeout = false;
          PushLocked(t);
        }
      } else {
        RCC_CHECK(false) << "fiber yielded without parking or completing";
      }
    }
    if (done) done_wp_.NotifyAll();  // never with mu_ held
  }

  // The scheduler loop. Requires pump_mu_ held and a non-fiber caller.
  // Returns when stop() holds, every task is done, or the engine is
  // stalled (a quiescence round produced no progress — the threads
  // backend would be hung at this point).
  void RunScheduler(const std::function<bool()>& stop) {
    RCC_CHECK(!OnFiberTask()) << "scheduler pumped from a fiber";
#ifdef RCC_TSAN_FIBERS
    sched_tsan_fiber_ = __tsan_get_current_fiber();
#endif
    for (;;) {
      if (stop && stop()) return;
      FiberTask* next = nullptr;
      {
        std::lock_guard<std::mutex> g(mu_);
        while (!queue_.empty()) {
          RunEntry e = queue_.top();
          queue_.pop();
          if (e.task->state == FiberTask::St::kRunnable) {
            next = e.task;
            break;
          }
        }
        if (next == nullptr) {
          // Run queue drained: quiescence. Expire the WaitFor-parked
          // fibers with the *smallest* timeout not yet expired this
          // round — the fiber-mode analogue of "the shortest real-time
          // grace fires first" (a death-watch Recv at 0s expires before
          // a 200us protocol poll, which expires before a 2ms kv poll).
          // Any progress restarts the ladder from the bottom; a drained
          // queue with the ladder exhausted is a stall (the threads
          // backend would be hung here).
          if (!quiesce_armed_) {
            quiesce_armed_ = true;
            quiesce_level_ = -1.0;
          }
          double level = 0.0;
          bool found = false;
          for (const auto& t : tasks_) {
            if (t->state == FiberTask::St::kParked && t->timeout_park &&
                t->park_timeout > quiesce_level_ &&
                (!found || t->park_timeout < level)) {
              level = t->park_timeout;
              found = true;
            }
          }
          if (!found) return;  // all done, or stalled past every rung
          quiesce_level_ = level;
          for (auto& t : tasks_) {  // task-id order: deterministic
            if (t->state == FiberTask::St::kParked && t->timeout_park &&
                t->park_timeout == level) {
              RCC_LOG(kDebug) << "quiescence: expiring pid " << t->pid
                              << " (timeout " << level << "s) at t="
                              << (t->clock != nullptr ? *t->clock : 0.0);
              t->woke_by_timeout = true;
              t->state = FiberTask::St::kRunnable;
              PushLocked(t.get());
            }
          }
          continue;
        }
      }
      RunTask(next);
    }
  }

  std::string StallReport(const char* where) {
    std::lock_guard<std::mutex> g(mu_);
    int runnable = 0, parked = 0, timeout_parked = 0, done = 0;
    for (const auto& t : tasks_) {
      switch (t->state) {
        case FiberTask::St::kRunnable:
        case FiberTask::St::kRunning:
          ++runnable;
          break;
        case FiberTask::St::kParked:
          ++parked;
          if (t->timeout_park) ++timeout_parked;
          break;
        case FiberTask::St::kDone:
          ++done;
          break;
      }
    }
    std::string s = "fiber engine stalled in ";
    s += where;
    s += " (deadlock: the threads backend would hang here): tasks=";
    s += std::to_string(tasks_.size());
    s += " done=" + std::to_string(done);
    s += " parked=" + std::to_string(parked);
    s += " (timeout=" + std::to_string(timeout_parked) + ")";
    s += " runnable=" + std::to_string(runnable);
    return s;
  }

  std::mutex mu_;  // engine state (tasks, queue, pool)
  std::vector<std::shared_ptr<FiberTask>> tasks_;
  std::priority_queue<RunEntry, std::vector<RunEntry>, std::greater<RunEntry>>
      queue_;
  uint64_t next_seq_ = 0;
  uint64_t next_task_id_ = 0;
  uint64_t progress_counter_ = 0;
  bool quiesce_armed_ = false;
  double quiesce_level_ = -1.0;  // largest timeout rung expired this round
  std::vector<void*> stack_pool_;
  std::vector<void*> all_stacks_;

  std::mutex pump_mu_;  // one scheduler pumper at a time
  ucontext_t sched_ctx_{};
#ifdef RCC_TSAN_FIBERS
  void* sched_tsan_fiber_ = nullptr;
#endif

  std::mutex join_mu_;  // predicate lock for fiber-context JoinTask
  WaitPoint done_wp_;   // notified on every task completion
};

// ---------------------------------------------------------------------
// TaskHandle / WaitPoint
// ---------------------------------------------------------------------

void TaskHandle::Join() {
  if (impl_) impl_->Join();
}

void YieldTask() {
  FiberTask* t = tls_current_task;
  if (t != nullptr && t->engine != nullptr) {
    t->engine->YieldCurrent();
  } else {
    std::this_thread::yield();
  }
}

WaitPoint::WaitPoint() = default;
WaitPoint::~WaitPoint() = default;

namespace {

// Pumps every live fiber engine once from an external thread; returns
// true if any engine made progress (or is being pumped elsewhere).
bool PumpAllFiberEngines() {
  std::vector<FiberEngine*> engines;
  {
    std::lock_guard<std::mutex> g(g_fiber_engines_mu);
    engines = GlobalFiberEngines();
  }
  bool progressed = false;
  for (FiberEngine* e : engines) progressed = e->TryPump() || progressed;
  return progressed;
}

}  // namespace

void WaitPoint::Wait(std::unique_lock<std::mutex>& lock) {
  FiberTask* self = tls_current_task;
  if (self != nullptr) {
    {
      std::lock_guard<std::mutex> g(waiters_mu_);
      fiber_waiters_.push_back(
          {self->shared_from_this(), self->engine->CurrentParkEpoch(self)});
    }
    lock.unlock();
    self->engine->ParkCurrent(/*timeout_park=*/false);
    lock.lock();
    return;
  }
  if (g_fiber_engine_count.load(std::memory_order_acquire) == 0) {
    // Pure threads backend: exactly the legacy condition-variable wait.
    cv_.wait(lock);
    return;
  }
  // External thread while fibers are live: lend the scheduler our time
  // (fibers can only run on a thread that pumps them), then re-check.
  lock.unlock();
  const bool progressed = PumpAllFiberEngines();
  lock.lock();
  if (!progressed) cv_.wait_for(lock, std::chrono::milliseconds(1));
}

bool WaitPoint::WaitFor(std::unique_lock<std::mutex>& lock,
                        double real_seconds) {
  FiberTask* self = tls_current_task;
  if (self != nullptr) {
    // Real-time has no meaning on the event queue: the wait "times out"
    // at quiescence, when the drain it was waiting for provably ended.
    // The timeout value still matters as a *priority*: at quiescence the
    // scheduler expires the smallest-timeout waiters first, preserving
    // the relative ordering of the backend's real-time grace periods.
    {
      std::lock_guard<std::mutex> g(waiters_mu_);
      fiber_waiters_.push_back(
          {self->shared_from_this(), self->engine->CurrentParkEpoch(self)});
    }
    lock.unlock();
    const bool notified =
        self->engine->ParkCurrent(/*timeout_park=*/true, real_seconds);
    lock.lock();
    return notified;
  }
  if (g_fiber_engine_count.load(std::memory_order_acquire) == 0) {
    return cv_.wait_for(lock, std::chrono::duration<double>(real_seconds)) ==
           std::cv_status::no_timeout;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(real_seconds);
  lock.unlock();
  const bool progressed = PumpAllFiberEngines();
  lock.lock();
  if (!progressed) cv_.wait_for(lock, std::chrono::milliseconds(1));
  return std::chrono::steady_clock::now() < deadline;
}

void WaitPoint::NotifyAll() {
  cv_.notify_all();
  std::vector<FiberWaiter> waiters;
  {
    std::lock_guard<std::mutex> g(waiters_mu_);
    waiters.swap(fiber_waiters_);
  }
  for (const FiberWaiter& w : waiters) {
    FiberEngine* e = w.task->engine;
    if (e != nullptr) e->Unpark(w.task.get(), w.park_epoch);
  }
}

// ---------------------------------------------------------------------
// Factory / env resolution
// ---------------------------------------------------------------------

EngineKind ResolveEngineKind(EngineKind requested) {
  if (requested != EngineKind::kAuto) return requested;
  const char* e = std::getenv("RCC_SIM_ENGINE");
  if (e != nullptr && std::strcmp(e, "fibers") == 0) {
    return EngineKind::kFibers;
  }
  if (e != nullptr && e[0] != '\0' && std::strcmp(e, "threads") != 0) {
    RCC_LOG(kWarn) << "RCC_SIM_ENGINE=" << e
                   << " not recognized; using threads";
  }
  return EngineKind::kThreads;
}

std::unique_ptr<Engine> MakeEngine(EngineKind kind) {
  switch (ResolveEngineKind(kind)) {
    case EngineKind::kFibers:
      return std::make_unique<FiberEngine>();
    case EngineKind::kThreads:
    case EngineKind::kAuto:
      break;
  }
  return std::make_unique<ThreadsEngine>();
}

}  // namespace rcc::sim
