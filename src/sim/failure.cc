#include "sim/failure.h"

namespace rcc::sim {

void FailurePlan::ApplyTo(Cluster& cluster) const {
  const int nprocs = cluster.fabric().ProcessCount();
  for (const FailureEvent& ev : events_) {
    if (ev.scope == FailScope::kProcess) {
      if (ev.target >= 0 && ev.target < nprocs) {
        cluster.endpoint(ev.target).ArmKillAt(ev.at);
      }
    } else {
      for (int pid = 0; pid < nprocs; ++pid) {
        if (cluster.fabric().NodeOf(pid) == ev.target) {
          cluster.endpoint(pid).ArmKillAt(ev.at);
        }
      }
    }
    // Late registrants (replacements landing on a doomed node, pids that
    // do not exist yet) are armed at registration time by the cluster.
    cluster.AddPendingFailure(ev);
  }
}

FailurePlan FailurePlan::Poisson(double rate_per_second, Seconds horizon,
                                 int world, uint64_t seed) {
  FailurePlan plan;
  Rng rng(seed, /*stream=*/0x0Fa11);
  Seconds t = 0.0;
  for (;;) {
    t += rng.NextExponential(rate_per_second);
    if (t >= horizon) break;
    plan.KillProcess(static_cast<int>(rng.NextBelow(world)), t);
  }
  return plan;
}

}  // namespace rcc::sim
