// Resilient collective operations: the paper's primary contribution.
//
// A ResilientComm pairs the ULFM host communicator with the NCCL-like
// GPU communicator and implements forward recovery at single-collective
// granularity (paper Section 3.2): when a collective reports a peer
// failure, the survivors
//
//   revoke the communicator -> acknowledge/agree on the failed set ->
//   shrink (optionally dropping whole nodes, the runtime flag of
//   Section 3.1) -> rebuild the GPU communicator -> RE-EXECUTE ONLY THE
//   FAILED COLLECTIVE with the preserved inputs
//
// so the mini-batch in progress is never rolled back.
//
// Resilient-op protocol. A failure can catch the SPMD ranks straddling
// two consecutive collectives (one rank may finish allreduce N and move
// on while another is still inside it). Every resilient operation is
// therefore structured as a data phase plus a synchronizing phase (a
// dissemination barrier, whose completion at any rank implies every rank
// entered it - so ranks can differ by at most one operation). After a
// repair the survivors run two agreements - the MIN outstanding op id,
// then an AND of "the data of that op is everywhere" - which decides
// uniformly whether the earliest op's data phase must be re-executed on
// the shrunk communicator (with the preserved inputs) or whether the
// repair itself already completed it. This is the standard ULFM
// recovery pattern for synchronous collectives.
//
// Replacement and upscaling workers are admitted with Expand /
// JoinExisting at epoch boundaries, while the survivors keep training in
// degraded mode.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "horovod/plan.h"
#include "mpi/comm.h"
#include "nccl/nccl.h"
#include "trace/trace.h"
#include "ulfm/ulfm.h"

namespace rcc::core {

class ResilientComm {
 public:
  // Founds the initial world over `pids` (collective; identical list on
  // every founding rank). Initial setup is traced under "init/".
  ResilientComm(sim::Endpoint& ep, const std::vector<int>& pids,
                horovod::DropPolicy policy, trace::Recorder* rec);

  // Joins an existing world (collective with the survivors' Expand call
  // using the same session & count). The joiner's connect cost is traced
  // under "recovery/".
  static std::unique_ptr<ResilientComm> JoinExisting(
      sim::Endpoint& ep, const std::string& session, int expected_joiners,
      horovod::DropPolicy policy, trace::Recorder* rec);

  int rank() const { return comm_->rank(); }
  int size() const { return static_cast<int>(comm_->pids().size()); }
  const std::vector<int>& pids() const { return comm_->pids(); }
  mpi::Comm& host() { return *comm_; }
  sim::Endpoint& endpoint() { return ep_; }
  int repairs() const { return repairs_; }

  // Resilient allreduce (sum) over the GPU communicator. Re-executes on
  // the shrunk communicator after failures; `sendbuf` is preserved
  // across retries (out-of-place kernels). `cost_scale` maps physical to
  // declared bytes. Returns kAborted if this rank itself dies or leaves
  // (node-drop policy).
  Status Allreduce(const float* sendbuf, float* recvbuf, size_t count,
                   double cost_scale = 1.0);

  // Resilient host-side blob broadcast (state sync): root is a rank of
  // the *current* membership; repairs keep survivor rank order, so
  // "rank 0" remains a state-holding survivor.
  Status BcastBlob(std::vector<uint8_t>* blob, int root, double cost_scale);

  // Resilient small allgather over the host communicator (Horovod
  // response negotiation).
  Status AllgatherU64(uint64_t mine, std::vector<uint64_t>* all);

  // Resilient barrier over the host communicator.
  Status Barrier();

  // Epoch-boundary reconfiguration: admits `joiner_count` new workers
  // (collective across current members; joiners call JoinExisting with
  // the same session). Rebuilds the GPU communicator.
  Status Expand(const std::string& session, int joiner_count);

  // Repairs the communicator after `failure` (revoke + agree + shrink +
  // GPU rebuild). Exposed for tests; the op wrappers call it internally.
  Status Repair(const Status& failure);

 private:
  ResilientComm(sim::Endpoint& ep, mpi::Comm comm,
                horovod::DropPolicy policy, trace::Recorder* rec);

  // The resilient-op protocol described above. `data_fn` runs the data
  // movement (empty for pure barriers); `sync_fn` is the synchronizing
  // phase on the same communicator.
  Status RunResilient(const std::function<Status()>& data_fn,
                      const std::function<Status()>& sync_fn, bool has_data);

  Status InitGpu(const char* phase_prefix);
  bool ShouldLeaveNode() const;  // node-drop policy: my node lost a member

  sim::Endpoint& ep_;
  std::unique_ptr<mpi::Comm> comm_;
  std::unique_ptr<nccl::Comm> gpu_;
  horovod::DropPolicy policy_;
  trace::Recorder* rec_;
  Status gpu_init_status_;
  int repairs_ = 0;
  uint64_t op_counter_ = 0;
};

}  // namespace rcc::core
