// Resilient collective operations: the paper's primary contribution.
//
// A ResilientComm pairs the ULFM host communicator with the NCCL-like
// GPU communicator and implements forward recovery at single-collective
// granularity (paper Section 3.2): when a collective reports a peer
// failure, the survivors
//
//   revoke the communicator -> acknowledge/agree on the failed set ->
//   shrink (optionally dropping whole nodes, the runtime flag of
//   Section 3.1) -> rebuild the GPU communicator -> RE-EXECUTE ONLY THE
//   FAILED COLLECTIVE with the preserved inputs
//
// so the mini-batch in progress is never rolled back.
//
// Resilient-op protocol. A failure can catch the SPMD ranks straddling
// two consecutive collectives (one rank may finish allreduce N and move
// on while another is still inside it), and — with the nonblocking
// pipeline — with a whole *window* of collectives in flight. Every
// resilient operation therefore carries a monotonically increasing op id,
// and blocking ops pair their data phase with a synchronizing phase (a
// dissemination barrier, whose completion at any rank implies every rank
// entered it); a submission window is closed the same way by WaitAll's
// barrier. After a repair the survivors run ONE agreement: each
// contributes the earliest op id whose data it still needs (its first
// incomplete in-flight op, else the none sentinel), MIN-reduced. The
// uniform decision rule is "re-execute every op >= MIN in program order
// on the shrunk communicator, with the preserved out-of-place inputs";
// MIN == sentinel (or beyond everything a rank submitted) means the
// repair itself synchronized the survivors and nothing is replayed.
// This generalizes the standard ULFM recovery pattern for synchronous
// collectives to a bounded in-flight window (see DESIGN.md §5.6/§5.10).
//
// Replacement and upscaling workers are admitted with Expand /
// JoinExisting at epoch boundaries, while the survivors keep training in
// degraded mode.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coll/request.h"
#include "horovod/plan.h"
#include "kvstore/kvstore.h"
#include "mpi/comm.h"
#include "nccl/nccl.h"
#include "obs/flight.h"
#include "trace/trace.h"
#include "ulfm/ulfm.h"

namespace rcc::core {

// Delta-sync fraction per survivor step the joiner is behind at splice
// (RCC_EXPAND_DELTA_FRAC, default 0.05): the catch-up broadcast is
// priced at min(1, frac * steps_behind) of the full state.
double ExpandDeltaFrac();

class ResilientComm {
 public:
  // Founds the initial world over `pids` (collective; identical list on
  // every founding rank). Initial setup is traced under "init/".
  ResilientComm(sim::Endpoint& ep, const std::vector<int>& pids,
                horovod::DropPolicy policy, trace::Recorder* rec);

  // Joins an existing world (collective with the survivors' Expand call
  // using the same session & count). The joiner's connect cost is traced
  // under "recovery/".
  static std::unique_ptr<ResilientComm> JoinExisting(
      sim::Endpoint& ep, const std::string& session, int expected_joiners,
      horovod::DropPolicy policy, trace::Recorder* rec);

  int rank() const { return comm_->rank(); }
  int size() const { return static_cast<int>(comm_->pids().size()); }
  const std::vector<int>& pids() const { return comm_->pids(); }
  mpi::Comm& host() { return *comm_; }
  sim::Endpoint& endpoint() { return ep_; }
  int repairs() const { return repairs_; }
  // The recorder this comm traces into (may be null). The elastic
  // trainer records its policy/decide spans through it.
  trace::Recorder* recorder() const { return rec_; }

  // Resilient allreduce (sum) over the GPU communicator. Re-executes on
  // the shrunk communicator after failures; `sendbuf` is preserved
  // across retries (out-of-place kernels). `cost_scale` maps physical to
  // declared bytes. Returns kAborted if this rank itself dies or leaves
  // (node-drop policy).
  Status Allreduce(const float* sendbuf, float* recvbuf, size_t count,
                   double cost_scale = 1.0);

  // --- nonblocking pipeline ---
  // Submits a resilient allreduce into the bounded in-flight window
  // (blocking on the oldest outstanding op once the window is full).
  // Both buffers must stay alive and untouched until WaitAll returns:
  // sendbuf doubles as the preserved replay input. Returns kAborted if
  // this rank dies; other failures are repaired internally.
  Status IAllreduce(const float* sendbuf, float* recvbuf, size_t count,
                    double cost_scale = 1.0);
  // Drains the window and closes it with a synchronizing GPU barrier,
  // running the windowed recovery protocol on failures. The window is
  // empty afterwards regardless of outcome.
  Status WaitAll();
  // Bounds the number of in-flight ops (compute run-ahead depth).
  void set_max_inflight(int n) { max_inflight_ = n < 1 ? 1 : n; }
  int max_inflight() const { return max_inflight_; }
  int inflight() const;

  // Resilient host-side blob broadcast (state sync): root is a rank of
  // the *current* membership; repairs keep survivor rank order, so
  // "rank 0" remains a state-holding survivor.
  Status BcastBlob(std::vector<uint8_t>* blob, int root, double cost_scale);

  // Resilient small allgather over the host communicator (Horovod
  // response negotiation).
  Status AllgatherU64(uint64_t mine, std::vector<uint64_t>* all);

  // Resilient barrier over the host communicator.
  Status Barrier();

  // Epoch-boundary reconfiguration: admits `joiner_count` new workers
  // (collective across current members; joiners call JoinExisting with
  // the same session). Rebuilds the GPU communicator. Returns kTimeout
  // when a provisioned joiner never arrives within the announce grace +
  // expand timeout: the expand is abandoned and the caller keeps
  // training on the unchanged communicator (degraded mode).
  Status Expand(const std::string& session, int joiner_count);

  // --- asynchronous admission (overlapped rendezvous + state staging) ---
  //
  // The blocking Expand stalls every survivor for the joiner's full
  // bring-up (cold start + state transfer + rendezvous). The async
  // protocol splits admission into three phases so survivors keep
  // training while the joiner stages:
  //
  //   ExpandAsyncBegin   publish a versioned snapshot to the kvstore,
  //                      open the rendezvous window (nonblocking)
  //   ExpandPoll         one cheap probe per training step; splices the
  //                      merged communicator at a step boundary once
  //                      every announced joiner has staged, or aborts
  //                      after the timeout and continues degraded
  //   JoinAsync          joiner side: announce, pull the snapshot and
  //                      restore in the background, pre-establish GPU
  //                      transports, then park until the survivors
  //                      splice (or exclude us)
  //
  // See DESIGN.md §5 for the admission state machine.

  enum class PollResult { kNone, kPending, kSpliced, kAborted };

  // Opens an async expand. Rank 0 publishes `snapshot` (declared size
  // `declared_bytes` for the cost model) under "expand/<session>/" in
  // `store`, then every caller opens the rendezvous window. A still-
  // pending previous expand is finalized first. `timeout_s` < 0 uses
  // ulfm::ExpandTimeout(). Collective across current members; returns
  // kAborted only if this rank dies.
  Status ExpandAsyncBegin(kv::Store* store, const std::string& session,
                          int joiner_count,
                          const std::vector<uint8_t>& snapshot,
                          double declared_bytes, double timeout_s = -1.0);

  // One admission poll (call between training steps). kPending: keep
  // training. kSpliced: the merged communicator is installed and the
  // GPU communicator rebuilt (scale-0 bootstrap when every joiner
  // pre-established during staging); the caller should run its delta
  // state sync. kAborted: the expand timed out or was abandoned; the
  // membership is unchanged and training continues degraded. kNone: no
  // expand is pending. `finalize` forces a decision (splice with
  // whoever staged, else abort) — trainers pass it after the last step
  // so parked joiners always unblock.
  PollResult ExpandPoll(bool finalize = false);

  // True while an async expand is awaiting splice or abort.
  bool expand_pending() const { return expand_op_.active; }

  // Requests the pending expand abort at the next poll (survivors
  // leaving the training loop abandon their joiners explicitly).
  void ExpandAbortAsync();

  // Drains the survivor-exposed admission stall (virtual seconds this
  // rank spent inside ExpandPoll + splice) since the last call.
  double TakeAdmissionStallSeconds();

  // Joiner-side async admission. Announces into `session`, pulls the
  // staged snapshot from `store` in the background (charging the
  // declared transfer cost), hands the raw bytes to `restore_fn`
  // (driver-specific restore + materialization), pre-establishes the
  // GPU transports for the candidate merged membership, then parks in
  // AwaitSplice. Returns the joined comm, or null if this joiner died,
  // was excluded by the admission deadline, or every survivor died.
  static std::unique_ptr<ResilientComm> JoinAsync(
      sim::Endpoint& ep, kv::Store* store, const std::string& session,
      horovod::DropPolicy policy, trace::Recorder* rec,
      const std::function<Status(const std::vector<uint8_t>&)>& restore_fn);

  // Repairs the communicator after `failure` (revoke + agree + shrink +
  // GPU rebuild). Exposed for tests; the op wrappers call it internally.
  Status Repair(const Status& failure);

  // Drains the accumulated GPU-collective service seconds since the last
  // call: engine execution time of windowed ops (observed at WaitOp)
  // plus the GPU communicator's own accumulator (blocking allreduces,
  // replays, barriers). Per-step reads of this drive the comm-hidden
  // fraction without picking up host-side traffic (state sync,
  // negotiation) that shares the global metrics registry.
  double TakeCommServiceSeconds();

  // Observer invoked once per replayed op (after its successful
  // re-execution on the repaired communicator), with the op's id and
  // the agreed replay MIN. The serving driver uses this to count decode
  // steps re-executed by recovery and to audit exactly-once token
  // commits; runs on the rank's own task, so no synchronization needed.
  void SetReplayHook(std::function<void(int64_t op_id, int64_t min_id)> fn) {
    replay_hook_ = std::move(fn);
  }

  // Test-only planted fault: window ops matching the predicate are
  // skipped during replay (marked done without re-execution), leaving
  // the skipping rank with a stale result. The chaos harness uses this
  // to prove its oracle + shrinker pipeline catches a real replay bug
  // end to end. Set before spawning ranks, clear (nullptr) after the
  // run; reads are unsynchronized.
  static void TestOnlySetReplaySkip(
      std::function<bool(int pid, int64_t op_id)> fn);

 private:
  // One windowed op: request handle plus the preserved out-of-place
  // buffers the recovery replays from. deque keeps references stable
  // across submissions.
  struct WindowOp {
    int64_t id = 0;
    const float* sendbuf = nullptr;
    float* recvbuf = nullptr;
    size_t count = 0;
    double cost_scale = 1.0;
    coll::Request req;
    bool done = false;
  };

  ResilientComm(sim::Endpoint& ep, mpi::Comm comm,
                horovod::DropPolicy policy, trace::Recorder* rec);

  // The resilient-op protocol described above. `data_fn` runs the data
  // movement (empty for pure barriers); `sync_fn` is the synchronizing
  // phase on the same communicator.
  Status RunResilient(const std::function<Status()>& data_fn,
                      const std::function<Status()>& sync_fn, bool has_data);

  // `init_cost_scale` is forwarded to nccl::Comm::InitRank (0 when the
  // merged transports were pre-established during async staging).
  Status InitGpu(const char* phase_prefix, double init_cost_scale = 1.0);
  bool ShouldLeaveNode() const;  // node-drop policy: my node lost a member

  // --- windowed-recovery machinery ---
  void SubmitOp(WindowOp* op);
  // Joins one op, merging its completion into the rank clock; marks it
  // done and records the op trace event on success.
  Status WaitOp(WindowOp* op);
  // Joins every outstanding op in the window; returns the first failure
  // (kAborted short-circuits).
  Status DrainRequests();
  // Earliest window op whose data this rank still needs, else the
  // kNoIncompleteOp sentinel.
  int64_t FirstIncompleteWindowOp() const;
  // Blocking re-execution of every window op with id >= min_id, in
  // program order, on the repaired communicator (traced as
  // recovery/retry_collective). Locally-complete ops are re-executed too
  // so the survivors' op streams stay aligned.
  Status ReplayWindowFrom(int64_t min_id);
  // Repair + single agreement + replay for window-context failures.
  // Sets *need_barrier to false when the agreement shows no survivor
  // needs a replay at or before this rank's last submitted op: the
  // repair itself synchronized the survivors and the window's closing
  // barrier must NOT be re-run (ranks past it will not participate).
  Status RecoverWindow(Status failure, bool* need_barrier);
  Status GpuBarrier();

  static std::function<bool(int pid, int64_t op_id)> test_replay_skip_;

  sim::Endpoint& ep_;
  std::unique_ptr<mpi::Comm> comm_;
  std::unique_ptr<nccl::Comm> gpu_;
  horovod::DropPolicy policy_;
  trace::Recorder* rec_;
  obs::flight::Ring* flight_;  // this rank's flight-recorder ring
  Status gpu_init_status_;
  int repairs_ = 0;
  uint64_t op_counter_ = 0;
  int max_inflight_ = 8;
  std::function<void(int64_t, int64_t)> replay_hook_;
  std::deque<WindowOp> window_;
  double comm_service_acc_ = 0.0;  // see TakeCommServiceSeconds

  // --- async-admission state (one pending expand at a time) ---
  ulfm::ExpandOp expand_op_;
  kv::Store* expand_store_ = nullptr;
  std::string expand_session_;
  sim::Seconds expand_begin_time_ = 0.0;  // admission-latency metric base
  bool expand_abort_requested_ = false;
  double admission_stall_acc_ = 0.0;  // see TakeAdmissionStallSeconds
};

}  // namespace rcc::core
