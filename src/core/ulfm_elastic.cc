#include "core/ulfm_elastic.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "common/log.h"
#include "common/serial.h"
#include "core/resilient.h"
#include "kvstore/kvstore.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rcc::core {

namespace {

using horovod::Bucket;
using horovod::DropPolicy;
using horovod::ScriptedFailure;
using horovod::SyntheticPlan;

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load();
  while (value > cur && !target->compare_exchange_weak(cur, value)) {
  }
}

struct Session {
  SyntheticPlan plan;
  std::unique_ptr<kv::Store> store;
  trace::Recorder* rec = nullptr;
  std::vector<Bucket> proto_buckets;
  std::map<int, int> joiners_per_epoch;
  double step_compute_seconds = 0;
  double model_virtual_bytes = 0;
  std::vector<std::atomic<bool>> failure_done;
  std::atomic<double> completion{0};
  std::atomic<int> repairs{0};
  std::atomic<int> expands{0};

  explicit Session(size_t nfailures) : failure_done(nfailures) {
    for (auto& f : failure_done) f.store(false);
  }
};

// Dumps every rank's flight ring the moment a worker exits dead, so the
// black box survives even when the driver's caller never inspects the
// outcome. Later aborts overwrite with strictly more history.
class AbortDumpGuard {
 public:
  explicit AbortDumpGuard(sim::Endpoint& ep) : ep_(ep) {}
  ~AbortDumpGuard() {
    if (!ep_.alive()) obs::flight::DumpOnAbort();
  }
  AbortDumpGuard(const AbortDumpGuard&) = delete;
  AbortDumpGuard& operator=(const AbortDumpGuard&) = delete;

 private:
  sim::Endpoint& ep_;
};

std::vector<uint8_t> EncodeCursor(int epoch, int step) {
  ByteWriter w;
  w.WriteI32(epoch);
  w.WriteI32(step);
  std::vector<uint8_t> blob = w.Take();
  blob.resize(4096, 0);  // physical stand-in for the model state
  return blob;
}

class UlfmWorker {
 public:
  UlfmWorker(sim::Endpoint& ep, std::shared_ptr<Session> ss)
      : ep_(ep), ss_(std::move(ss)), buckets_(ss_->proto_buckets) {}

  // Founding worker.
  void RunOriginal() {
    AbortDumpGuard guard(ep_);
    auto blob = ss_->store->Wait(&ep_, "ulfm/pids");
    if (!blob.ok()) return;
    ByteReader r(blob.value());
    uint64_t n = 0;
    if (!r.ReadU64(&n).ok()) return;
    std::vector<int> pids(n);
    for (uint64_t i = 0; i < n; ++i) {
      int32_t pid = 0;
      if (!r.ReadI32(&pid).ok()) return;
      pids[i] = pid;
    }
    rc_ = std::make_unique<ResilientComm>(ep_, pids, ss_->plan.drop_policy,
                                          ss_->rec);
    Train(/*joined_at_epoch=*/-1);
    Finish();
  }

  // Replacement / upscale worker: provisioned ahead of its merge epoch so
  // the cold start overlaps the survivors' degraded-mode training.
  void RunJoiner(int join_epoch, bool cold) {
    AbortDumpGuard guard(ep_);
    const auto& costs = ep_.fabric().config().costs;
    const std::string signal =
        cold ? "epoch_start/" + std::to_string(std::max(0, join_epoch - 1))
             : "provision/failure";
    auto sig = ss_->store->Wait(&ep_, signal);
    if (!sig.ok()) return;
    {
      obs::Span scope(
          ss_->rec, ep_,
          std::string("recovery/") + horovod::phase::kWorkerInit);
      ep_.Busy(cold ? costs.worker_coldstart : costs.worker_warmstart);
    }
    rc_ = ResilientComm::JoinExisting(
        ep_, "epoch" + std::to_string(join_epoch),
        ss_->joiners_per_epoch.at(join_epoch), ss_->plan.drop_policy,
        ss_->rec);
    if (rc_ == nullptr) return;
    if (!SyncState(/*joiner=*/true).ok()) return;
    Train(/*joined_at_epoch=*/join_epoch);
    Finish();
  }

  // Asynchronous-admission joiner: announces immediately (the survivors'
  // rendezvous window knows the candidate exists before its cold start
  // finishes), stages the published snapshot in the background, then
  // parks until the survivors splice it in at a step boundary.
  void RunJoinerAsync(int join_epoch, bool cold) {
    AbortDumpGuard guard(ep_);
    const auto& costs = ep_.fabric().config().costs;
    const std::string session = "epoch" + std::to_string(join_epoch);
    if (!ulfm::AnnounceJoiner(ep_, session).ok()) return;
    const std::string signal =
        cold ? "epoch_start/" + std::to_string(std::max(0, join_epoch - 1))
             : "provision/failure";
    auto sig = ss_->store->Wait(&ep_, signal);
    if (!sig.ok()) return;
    {
      obs::Span scope(
          ss_->rec, ep_,
          std::string("recovery/") + horovod::phase::kWorkerInit);
      ep_.Busy(cold ? costs.worker_coldstart : costs.worker_warmstart);
    }
    if (!ep_.alive()) return;
    rc_ = ResilientComm::JoinAsync(
        ep_, ss_->store.get(), session, ss_->plan.drop_policy, ss_->rec,
        [this](const std::vector<uint8_t>& blob) -> Status {
          ByteReader r(blob);
          int32_t e = 0;
          int32_t s = 0;
          RCC_RETURN_IF_ERROR(r.ReadI32(&e));
          RCC_RETURN_IF_ERROR(r.ReadI32(&s));
          epoch_ = e;
          step_ = s;
          // Materialise the staged tensors.
          ep_.Busy(ss_->model_virtual_bytes /
                   ep_.fabric().config().net.host_mem_bandwidth);
          return ep_.alive() ? Status::Ok()
                             : Status(Code::kAborted, "joiner died staging");
        });
    if (rc_ == nullptr) return;  // died, excluded, or survivors gone
    // Catch up to the survivors' current step (they run the matching
    // sender-side DeltaSync right after the splice); contribute the
    // staged snapshot's step position so the agreed spread prices the
    // real gap.
    if (!DeltaSync(/*joiner=*/true,
                   static_cast<uint64_t>(epoch_) * ss_->plan.steps_per_epoch +
                       step_)
             .ok()) {
      return;
    }
    Train(/*joined_at_epoch=*/epoch_);
    Finish();
  }

 private:
  void Finish() { AtomicMax(&ss_->completion, ep_.now()); }

  // State broadcast from rank 0 (survivor order is preserved by shrink
  // and expand, so rank 0 always holds valid state).
  Status SyncState(bool joiner) {
    obs::Span scope(ss_->rec, ep_,
                       std::string("recovery/") + horovod::phase::kStateSync);
    std::vector<uint8_t> blob = EncodeCursor(epoch_, step_);
    const double scale =
        ss_->model_virtual_bytes / static_cast<double>(blob.size());
    RCC_RETURN_IF_ERROR(rc_->BcastBlob(&blob, /*root=*/0, scale));
    if (joiner) {
      ByteReader r(blob);
      int32_t e = 0, s = 0;
      RCC_RETURN_IF_ERROR(r.ReadI32(&e));
      RCC_RETURN_IF_ERROR(r.ReadI32(&s));
      epoch_ = e;
      step_ = s;
      // Materialise the received tensors.
      ep_.Busy(ss_->model_virtual_bytes /
               ep_.fabric().config().net.host_mem_bandwidth);
    }
    return Status::Ok();
  }

  // Post-splice catch-up: every member contributes its absolute
  // global-step position (survivors the current step, joiners the
  // staged snapshot's step) and the agreed spread max-min (clamped to
  // >= 1) is the distance; the cursor broadcast is priced at
  // min(1, RCC_EXPAND_DELTA_FRAC * behind) of the model bytes - the
  // joiner already staged a recent snapshot, only the delta travels.
  Status DeltaSync(bool joiner, uint64_t gstep_position) {
    obs::Span scope(ss_->rec, ep_,
                    std::string("recovery/") + horovod::phase::kDeltaSync);
    std::vector<uint64_t> all;
    RCC_RETURN_IF_ERROR(rc_->AllgatherU64(gstep_position, &all));
    uint64_t lo = ~0ULL, hi = 0;
    for (uint64_t v : all) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const uint64_t behind = std::max<uint64_t>(1, hi - lo);
    obs::Registry::Global()
        .GetHistogram("rcc_delta_sync_steps_behind")
        ->Observe(static_cast<double>(hi - lo));
    const double virtual_bytes =
        std::min(1.0, ExpandDeltaFrac() * static_cast<double>(behind)) *
        ss_->model_virtual_bytes;
    std::vector<uint8_t> blob = EncodeCursor(epoch_, step_);
    const double scale = virtual_bytes / static_cast<double>(blob.size());
    RCC_RETURN_IF_ERROR(rc_->BcastBlob(&blob, /*root=*/0, scale));
    if (joiner) {
      ByteReader r(blob);
      int32_t e = 0;
      int32_t s = 0;
      RCC_RETURN_IF_ERROR(r.ReadI32(&e));
      RCC_RETURN_IF_ERROR(r.ReadI32(&s));
      epoch_ = e;
      step_ = s;
      ep_.Busy(virtual_bytes / ep_.fabric().config().net.host_mem_bandwidth);
    }
    obs::Registry::Global().GetCounter("rcc_delta_sync_total")->Increment();
    return Status::Ok();
  }

  // Polls the pending async expand at a step boundary; runs the sender
  // side of the delta sync when it splices. Returns false when this
  // worker must stop (self died or the catch-up sync aborted).
  bool PollAdmission(bool finalize) {
    const auto pr = rc_->ExpandPoll(finalize);
    if (pr == ResilientComm::PollResult::kNone ||
        pr == ResilientComm::PollResult::kPending) {
      return true;
    }
    if (pr == ResilientComm::PollResult::kAborted) {
      // Timed out: membership unchanged, training continues degraded
      // unless this rank itself died at the poll boundary.
      admit_begin_gstep_ = -1;
      return ep_.alive();
    }
    const int64_t gstep =
        static_cast<int64_t>(epoch_) * ss_->plan.steps_per_epoch + step_;
    admit_begin_gstep_ = -1;
    return DeltaSync(/*joiner=*/false, static_cast<uint64_t>(gstep)).ok();
  }

  void Train(int joined_at_epoch) {
    int known_repairs = rc_->repairs();
    while (epoch_ < ss_->plan.epochs) {
      if (rc_->rank() == 0) {
        // Progress beacon: cold joiners for epoch e+1 start provisioning
        // when epoch e begins (resource-availability model, DESIGN.md).
        ss_->store->CompareAndSwap(
            &ep_, "epoch_start/" + std::to_string(epoch_), 0, {1});
      }
      // Epoch-boundary reconfiguration (paper: joiners merge after the
      // survivors complete the epoch).
      auto join_it = ss_->joiners_per_epoch.find(epoch_);
      if (join_it != ss_->joiners_per_epoch.end() && step_ == 0 &&
          epoch_ != joined_at_epoch) {
        ss_->expands.fetch_add(1);
        if (ss_->plan.async_admission) {
          // Nonblocking admission: open the window and keep training;
          // PollAdmission splices at a step boundary once the joiners
          // have staged the published snapshot.
          Status st = rc_->ExpandAsyncBegin(
              ss_->store.get(), "epoch" + std::to_string(epoch_),
              join_it->second, EncodeCursor(epoch_, step_),
              ss_->model_virtual_bytes);
          if (!st.ok()) return;
          admit_begin_gstep_ =
              static_cast<int64_t>(epoch_) * ss_->plan.steps_per_epoch +
              step_;
        } else {
          Status st =
              rc_->Expand("epoch" + std::to_string(epoch_), join_it->second);
          if (st.code() == Code::kTimeout) {
            // Provisioned joiners never arrived: the expand was
            // abandoned at the deadline; keep training degraded.
            RCC_LOG(kDebug) << "pid " << ep_.pid() << " expand e" << epoch_
                            << " timed out; continuing degraded";
          } else if (!st.ok()) {
            return;
          } else if (!SyncState(/*joiner=*/false).ok()) {
            return;
          }
        }
      }
      while (step_ < ss_->plan.steps_per_epoch) {
        if (!TrainStep(&known_repairs)) return;
        ++step_;
        if (rc_->expand_pending() && !PollAdmission(/*finalize=*/false)) {
          return;
        }
      }
      // Rest of the epoch, analytically (no checkpoint commits on the
      // ULFM path).
      if (ss_->plan.padded_steps_per_epoch > 0) {
        ep_.Busy(ss_->plan.padded_steps_per_epoch *
                 ss_->plan.padded_step_seconds);
      }
      step_ = 0;
      ++epoch_;
    }
    // Force a still-pending admission to a decision so parked joiners
    // always unblock (they splice for the final state or are excluded).
    if (rc_->expand_pending()) PollAdmission(/*finalize=*/true);
  }

  // Returns false when this worker leaves (death or node drop).
  bool TrainStep(int* known_repairs) {
    const sim::Seconds step_start = ep_.now();
    rc_->TakeCommServiceSeconds();  // drop pre-step traffic (state sync &c)
    const bool ok = ss_->plan.inflight_window < 1
                        ? TrainStepBlocking()
                        : TrainStepPipelined();
    if (ok) RecordStepMetrics(ep_.now() - step_start);
    if (ok && rc_->repairs() != *known_repairs) {
      *known_repairs = rc_->repairs();
      ss_->repairs.fetch_add(1);
      if (rc_->rank() == 0) {
        // Replacement provisioning signal (Scenario II): standby
        // workers spin up as soon as the failure is confirmed.
        ss_->store->CompareAndSwap(&ep_, "provision/failure", 0, {1});
      }
    }
    return ok;
  }

  // Per-step driver metrics (paper Figs. 5-7 are built from these): step
  // wall time, its compute/comm split, and the exposed (non-overlapped)
  // communication derived from them. Comm service comes from the
  // resilient comm's own accumulator so host-side traffic from other
  // phases never pollutes the comm-hidden fraction.
  void RecordStepMetrics(double wall) {
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"stack", "ulfm"}};
    const double compute = ss_->step_compute_seconds;
    const double service = rc_->TakeCommServiceSeconds();
    const double exposed = wall > compute ? wall - compute : 0.0;
    reg.GetCounter("rcc_steps_total", labels)->Increment();
    reg.GetCounter("rcc_step_seconds_total", labels)->Add(wall);
    reg.GetCounter("rcc_step_compute_seconds_total", labels)->Add(compute);
    reg.GetCounter("rcc_step_comm_service_seconds_total", labels)
        ->Add(service);
    reg.GetCounter("rcc_step_comm_exposed_seconds_total", labels)
        ->Add(exposed);
    reg.GetHistogram("rcc_step_seconds", labels)->Observe(wall);
    reg.GetGauge("rcc_world_size", labels)
        ->Set(static_cast<double>(rc_->size()));
    if (ss_->rec != nullptr) {
      ss_->rec->RecordCounter(ep_.pid(), "world_size", ep_.now(),
                              static_cast<double>(rc_->size()));
    }
  }

  bool TrainStepBlocking() {
    ep_.Busy(ss_->step_compute_seconds);
    for (size_t b = 0; b < buckets_.size(); ++b) {
      MaybeDie(static_cast<int>(b));
      if (!ep_.alive()) return false;
      if (!ss_->plan.response_cache) {
        obs::Span scope(ss_->rec, ep_, "negotiation");
        if (!Negotiate(b)) return false;
      }
      Bucket& bucket = buckets_[b];
      std::vector<float> out(bucket.data.size());
      Status st = rc_->Allreduce(bucket.data.data(), out.data(),
                                 bucket.data.size(), bucket.cost_scale());
      RCC_LOG(kDebug) << "pid " << ep_.pid() << " e" << epoch_ << " s"
                      << step_ << " b" << b << " -> " << st.ToString();
      if (!st.ok()) return false;  // kAborted: dead or node-dropped
      // Degraded-mode averaging: the failed worker's contribution is
      // lost; survivors average over the *current* membership.
      const float inv = 1.0f / static_cast<float>(rc_->size());
      for (size_t i = 0; i < out.size(); ++i) bucket.data[i] = out[i] * inv;
    }
    return true;
  }

  // Overlapped step over the resilient window: each bucket's allreduce
  // is submitted as backprop produces it (bounded in-flight window,
  // failures repaired and replayed inside the resilient layer), and only
  // the optimizer step drains the window.
  bool TrainStepPipelined() {
    rc_->set_max_inflight(ss_->plan.inflight_window);
    ep_.Busy(ss_->step_compute_seconds / 3.0);  // forward pass
    const double backward = ss_->step_compute_seconds * 2.0 / 3.0;
    double total_bytes = 0;
    for (const Bucket& bucket : buckets_) total_bytes += bucket.virtual_bytes;
    // The out buffers feed live op workers: the window must be drained
    // (WaitAll) on every exit path before this frame unwinds.
    std::vector<std::vector<float>> outs(buckets_.size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      // Backward slice producing this bucket's gradients.
      const double frac = total_bytes > 0
                              ? buckets_[b].virtual_bytes / total_bytes
                              : 1.0 / static_cast<double>(buckets_.size());
      ep_.Busy(backward * frac);
      MaybeDie(static_cast<int>(b));
      if (!ep_.alive()) {
        rc_->WaitAll();
        return false;
      }
      if (!ss_->plan.response_cache) {
        obs::Span scope(ss_->rec, ep_, "negotiation");
        if (!Negotiate(b)) {
          rc_->WaitAll();
          return false;
        }
      }
      Bucket& bucket = buckets_[b];
      outs[b].resize(bucket.data.size());
      Status st = rc_->IAllreduce(bucket.data.data(), outs[b].data(),
                                  bucket.data.size(), bucket.cost_scale());
      RCC_LOG(kDebug) << "pid " << ep_.pid() << " e" << epoch_ << " s"
                      << step_ << " b" << b << " submit -> " << st.ToString();
      if (!st.ok()) {
        rc_->WaitAll();
        return false;  // kAborted: dead or node-dropped
      }
    }
    Status st = rc_->WaitAll();
    RCC_LOG(kDebug) << "pid " << ep_.pid() << " e" << epoch_ << " s" << step_
                    << " waitall -> " << st.ToString();
    if (!st.ok()) return false;
    // Optimizer step: average over the *post-recovery* membership (the
    // failed worker's contribution to buckets reduced before the failure
    // is lost - degraded-mode averaging at window granularity).
    const float inv = 1.0f / static_cast<float>(rc_->size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      for (size_t i = 0; i < outs[b].size(); ++i) {
        buckets_[b].data[i] = outs[b][i] * inv;
      }
    }
    return true;
  }

  // Horovod response negotiation when the response cache is disabled: a
  // small resilient host-side allgather.
  bool Negotiate(size_t b) {
    std::vector<uint64_t> all;
    return rc_->AllgatherU64(b, &all).ok();
  }

  void MaybeDie(int bucket) {
    const auto& failures = ss_->plan.failures;
    for (size_t i = 0; i < failures.size(); ++i) {
      const ScriptedFailure& f = failures[i];
      if (f.epoch == epoch_ && f.step == step_ && f.bucket == bucket &&
          f.victim_rank == rc_->rank() && !ss_->failure_done[i].load()) {
        ss_->failure_done[i].store(true);
        if (f.scope == sim::FailScope::kNode) {
          ep_.fabric().KillNode(ep_.node());
        } else {
          ep_.fabric().Kill(ep_.pid());
        }
        return;
      }
    }
  }

  sim::Endpoint& ep_;
  std::shared_ptr<Session> ss_;
  std::vector<Bucket> buckets_;
  std::unique_ptr<ResilientComm> rc_;
  int epoch_ = 0;
  int step_ = 0;
  int64_t admit_begin_gstep_ = -1;  // global step the pending expand opened
};

}  // namespace

horovod::RunStats RunUlfmElastic(sim::Cluster& cluster,
                                 const SyntheticPlan& plan,
                                 trace::Recorder* rec) {
  auto ss = std::make_shared<Session>(plan.failures.size());
  ss->plan = plan;
  ss->rec = rec;
  ss->store =
      std::make_unique<kv::Store>(cluster.config().costs.kv_roundtrip);
  ss->proto_buckets = horovod::MakeBuckets(plan.spec, plan.fusion_bytes,
                                           plan.max_physical_floats);
  ss->step_compute_seconds = dnn::StepComputeSeconds(
      plan.spec, plan.batch_per_worker, cluster.config().net.gpu_flops);
  ss->model_virtual_bytes = plan.spec.size_mb * 1e6;
  for (const auto& join : plan.joins) {
    ss->joiners_per_epoch[join.epoch] += join.count;
  }

  auto original = [ss](sim::Endpoint& ep) {
    UlfmWorker(ep, ss).RunOriginal();
  };
  std::vector<int> pids = cluster.Spawn(plan.initial_world, original);
  for (const auto& join : plan.joins) {
    for (int j = 0; j < join.count; ++j) {
      auto joiner = [ss, join](sim::Endpoint& ep) {
        if (ss->plan.async_admission) {
          UlfmWorker(ep, ss).RunJoinerAsync(join.epoch, join.cold);
        } else {
          UlfmWorker(ep, ss).RunJoiner(join.epoch, join.cold);
        }
      };
      cluster.SpawnOnFreshNodes(1, joiner, /*start_time=*/0.0);
    }
  }
  // Publish the founding membership (the paper's mpirun-launched world).
  ByteWriter w;
  w.WriteU64(pids.size());
  for (int pid : pids) w.WriteI32(pid);
  ss->store->Set(nullptr, "ulfm/pids", w.Take());
  cluster.Join();

  horovod::RunStats stats;
  stats.completion_time = ss->completion.load();
  stats.steps_executed = plan.epochs * plan.steps_per_epoch;
  stats.resets = ss->repairs.load() + ss->expands.load();
  int final_world = plan.initial_world;
  for (const auto& f : plan.failures) {
    const bool whole_node = f.scope == sim::FailScope::kNode ||
                            plan.drop_policy == DropPolicy::kNode;
    final_world -= whole_node ? cluster.config().gpus_per_node : 1;
  }
  for (const auto& join : plan.joins) final_world += join.count;
  stats.final_world = final_world;
  return stats;
}

}  // namespace rcc::core
