// Hybrid-parallel (DP x PP x TP) pipeline trainer over the resilient
// collectives, with ReCycle-style failure adaptation.
//
// Each training step runs a 1F1B schedule of M microbatches over the
// ProcessGroupGrid: activations/gradients travel stage-to-stage as
// watched host p2p messages, each stage shard pays a synthetic compute
// cost from the dnn::ModelSpec, TP shards allreduce activations inside
// the stage, and at the step boundary every (stage, shard) column runs
// a DP gradient allreduce across the pipeline replicas. Spares (world
// members beyond dp*pp*tp slots) run no ops but participate in every
// commit agreement, so the commit ledger is identical on all members.
//
// Failure handling (the tentpole): when any member dies mid-step the
// survivors abandon the step and converge at the commit agreement — a
// resilient allgather whose internal repair machinery shrinks the
// world (out-of-band Repair/Agree calls would desynchronize the
// per-comm agreement sequence across members that abandoned the step
// at different points). After the repair the survivors take ONE
// policy decision (src/policy) among
//
//   re-route   surviving DP peers adopt the broken replica's
//              microbatches (ReCycle bubble filling): only the
//              sub-communicators whose membership changed are rebuilt,
//              the other grid dimensions keep streaming
//   shrink     reform the whole grid over the survivors (dp' =
//              survivors / (pp*tp)) and re-shard — every sub-comm is
//              rebuilt and the full re-shard broadcast is paid
//   restore    reform + roll every member back to the last checkpoint
//
// then the aborted step replays. The exactly-once invariant (oracle
// P10): across commits, every (stage, microbatch) of every committed
// step was executed by exactly the owner replica the agreed grid
// mapping names — no microbatch is lost or double-applied.
//
// 1F1B schedule: a deterministic round-based list schedule computed
// identically on every member from the agreed grid (see
// BuildSchedule): an op becomes ready only when its dependency
// completed in a strictly earlier round, each functional stage replica
// runs at most one op per round and prefers ready backwards (lowest
// microbatch first). Deadlock-free by induction on rounds: round 1
// always schedules stage-0 forwards, and sends are eager.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/grid.h"
#include "core/resilient.h"
#include "dnn/zoo.h"
#include "policy/policy.h"

namespace rcc::core {

struct PipelineOptions {
  // dims.dp <= 0 derives dp from the world size at founding
  // (world / (pp * tp), minimum 1); leftovers become spares.
  GridDims dims;
  int microbatches = 8;       // M per step (global batch = M * mb size)
  int microbatch_size = 16;   // samples per microbatch
  int steps = 16;             // committed steps to run
  int checkpoint_interval = 4;  // boundary snapshot cadence (steps)
  dnn::ModelSpec spec = dnn::ResNet50V2Spec();
  // kLegacy is promoted to kAdaptive (the pipeline trainer has no
  // pre-policy path); static modes force one recovery arm (bench).
  policy::Mode policy_mode = policy::Mode::kAdaptive;
};

// One committed step as every member ledgers it: the agreed grid
// mapping and the owner replica of every (stage, microbatch). The
// byte-stable rendering of the commit log is the P10 cross-rank
// equality witness.
struct StepCommit {
  int64_t gstep = 0;
  int32_t generation = 0;       // repairs applied before this commit
  std::vector<int> slot_pids;   // dp*pp*tp, -1 vacant
  std::vector<int> owner;       // [p * M + m] -> owner replica d
};

// One microbatch this rank itself executed (recorded at backward
// completion, promoted into the ledger only when the step commits).
struct ExecRecord {
  int64_t gstep = 0;
  int32_t stage = 0;
  int32_t mb = 0;
};

std::string FormatCommitLog(const std::vector<StepCommit>& log);
std::string FormatExecLog(const std::vector<ExecRecord>& log);

struct PipelineReport {
  bool aborted = false;   // this worker died
  int steps_run = 0;      // commit events observed (recommits included)
  int rollback_steps = 0; // committed steps re-run due to restores
  int repairs = 0;
  int reroutes = 0;       // re-route decisions actuated
  int reforms = 0;        // shrink decisions actuated
  int restores = 0;       // restore decisions actuated
  int final_world = 0;
  // Microbatches this rank ran for a broken home replica (ReCycle).
  int64_t adopted_microbatches = 0;
  std::vector<policy::Decision> decisions;
  std::vector<StepCommit> commits;  // identical bytes on every finisher
  std::vector<ExecRecord> execs;    // this rank's committed executions
  // Virtual time of each commit as THIS rank observed it (same order as
  // `commits`). Rank-local — clocks diverge slightly across members —
  // so it is deliberately not part of the P10 byte ledger; the recovery
  // bench uses it to locate commits inside the failure window.
  std::vector<double> commit_times;
};

class PipelineTrainer {
 public:
  PipelineTrainer(ResilientComm* rc, PipelineOptions opts);
  PipelineReport Run();

  // One scheduled op of the 1F1B plan (exposed for the schedule tests).
  struct Op {
    bool bwd = false;
    int m = 0;  // microbatch
    int p = 0;  // stage
  };
  // The deterministic per-replica schedule: ops[(d,p)] in execution
  // order, derived purely from the grid's owner mapping.
  static std::vector<std::vector<Op>> BuildSchedule(
      const ProcessGroupGrid& grid, int microbatches);

 private:
  Status RunStepOps(int64_t gstep, int attempt);
  Status ColumnAllreduce();
  // Rebuilds / rewatches the TP and DP sub-communicators after a grid
  // change. `reshard` charges the full shard broadcast on every column
  // (grid reform); otherwise only columns that adopted a new member pay
  // the adoption broadcast.
  Status BuildSubComms(bool reshard);
  // One adaptation round after the commit agreement failed (or after
  // the agreement's internal repair shrank the world): grid trial +
  // policy decision + actuation. Never repairs the ResilientComm
  // itself — the commit allgather is the single repair entry point, so
  // the per-comm agreement sequence stays aligned on every member.
  // False when this rank must abort.
  bool Adapt(int64_t* gstep);
  void Commit(int64_t gstep);
  policy::PolicyInputs ComposeInputs(const ProcessGroupGrid& trial,
                                     int lost, int64_t gstep) const;
  // True when every column that gained a member still holds a survivor
  // of its previous membership (someone to source the shard state
  // from); re-route is inapplicable otherwise.
  bool StateCoverage(const ProcessGroupGrid& trial) const;
  int RankOfPid(int pid) const;
  double StageFwdSeconds() const;

  ResilientComm* rc_;
  PipelineOptions opts_;
  policy::Mode mode_;
  ProcessGroupGrid grid_;
  int gen_ = 0;        // increments at every repair (SPMD)
  int seq_ = 0;        // policy decision ordinal
  int64_t ckpt_ = -1;  // last checkpointed gstep (-1: founding state)
  int world_ = 0;      // membership at the previous agreement
  int adopt_root_ = -1;  // adoptee-side bcast root (see BuildSubComms)
  // False while this rank's sub-communicators are unusable after a
  // mid-rebuild death; the rank votes "fail" at the next commit
  // agreement instead of entering the step, and the agreement's
  // internal repair converges the world.
  bool subcomms_ok_ = true;
  double step_start_ = 0.0;  // attempt start (bubble metric base)
  double step_busy_ = 0.0;   // attempt compute seconds
  PipelineReport report_;
  std::vector<ExecRecord> pending_;  // this attempt's executions

  // Sub-communicators of this rank's current slot (null for spares and
  // for trivial groups), plus the memberships they were built over.
  std::unique_ptr<nccl::Comm> tp_comm_;
  std::vector<int> tp_pids_;
  std::unique_ptr<nccl::Comm> dp_comm_;
  std::vector<int> dp_pids_;
  // Every member's sub-comm health at the last adaptation, allgathered
  // through the resilient comm (bit0: tp broken, bit1: dp broken).
  // Whether a group rebuilds must be agreed — `broken()` alone is
  // rank-local (only members still inside an interrupted op see it),
  // and a half-rebuilt group deadlocks in the init barrier.
  std::vector<int> peer_flag_pids_;
  std::vector<uint64_t> peer_flags_;
};

}  // namespace rcc::core
