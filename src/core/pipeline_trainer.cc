#include "core/pipeline_trainer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>

#include "common/log.h"
#include "obs/metrics.h"

namespace rcc::core {
namespace {

// Checkpoint shards load at host-memory-read rates at restore time
// (costmodel Eq.1's loading term); the recompute term is paid naturally
// by re-running the rolled-back steps.
constexpr double kRestoreLoadBytesPerSecond = 1e9;

// The p2p activation/gradient descriptor: the microbatch id rides as an
// 8-byte token (the modeled wire size comes from set_cost_scale).
constexpr size_t kTokenBytes = sizeof(int64_t);

// Reduced physical stand-in for the declared-size TP/DP collectives.
constexpr size_t kProxyFloats = 16;
constexpr double kProxyBytes = kProxyFloats * sizeof(float);

// User-tag encoding for the stage-to-stage p2p messages. The host
// communicator is replaced (fresh ctx) at every repair, so stale
// messages of an abandoned attempt never alias; the attempt field
// disambiguates restore replays of the same gstep on the same comm.
int P2pTag(int64_t gstep, int attempt, bool bwd, int m, int p) {
  return static_cast<int>(
      ((((gstep % 512) * 4 + attempt % 4) * 2 + (bwd ? 1 : 0)) * 64 + m) * 64 +
      p);
}

}  // namespace

std::string FormatCommitLog(const std::vector<StepCommit>& log) {
  std::string out;
  char buf[64];
  for (const auto& c : log) {
    std::snprintf(buf, sizeof(buf), "g%lld gen%d slots",
                  static_cast<long long>(c.gstep), c.generation);
    out += buf;
    for (int pid : c.slot_pids) {
      std::snprintf(buf, sizeof(buf), " %d", pid);
      out += buf;
    }
    out += " owner";
    for (int d : c.owner) {
      std::snprintf(buf, sizeof(buf), " %d", d);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string FormatExecLog(const std::vector<ExecRecord>& log) {
  std::string out;
  char buf[64];
  for (const auto& e : log) {
    std::snprintf(buf, sizeof(buf), "g%lld p%d m%d\n",
                  static_cast<long long>(e.gstep), e.stage, e.mb);
    out += buf;
  }
  return out;
}

PipelineTrainer::PipelineTrainer(ResilientComm* rc, PipelineOptions opts)
    : rc_(rc), opts_(opts) {
  mode_ = opts_.policy_mode == policy::Mode::kLegacy ? policy::Mode::kAdaptive
                                                     : opts_.policy_mode;
  if (opts_.dims.pp < 1) opts_.dims.pp = 1;
  if (opts_.dims.tp < 1) opts_.dims.tp = 1;
  if (opts_.dims.dp < 1) {
    opts_.dims.dp =
        std::max(1, rc_->size() / (opts_.dims.pp * opts_.dims.tp));
  }
  RCC_CHECK(opts_.microbatches >= 1 && opts_.microbatches <= 64);
  RCC_CHECK(opts_.dims.pp <= 64);
}

int PipelineTrainer::RankOfPid(int pid) const {
  const auto& pids = rc_->pids();
  for (size_t i = 0; i < pids.size(); ++i) {
    if (pids[i] == pid) return static_cast<int>(i);
  }
  return -1;
}

double PipelineTrainer::StageFwdSeconds() const {
  return dnn::StageForwardFlops(opts_.spec, opts_.dims.pp, opts_.dims.tp,
                                opts_.microbatch_size) /
         rc_->endpoint().fabric().config().net.gpu_flops;
}

std::vector<std::vector<PipelineTrainer::Op>> PipelineTrainer::BuildSchedule(
    const ProcessGroupGrid& grid, int microbatches) {
  const int P = grid.dims().pp;
  const int D = grid.dims().dp;
  const int M = microbatches;
  std::vector<std::vector<Op>> out(static_cast<size_t>(D) * P);
  // Completion round of each op, -1 while unscheduled.
  std::vector<int> fwd_round(static_cast<size_t>(P) * M, -1);
  std::vector<int> bwd_round(static_cast<size_t>(P) * M, -1);
  auto idx = [P](int p, int m) { return static_cast<size_t>(m) * P + p; };
  int remaining = 0;
  for (int p = 0; p < P; ++p) {
    for (int m = 0; m < M; ++m) {
      if (grid.OwnerReplica(p, m) >= 0) remaining += 2;
    }
  }
  const int max_rounds = 4 * P * M + 8;
  for (int r = 1; remaining > 0 && r <= max_rounds; ++r) {
    for (int d = 0; d < D; ++d) {
      for (int p = 0; p < P; ++p) {
        if (!grid.Functional(d, p)) continue;
        // Prefer a ready backward (1F1B drains memory eagerly), lowest
        // microbatch first; else a ready forward.
        int pick = -1;
        bool pick_bwd = false;
        for (int m = 0; m < M && pick < 0; ++m) {
          if (grid.OwnerReplica(p, m) != d) continue;
          if (bwd_round[idx(p, m)] != -1) continue;
          const int dep = p == P - 1 ? fwd_round[idx(p, m)]
                                     : bwd_round[idx(p + 1, m)];
          if (dep != -1 && dep < r) {
            pick = m;
            pick_bwd = true;
          }
        }
        for (int m = 0; m < M && pick < 0; ++m) {
          if (grid.OwnerReplica(p, m) != d) continue;
          if (fwd_round[idx(p, m)] != -1) continue;
          const int dep = p == 0 ? 0 : fwd_round[idx(p - 1, m)];
          if (p == 0 || (dep != -1 && dep < r)) pick = m;
        }
        if (pick < 0) continue;
        (pick_bwd ? bwd_round : fwd_round)[idx(p, pick)] = r;
        out[static_cast<size_t>(d) * P + p].push_back(Op{pick_bwd, pick, p});
        --remaining;
      }
    }
  }
  RCC_CHECK(remaining == 0) << "1F1B schedule did not converge";
  return out;
}

bool PipelineTrainer::StateCoverage(const ProcessGroupGrid& trial) const {
  const std::vector<int>& alive = rc_->pids();
  const std::set<int> alive_set(alive.begin(), alive.end());
  for (int p = 0; p < opts_.dims.pp; ++p) {
    for (int t = 0; t < opts_.dims.tp; ++t) {
      std::set<int> old_members;
      bool old_survivor = false;
      for (int d = 0; d < opts_.dims.dp; ++d) {
        const int pid = grid_.PidAt(d, p, t);
        if (pid < 0) continue;
        old_members.insert(pid);
        if (alive_set.count(pid)) old_survivor = true;
      }
      for (int d = 0; d < opts_.dims.dp; ++d) {
        const int pid = trial.PidAt(d, p, t);
        if (pid >= 0 && old_members.count(pid) == 0 && !old_survivor) {
          return false;  // a newcomer with nobody to source the shard from
        }
      }
    }
  }
  return true;
}

policy::PolicyInputs PipelineTrainer::ComposeInputs(
    const ProcessGroupGrid& trial, int lost, int64_t gstep) const {
  // Every field must be a pure function of SPMD-agreed state (virtual
  // clocks diverge across ranks mid-failure, so `now` stays 0 and the
  // step estimate is the cost model, not a measurement).
  policy::PolicyInputs in;
  in.event = static_cast<int32_t>(policy::EventKind::kFailure);
  in.seq = seq_;
  in.world = rc_->size();
  in.lost = lost;
  in.replacements = 0;
  in.slots_used = 0;
  in.flags = policy::kFlagRestoreOk;
  if (trial.Routable() && StateCoverage(trial)) {
    in.flags |= policy::kFlagReroutable;
  }
  in.replica_ranks = opts_.dims.pp * opts_.dims.tp;
  in.gstep = gstep;
  in.remaining_steps = opts_.steps - gstep;
  in.rollback_steps = std::max<int64_t>(0, gstep - 1 - ckpt_);
  in.now = 0.0;
  in.step_seconds =
      3.0 * StageFwdSeconds() * (opts_.microbatches + opts_.dims.pp - 1);
  in.mtbf_seconds = 0.0;
  in.failures_observed = rc_->repairs();
  in.snapshot_bytes = opts_.spec.size_mb * 1e6;
  in.staging_seconds = 0.0;
  in.rebuild_seconds = nccl::Comm::InitCost(
      rc_->endpoint().fabric().config(), rc_->size());
  in.grace_seconds = 0.0;
  return in;
}

Status PipelineTrainer::BuildSubComms(bool reshard) {
  const std::vector<int> world = rc_->pids();
  sim::Endpoint& ep = rc_->endpoint();
  const GridCoord c = grid_.CoordOf(ep.pid());
  const dnn::ModelSpec& spec = opts_.spec;
  const double act_bytes = dnn::StageActivationBytes(spec, opts_.dims.tp,
                                                     opts_.microbatch_size);
  const double shard_bytes =
      dnn::StageParamBytes(spec, opts_.dims.pp, opts_.dims.tp);

  std::vector<int> new_tp;
  std::vector<int> new_dp;
  if (c.d >= 0) {
    if (opts_.dims.tp > 1 && grid_.Functional(c.d, c.p)) {
      new_tp = grid_.TpGroupPids(c.d, c.p);
    }
    new_dp = grid_.DpGroupPids(c.p, c.t);
    if (new_dp.size() < 2) new_dp.clear();
  }

  // True when any member of `group` reported the sub-comm selected by
  // `bit` broken at the last health agreement — the SPMD stand-in for
  // this rank's own (rank-local) broken flag.
  auto disturbed = [this](const std::vector<int>& group, uint64_t bit) {
    for (int pid : group) {
      for (size_t i = 0; i < peer_flag_pids_.size(); ++i) {
        if (peer_flag_pids_[i] != pid) continue;
        if (i < peer_flags_.size() && (peer_flags_[i] & bit) != 0) {
          return true;
        }
        break;
      }
    }
    return false;
  };

  // TP shards of my stage replica. Every sub-communicator watches the
  // whole WORLD, not just its own members: a failure in another grid
  // group makes a peer abandon the step before entering this group's
  // collective, and only the wider watch unblocks the members already
  // inside it (see nccl::Comm::set_death_watch).
  if (new_tp != tp_pids_ || reshard || disturbed(new_tp, 1)) {
    tp_comm_.reset();
    tp_pids_ = new_tp;
    if (!new_tp.empty()) {
      char id[64];
      std::snprintf(id, sizeof(id), "pp/tp/d%d/p%d/g%d", c.d, c.p, gen_);
      tp_comm_ = nccl::Comm::InitRank(ep, new_tp, id,
                                      act_bytes / kProxyBytes, 1.0, &world);
      if (tp_comm_ == nullptr) {
        if (!ep.alive()) return Status(Code::kAborted, "killed in tp init");
        return Status::ProcFailed({}, "tp subcomm init failed");
      }
    }
  } else if (tp_comm_) {
    tp_comm_->set_death_watch(world);
  }

  // DP column (p, t) across the pipeline replicas.
  if (new_dp != dp_pids_ || reshard || disturbed(new_dp, 2)) {
    dp_comm_.reset();
    dp_pids_ = new_dp;
    if (!new_dp.empty()) {
      char id[64];
      std::snprintf(id, sizeof(id), "pp/dp/p%d/t%d/g%d", c.p, c.t, gen_);
      dp_comm_ = nccl::Comm::InitRank(ep, new_dp, id,
                                      shard_bytes / kProxyBytes, 1.0, &world);
      if (dp_comm_ == nullptr) {
        if (!ep.alive()) return Status(Code::kAborted, "killed in dp init");
        return Status::ProcFailed({}, "dp subcomm init failed");
      }
    }
  } else if (dp_comm_) {
    dp_comm_->set_death_watch(world);
  }

  // Shard-state movement. Reform (shrink/restore) re-broadcasts every
  // column's shard from rank 0; a re-route broadcasts only into columns
  // that adopted a newcomer, from the lowest surviving member of the
  // column's PREVIOUS membership. The re-route root is derived in
  // Recover() from the pre-failure grid snapshot (adopt_root_), so
  // survivors and adoptees — who cannot see each other's old comms —
  // agree on it by construction. The priced proxy buffer models the
  // full shard through the comm's cost scale.
  if (dp_comm_ != nullptr) {
    const int root = reshard ? 0 : adopt_root_;
    if (root >= 0) {
      float buf[kProxyFloats] = {0};
      Status s = dp_comm_->Broadcast(buf, kProxyFloats, root);
      if (!s.ok()) return s;
    }
  }
  adopt_root_ = -1;
  return Status::Ok();
}

Status PipelineTrainer::RunStepOps(int64_t gstep, int attempt) {
  sim::Endpoint& ep = rc_->endpoint();
  const GridCoord c = grid_.CoordOf(ep.pid());
  if (c.d < 0) return Status::Ok();                    // spare: idle
  if (!grid_.Functional(c.d, c.p)) return Status::Ok();  // broken replica
  const int P = opts_.dims.pp;
  const double act_bytes = dnn::StageActivationBytes(
      opts_.spec, opts_.dims.tp, opts_.microbatch_size);
  const double fwd_flops = dnn::StageForwardFlops(
      opts_.spec, P, opts_.dims.tp, opts_.microbatch_size);
  const auto sched = BuildSchedule(grid_, opts_.microbatches);
  const auto& ops = sched[static_cast<size_t>(c.d) * P + c.p];
  step_start_ = ep.now();
  step_busy_ = 0.0;
  mpi::Comm& host = rc_->host();

  auto send_token = [&](int dst_pid, int tag, int64_t token) -> Status {
    const int dst_rank = RankOfPid(dst_pid);
    if (dst_rank < 0) return Status::ProcFailed({}, "peer left the world");
    host.set_cost_scale(act_bytes / kTokenBytes);
    Status s = host.Send(dst_rank, tag, &token, kTokenBytes);
    host.set_cost_scale(1.0);
    return s;
  };
  auto recv_token = [&](int src_pid, int tag, int64_t want) -> Status {
    const int src_rank = RankOfPid(src_pid);
    if (src_rank < 0) return Status::ProcFailed({}, "peer left the world");
    int64_t token = -1;
    RCC_RETURN_IF_ERROR(host.RecvWatched(src_rank, tag, &token, kTokenBytes));
    if (token != want) {
      return Status(Code::kInternal, "pipeline token mismatch");
    }
    return Status::Ok();
  };
  auto tp_allreduce = [&]() -> Status {
    if (!tp_comm_) return Status::Ok();
    float in[kProxyFloats] = {0};
    float out[kProxyFloats];
    return tp_comm_->Allreduce(in, out, kProxyFloats);
  };

  for (const Op& op : ops) {
    if (!op.bwd) {
      if (op.p > 0) {
        const int src =
            grid_.PidAt(grid_.OwnerReplica(op.p - 1, op.m), op.p - 1, c.t);
        RCC_RETURN_IF_ERROR(recv_token(
            src, P2pTag(gstep, attempt, false, op.m, op.p), op.m));
      }
      ep.Compute(fwd_flops);
      if (!ep.alive()) return Status(Code::kAborted, "killed in forward");
      step_busy_ += fwd_flops / ep.fabric().config().net.gpu_flops;
      RCC_RETURN_IF_ERROR(tp_allreduce());
      if (op.p < P - 1) {
        const int dst =
            grid_.PidAt(grid_.OwnerReplica(op.p + 1, op.m), op.p + 1, c.t);
        RCC_RETURN_IF_ERROR(send_token(
            dst, P2pTag(gstep, attempt, false, op.m, op.p + 1), op.m));
      }
    } else {
      if (op.p < P - 1) {
        const int src =
            grid_.PidAt(grid_.OwnerReplica(op.p + 1, op.m), op.p + 1, c.t);
        RCC_RETURN_IF_ERROR(recv_token(
            src, P2pTag(gstep, attempt, true, op.m, op.p), op.m));
      }
      ep.Compute(2.0 * fwd_flops);
      if (!ep.alive()) return Status(Code::kAborted, "killed in backward");
      step_busy_ += 2.0 * fwd_flops / ep.fabric().config().net.gpu_flops;
      RCC_RETURN_IF_ERROR(tp_allreduce());
      if (op.p > 0) {
        const int dst =
            grid_.PidAt(grid_.OwnerReplica(op.p - 1, op.m), op.p - 1, c.t);
        RCC_RETURN_IF_ERROR(send_token(
            dst, P2pTag(gstep, attempt, true, op.m, op.p - 1), op.m));
      }
      pending_.push_back(ExecRecord{gstep, op.p, op.m});
    }
  }
  return Status::Ok();
}

Status PipelineTrainer::ColumnAllreduce() {
  if (!dp_comm_) return Status::Ok();
  float in[kProxyFloats] = {0};
  float out[kProxyFloats];
  return dp_comm_->Allreduce(in, out, kProxyFloats);
}

void PipelineTrainer::Commit(int64_t gstep) {
  StepCommit sc;
  sc.gstep = gstep;
  sc.generation = gen_;
  sc.slot_pids = grid_.slot_pids();
  sc.owner.reserve(static_cast<size_t>(opts_.dims.pp) * opts_.microbatches);
  for (int p = 0; p < opts_.dims.pp; ++p) {
    for (int m = 0; m < opts_.microbatches; ++m) {
      sc.owner.push_back(grid_.OwnerReplica(p, m));
    }
  }
  report_.commits.push_back(std::move(sc));
  report_.commit_times.push_back(rc_->endpoint().now());
  ++report_.steps_run;

  auto& reg = obs::Registry::Global();
  const GridCoord c = grid_.CoordOf(rc_->endpoint().pid());
  int64_t adopted = 0;
  for (const auto& e : pending_) {
    if (c.d >= 0 && e.mb % opts_.dims.dp != c.d) ++adopted;
    report_.execs.push_back(e);
  }
  report_.adopted_microbatches += adopted;
  if (!pending_.empty()) {
    reg.GetCounter("rcc_pp_microbatches_total", {})
        ->Add(static_cast<double>(pending_.size()));
    if (adopted > 0) {
      reg.GetCounter("rcc_pp_adopted_microbatches_total", {})
          ->Add(static_cast<double>(adopted));
    }
  }
  pending_.clear();
  if (c.d >= 0 && grid_.Functional(c.d, c.p)) {
    const double span = rc_->endpoint().now() - step_start_;
    const obs::Labels stage{{"stage", std::to_string(c.p)}};
    reg.GetCounter("rcc_pp_stage_busy_seconds_total", stage)->Add(step_busy_);
    reg.GetCounter("rcc_pp_stage_bubble_seconds_total", stage)
        ->Add(std::max(0.0, span - step_busy_));
    reg.GetHistogram("rcc_pp_step_seconds", {})->Observe(span);
  }
  if ((gstep + 1) % opts_.checkpoint_interval == 0) ckpt_ = gstep;
}

bool PipelineTrainer::Adapt(int64_t* gstep) {
  pending_.clear();
  // Agree on sub-comm health before deciding what to rebuild: a world
  // death wedges an in-flight collective only at the members still
  // inside it, so `broken()` is rank-local and using it directly would
  // rebuild a group on some members but not others (a permanent init-
  // barrier deadlock). The allgather also absorbs any further deaths
  // since the commit agreement.
  // A group counts as unhealthy here when its comm is broken OR when
  // this rank recorded the membership but holds no comm at all (its
  // init failed or was never reached) — peers that DID build the group
  // would otherwise skip the rebuild and strand this rank.
  uint64_t health = 0;
  if (!tp_pids_.empty() && (tp_comm_ == nullptr || tp_comm_->broken())) {
    health |= 1;
  }
  if (!dp_pids_.empty() && (dp_comm_ == nullptr || dp_comm_->broken())) {
    health |= 2;
  }
  std::vector<uint64_t> words;
  if (!rc_->AllgatherU64(health, &words).ok()) {
    report_.aborted = true;
    return false;
  }
  peer_flag_pids_ = rc_->pids();
  peer_flags_ = words;
  ++gen_;
  report_.repairs = rc_->repairs();
  const int lost = std::max(0, world_ - rc_->size());
  world_ = rc_->size();

  ProcessGroupGrid trial = grid_;
  trial.Update(rc_->pids());
  const policy::PolicyInputs in = ComposeInputs(trial, lost, *gstep);
  ++seq_;
  policy::Decision d = policy::Decide(mode_, in);
  report_.decisions.push_back(d);
  if (rc_->recorder() != nullptr) {
    const double now = rc_->endpoint().now();
    rc_->recorder()->Record(
        rc_->endpoint().pid(),
        "policy/pipeline_" + std::string(policy::StrategyName(d.chosen)), now,
        now);
  }

  adopt_root_ = -1;

  const int world = rc_->size();
  const int pp = opts_.dims.pp;
  const int tp = opts_.dims.tp;
  auto reform = [&]() -> bool {
    const int dp = world / (pp * tp);
    if (dp < 1) {
      // Fewer survivors than one pipeline replica: the job cannot
      // continue in this layout (the chaos generator's liveness floor
      // prevents this; direct drivers see a clean abort).
      report_.aborted = true;
      return false;
    }
    opts_.dims.dp = dp;
    grid_ = ProcessGroupGrid(GridDims{dp, pp, tp}, rc_->pids());
    return true;
  };

  switch (d.chosen) {
    case policy::Strategy::kReroute: {
      // Surviving slots keep streaming. Every member of a column that
      // adopted a newcomer must agree on the shard broadcast and its
      // root before grid_ is overwritten: derive both from the
      // pre-failure snapshot (grid_) + the trial mapping + the agreed
      // survivor list — identical inputs on every column member.
      const GridCoord me = trial.CoordOf(rc_->endpoint().pid());
      if (me.d >= 0) {
        const std::set<int> alive(rc_->pids().begin(), rc_->pids().end());
        std::set<int> old_members;
        int root_pid = -1;
        for (int dd = 0; dd < opts_.dims.dp; ++dd) {
          const int pid = grid_.PidAt(dd, me.p, me.t);
          if (pid < 0) continue;
          old_members.insert(pid);
          if (alive.count(pid) && (root_pid < 0 || pid < root_pid)) {
            root_pid = pid;
          }
        }
        const std::vector<int> col = trial.DpGroupPids(me.p, me.t);
        bool newcomer = false;
        for (int pid : col) {
          if (old_members.count(pid) == 0) newcomer = true;
        }
        if (newcomer && root_pid >= 0 && col.size() >= 2) {
          for (size_t i = 0; i < col.size(); ++i) {
            if (col[i] == root_pid) adopt_root_ = static_cast<int>(i);
          }
        }
      }
      grid_ = trial;
      ++report_.reroutes;
      obs::Registry::Global().GetCounter("rcc_pp_reroutes_total", {})
          ->Increment();
      break;
    }
    case policy::Strategy::kRestore: {
      if (!reform()) return false;
      const int64_t rollback = std::max<int64_t>(0, *gstep - 1 - ckpt_);
      report_.rollback_steps += static_cast<int>(rollback);
      while (!report_.commits.empty() &&
             report_.commits.back().gstep > ckpt_) {
        report_.commits.pop_back();
      }
      report_.execs.erase(
          std::remove_if(report_.execs.begin(), report_.execs.end(),
                         [this](const ExecRecord& e) {
                           return e.gstep > ckpt_;
                         }),
          report_.execs.end());
      *gstep = ckpt_ + 1;
      if (grid_.HasSlot(rc_->endpoint().pid())) {
        rc_->endpoint().Busy(dnn::StageParamBytes(opts_.spec, pp, tp) /
                             kRestoreLoadBytesPerSecond);
      }
      ++report_.restores;
      break;
    }
    case policy::Strategy::kShrink:
    default: {
      if (!reform()) return false;
      ++report_.reforms;
      break;
    }
  }

  Status bs = BuildSubComms(d.chosen != policy::Strategy::kReroute);
  if (!bs.ok()) {
    if (bs.code() == Code::kAborted) {
      report_.aborted = true;
      return false;
    }
    // A rebuild can only fail through a (further) death. Do NOT repair
    // here: mark the sub-comms unusable and fall through to the next
    // commit agreement, whose internal repair is the single recovery
    // entry point every member reaches (peers blocked in watched p2p
    // are woken by the death watch / revocation).
    subcomms_ok_ = false;
    return true;
  }
  subcomms_ok_ = true;
  return true;
}

PipelineReport PipelineTrainer::Run() {
  world_ = rc_->size();
  grid_ = ProcessGroupGrid(opts_.dims, rc_->pids());
  int64_t gstep = 0;
  int attempt = 0;
  Status s = BuildSubComms(/*reshard=*/false);
  if (!s.ok()) {
    if (s.code() == Code::kAborted) {
      report_.aborted = true;
      report_.final_world = rc_->size();
      return report_;
    }
    // A founding-time death: vote "fail" at the first commit agreement
    // and let its internal repair converge the world.
    subcomms_ok_ = false;
  }
  constexpr uint64_t kWordOk = std::numeric_limits<uint64_t>::max();
  while (gstep < opts_.steps) {
    pending_.clear();
    Status step = subcomms_ok_
                      ? RunStepOps(gstep, attempt)
                      : Status::ProcFailed({}, "subcomm rebuild failed");
    if (step.ok() && subcomms_ok_) step = ColumnAllreduce();
    if (step.code() == Code::kAborted) {
      report_.aborted = true;
      break;
    }
    // Commit agreement: everyone (spares included) contributes a word
    // through the RESILIENT allgather — its internal repair is the
    // only place the world ever shrinks, so every member consumes the
    // identical op/agreement sequence on the host comm regardless of
    // where its step attempt failed. The word is kWordOk on success,
    // else the first known dead pid (kWordOk - 1 when none is known).
    uint64_t word = kWordOk;
    if (!step.ok()) {
      word = step.failed_pids().empty()
                 ? kWordOk - 1
                 : static_cast<uint64_t>(step.failed_pids().front());
    }
    const int repairs_before = rc_->repairs();
    std::vector<uint64_t> words;
    Status ag = rc_->AllgatherU64(word, &words);
    if (!ag.ok()) {
      report_.aborted = true;
      break;
    }
    // `repaired` is SPMD-agreed: Repair is collective, so the counter
    // advances identically on every survivor between two agreements.
    const bool repaired = rc_->repairs() != repairs_before;
    bool all_ok = !repaired;
    for (uint64_t w : words) {
      if (w != kWordOk) all_ok = false;
    }
    if (all_ok) {
      Commit(gstep);
      ++gstep;
      attempt = 0;
      continue;
    }
    // Failed step (or a membership change mid-step, conservatively
    // treated as one: pending_ executions were not promoted, so the
    // re-run keeps the ledger exactly-once). Adapt and retry.
    ++attempt;
    if (!Adapt(&gstep)) break;
  }
  report_.final_world = rc_->size();
  report_.repairs = rc_->repairs();
  return report_;
}

}  // namespace rcc::core
