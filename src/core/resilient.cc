#include "core/resilient.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "coll/algorithms.h"
#include "common/env.h"
#include "common/log.h"
#include "common/serial.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rcc::core {

namespace {
std::string NcclId(const mpi::Comm& comm) {
  return "ulfm-ctx-" + std::to_string(comm.context_id());
}

// Agreement contribution of a rank that needs no replay: MIN-neutral.
constexpr int64_t kNoIncompleteOp = std::numeric_limits<int64_t>::max();
}  // namespace

std::function<bool(int, int64_t)> ResilientComm::test_replay_skip_;

void ResilientComm::TestOnlySetReplaySkip(
    std::function<bool(int pid, int64_t op_id)> fn) {
  test_replay_skip_ = std::move(fn);
}

ResilientComm::ResilientComm(sim::Endpoint& ep, const std::vector<int>& pids,
                             horovod::DropPolicy policy,
                             trace::Recorder* rec)
    : ResilientComm(ep, mpi::Comm::World(ep, pids), policy, rec) {
  // A failed init (a founder dying during the bootstrap barrier) is
  // deferred: the first resilient operation observes it and runs the
  // repair protocol with every survivor in lockstep.
  gpu_init_status_ = InitGpu("init/");
}

ResilientComm::ResilientComm(sim::Endpoint& ep, mpi::Comm comm,
                             horovod::DropPolicy policy, trace::Recorder* rec)
    : ep_(ep),
      comm_(std::make_unique<mpi::Comm>(std::move(comm))),
      policy_(policy),
      rec_(rec),
      flight_(obs::flight::ForRank(ep.pid())) {}

std::unique_ptr<ResilientComm> ResilientComm::JoinExisting(
    sim::Endpoint& ep, const std::string& session, int expected_joiners,
    horovod::DropPolicy policy, trace::Recorder* rec) {
  int64_t agreed_counter = 0;
  Result<mpi::Comm> joined = [&] {
    trace::Scope scope(rec, ep,
                       std::string("recovery/") + horovod::phase::kUlfmExpand);
    return ulfm::ExpandComm(ep, nullptr, session, expected_joiners,
                            /*op_counter=*/0, &agreed_counter);
  }();
  if (!joined.ok()) return nullptr;
  auto rc = std::unique_ptr<ResilientComm>(
      new ResilientComm(ep, joined.take(), policy, rec));
  // Adopt the survivors' op counter so this rank's resilient ops share
  // ids with theirs: the post-repair MIN agreement compares op ids
  // across ranks, and a fresh counter would make a joiner's first op
  // look long-complete to it (it would skip the aligned re-execution
  // and leave the survivors re-running the collective without it).
  rc->op_counter_ = static_cast<uint64_t>(agreed_counter);
  // Defer a failed init (a member dying while the merged communicator
  // bootstraps, e.g. another joiner killed mid-join) exactly like the
  // founding constructor: the first resilient operation observes it and
  // repairs with every survivor in lockstep. Only a self-death aborts
  // the join.
  rc->gpu_init_status_ = rc->InitGpu("recovery/");
  if (rc->gpu_init_status_.code() == Code::kAborted) return nullptr;
  return rc;
}

Status ResilientComm::InitGpu(const char* phase_prefix,
                              double init_cost_scale) {
  obs::Span span(rec_, ep_,
                 std::string(phase_prefix) + horovod::phase::kNcclReinit);
  gpu_ = nccl::Comm::InitRank(ep_, comm_->pids(), NcclId(*comm_),
                              /*cost_scale=*/1.0, init_cost_scale);
  if (gpu_ == nullptr) {
    return Status(Code::kProcFailed, "nccl init failed");
  }
  return Status::Ok();
}

bool ResilientComm::ShouldLeaveNode() const {
  if (policy_ != horovod::DropPolicy::kNode) return false;
  sim::Fabric& fabric = ep_.fabric();
  for (int pid : comm_->pids()) {
    if (!fabric.IsAlive(pid) && fabric.NodeOf(pid) == ep_.node()) {
      return true;
    }
  }
  return false;
}

Status ResilientComm::Repair(const Status& failure) {
  if (!ep_.alive()) return Status(Code::kAborted, "self dead");
  ++repairs_;
  const int64_t repair = repairs_;
  obs::Registry::Global()
      .GetCounter("rcc_recovery_repairs_total")
      ->Increment();
  const bool fly = obs::flight::Enabled();
  const double repair_t0 = ep_.now();
  const std::vector<int> prior_pids = comm_->pids();
  std::vector<int> noted_failed;
  if (fly) {
    flight_->Record(obs::flight::Ev::kRepairBegin, repair_t0, repair);
    for (int pid : failure.failed_pids()) {
      flight_->Record(obs::flight::Ev::kFailureDetected, repair_t0, pid);
      obs::flight::NoteFailureDetected(pid, repair_t0);
      noted_failed.push_back(pid);
    }
  }
  RCC_LOG(kDebug) << "pid " << ep_.pid() << " repair start: "
                  << failure.ToString();
  {
    obs::Span span(rec_, ep_,
                   std::string("recovery/") + horovod::phase::kUlfmRepair);
    {
      // Error-handler path (Section 3.1): revoke to interrupt every rank
      // still blocked in the broken collective, acknowledge the
      // failures, then agree + shrink.
      obs::Span revoke(rec_, ep_, "recovery/revoke");
      comm_->NoteFailedPids(failure.failed_pids());
      ulfm::Revoke(*comm_);
      ulfm::FailureAck(*comm_);
    }
    obs::flight::RecordRecoveryPhase(fly ? flight_ : nullptr,
                                     obs::flight::Phase::kRevoke, ep_.now(),
                                     repair, ep_.now() - repair_t0);
    if (ShouldLeaveNode()) {
      // Node-drop policy: this process's host lost a member, so it
      // leaves the training job immediately; the survivors' shrink
      // excludes it.
      ep_.fabric().Kill(ep_.pid());
      return Status(Code::kAborted, "left with blacklisted node");
    }
    // Shrink until the membership is stable. Node-drop leavers above may
    // die concurrently with the first shrink; the stability check is
    // itself an agreement so every survivor takes the same number of
    // shrink rounds.
    const double shrink_t0 = ep_.now();
    obs::Span shrink_span(rec_, ep_, "recovery/shrink");
    auto shrunk = ulfm::Shrink(*comm_);
    if (!shrunk.ok()) return shrunk.status();
    for (;;) {
      int stable = 1;
      for (int pid : shrunk.value().pids()) {
        if (!ep_.fabric().IsAlive(pid)) stable = 0;
      }
      auto verdict = ulfm::Agree(shrunk.value(), stable);
      if (!verdict.ok()) return verdict.status();
      if (verdict.value().flag == 1 && verdict.value().failed_pids.empty()) {
        break;
      }
      auto again = ulfm::Shrink(shrunk.value());
      if (!again.ok()) return again.status();
      shrunk = std::move(again);
    }
    comm_ = std::make_unique<mpi::Comm>(shrunk.take());
    obs::flight::RecordRecoveryPhase(fly ? flight_ : nullptr,
                                     obs::flight::Phase::kShrink, ep_.now(),
                                     repair, ep_.now() - shrink_t0);
  }
  // Rebuild the GPU communicator, agreeing each round on success: a
  // member dying *during* the rebuild sends every survivor back through
  // another shrink together (op streams stay aligned).
  const double rebuild_t0 = ep_.now();
  for (;;) {
    if (gpu_ != nullptr) gpu_->Abort();
    gpu_init_status_ = InitGpu("recovery/");
    if (gpu_init_status_.code() == Code::kAborted) return gpu_init_status_;
    auto verdict = ulfm::Agree(*comm_, gpu_init_status_.ok() ? 1 : 0);
    if (!verdict.ok()) return verdict.status();
    if (verdict.value().flag == 1 && verdict.value().failed_pids.empty()) {
      break;
    }
    Status again = gpu_init_status_.ok()
                       ? Status::ProcFailed(verdict.value().failed_pids,
                                            "peer failed during gpu rebuild")
                       : gpu_init_status_;
    obs::Span span(rec_, ep_,
                   std::string("recovery/") + horovod::phase::kUlfmRepair);
    comm_->NoteFailedPids(again.failed_pids());
    ulfm::Revoke(*comm_);
    if (ShouldLeaveNode()) {
      ep_.fabric().Kill(ep_.pid());
      return Status(Code::kAborted, "left with blacklisted node");
    }
    auto shrunk = ulfm::Shrink(*comm_);
    if (!shrunk.ok()) return shrunk.status();
    comm_ = std::make_unique<mpi::Comm>(shrunk.take());
  }
  obs::flight::RecordRecoveryPhase(fly ? flight_ : nullptr,
                                   obs::flight::Phase::kRebuild, ep_.now(),
                                   repair, ep_.now() - rebuild_t0);
  if (fly) {
    // The triggering Status often lacks the casualty list (a collective
    // reports a generic peer failure; the pids only become certain after
    // the shrink agreement). Attribute every member that dropped out of
    // the communicator during this repair, stamped at detection time.
    const std::vector<int>& now_pids = comm_->pids();
    for (int pid : prior_pids) {
      if (std::find(now_pids.begin(), now_pids.end(), pid) !=
          now_pids.end()) {
        continue;
      }
      if (std::find(noted_failed.begin(), noted_failed.end(), pid) !=
          noted_failed.end()) {
        continue;
      }
      flight_->Record(obs::flight::Ev::kFailureDetected, repair_t0, pid);
      obs::flight::NoteFailureDetected(pid, repair_t0);
    }
    flight_->Record(obs::flight::Ev::kRepairDone, ep_.now(), repair, 0,
                    ep_.now() - repair_t0);
  }
  RCC_LOG(kDebug) << "pid " << ep_.pid() << " repair done";
  return Status::Ok();
}

Status ResilientComm::RunResilient(const std::function<Status()>& data_fn,
                                   const std::function<Status()>& sync_fn,
                                   bool has_data) {
  const auto op_id = static_cast<int64_t>(++op_counter_);
  const double post_t = ep_.now();
  if (obs::flight::Enabled()) {
    flight_->Record(obs::flight::Ev::kCollPost, post_t, op_id,
                    has_data ? 1 : 0);
  }
  bool data_done = !has_data;
  bool repaired = false;
  // Set when the pending data run is a post-repair re-execution; the
  // successful run is then audited like a windowed replay (P6/P7
  // oracles count blocking and windowed replays uniformly).
  int64_t replay_min = kNoIncompleteOp;
  for (;;) {
    Status st;
    if (!data_done) {
      const double retry_t0 = ep_.now();
      if (repaired) {
        obs::Span span(
            rec_, ep_,
            std::string("recovery/") + horovod::phase::kRetryCollective);
        st = data_fn();
      } else {
        st = data_fn();
      }
      if (st.ok()) {
        data_done = true;
        if (replay_min != kNoIncompleteOp) {
          obs::Registry::Global()
              .GetCounter("rcc_recovery_replayed_ops_total")
              ->Increment();
          if (rec_ != nullptr) {
            rec_->RecordReplay(ep_.pid(), op_id, replay_min);
          }
          const bool fly = obs::flight::Enabled();
          if (fly) {
            flight_->Record(obs::flight::Ev::kCollReplay, ep_.now(), op_id,
                            replay_min);
          }
          obs::flight::RecordRecoveryPhase(
              fly ? flight_ : nullptr, obs::flight::Phase::kReplay, ep_.now(),
              repairs_, ep_.now() - retry_t0);
          if (replay_hook_) replay_hook_(op_id, replay_min);
          replay_min = kNoIncompleteOp;
        }
      }
    }
    if (data_done) {
      st = sync_fn();
      if (st.ok()) {
        if (obs::flight::Enabled()) {
          flight_->Record(obs::flight::Ev::kCollComplete, ep_.now(), op_id,
                          0, ep_.now() - post_t);
        }
        return Status::Ok();
      }
    }
    if (st.code() == Code::kAborted) return st;
    // Post-repair resolution (see header): ONE agreement on the earliest
    // op id whose data any survivor still needs. One round per repair in
    // every resilient path (blocking and windowed) keeps the per-comm
    // agreement sequences paired when mixed protocols recover together.
    bool resolved = false;
    while (!resolved) {
      Status drained = DrainRequests();
      if (drained.code() == Code::kAborted) return drained;
      RCC_RETURN_IF_ERROR(Repair(st));
      repaired = true;
      int64_t contribution = FirstIncompleteWindowOp();
      if (contribution == kNoIncompleteOp && !data_done) contribution = op_id;
      const double agree_t0 = ep_.now();
      auto verdict = [&] {
        obs::Span agree(rec_, ep_, "recovery/agree");
        return ulfm::Agree(*comm_, /*flag=*/1, contribution);
      }();
      if (!verdict.ok()) return verdict.status();
      obs::flight::RecordRecoveryPhase(
          obs::flight::Enabled() ? flight_ : nullptr,
          obs::flight::Phase::kAgree, ep_.now(), repairs_,
          ep_.now() - agree_t0);
      const int64_t min_id = verdict.value().min_value;
      RCC_LOG(kDebug) << "pid " << ep_.pid() << " resolve op " << op_id
                      << " contrib " << contribution << " min " << min_id;
      if (min_id == kNoIncompleteOp || min_id > op_id) {
        // Every survivor holds the data of this op (and of everything
        // before it) and the repair itself synchronized us: complete.
        if (obs::flight::Enabled()) {
          flight_->Record(obs::flight::Ev::kCollComplete, ep_.now(), op_id,
                          0, ep_.now() - post_t);
        }
        return Status::Ok();
      }
      // Forward recovery: re-execute every op >= MIN in program order on
      // the shrunk communicator - first any windowed ops still in
      // flight, then this op's data phase (re-executed even where it
      // locally completed, so the collective stays aligned). The inputs
      // are preserved, so the survivors' contributions carry over and
      // the mini-batch continues (the paper's Fig. 2); ranks that
      // already held a result replace it with the survivor-only one,
      // keeping SPMD state consistent.
      Status replay = ReplayWindowFrom(min_id);
      RCC_LOG(kDebug) << "pid " << ep_.pid() << " replayed from " << min_id
                      << ": " << replay.ToString();
      if (replay.ok()) {
        data_done = false;
        if (has_data) replay_min = min_id;
        resolved = true;
      } else if (replay.code() == Code::kAborted) {
        return replay;
      } else {
        st = replay;  // repaired communicator broke again: next round
      }
    }
  }
}

void ResilientComm::SubmitOp(WindowOp* op) {
  // A missing GPU communicator (deferred init failure) is surfaced by
  // WaitOp; the recovery path rebuilds it before replaying.
  if (gpu_ == nullptr) return;
  gpu_->set_cost_scale(op->cost_scale);
  op->req = gpu_->IAllreduce<float>(op->sendbuf, op->recvbuf, op->count);
  gpu_->set_cost_scale(1.0);
}

Status ResilientComm::WaitOp(WindowOp* op) {
  Status st;
  if (op->req.active()) {
    st = op->req.Join();
    ep_.AdvanceTo(op->req.complete_time());
  } else {
    st = gpu_init_status_.ok()
             ? Status(Code::kInternal, "windowed op was never submitted")
             : gpu_init_status_;
  }
  if (st.ok()) {
    op->done = true;
    comm_service_acc_ += op->req.complete_time() - op->req.start_time();
    if (rec_ != nullptr) {
      rec_->RecordOp(ep_.pid(), static_cast<uint64_t>(op->id),
                     op->req.info().algo, op->req.info().bytes,
                     op->req.submit_time(), op->req.complete_time());
      rec_->RecordCounter(ep_.pid(), "in_flight_window", ep_.now(),
                          static_cast<double>(inflight()));
    }
    if (obs::flight::Enabled()) {
      flight_->Record(obs::flight::Ev::kCollComplete, ep_.now(), op->id, 0,
                      op->req.complete_time() - op->req.submit_time());
    }
  }
  return st;
}

Status ResilientComm::DrainRequests() {
  Status first;
  for (auto& op : window_) {
    if (op.done) continue;
    Status st = WaitOp(&op);
    if (st.code() == Code::kAborted) return st;
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

int64_t ResilientComm::FirstIncompleteWindowOp() const {
  for (const auto& op : window_) {
    if (!op.done) return op.id;
  }
  return kNoIncompleteOp;
}

Status ResilientComm::ReplayWindowFrom(int64_t min_id) {
  obs::Counter* replayed =
      obs::Registry::Global().GetCounter("rcc_recovery_replayed_ops_total");
  const bool fly = obs::flight::Enabled();
  const double replay_t0 = ep_.now();
  int64_t depth = 0;
  std::vector<float> scratch;  // planted-fault sink, see below
  for (auto& op : window_) {
    if (op.id < min_id) continue;
    obs::Span span(
        rec_, ep_, std::string("recovery/") + horovod::phase::kRetryCollective);
    if (gpu_ == nullptr) return gpu_init_status_;
    // Planted fault (test-only): participate in the re-execution — the
    // collective needs every member — but drop the result, leaving this
    // rank's recvbuf stale, as a "replayed but never applied" bug would.
    float* dst = op.recvbuf;
    if (test_replay_skip_ && test_replay_skip_(ep_.pid(), op.id)) {
      scratch.assign(op.count, 0.0f);
      dst = scratch.data();
    }
    gpu_->set_cost_scale(op.cost_scale);
    Status st = gpu_->Allreduce<float>(op.sendbuf, dst, op.count);
    gpu_->set_cost_scale(1.0);
    if (!st.ok()) return st;
    if (dst != op.recvbuf) {
      op.done = true;  // planted fault: no audit record, recvbuf stale
      op.req = coll::Request();
      continue;
    }
    replayed->Increment();
    if (rec_ != nullptr) rec_->RecordReplay(ep_.pid(), op.id, min_id);
    if (fly) {
      flight_->Record(obs::flight::Ev::kCollReplay, ep_.now(), op.id, min_id);
    }
    ++depth;
    if (replay_hook_) replay_hook_(op.id, min_id);
    op.done = true;
    op.req = coll::Request();  // the pre-failure request is retired
  }
  obs::flight::RecordRecoveryPhase(fly ? flight_ : nullptr,
                                   obs::flight::Phase::kReplay, ep_.now(),
                                   repairs_, ep_.now() - replay_t0);
  obs::Registry::Global()
      .GetHistogram("rcc_recovery_replay_depth")
      ->Observe(static_cast<double>(depth));
  return Status::Ok();
}

Status ResilientComm::RecoverWindow(Status failure, bool* need_barrier) {
  *need_barrier = true;
  for (;;) {
    Status drained = DrainRequests();
    if (drained.code() == Code::kAborted) return drained;
    RCC_RETURN_IF_ERROR(Repair(failure));
    const double agree_t0 = ep_.now();
    auto verdict = [&] {
      obs::Span agree(rec_, ep_, "recovery/agree");
      return ulfm::Agree(*comm_, /*flag=*/1, FirstIncompleteWindowOp());
    }();
    if (!verdict.ok()) return verdict.status();
    obs::flight::RecordRecoveryPhase(
        obs::flight::Enabled() ? flight_ : nullptr,
        obs::flight::Phase::kAgree, ep_.now(), repairs_,
        ep_.now() - agree_t0);
    const int64_t min_id = verdict.value().min_value;
    const int64_t last_submitted = window_.empty() ? 0 : window_.back().id;
    if (min_id == kNoIncompleteOp || min_id > last_submitted) {
      // No survivor needs anything this rank submitted: the repair
      // synchronized us. The closing barrier must not be re-run (ranks
      // already past it will not participate again).
      *need_barrier = false;
      return Status::Ok();
    }
    Status st = ReplayWindowFrom(min_id);
    if (st.ok()) {
      *need_barrier = true;
      return Status::Ok();
    }
    if (st.code() == Code::kAborted) return st;
    failure = st;
  }
}

Status ResilientComm::GpuBarrier() {
  if (gpu_ == nullptr) return gpu_init_status_;
  gpu_->set_cost_scale(1.0);
  return gpu_->Barrier();
}

int ResilientComm::inflight() const {
  int n = 0;
  for (const auto& op : window_) {
    if (!op.done) ++n;
  }
  return n;
}

Status ResilientComm::IAllreduce(const float* sendbuf, float* recvbuf,
                                 size_t count, double cost_scale) {
  if (!ep_.alive()) return Status(Code::kAborted, "self dead");
  WindowOp op;
  op.id = static_cast<int64_t>(++op_counter_);
  op.sendbuf = sendbuf;
  op.recvbuf = recvbuf;
  op.count = count;
  op.cost_scale = cost_scale;
  window_.push_back(std::move(op));
  if (obs::flight::Enabled()) {
    flight_->Record(obs::flight::Ev::kCollPost, ep_.now(), window_.back().id,
                    static_cast<int64_t>(count),
                    static_cast<double>(count * sizeof(float)) * cost_scale);
  }
  SubmitOp(&window_.back());
  if (rec_ != nullptr) {
    rec_->RecordCounter(ep_.pid(), "in_flight_window", ep_.now(),
                        static_cast<double>(inflight()));
  }
  // Bound the in-flight window on the oldest outstanding op.
  while (inflight() > max_inflight_) {
    WindowOp* oldest = nullptr;
    for (auto& w : window_) {
      if (!w.done) {
        oldest = &w;
        break;
      }
    }
    Status st = WaitOp(oldest);
    if (st.ok()) continue;
    if (st.code() == Code::kAborted) return st;
    bool need_barrier = false;
    RCC_RETURN_IF_ERROR(RecoverWindow(st, &need_barrier));
  }
  return Status::Ok();
}

Status ResilientComm::WaitAll() {
  if (window_.empty()) return Status::Ok();
  for (;;) {
    Status st = DrainRequests();
    if (st.ok()) st = GpuBarrier();
    if (st.ok()) {
      window_.clear();
      return Status::Ok();
    }
    if (st.code() == Code::kAborted) {
      window_.clear();
      return st;
    }
    bool need_barrier = true;
    Status rec = RecoverWindow(st, &need_barrier);
    if (!rec.ok()) {
      window_.clear();
      return rec;
    }
    if (!need_barrier) {
      window_.clear();
      return Status::Ok();
    }
    // Replays completed: re-run the closing barrier with every rank
    // still inside the window.
  }
}

Status ResilientComm::Allreduce(const float* sendbuf, float* recvbuf,
                                size_t count, double cost_scale) {
  return RunResilient(
      [&]() -> Status {
        if (gpu_ == nullptr) return gpu_init_status_;
        gpu_->set_cost_scale(cost_scale);
        return gpu_->Allreduce<float>(sendbuf, recvbuf, count);
      },
      [&]() -> Status {
        if (gpu_ == nullptr) return gpu_init_status_;
        gpu_->set_cost_scale(1.0);
        return gpu_->Barrier();
      },
      /*has_data=*/true);
}

Status ResilientComm::BcastBlob(std::vector<uint8_t>* blob, int root,
                                double cost_scale) {
  return RunResilient(
      [&]() -> Status {
        if (root >= comm_->size()) {
          return Status(Code::kInvalid, "bcast root dropped by repair");
        }
        comm_->set_cost_scale(cost_scale);
        Status st = comm_->BcastBlob(blob, root);
        comm_->set_cost_scale(1.0);
        return st;
      },
      [&] { return comm_->Barrier(); },
      /*has_data=*/true);
}

Status ResilientComm::AllgatherU64(uint64_t mine,
                                   std::vector<uint64_t>* all) {
  return RunResilient(
      [&] {
        all->assign(comm_->size(), 0);
        return comm_->Allgather<uint64_t>(&mine, all->data(), 1);
      },
      [&] { return comm_->Barrier(); },
      /*has_data=*/true);
}

Status ResilientComm::Barrier() {
  return RunResilient([] { return Status::Ok(); },
                      [&] { return comm_->Barrier(); },
                      /*has_data=*/false);
}

double ResilientComm::TakeCommServiceSeconds() {
  double s = comm_service_acc_;
  comm_service_acc_ = 0.0;
  if (gpu_ != nullptr) s += gpu_->TakeServiceSeconds();
  return s;
}

Status ResilientComm::Expand(const std::string& session, int joiner_count) {
  int64_t agreed_counter = 0;
  Result<mpi::Comm> next = [&] {
    trace::Scope scope(rec_, ep_,
                       std::string("recovery/") + horovod::phase::kUlfmExpand);
    return ulfm::ExpandComm(ep_, comm_.get(), session, joiner_count,
                            static_cast<int64_t>(op_counter_),
                            &agreed_counter);
  }();
  if (!next.ok()) return next.status();
  comm_ = std::make_unique<mpi::Comm>(next.take());
  if (gpu_ != nullptr) gpu_->Abort();
  // Defer a failed rebuild (a joiner dying while the expanded GPU
  // communicator bootstraps) like the founding constructor: the next
  // resilient op repairs, shrinking the dead joiner out. Aborting here
  // would take every survivor down with one dead joiner.
  gpu_init_status_ = InitGpu("recovery/");
  if (gpu_init_status_.code() == Code::kAborted) return gpu_init_status_;
  return Status::Ok();
}

// --- asynchronous admission ---

double ExpandDeltaFrac() {
  static const double frac =
      common::EnvDouble("RCC_EXPAND_DELTA_FRAC", 0.05);
  return frac;
}

namespace {
std::string ExpandKvPrefix(const std::string& session) {
  return "expand/" + session + "/";
}

void CountAdmission(const char* outcome) {
  obs::Registry::Global()
      .GetCounter("rcc_admission_total", {{"outcome", outcome}})
      ->Increment();
}
}  // namespace

Status ResilientComm::ExpandAsyncBegin(kv::Store* store,
                                       const std::string& session,
                                       int joiner_count,
                                       const std::vector<uint8_t>& snapshot,
                                       double declared_bytes,
                                       double timeout_s) {
  // A still-pending previous expand is forced to a decision first (one
  // admission window at a time keeps the registry and metrics simple).
  if (expand_op_.active) ExpandPoll(/*finalize=*/true);
  if (!ep_.alive()) return Status(Code::kAborted, "self dead");
  const sim::Seconds t0 = ep_.now();
  {
    obs::Span span(rec_, ep_,
                   std::string("recovery/") + horovod::phase::kExpandBegin);
    if (comm_->rank() == 0) {
      // Publish the versioned snapshot the joiners stage from. The
      // upload is charged at the declared size; joiners pay the
      // symmetric download during staging, off the survivors' clocks.
      ByteWriter meta;
      meta.WriteI32(size());
      meta.WriteI32(joiner_count);
      meta.WriteF64(declared_bytes);
      RCC_RETURN_IF_ERROR(
          store->Set(&ep_, ExpandKvPrefix(session) + "meta", meta.Take()));
      ep_.Busy(declared_bytes / ep_.fabric().config().net.inter_bandwidth);
      if (!ep_.alive()) return Status(Code::kAborted, "self dead");
      RCC_RETURN_IF_ERROR(
          store->Set(&ep_, ExpandKvPrefix(session) + "snapshot", snapshot));
    }
    const sim::Seconds timeout =
        timeout_s < 0 ? ulfm::ExpandTimeout() : timeout_s;
    RCC_RETURN_IF_ERROR(ulfm::ExpandBegin(ep_, *comm_, session, joiner_count,
                                          timeout, &expand_op_));
  }
  if (obs::flight::Enabled()) {
    flight_->Record(obs::flight::Ev::kExpandBegin, ep_.now(), joiner_count);
  }
  expand_store_ = store;
  expand_session_ = session;
  expand_begin_time_ = t0;
  expand_abort_requested_ = false;
  admission_stall_acc_ += ep_.now() - t0;
  return Status::Ok();
}

void ResilientComm::ExpandAbortAsync() {
  if (!expand_op_.active) return;
  expand_abort_requested_ = true;
  ulfm::ExpandAbort(ep_, expand_session_);
}

ResilientComm::PollResult ResilientComm::ExpandPoll(bool finalize) {
  if (!expand_op_.active) return PollResult::kNone;
  if (!ep_.alive()) return PollResult::kAborted;
  const sim::Seconds t0 = ep_.now();
  // One cheap probe per poll: the staged/ listing is what a real
  // implementation would watch, and it prices the polling traffic.
  if (expand_store_ != nullptr) {
    expand_store_->ListPrefix(&ep_, ExpandKvPrefix(expand_session_) + "staged/");
  }
  std::unique_ptr<mpi::Comm> merged;
  ulfm::SpliceOutcome outcome;
  auto decided =
      ulfm::ExpandTest(ep_, *comm_, &expand_op_,
                       static_cast<int64_t>(op_counter_), finalize, &merged,
                       &outcome);
  if (!decided.ok()) {
    // Only a self-death surfaces as an error status.
    admission_stall_acc_ += ep_.now() - t0;
    return PollResult::kAborted;
  }
  if (decided.value() == ulfm::ExpandStatus::kPending) {
    admission_stall_acc_ += ep_.now() - t0;
    return PollResult::kPending;
  }
  // Terminal outcome: record the admission latency from window open to
  // decision, clean the staging keys (rank 0 of the pre-splice
  // membership, which is a survivor either way).
  const bool cleaner = comm_->rank() == 0;
  obs::Registry::Global()
      .GetHistogram("rcc_admission_latency_seconds",
                    {{"outcome", decided.value() == ulfm::ExpandStatus::kSpliced
                                     ? "spliced"
                                     : "aborted"}})
      ->Observe(ep_.now() - expand_begin_time_);
  if (decided.value() == ulfm::ExpandStatus::kAborted) {
    CountAdmission("aborted");
    if (obs::flight::Enabled()) {
      flight_->Record(obs::flight::Ev::kExpandAbort, ep_.now(), 0, 0,
                      ep_.now() - expand_begin_time_);
    }
    RCC_LOG(kDebug) << "pid " << ep_.pid() << " expand '" << expand_session_
                    << "' aborted; continuing degraded";
    if (cleaner && expand_store_ != nullptr) {
      expand_store_->Delete(&ep_, ExpandKvPrefix(expand_session_) + "meta");
      expand_store_->Delete(&ep_, ExpandKvPrefix(expand_session_) + "snapshot");
    }
    admission_stall_acc_ += ep_.now() - t0;
    return PollResult::kAborted;
  }
  // Splice: install the merged communicator and rebuild the GPU comm.
  // When every joiner pre-established its transports during staging the
  // bootstrap is free (scale 0); the synchronizing barrier still runs,
  // so a member dying mid-splice surfaces here and is deferred to the
  // next resilient op exactly like the blocking Expand.
  CountAdmission("spliced");
  {
    obs::Span span(rec_, ep_,
                   std::string("recovery/") + horovod::phase::kExpandSplice);
    const int admitted = merged->size() - comm_->size();
    if (obs::flight::Enabled()) {
      flight_->Record(obs::flight::Ev::kExpandSplice, ep_.now(), admitted, 0,
                      ep_.now() - expand_begin_time_);
    }
    comm_ = std::move(merged);
    if (gpu_ != nullptr) gpu_->Abort();
    op_counter_ = std::max(op_counter_,
                           static_cast<uint64_t>(outcome.agreed_counter));
    gpu_init_status_ = InitGpu("recovery/", outcome.prestaged ? 0.0 : 1.0);
  }
  if (cleaner && expand_store_ != nullptr) {
    expand_store_->Delete(&ep_, ExpandKvPrefix(expand_session_) + "meta");
    expand_store_->Delete(&ep_, ExpandKvPrefix(expand_session_) + "snapshot");
  }
  admission_stall_acc_ += ep_.now() - t0;
  if (gpu_init_status_.code() == Code::kAborted) return PollResult::kAborted;
  return PollResult::kSpliced;
}

double ResilientComm::TakeAdmissionStallSeconds() {
  const double s = admission_stall_acc_;
  admission_stall_acc_ = 0.0;
  return s;
}

std::unique_ptr<ResilientComm> ResilientComm::JoinAsync(
    sim::Endpoint& ep, kv::Store* store, const std::string& session,
    horovod::DropPolicy policy, trace::Recorder* rec,
    const std::function<Status(const std::vector<uint8_t>&)>& restore_fn) {
  obs::flight::Ring* fly = obs::flight::ForRank(ep.pid());
  if (!ulfm::AnnounceJoiner(ep, session).ok()) return nullptr;
  if (obs::flight::Enabled()) {
    fly->Record(obs::flight::Ev::kJoinAnnounce, ep.now());
  }
  int candidate_world = 0;
  {
    obs::Span span(rec, ep,
                   std::string("recovery/") + horovod::phase::kStateStage);
    auto meta = store->WaitEntry(&ep, ExpandKvPrefix(session) + "meta");
    if (!meta.ok()) return nullptr;  // caller died waiting
    ByteReader r(meta.value().value);
    int32_t world = 0;
    int32_t count = 0;
    double declared = 0.0;
    if (!r.ReadI32(&world).ok() || !r.ReadI32(&count).ok() ||
        !r.ReadF64(&declared).ok()) {
      if (ep.alive()) {
        if (obs::flight::Enabled()) {
          fly->Record(obs::flight::Ev::kJoinWithdraw, ep.now());
        }
        ulfm::WithdrawJoiner(ep, session);
      }
      return nullptr;
    }
    candidate_world = world + count;
    auto snap = store->Wait(&ep, ExpandKvPrefix(session) + "snapshot");
    if (!snap.ok()) return nullptr;
    // Download at the declared size, then driver-specific restore
    // (deserialize + materialize onto the device).
    ep.Busy(declared / ep.fabric().config().net.inter_bandwidth);
    if (!ep.alive()) return nullptr;
    Status restored = restore_fn(snap.value());
    if (!restored.ok()) {
      // An alive joiner that cannot restore bows out so the survivors'
      // poll round is not left waiting on it until the deadline.
      if (ep.alive()) {
        if (obs::flight::Enabled()) {
          fly->Record(obs::flight::Ev::kJoinWithdraw, ep.now());
        }
        ulfm::WithdrawJoiner(ep, session);
      }
      return nullptr;
    }
    // Pre-establish the merged GPU transports (hot-standby bring-up):
    // the full bootstrap cost lands here, off the survivors' clocks,
    // making the splice-time init free.
    ep.Busy(nccl::Comm::InitCost(ep.fabric().config(), candidate_world));
    if (!ep.alive()) return nullptr;
    store->Set(&ep, ExpandKvPrefix(session) + "staged/" +
                        std::to_string(ep.pid()),
               {1});
    if (!ulfm::MarkJoinerStaged(ep, session).ok()) return nullptr;
    if (obs::flight::Enabled()) {
      fly->Record(obs::flight::Ev::kJoinStaged, ep.now());
    }
  }
  ulfm::SpliceOutcome outcome;
  auto joined = ulfm::AwaitSplice(ep, session, &outcome);
  if (!joined.ok()) return nullptr;  // died, excluded, or survivors gone
  if (obs::flight::Enabled()) {
    fly->Record(obs::flight::Ev::kJoinSpliced, ep.now(),
                joined.value().size());
  }
  auto rc = std::unique_ptr<ResilientComm>(
      new ResilientComm(ep, joined.take(), policy, rec));
  // Adopt the survivors' op counter (same reason as JoinExisting).
  rc->op_counter_ = static_cast<uint64_t>(outcome.agreed_counter);
  rc->gpu_init_status_ =
      rc->InitGpu("recovery/", outcome.prestaged ? 0.0 : 1.0);
  if (rc->gpu_init_status_.code() == Code::kAborted) return nullptr;
  return rc;
}

}  // namespace rcc::core
