#include "core/grid.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/env.h"
#include "common/log.h"

namespace rcc::core {

ProcessGroupGrid::ProcessGroupGrid(const GridDims& dims,
                                   const std::vector<int>& pids)
    : dims_(dims) {
  RCC_CHECK(dims.dp >= 1 && dims.pp >= 1 && dims.tp >= 1);
  slot_pid_.assign(static_cast<size_t>(dims.slots()), -1);
  Update(pids);
}

void ProcessGroupGrid::Update(const std::vector<int>& alive_pids) {
  std::set<int> alive(alive_pids.begin(), alive_pids.end());
  // Surviving pids keep their slots; dead pids vacate them.
  std::set<int> slotted;
  for (int& pid : slot_pid_) {
    if (pid >= 0 && alive.count(pid) == 0) pid = -1;
    if (pid >= 0) slotted.insert(pid);
  }
  // Vacant slots refill from unslotted alive pids, both in ascending
  // order: the adoption target of a given joiner/spare is a pure
  // function of the agreed membership.
  std::vector<int> pool;
  for (int pid : alive) {
    if (slotted.count(pid) == 0) pool.push_back(pid);
  }
  size_t next = 0;
  for (int& pid : slot_pid_) {
    if (pid == -1 && next < pool.size()) pid = pool[next++];
  }
  spares_.assign(pool.begin() + static_cast<long>(next), pool.end());
}

int ProcessGroupGrid::PidAt(int d, int p, int t) const {
  if (d < 0 || d >= dims_.dp || p < 0 || p >= dims_.pp || t < 0 ||
      t >= dims_.tp) {
    return -1;
  }
  return slot_pid_[static_cast<size_t>((d * dims_.pp + p) * dims_.tp + t)];
}

GridCoord ProcessGroupGrid::CoordOf(int pid) const {
  for (size_t s = 0; s < slot_pid_.size(); ++s) {
    if (slot_pid_[s] != pid) continue;
    const int si = static_cast<int>(s);
    return GridCoord{si / (dims_.pp * dims_.tp), (si / dims_.tp) % dims_.pp,
                     si % dims_.tp};
  }
  return GridCoord{};
}

std::vector<int> ProcessGroupGrid::TpGroupPids(int d, int p) const {
  std::vector<int> out;
  for (int t = 0; t < dims_.tp; ++t) {
    const int pid = PidAt(d, p, t);
    if (pid >= 0) out.push_back(pid);
  }
  return out;
}

std::vector<int> ProcessGroupGrid::DpGroupPids(int p, int t) const {
  std::vector<int> out;
  for (int d = 0; d < dims_.dp; ++d) {
    const int pid = PidAt(d, p, t);
    if (pid >= 0) out.push_back(pid);
  }
  return out;
}

bool ProcessGroupGrid::Functional(int d, int p) const {
  for (int t = 0; t < dims_.tp; ++t) {
    if (PidAt(d, p, t) < 0) return false;
  }
  return true;
}

std::vector<int> ProcessGroupGrid::FunctionalReplicas(int p) const {
  std::vector<int> out;
  for (int d = 0; d < dims_.dp; ++d) {
    if (Functional(d, p)) out.push_back(d);
  }
  return out;
}

bool ProcessGroupGrid::Routable() const {
  for (int p = 0; p < dims_.pp; ++p) {
    if (FunctionalReplicas(p).empty()) return false;
  }
  return true;
}

int ProcessGroupGrid::OwnerReplica(int p, int m) const {
  const int home = m % dims_.dp;
  if (Functional(home, p)) return home;
  const std::vector<int> fn = FunctionalReplicas(p);
  if (fn.empty()) return -1;
  return fn[static_cast<size_t>(m) % fn.size()];
}

std::string ProcessGroupGrid::Format() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "grid %dx%dx%d:", dims_.dp, dims_.pp,
                dims_.tp);
  std::string out = buf;
  for (size_t s = 0; s < slot_pid_.size(); ++s) {
    std::snprintf(buf, sizeof(buf), " %d", slot_pid_[s]);
    out += buf;
  }
  out += " spares:";
  for (int pid : spares_) {
    std::snprintf(buf, sizeof(buf), " %d", pid);
    out += buf;
  }
  return out;
}

GridDims GridDimsFromEnv() {
  GridDims dims;
  dims.pp = common::EnvInt("RCC_PP_STAGES", 1);
  dims.tp = common::EnvInt("RCC_TP_SIZE", 1);
  if (dims.pp < 1) dims.pp = 1;
  if (dims.tp < 1) dims.tp = 1;
  return dims;
}

}  // namespace rcc::core
