#include "core/elastic_trainer.h"

#include <algorithm>

#include "common/log.h"
#include "dnn/layers.h"
#include "dnn/optimizer.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace rcc::core {

ElasticTrainer::ElasticTrainer(ResilientComm* rc, dnn::Model* model,
                               dnn::Sgd* opt,
                               const dnn::ClusterDataset* data,
                               TrainerOptions opts,
                               std::vector<std::atomic<bool>>* failure_flags)
    : rc_(rc),
      model_(model),
      opt_(opt),
      data_(data),
      opts_(std::move(opts)),
      failure_flags_(failure_flags),
      base_workers_(rc->size()),
      policy_(opts_.policy_mode) {}

Status ElasticTrainer::SyncState(ResilientComm* rc, dnn::Model* model,
                                 dnn::Sgd* opt,
                                 checkpoint::TrainingCursor* cursor,
                                 bool receiver) {
  std::vector<uint8_t> blob;
  if (rc->rank() == 0) {
    blob = checkpoint::Capture(*model, *opt, *cursor).blob;
  }
  RCC_RETURN_IF_ERROR(rc->BcastBlob(&blob, /*root=*/0, /*cost_scale=*/1.0));
  if (receiver && rc->rank() != 0) {
    checkpoint::Snapshot snap;
    snap.blob = std::move(blob);
    RCC_RETURN_IF_ERROR(checkpoint::Restore(snap, model, opt, cursor));
  }
  return Status::Ok();
}

bool ElasticTrainer::MaybeDie(int epoch, int step, int bucket) {
  for (size_t i = 0; i < opts_.failures.size(); ++i) {
    const auto& f = opts_.failures[i];
    if (f.epoch == epoch && f.step == step && f.bucket == bucket &&
        f.victim_rank == rc_->rank() && !(*failure_flags_)[i].load()) {
      (*failure_flags_)[i].store(true);
      if (f.scope == sim::FailScope::kNode) {
        rc_->endpoint().fabric().KillNode(rc_->endpoint().node());
      } else {
        rc_->endpoint().fabric().Kill(rc_->endpoint().pid());
      }
      return true;
    }
  }
  return false;
}

Status ElasticTrainer::TrainStep(int epoch, int step, float* loss_out) {
  const sim::Seconds step_start = rc_->endpoint().now();
  rc_->TakeCommServiceSeconds();  // drop pre-step traffic (state sync &c)
  // Per-worker shard of the global batch under the *current* membership
  // (after a shrink the survivors re-partition the data - degraded mode).
  dnn::Batch batch = data_->ShardBatch(epoch, step, opts_.batch_per_worker,
                                       rc_->rank(), rc_->size());
  model_->ZeroGrad();
  dnn::Tensor logits = model_->Forward(batch.x, /*train=*/true);
  dnn::SoftmaxCrossEntropy loss;
  *loss_out = loss.Forward(logits, batch.labels);
  model_->Backward(loss.Backward());
  rc_->endpoint().Compute(3.0 * model_->LastForwardFlops());

  // Flatten gradients, resilient allreduce, average over the membership
  // that actually contributed (forward recovery may shrink it mid-op).
  auto params = model_->Params();
  std::vector<float> flat;
  flat.reserve(model_->ParameterCount());
  for (dnn::Param* p : params) {
    flat.insert(flat.end(), p->grad.data(), p->grad.data() + p->grad.size());
  }
  std::vector<float> reduced(flat.size());
  // Split the flat gradient into contiguous fusion buckets and reduce
  // them in order - blocking, or pipelined through the resilient
  // in-flight window with one WaitAll before the optimizer step. The
  // scripted victim dies right before submitting its target bucket,
  // possibly with earlier buckets still in flight.
  const int nbuckets = opts_.grad_buckets < 1 ? 1 : opts_.grad_buckets;
  const bool pipelined = opts_.inflight_window >= 1;
  if (pipelined) rc_->set_max_inflight(opts_.inflight_window);
  Status st;
  for (int b = 0; b < nbuckets; ++b) {
    if (MaybeDie(epoch, step, b)) {
      rc_->WaitAll();  // flat/reduced are frame-local: drain the workers
      return Status(Code::kAborted, "scripted failure: self killed");
    }
    const size_t begin = flat.size() * static_cast<size_t>(b) / nbuckets;
    const size_t end = flat.size() * static_cast<size_t>(b + 1) / nbuckets;
    if (begin == end) continue;
    st = pipelined ? rc_->IAllreduce(flat.data() + begin,
                                     reduced.data() + begin, end - begin)
                   : rc_->Allreduce(flat.data() + begin,
                                    reduced.data() + begin, end - begin);
    if (!st.ok()) break;
  }
  if (pipelined) {
    Status drained = rc_->WaitAll();
    if (st.ok()) st = drained;
  }
  RCC_RETURN_IF_ERROR(st);
  const float inv = 1.0f / static_cast<float>(rc_->size());
  size_t off = 0;
  for (dnn::Param* p : params) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad[i] = reduced[off + i] * inv;
    }
    off += p->grad.size();
  }
  float lr_scale = 1.0f;
  if (opts_.linear_lr_scaling) {
    // Rescale against the membership that actually contributed this
    // step; base_workers is pinned at trainer construction.
    dnn::LinearScalingLr schedule(opts_.sgd.lr, base_workers_,
                                  opts_.lr_warmup_steps);
    lr_scale =
        schedule.LrAt(epoch * opts_.steps_per_epoch + step, rc_->size()) /
        opts_.sgd.lr;
  }
  opt_->Step(lr_scale);
  {
    // Per-step driver metrics (real-numerics trainer). Compute is the
    // charged FLOP time; comm service comes from the resilient comm's
    // accumulator, so only this step's GPU collectives count.
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"stack", "elastic_trainer"}};
    const double wall = rc_->endpoint().now() - step_start;
    const double compute =
        3.0 * model_->LastForwardFlops() /
        rc_->endpoint().fabric().config().net.gpu_flops;
    const double service = rc_->TakeCommServiceSeconds();
    const double exposed = wall > compute ? wall - compute : 0.0;
    reg.GetCounter("rcc_steps_total", labels)->Increment();
    reg.GetCounter("rcc_step_seconds_total", labels)->Add(wall);
    reg.GetCounter("rcc_step_compute_seconds_total", labels)->Add(compute);
    reg.GetCounter("rcc_step_comm_service_seconds_total", labels)
        ->Add(service);
    reg.GetCounter("rcc_step_comm_exposed_seconds_total", labels)
        ->Add(exposed);
    reg.GetHistogram("rcc_step_seconds", labels)->Observe(wall);
    reg.GetGauge("rcc_world_size", labels)
        ->Set(static_cast<double>(rc_->size()));
  }
  return Status::Ok();
}

Status ElasticTrainer::DeltaSync(ResilientComm* rc, dnn::Model* model,
                                 dnn::Sgd* opt,
                                 checkpoint::TrainingCursor* cursor,
                                 bool receiver, uint64_t gstep_position) {
  // Agree on the catch-up distance first: every member contributes its
  // ABSOLUTE global-step position (survivors their current step, joiners
  // their staged snapshot's step) and the distance is the spread. The
  // old scheme had survivors contribute a precomputed gap and joiners a
  // hardcoded 0, which collapsed to "joiners are 0 behind" whenever the
  // survivor-side bookkeeping lost the admission base — positions make
  // the gap structural. The broadcast pricing must be identical on
  // every member, which max-minus-min of an allgathered vector is.
  std::vector<uint64_t> all;
  RCC_RETURN_IF_ERROR(rc->AllgatherU64(gstep_position, &all));
  uint64_t lo = ~0ULL, hi = 0;
  for (uint64_t v : all) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const uint64_t behind = std::max<uint64_t>(1, hi - lo);
  obs::Registry::Global()
      .GetHistogram("rcc_delta_sync_steps_behind")
      ->Observe(static_cast<double>(hi - lo));
  const double scale =
      std::min(1.0, ExpandDeltaFrac() * static_cast<double>(behind));
  std::vector<uint8_t> blob;
  if (rc->rank() == 0) {
    blob = checkpoint::Capture(*model, *opt, *cursor).blob;
  }
  RCC_RETURN_IF_ERROR(rc->BcastBlob(&blob, /*root=*/0, scale));
  if (receiver && rc->rank() != 0) {
    checkpoint::Snapshot snap;
    snap.blob = std::move(blob);
    RCC_RETURN_IF_ERROR(checkpoint::Restore(snap, model, opt, cursor));
  }
  obs::Registry::Global().GetCounter("rcc_delta_sync_total")->Increment();
  return Status::Ok();
}

bool ElasticTrainer::PollAdmission(bool finalize, int epoch, int step,
                                   int64_t* admit_begin_gstep,
                                   bool* spliced) {
  const auto pr = rc_->ExpandPoll(finalize);
  if (pr == ResilientComm::PollResult::kNone ||
      pr == ResilientComm::PollResult::kPending) {
    return true;
  }
  if (pr == ResilientComm::PollResult::kAborted) {
    // Timed out (or self died): the membership is unchanged; training
    // continues degraded unless this rank itself is gone.
    *admit_begin_gstep = -1;
    return rc_->endpoint().alive();
  }
  if (spliced != nullptr) *spliced = true;
  // Spliced: the joiners are in; run the catch-up delta sync at this
  // step boundary. Survivors contribute their current global-step
  // position; the joiners' staged snapshots carry the admission-begin
  // position, so the agreed spread IS the catch-up distance.
  const int64_t gstep =
      static_cast<int64_t>(epoch) * opts_.steps_per_epoch + step;
  *admit_begin_gstep = -1;
  checkpoint::TrainingCursor cursor{epoch, step, 0};
  Status ds = DeltaSync(rc_, model_, opt_, &cursor, /*receiver=*/false,
                        static_cast<uint64_t>(gstep));
  return ds.ok();
}

namespace {

// Modeled rendezvous overhead of a blocking replacement admission on
// top of the state sync: the parked replacement's slot-key poll
// interval (~2ms in the chaos runner) plus the announce round. A fixed
// model constant so the decision function stays pure (P9 re-derives it
// from the inputs).
constexpr double kPolicyGraceSeconds = 0.005;

}  // namespace

policy::PolicyInputs ElasticTrainer::ComposeInputs(policy::EventKind ev,
                                                   int lost, int64_t gstep) {
  auto& reg = obs::Registry::Global();
  policy::PolicyInputs in;
  in.event = static_cast<int32_t>(ev);
  in.seq = policy_.next_seq();
  in.world = rc_->size();
  in.lost = lost;
  // Slots admittable *now*: a still-pending async expand blocks a new
  // admission, so wait/async are reported inapplicable until it
  // resolves.
  in.slots_used = policy_slots_used_;
  in.replacements = rc_->expand_pending()
                        ? 0
                        : opts_.replacement_pool - policy_slots_used_;
  if (opts_.policy_store != nullptr) in.flags |= policy::kFlagStoreOk;
  if (policy_snap_valid_ && !rc_->expand_pending()) {
    in.flags |= policy::kFlagRestoreOk;
  }
  in.gstep = gstep;
  in.remaining_steps =
      static_cast<int64_t>(opts_.epochs) * opts_.steps_per_epoch - gstep;
  in.rollback_steps =
      policy_snap_valid_ ? gstep - policy_snap_gstep_ : 0;
  in.now = rc_->endpoint().now();
  in.step_seconds = policy_step_ewma_;
  // Estimate as of the previous tick: OnTick feeds the current event
  // into every member's estimator only after the broadcast, so rank 0
  // must not observe it early.
  in.mtbf_seconds = policy_.estimator().Estimate();
  in.failures_observed = reg.CounterValue("rcc_failures_observed_total");
  in.snapshot_bytes =
      policy_snap_valid_ ? static_cast<double>(policy_snap_.blob.size()) : 0;
  // Staging = snapshot transfer plus the fixed admission critical path
  // a splice pays regardless of bytes: the store announce/fetch round
  // trips and the expanded communicator's NCCL-style rebuild (base +
  // per-rank ring build). Transfer alone underprices small models so
  // badly that adaptive would admit into remainders the splice cannot
  // land in before the run ends.
  const sim::SimConfig& scfg = rc_->endpoint().fabric().config();
  in.staging_seconds =
      checkpoint::Store::CopyCost(scfg, in.snapshot_bytes) +
      2.0 * scfg.costs.kv_roundtrip + scfg.costs.nccl_init_base +
      scfg.costs.nccl_init_per_rank * (rc_->size() + 1);
  // Measured recovery critical path: per-phase histogram maxima are
  // order-independent, so the value replays identically under both
  // engines (means would depend on cross-rank summation order).
  double rebuild = 0.0;
  for (int p = 1; p <= 5; ++p) {
    rebuild += reg.HistogramSnapshot(
                      "rcc_recovery_phase_seconds",
                      {{"phase", obs::flight::PhaseName(
                                     static_cast<obs::flight::Phase>(p))}})
                   .max;
  }
  in.rebuild_seconds = rebuild;
  in.grace_seconds = kPolicyGraceSeconds;
  return in;
}

bool ElasticTrainer::PolicyExchange(const policy::PolicyInputs& rank0_in,
                                    policy::Decision* out) {
  std::vector<uint8_t> blob;
  if (rc_->rank() == 0) blob = policy::EncodeInputs(rank0_in);
  Status st = rc_->BcastBlob(&blob, /*root=*/0, /*cost_scale=*/1.0);
  if (!st.ok()) return false;
  policy::PolicyInputs in;
  if (!policy::DecodeInputs(blob, &in)) return false;
  // Rank-0 authoritative slot counter: a member admitted mid-run picks
  // up the slots consumed before it joined.
  policy_slots_used_ = in.slots_used;
  policy_last_world_ = in.world;
  *out = policy_.OnTick(in);
  return true;
}

void ElasticTrainer::RecordDecision(const policy::Decision& d,
                                    double t_start) {
  const int pid = rc_->endpoint().pid();
  const double now = rc_->endpoint().now();
  if (obs::flight::Enabled()) {
    obs::flight::Ring* ring = obs::flight::ForRank(pid);
    // Recorded back-to-back: the postmortem pairs them by adjacency.
    ring->Record(obs::flight::Ev::kPolicyInputs, now, d.in.world, d.in.event,
                 d.in.mtbf_seconds);
    ring->Record(obs::flight::Ev::kPolicyDecision, now,
                 static_cast<int64_t>(d.chosen), d.in.seq,
                 d.cost[static_cast<int>(d.chosen)]);
  }
  if (trace::Recorder* rec = rc_->recorder(); rec != nullptr) {
    rec->Record(pid, "policy/decide", t_start, now);
  }
}

bool ElasticTrainer::PolicyTick(int* epoch, int* step, TrainerReport* report,
                                int64_t* admit_begin_gstep) {
  const int64_t gstep =
      static_cast<int64_t>(*epoch) * opts_.steps_per_epoch + *step;
  policy::PolicyInputs in;
  if (rc_->rank() == 0) {
    // Event detection against the previous tick's membership. Growth
    // (a splice or admission) is not a decision event, but it does
    // invalidate the boundary snapshot until every member captures the
    // next one.
    const int world = rc_->size();
    policy::EventKind ev = policy::EventKind::kNone;
    int lost = 0;
    if (world < policy_last_world_) {
      ev = policy::EventKind::kFailure;
      lost = policy_last_world_ - world;
    } else if (world > policy_last_world_) {
      policy_snap_valid_ = false;
    }
    in = ComposeInputs(ev, lost, gstep);
  }
  const double t0 = rc_->endpoint().now();
  const int world_before = policy_last_world_;
  policy::Decision d;
  if (!PolicyExchange(in, &d)) return false;
  if (d.in.world > world_before && world_before > 0) {
    // New members spliced in since the last tick lack the boundary
    // snapshot; restore stays off until the next epoch-boundary
    // capture (every rank tracks this identically from the tick).
    policy_snap_valid_ = false;
  }
  if (static_cast<policy::EventKind>(d.in.event) == policy::EventKind::kNone) {
    return true;
  }
  RecordDecision(d, t0);
  report->decisions = policy_.log();
  switch (d.chosen) {
    case policy::Strategy::kShrink:
      // Forward recovery already ran inside the failed collective;
      // continue degraded.
      break;
    case policy::Strategy::kRestore: {
      // Roll every member back to the shared epoch-boundary snapshot;
      // the rolled-back steps are re-executed (P1 accounts them via
      // rollback_steps).
      checkpoint::TrainingCursor cur;
      Status st = checkpoint::Restore(policy_snap_, model_, opt_, &cur);
      if (!st.ok()) return false;
      report->rollback_steps +=
          static_cast<int>(gstep - policy_snap_gstep_);
      *epoch = cur.epoch;
      *step = cur.step;
      break;
    }
    case policy::Strategy::kWait: {
      // Blocking replacement admission: publish the slot's path, expand
      // with the parked replacement, full state sync.
      const int slot = d.in.slots_used;
      const std::string session = "policy-replace-" + std::to_string(slot);
      if (rc_->rank() == 0 && opts_.policy_store != nullptr) {
        opts_.policy_store->SetString(&rc_->endpoint(),
                                      "policy/replace/" + std::to_string(slot),
                                      "wait:" + session);
      }
      ++policy_slots_used_;
      Status st = rc_->Expand(session, 1);
      if (st.code() == Code::kTimeout) {
        RCC_LOG(kDebug) << "pid " << rc_->endpoint().pid()
                        << " policy wait admission timed out; degraded";
        break;
      }
      if (!st.ok()) return false;
      checkpoint::TrainingCursor cursor{*epoch, *step, 0};
      st = SyncState(rc_, model_, opt_, &cursor, /*receiver=*/false);
      if (!st.ok()) return false;
      policy_snap_valid_ = false;
      break;
    }
    case policy::Strategy::kAsync: {
      // Overlapped replacement admission through the async expand; the
      // regular PollAdmission path splices it at a later boundary.
      const int slot = d.in.slots_used;
      const std::string session = "policy-replace-" + std::to_string(slot);
      if (rc_->rank() == 0 && opts_.policy_store != nullptr) {
        opts_.policy_store->SetString(&rc_->endpoint(),
                                      "policy/replace/" + std::to_string(slot),
                                      "async:" + session);
      }
      ++policy_slots_used_;
      std::vector<uint8_t> snapshot;
      if (rc_->rank() == 0) {
        checkpoint::TrainingCursor cursor{*epoch, *step, 0};
        snapshot = checkpoint::Capture(*model_, *opt_, cursor).blob;
      }
      Status st = rc_->ExpandAsyncBegin(
          opts_.policy_store, session, 1, snapshot,
          static_cast<double>(snapshot.size()));
      if (!st.ok()) return false;
      *admit_begin_gstep = gstep;
      break;
    }
  }
  return true;
}

bool ElasticTrainer::PolicyJoinDecision(int epoch, int joiner_count,
                                        policy::Strategy* chosen) {
  const int64_t gstep = static_cast<int64_t>(epoch) * opts_.steps_per_epoch;
  policy::PolicyInputs in;
  if (rc_->rank() == 0) {
    in = ComposeInputs(policy::EventKind::kJoin, joiner_count, gstep);
  }
  const double t0 = rc_->endpoint().now();
  policy::Decision d;
  if (!PolicyExchange(in, &d)) return false;
  RecordDecision(d, t0);
  *chosen = d.chosen;
  if (rc_->rank() == 0 && opts_.policy_store != nullptr) {
    // The provisioned joiners read the decided admission path here
    // before calling JoinExisting vs JoinAsync.
    opts_.policy_store->SetString(
        &rc_->endpoint(), "policy/join/" + std::to_string(epoch),
        d.chosen == policy::Strategy::kAsync ? "async" : "wait");
  }
  return true;
}

TrainerReport ElasticTrainer::Run(checkpoint::TrainingCursor start,
                                  int joined_at_epoch) {
  TrainerReport report;
  int epoch = start.epoch;
  int step = start.step;
  bool first = true;
  int64_t admit_begin_gstep = -1;  // global step the pending expand opened
  if (policy_active()) policy_last_world_ = rc_->size();
  while (epoch < opts_.epochs) {
    // Epoch-boundary reconfiguration. The only boundaries that skip a
    // scheduled join are epoch 0 (the founding world already contains
    // every initial member) and the epoch this worker itself was just
    // admitted into. In particular a checkpoint resume landing on a
    // join epoch DOES run the admission - the old `epoch != start.epoch`
    // guard silently stranded joiners provisioned for the resume epoch.
    auto join_it = opts_.joins.find(epoch);
    if (join_it != opts_.joins.end() && step == 0 && epoch != 0 &&
        epoch != joined_at_epoch) {
      RCC_LOG(kDebug)
          << "pid " << rc_->endpoint().pid() << " expand e" << epoch;
      // A replacement admission still in flight is forced to a decision
      // before the scheduled join opens its own window. This must go
      // through the trainer-level finalize: ExpandAsyncBegin would
      // self-finalize at the resilient layer, splicing the replacement
      // without the DeltaSync it is parked on and deadlocking the next
      // collective. A boundary splice lands the replacement at
      // {epoch, 0}, where it re-enters this loop and participates in
      // the join-block collectives below (joined_at_epoch == -1).
      if (rc_->expand_pending() &&
          !PollAdmission(/*finalize=*/true, epoch, step,
                         &admit_begin_gstep)) {
        report.aborted = true;
        return report;
      }
      // Adaptive join admission: the controller picks blocking (wait)
      // vs overlapped (async) and the path is published for the
      // provisioned joiners on policy/join/<epoch>.
      bool async_join = opts_.async_admission && opts_.admission_store;
      kv::Store* join_store = opts_.admission_store;
      if (policy_active() && opts_.policy_store != nullptr) {
        policy::Strategy chosen = policy::Strategy::kWait;
        if (!PolicyJoinDecision(epoch, join_it->second, &chosen)) {
          report.aborted = true;
          return report;
        }
        async_join = chosen == policy::Strategy::kAsync;
        join_store = opts_.policy_store;
      }
      if (async_join && join_store != nullptr) {
        // Nonblocking admission: publish the snapshot, open the window,
        // keep training; PollAdmission splices at a step boundary once
        // the joiners have staged.
        std::vector<uint8_t> snapshot;
        if (rc_->rank() == 0) {
          checkpoint::TrainingCursor cursor{epoch, step, 0};
          snapshot = checkpoint::Capture(*model_, *opt_, cursor).blob;
        }
        Status st = rc_->ExpandAsyncBegin(
            join_store, "trainer-epoch" + std::to_string(epoch),
            join_it->second, snapshot,
            static_cast<double>(snapshot.size()));
        if (!st.ok()) {
          report.aborted = true;
          return report;
        }
        admit_begin_gstep =
            static_cast<int64_t>(epoch) * opts_.steps_per_epoch + step;
      } else {
        Status st = rc_->Expand("trainer-epoch" + std::to_string(epoch),
                                join_it->second);
        if (st.code() == Code::kTimeout) {
          // The provisioned joiners never arrived: the expand was
          // abandoned at the deadline; keep training on the unchanged
          // membership (degraded mode) instead of taking the job down.
          RCC_LOG(kDebug) << "pid " << rc_->endpoint().pid() << " expand e"
                          << epoch << " timed out; continuing degraded";
        } else if (!st.ok()) {
          report.aborted = true;
          return report;
        } else {
          checkpoint::TrainingCursor cursor{epoch, step, 0};
          st = SyncState(rc_, model_, opt_, &cursor, /*receiver=*/false);
          if (!st.ok()) {
            report.aborted = true;
            return report;
          }
        }
      }
    }
    if (policy_active() && step == 0) {
      // Epoch-boundary restore point: every member captures the same
      // post-admission state locally (SPMD - the blobs are identical),
      // so a later restore decision is a local rewind on each rank.
      checkpoint::TrainingCursor snap_cur{
          epoch, 0, epoch * opts_.steps_per_epoch};
      policy_snap_ = checkpoint::Capture(*model_, *opt_, snap_cur);
      policy_snap_gstep_ =
          static_cast<int64_t>(epoch) * opts_.steps_per_epoch;
      policy_snap_valid_ = true;
    }
    while (step < opts_.steps_per_epoch) {
      float loss = 0;
      RCC_LOG(kDebug)
          << "pid " << rc_->endpoint().pid() << " step e" << epoch << " s"
          << step;
      const double step_t0 = rc_->endpoint().now();
      Status st = TrainStep(epoch, step, &loss);
      if (!st.ok()) {
        report.aborted = true;
        return report;
      }
      if (policy_active()) {
        // Measured per-step wall (virtual time) feeding the cost
        // model's remaining-horizon term. Steps that absorbed a
        // recovery stall are excluded: rebuild_seconds already prices
        // recovery, and folding the stall in here would double-count
        // it and inflate t_rem exactly at the tick that follows a
        // repair.
        const double wall = rc_->endpoint().now() - step_t0;
        if (policy_step_ewma_ <= 0.0) {
          policy_step_ewma_ = wall;
        } else if (wall < 3.0 * policy_step_ewma_) {
          policy_step_ewma_ = 0.8 * policy_step_ewma_ + 0.2 * wall;
        }
      }
      if (first) {
        report.first_loss = loss;
        first = false;
      }
      report.last_loss = loss;
      ++report.steps_run;
      ++step;
      bool spliced_now = false;
      if (rc_->expand_pending() &&
          !PollAdmission(/*finalize=*/false, epoch, step,
                         &admit_begin_gstep, &spliced_now)) {
        report.aborted = true;
        return report;
      }
      if (policy_active()) {
        if (spliced_now) {
          // The freshly spliced joiners start their loop past this
          // boundary and would miss the tick collective - every
          // survivor skips it too, and drops the restore point the
          // joiners do not hold.
          policy_snap_valid_ = false;
        } else if (!PolicyTick(&epoch, &step, &report,
                               &admit_begin_gstep)) {
          report.aborted = true;
          return report;
        }
      }
    }
    step = 0;
    ++epoch;
  }
  // A still-pending admission is forced to a decision so parked joiners
  // always unblock: they splice in for the final state or are excluded.
  if (rc_->expand_pending() &&
      !PollAdmission(/*finalize=*/true, opts_.epochs, 0,
                     &admit_begin_gstep)) {
    report.aborted = true;
    return report;
  }
  if (policy_active() && opts_.policy_store != nullptr) {
    // Release the unconsumed replacement slots so parked workers
    // unblock instead of waiting out their deadline. Every finisher
    // publishes (rank 0 alone could have died earlier in the run and a
    // re-ranked survivor must still release); the existence check keeps
    // the write idempotent and never clobbers a consumed slot's
    // "wait:"/"async:" value.
    for (int s = 0; s < opts_.replacement_pool; ++s) {
      const std::string key = "policy/replace/" + std::to_string(s);
      if (!opts_.policy_store->GetString(&rc_->endpoint(), key).ok()) {
        opts_.policy_store->SetString(&rc_->endpoint(), key, "done");
      }
    }
  }
  report.final_world = rc_->size();
  report.repairs = rc_->repairs();
  report.decisions = policy_.log();
  model_->CopyParamsTo(&report.final_params);
  return report;
}

}  // namespace rcc::core
