#include "core/elastic_trainer.h"

#include <algorithm>

#include "common/log.h"
#include "dnn/layers.h"
#include "dnn/optimizer.h"
#include "obs/metrics.h"

namespace rcc::core {

ElasticTrainer::ElasticTrainer(ResilientComm* rc, dnn::Model* model,
                               dnn::Sgd* opt,
                               const dnn::ClusterDataset* data,
                               TrainerOptions opts,
                               std::vector<std::atomic<bool>>* failure_flags)
    : rc_(rc),
      model_(model),
      opt_(opt),
      data_(data),
      opts_(std::move(opts)),
      failure_flags_(failure_flags),
      base_workers_(rc->size()) {}

Status ElasticTrainer::SyncState(ResilientComm* rc, dnn::Model* model,
                                 dnn::Sgd* opt,
                                 checkpoint::TrainingCursor* cursor,
                                 bool receiver) {
  std::vector<uint8_t> blob;
  if (rc->rank() == 0) {
    blob = checkpoint::Capture(*model, *opt, *cursor).blob;
  }
  RCC_RETURN_IF_ERROR(rc->BcastBlob(&blob, /*root=*/0, /*cost_scale=*/1.0));
  if (receiver && rc->rank() != 0) {
    checkpoint::Snapshot snap;
    snap.blob = std::move(blob);
    RCC_RETURN_IF_ERROR(checkpoint::Restore(snap, model, opt, cursor));
  }
  return Status::Ok();
}

bool ElasticTrainer::MaybeDie(int epoch, int step, int bucket) {
  for (size_t i = 0; i < opts_.failures.size(); ++i) {
    const auto& f = opts_.failures[i];
    if (f.epoch == epoch && f.step == step && f.bucket == bucket &&
        f.victim_rank == rc_->rank() && !(*failure_flags_)[i].load()) {
      (*failure_flags_)[i].store(true);
      if (f.scope == sim::FailScope::kNode) {
        rc_->endpoint().fabric().KillNode(rc_->endpoint().node());
      } else {
        rc_->endpoint().fabric().Kill(rc_->endpoint().pid());
      }
      return true;
    }
  }
  return false;
}

Status ElasticTrainer::TrainStep(int epoch, int step, float* loss_out) {
  const sim::Seconds step_start = rc_->endpoint().now();
  rc_->TakeCommServiceSeconds();  // drop pre-step traffic (state sync &c)
  // Per-worker shard of the global batch under the *current* membership
  // (after a shrink the survivors re-partition the data - degraded mode).
  dnn::Batch batch = data_->ShardBatch(epoch, step, opts_.batch_per_worker,
                                       rc_->rank(), rc_->size());
  model_->ZeroGrad();
  dnn::Tensor logits = model_->Forward(batch.x, /*train=*/true);
  dnn::SoftmaxCrossEntropy loss;
  *loss_out = loss.Forward(logits, batch.labels);
  model_->Backward(loss.Backward());
  rc_->endpoint().Compute(3.0 * model_->LastForwardFlops());

  // Flatten gradients, resilient allreduce, average over the membership
  // that actually contributed (forward recovery may shrink it mid-op).
  auto params = model_->Params();
  std::vector<float> flat;
  flat.reserve(model_->ParameterCount());
  for (dnn::Param* p : params) {
    flat.insert(flat.end(), p->grad.data(), p->grad.data() + p->grad.size());
  }
  std::vector<float> reduced(flat.size());
  // Split the flat gradient into contiguous fusion buckets and reduce
  // them in order - blocking, or pipelined through the resilient
  // in-flight window with one WaitAll before the optimizer step. The
  // scripted victim dies right before submitting its target bucket,
  // possibly with earlier buckets still in flight.
  const int nbuckets = opts_.grad_buckets < 1 ? 1 : opts_.grad_buckets;
  const bool pipelined = opts_.inflight_window >= 1;
  if (pipelined) rc_->set_max_inflight(opts_.inflight_window);
  Status st;
  for (int b = 0; b < nbuckets; ++b) {
    if (MaybeDie(epoch, step, b)) {
      rc_->WaitAll();  // flat/reduced are frame-local: drain the workers
      return Status(Code::kAborted, "scripted failure: self killed");
    }
    const size_t begin = flat.size() * static_cast<size_t>(b) / nbuckets;
    const size_t end = flat.size() * static_cast<size_t>(b + 1) / nbuckets;
    if (begin == end) continue;
    st = pipelined ? rc_->IAllreduce(flat.data() + begin,
                                     reduced.data() + begin, end - begin)
                   : rc_->Allreduce(flat.data() + begin,
                                    reduced.data() + begin, end - begin);
    if (!st.ok()) break;
  }
  if (pipelined) {
    Status drained = rc_->WaitAll();
    if (st.ok()) st = drained;
  }
  RCC_RETURN_IF_ERROR(st);
  const float inv = 1.0f / static_cast<float>(rc_->size());
  size_t off = 0;
  for (dnn::Param* p : params) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad[i] = reduced[off + i] * inv;
    }
    off += p->grad.size();
  }
  float lr_scale = 1.0f;
  if (opts_.linear_lr_scaling) {
    // Rescale against the membership that actually contributed this
    // step; base_workers is pinned at trainer construction.
    dnn::LinearScalingLr schedule(opts_.sgd.lr, base_workers_,
                                  opts_.lr_warmup_steps);
    lr_scale =
        schedule.LrAt(epoch * opts_.steps_per_epoch + step, rc_->size()) /
        opts_.sgd.lr;
  }
  opt_->Step(lr_scale);
  {
    // Per-step driver metrics (real-numerics trainer). Compute is the
    // charged FLOP time; comm service comes from the resilient comm's
    // accumulator, so only this step's GPU collectives count.
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"stack", "elastic_trainer"}};
    const double wall = rc_->endpoint().now() - step_start;
    const double compute =
        3.0 * model_->LastForwardFlops() /
        rc_->endpoint().fabric().config().net.gpu_flops;
    const double service = rc_->TakeCommServiceSeconds();
    const double exposed = wall > compute ? wall - compute : 0.0;
    reg.GetCounter("rcc_steps_total", labels)->Increment();
    reg.GetCounter("rcc_step_seconds_total", labels)->Add(wall);
    reg.GetCounter("rcc_step_compute_seconds_total", labels)->Add(compute);
    reg.GetCounter("rcc_step_comm_service_seconds_total", labels)
        ->Add(service);
    reg.GetCounter("rcc_step_comm_exposed_seconds_total", labels)
        ->Add(exposed);
    reg.GetHistogram("rcc_step_seconds", labels)->Observe(wall);
    reg.GetGauge("rcc_world_size", labels)
        ->Set(static_cast<double>(rc_->size()));
  }
  return Status::Ok();
}

Status ElasticTrainer::DeltaSync(ResilientComm* rc, dnn::Model* model,
                                 dnn::Sgd* opt,
                                 checkpoint::TrainingCursor* cursor,
                                 bool receiver, uint64_t steps_behind) {
  // Agree on the catch-up distance first (joiners contribute 0): the
  // broadcast pricing must be identical on every member.
  std::vector<uint64_t> all;
  RCC_RETURN_IF_ERROR(rc->AllgatherU64(steps_behind, &all));
  uint64_t behind = 1;
  for (uint64_t v : all) behind = std::max(behind, v);
  const double scale =
      std::min(1.0, ExpandDeltaFrac() * static_cast<double>(behind));
  std::vector<uint8_t> blob;
  if (rc->rank() == 0) {
    blob = checkpoint::Capture(*model, *opt, *cursor).blob;
  }
  RCC_RETURN_IF_ERROR(rc->BcastBlob(&blob, /*root=*/0, scale));
  if (receiver && rc->rank() != 0) {
    checkpoint::Snapshot snap;
    snap.blob = std::move(blob);
    RCC_RETURN_IF_ERROR(checkpoint::Restore(snap, model, opt, cursor));
  }
  obs::Registry::Global().GetCounter("rcc_delta_sync_total")->Increment();
  return Status::Ok();
}

bool ElasticTrainer::PollAdmission(bool finalize, int epoch, int step,
                                   int64_t* admit_begin_gstep) {
  const auto pr = rc_->ExpandPoll(finalize);
  if (pr == ResilientComm::PollResult::kNone ||
      pr == ResilientComm::PollResult::kPending) {
    return true;
  }
  if (pr == ResilientComm::PollResult::kAborted) {
    // Timed out (or self died): the membership is unchanged; training
    // continues degraded unless this rank itself is gone.
    *admit_begin_gstep = -1;
    return rc_->endpoint().alive();
  }
  // Spliced: the joiners are in; run the catch-up delta sync at this
  // step boundary.
  const int64_t gstep =
      static_cast<int64_t>(epoch) * opts_.steps_per_epoch + step;
  const uint64_t behind =
      *admit_begin_gstep >= 0 && gstep > *admit_begin_gstep
          ? static_cast<uint64_t>(gstep - *admit_begin_gstep)
          : 1;
  *admit_begin_gstep = -1;
  checkpoint::TrainingCursor cursor{epoch, step, 0};
  Status ds =
      DeltaSync(rc_, model_, opt_, &cursor, /*receiver=*/false, behind);
  return ds.ok();
}

TrainerReport ElasticTrainer::Run(checkpoint::TrainingCursor start,
                                  int joined_at_epoch) {
  TrainerReport report;
  int epoch = start.epoch;
  int step = start.step;
  bool first = true;
  int64_t admit_begin_gstep = -1;  // global step the pending expand opened
  while (epoch < opts_.epochs) {
    // Epoch-boundary reconfiguration. The only boundaries that skip a
    // scheduled join are epoch 0 (the founding world already contains
    // every initial member) and the epoch this worker itself was just
    // admitted into. In particular a checkpoint resume landing on a
    // join epoch DOES run the admission - the old `epoch != start.epoch`
    // guard silently stranded joiners provisioned for the resume epoch.
    auto join_it = opts_.joins.find(epoch);
    if (join_it != opts_.joins.end() && step == 0 && epoch != 0 &&
        epoch != joined_at_epoch) {
      RCC_LOG(kDebug)
          << "pid " << rc_->endpoint().pid() << " expand e" << epoch;
      if (opts_.async_admission && opts_.admission_store != nullptr) {
        // Nonblocking admission: publish the snapshot, open the window,
        // keep training; PollAdmission splices at a step boundary once
        // the joiners have staged.
        std::vector<uint8_t> snapshot;
        if (rc_->rank() == 0) {
          checkpoint::TrainingCursor cursor{epoch, step, 0};
          snapshot = checkpoint::Capture(*model_, *opt_, cursor).blob;
        }
        Status st = rc_->ExpandAsyncBegin(
            opts_.admission_store, "trainer-epoch" + std::to_string(epoch),
            join_it->second, snapshot,
            static_cast<double>(snapshot.size()));
        if (!st.ok()) {
          report.aborted = true;
          return report;
        }
        admit_begin_gstep =
            static_cast<int64_t>(epoch) * opts_.steps_per_epoch + step;
      } else {
        Status st = rc_->Expand("trainer-epoch" + std::to_string(epoch),
                                join_it->second);
        if (st.code() == Code::kTimeout) {
          // The provisioned joiners never arrived: the expand was
          // abandoned at the deadline; keep training on the unchanged
          // membership (degraded mode) instead of taking the job down.
          RCC_LOG(kDebug) << "pid " << rc_->endpoint().pid() << " expand e"
                          << epoch << " timed out; continuing degraded";
        } else if (!st.ok()) {
          report.aborted = true;
          return report;
        } else {
          checkpoint::TrainingCursor cursor{epoch, step, 0};
          st = SyncState(rc_, model_, opt_, &cursor, /*receiver=*/false);
          if (!st.ok()) {
            report.aborted = true;
            return report;
          }
        }
      }
    }
    while (step < opts_.steps_per_epoch) {
      float loss = 0;
      RCC_LOG(kDebug)
          << "pid " << rc_->endpoint().pid() << " step e" << epoch << " s"
          << step;
      Status st = TrainStep(epoch, step, &loss);
      if (!st.ok()) {
        report.aborted = true;
        return report;
      }
      if (first) {
        report.first_loss = loss;
        first = false;
      }
      report.last_loss = loss;
      ++report.steps_run;
      ++step;
      if (rc_->expand_pending() &&
          !PollAdmission(/*finalize=*/false, epoch, step,
                         &admit_begin_gstep)) {
        report.aborted = true;
        return report;
      }
    }
    step = 0;
    ++epoch;
  }
  // A still-pending admission is forced to a decision so parked joiners
  // always unblock: they splice in for the final state or are excluded.
  if (rc_->expand_pending() &&
      !PollAdmission(/*finalize=*/true, opts_.epochs, 0,
                     &admit_begin_gstep)) {
    report.aborted = true;
    return report;
  }
  report.final_world = rc_->size();
  report.repairs = rc_->repairs();
  model_->CopyParamsTo(&report.final_params);
  return report;
}

}  // namespace rcc::core
