// ULFM-integrated elastic training runner for the synthetic evaluation
// plans (Figs. 4-7 and Table 2): the same Horovod-style training loop as
// the Elastic Horovod baseline, but with the resilient collectives of
// rcc::core doing forward recovery and epoch-boundary reconfiguration.
//
// Key behavioural differences from the baseline (paper Section 3):
//  * A failure repairs the communicator in place (revoke/agree/shrink)
//    and re-executes only the failed allreduce; no rendezvous, no
//    checkpoint restore, no mini-batch recompute.
//  * No per-step checkpoint commits at all.
//  * Joiners are provisioned *ahead* of the epoch boundary at which they
//    merge, so their cold start overlaps the survivors' degraded-mode
//    training instead of sitting on the critical path.
#pragma once

#include "horovod/plan.h"
#include "sim/cluster.h"
#include "trace/trace.h"

namespace rcc::core {

horovod::RunStats RunUlfmElastic(sim::Cluster& cluster,
                                 const horovod::SyntheticPlan& plan,
                                 trace::Recorder* rec);

}  // namespace rcc::core
