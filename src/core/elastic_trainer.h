// Real-model elastic data-parallel trainer over the resilient
// collectives: the full paper pipeline with actual numerics - forward/
// backward on a dnn::Model, gradient allreduce through ResilientComm,
// forward recovery on failures, epoch-boundary admission of new workers
// with model+optimizer state sync.
//
// Used by tests (SPMD consistency, loss-decrease and recovery-
// correctness invariants) and by the examples; the figure benches use
// the declared-size synthetic runner instead (core/ulfm_elastic.h).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/resilient.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/optimizer.h"
#include "horovod/plan.h"
#include "policy/policy.h"

namespace rcc::core {

struct TrainerOptions {
  int batch_per_worker = 16;
  int steps_per_epoch = 8;
  int epochs = 2;
  dnn::SgdOptions sgd{0.05f, 0.9f, 0.0f};
  // Linear-scaling learning-rate rule (Goyal et al.): when enabled the
  // effective rate tracks the *current* worker count relative to the
  // founding world, with a gradual warmup - the stability measure the
  // paper cites for scale changes.
  bool linear_lr_scaling = false;
  int lr_warmup_steps = 0;
  // Gradient fusion: the flat gradient is split into this many contiguous
  // buckets, each reduced by its own resilient allreduce.
  int grad_buckets = 1;
  // 0 = blocking allreduce per bucket. >= 1: buckets are submitted into
  // the resilient in-flight window (rc->IAllreduce) and drained by a
  // single WaitAll before the optimizer step.
  int inflight_window = 0;
  horovod::DropPolicy drop_policy = horovod::DropPolicy::kProcess;
  // Scripted failures: victim `rank` dies right before reducing bucket
  // `bucket` of (epoch, step).
  std::vector<horovod::ScriptedFailure> failures;
  // epoch -> number of joiners merging at that epoch boundary.
  std::map<int, int> joins;
  // Asynchronous admission: scheduled joins open a nonblocking expand
  // (snapshot published to `admission_store`, joiners staged via
  // ResilientComm::JoinAsync) and splice at a later step boundary,
  // instead of the blocking Expand + full SyncState stall.
  bool async_admission = false;
  kv::Store* admission_store = nullptr;
  // --- online adaptive recovery policy (src/policy, RCC_POLICY) ---
  // kLegacy (the default) keeps the pre-policy behavior byte-identical:
  // no per-step policy tick, no decisions, no extra collectives. Any
  // other mode runs one tick per step boundary: rank 0 composes
  // policy::PolicyInputs, broadcasts the serialized bytes through the
  // resilient BcastBlob, and every member runs the same pure decision
  // and the same (collective) actuation. See DESIGN.md §11.
  policy::Mode policy_mode = policy::Mode::kLegacy;
  // Rendezvous store for policy-driven admissions: replacement slots
  // park on policy/replace/<slot>, scheduled joiners read the decided
  // admission path from policy/join/<epoch>. Without a store the
  // wait/async strategies are inapplicable and decisions fall back to
  // shrink (failures) / the legacy join path (joins).
  kv::Store* policy_store = nullptr;
  // Provisioned replacement workers parked on the slot keys; one slot
  // is consumed per wait/async failure decision.
  int replacement_pool = 0;
};

struct TrainerReport {
  bool aborted = false;       // this worker died / left
  int steps_run = 0;          // optimizer steps this worker applied
  float first_loss = 0;
  float last_loss = 0;
  int final_world = 0;
  int repairs = 0;
  // Steps re-executed because of checkpoint-restore decisions: the
  // exactly-once accounting becomes steps_run == planned + rollback.
  int rollback_steps = 0;
  // Structured decision log (one entry per policy decision this worker
  // was a member for); identical bytes across members for shared
  // decisions. Empty in legacy mode.
  std::vector<policy::Decision> decisions;
  std::vector<float> final_params;  // for cross-rank consistency checks
};

class ElasticTrainer {
 public:
  // `failure_flags` must outlive the trainer and be shared by every
  // worker of the run (marks scripted failures as consumed).
  ElasticTrainer(ResilientComm* rc, dnn::Model* model, dnn::Sgd* opt,
                 const dnn::ClusterDataset* data, TrainerOptions opts,
                 std::vector<std::atomic<bool>>* failure_flags);

  // Trains from `start`; returns the per-worker report. A worker that
  // was admitted into epoch `joined_at_epoch` passes it so the join
  // boundary it entered through is not re-expanded (-1: founder or
  // plain resume).
  TrainerReport Run(checkpoint::TrainingCursor start = {},
                    int joined_at_epoch = -1);

  // Collective state sync: rank 0 broadcasts (model, optimizer, cursor);
  // `receiver` restores it. Every member of rc must call this.
  static Status SyncState(ResilientComm* rc, dnn::Model* model,
                          dnn::Sgd* opt, checkpoint::TrainingCursor* cursor,
                          bool receiver);

  // Post-splice catch-up sync: every member contributes its absolute
  // global-step position (survivors the current step, joiners their
  // staged snapshot's step) and the agreed spread max-min (clamped to
  // >= 1) is the catch-up distance; rank 0 then broadcasts the current
  // state priced at min(1, RCC_EXPAND_DELTA_FRAC * behind) of the full
  // snapshot — the joiner already staged a recent version, only the
  // delta travels. Every member of rc must call this.
  static Status DeltaSync(ResilientComm* rc, dnn::Model* model,
                          dnn::Sgd* opt, checkpoint::TrainingCursor* cursor,
                          bool receiver, uint64_t gstep_position);

 private:
  bool MaybeDie(int epoch, int step, int bucket);
  Status TrainStep(int epoch, int step, float* loss_out);
  // Polls the pending async expand at a step boundary; runs the delta
  // sync when it splices (reported via `spliced` so the policy tick can
  // skip a boundary the fresh joiners never saw). Returns false when
  // this worker must abort.
  bool PollAdmission(bool finalize, int epoch, int step,
                     int64_t* admit_begin_gstep, bool* spliced = nullptr);

  // --- adaptive-policy machinery (all no-ops in kLegacy mode) ---
  bool policy_active() const {
    return opts_.policy_mode != policy::Mode::kLegacy;
  }
  // Composes (rank 0) / receives one PolicyInputs tick through the
  // resilient broadcast and runs the shared controller on it. Returns
  // false when this worker must abort; *out holds the decoded decision.
  bool PolicyExchange(const policy::PolicyInputs& rank0_in,
                      policy::Decision* out);
  // One per-step policy tick: event detection, decision, actuation.
  // May rewind *epoch/*step (restore) or admit a replacement
  // (wait/async). Returns false when this worker must abort.
  bool PolicyTick(int* epoch, int* step, TrainerReport* report,
                  int64_t* admit_begin_gstep);
  // Join-boundary decision: picks wait vs async for the scheduled
  // joiners at `epoch` and publishes the path on policy/join/<epoch>.
  bool PolicyJoinDecision(int epoch, int joiner_count,
                          policy::Strategy* chosen);
  // Emits the flight-recorder pair + the policy/decide trace span.
  void RecordDecision(const policy::Decision& d, double t_start);
  // Rank-0 input composition shared by the step tick and the join
  // decision.
  policy::PolicyInputs ComposeInputs(policy::EventKind ev, int lost,
                                     int64_t gstep);

  ResilientComm* rc_;
  dnn::Model* model_;
  dnn::Sgd* opt_;
  const dnn::ClusterDataset* data_;
  TrainerOptions opts_;
  std::vector<std::atomic<bool>>* failure_flags_;
  int base_workers_;

  policy::PolicyController policy_;
  checkpoint::Snapshot policy_snap_;   // last epoch-boundary snapshot
  int64_t policy_snap_gstep_ = -1;
  bool policy_snap_valid_ = false;     // every member holds the snapshot
  int policy_last_world_ = 0;          // membership at the previous tick
  int policy_slots_used_ = 0;          // replacement slots consumed
  double policy_step_ewma_ = 0.0;      // measured per-step wall (virtual)
};

}  // namespace rcc::core
