// DP x PP x TP process-group grid over a ResilientComm world.
//
// The grid factors a flat pid list into a three-dimensional layout:
//
//   slot(d, p, t) = d * pp * tp + p * tp + t
//
//   d  data-parallel replica index   (which copy of the pipeline)
//   p  pipeline stage index          (which slice of the model)
//   t  tensor-parallel shard index   (which shard inside the stage)
//
// Pids fill slots in ascending order at founding; pids beyond dp*pp*tp
// are SPARES (members of the world communicator that hold no slot and
// run no microbatches until a slot frees up). The mapping is pure SPMD
// state: every member applies Update() with the same agreed survivor
// list at the same repair boundary, so every member derives the same
// mapping with no extra communication — and a surviving pid NEVER moves
// (only vacant slots are refilled, in ascending pid order), which is
// what keeps per-dimension sub-communicators stable across a shrink in
// an unrelated dimension.
//
// The grid itself holds no communicators; PipelineTrainer builds
// nccl/mpi sub-comms from the pid lists this class derives.
#pragma once

#include <string>
#include <vector>

namespace rcc::core {

struct GridDims {
  int dp = 1;
  int pp = 1;
  int tp = 1;
  int slots() const { return dp * pp * tp; }
};

struct GridCoord {
  int d = -1;
  int p = -1;
  int t = -1;
};

class ProcessGroupGrid {
 public:
  ProcessGroupGrid() = default;
  // Founding layout: `pids` (ascending, as ResilientComm hands them
  // out) fill slots in order; leftovers become spares.
  ProcessGroupGrid(const GridDims& dims, const std::vector<int>& pids);

  // Re-derives the mapping after a membership change. Surviving slotted
  // pids keep their slots; slots whose pid is gone become vacant and
  // are refilled from unslotted alive pids (spares first, then
  // joiners) in ascending pid order. Deterministic: identical input
  // produces identical mappings on every member.
  void Update(const std::vector<int>& alive_pids);

  const GridDims& dims() const { return dims_; }
  // Pid holding a slot, -1 while vacant.
  int PidAt(int d, int p, int t) const;
  // Coord of a pid; {-1,-1,-1} for spares / unknown pids.
  GridCoord CoordOf(int pid) const;
  bool HasSlot(int pid) const { return CoordOf(pid).d >= 0; }
  const std::vector<int>& spares() const { return spares_; }
  // Raw slot -> pid table (the commit-ledger snapshot).
  const std::vector<int>& slot_pids() const { return slot_pid_; }

  // All slotted pids of the TP group of stage replica (d, p), ascending
  // t; vacant slots are skipped.
  std::vector<int> TpGroupPids(int d, int p) const;
  // All slotted pids of the DP group at (p, t), ascending d.
  std::vector<int> DpGroupPids(int p, int t) const;

  // A stage replica is functional when every one of its tp slots is
  // held: a TP shard cannot be half-present.
  bool Functional(int d, int p) const;
  // Functional replicas of stage p, ascending d.
  std::vector<int> FunctionalReplicas(int p) const;
  // True when every stage has at least one functional replica — the
  // precondition for ReCycle-style re-routing (otherwise the model has
  // a hole and only checkpoint restore / reform can proceed).
  bool Routable() const;

  // Which DP replica runs microbatch m of stage p: the home replica
  // (m % dp) when functional, else the surviving functional replica
  // m % |functional| adopts it. -1 when the stage is dead.
  int OwnerReplica(int p, int m) const;

  // Canonical byte-stable rendering of the whole mapping (used by the
  // commit ledger and the determinism tests).
  std::string Format() const;

 private:
  GridDims dims_;
  std::vector<int> slot_pid_;  // slot -> pid, -1 vacant
  std::vector<int> spares_;    // alive unslotted pids, ascending
};

// RCC_PP_STAGES / RCC_TP_SIZE (checked parse, defaults 1/1): the dp
// extent is derived from the world size at the call site.
GridDims GridDimsFromEnv();

}  // namespace rcc::core
