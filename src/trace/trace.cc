#include "trace/trace.h"

#include <algorithm>

namespace rcc::trace {

void Recorder::Record(int pid, const std::string& phase, sim::Seconds start,
                      sim::Seconds end) {
  std::lock_guard<std::mutex> lock(mu_);
  const double d = end - start;
  PhaseAgg& agg = by_phase_[phase];
  if (agg.count == 0) {
    agg.max = d;
    agg.min = d;
  } else {
    agg.max = std::max(agg.max, d);
    agg.min = std::min(agg.min, d);
  }
  agg.sum += d;
  agg.count += 1;
  agg.latest_end = std::max(agg.latest_end, end);
  agg.event_idx.push_back(events_.size());
  events_.push_back(Event{pid, phase, start, end});
}

void Recorder::RecordOp(int pid, uint64_t op_id, const std::string& algo,
                        double bytes, sim::Seconds submit,
                        sim::Seconds complete) {
  std::lock_guard<std::mutex> lock(mu_);
  op_events_.push_back(OpEvent{pid, op_id, algo, bytes, submit, complete});
}

void Recorder::RecordReplay(int pid, int64_t op_id, int64_t min_id) {
  std::lock_guard<std::mutex> lock(mu_);
  replay_events_.push_back(ReplayEvent{pid, op_id, min_id});
}

std::vector<ReplayEvent> Recorder::replay_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replay_events_;
}

void Recorder::RecordCounter(int pid, const std::string& name, sim::Seconds t,
                             double value) {
  std::lock_guard<std::mutex> lock(mu_);
  counter_samples_.push_back(CounterSample{pid, name, t, value});
}

std::vector<CounterSample> Recorder::counter_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_samples_;
}

void Recorder::SetPhaseStartHook(PhaseStartHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  phase_start_hook_ = std::move(hook);
  has_hook_.store(static_cast<bool>(phase_start_hook_),
                  std::memory_order_release);
}

void Recorder::PhaseStarted(sim::Endpoint& ep, const std::string& phase) {
  if (!has_hook_.load(std::memory_order_acquire)) return;
  PhaseStartHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = phase_start_hook_;
  }
  if (hook) hook(ep, phase);
}

std::vector<Event> Recorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<Event> Recorder::EventsForPhase(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  auto it = by_phase_.find(phase);
  if (it == by_phase_.end()) return out;
  out.reserve(it->second.event_idx.size());
  for (size_t idx : it->second.event_idx) out.push_back(events_[idx]);
  return out;
}

std::vector<OpEvent> Recorder::op_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_events_;
}

std::map<std::string, double> Recorder::MaxByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [phase, agg] : by_phase_) out[phase] = agg.max;
  return out;
}

std::map<std::string, double> Recorder::MeanByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [phase, agg] : by_phase_) out[phase] = agg.sum / agg.count;
  return out;
}

std::map<std::string, double> Recorder::MinByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [phase, agg] : by_phase_) out[phase] = agg.min;
  return out;
}

double Recorder::PhaseEnd(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_phase_.find(phase);
  return it == by_phase_.end() ? 0.0 : it->second.latest_end;
}

void Recorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  by_phase_.clear();
  op_events_.clear();
  replay_events_.clear();
  counter_samples_.clear();
}

Table Recorder::ToTable() const {
  Table table({"phase", "max (s)", "mean (s)", "events"});
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [phase, agg] : by_phase_) {
    table.AddRow({phase, FormatDouble(agg.max, 4),
                  FormatDouble(agg.sum / agg.count, 4),
                  std::to_string(agg.count)});
  }
  return table;
}

}  // namespace rcc::trace
