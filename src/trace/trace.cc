#include "trace/trace.h"

#include <algorithm>

namespace rcc::trace {

void Recorder::Record(int pid, const std::string& phase, sim::Seconds start,
                      sim::Seconds end) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{pid, phase, start, end});
}

std::vector<Event> Recorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<Event> Recorder::EventsForPhase(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.phase == phase) out.push_back(e);
  }
  return out;
}

std::map<std::string, double> Recorder::MaxByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const Event& e : events_) {
    out[e.phase] = std::max(out[e.phase], e.duration());
  }
  return out;
}

std::map<std::string, double> Recorder::MeanByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> sum;
  std::map<std::string, int> count;
  for (const Event& e : events_) {
    sum[e.phase] += e.duration();
    count[e.phase] += 1;
  }
  for (auto& [phase, total] : sum) total /= count[phase];
  return sum;
}

std::map<std::string, double> Recorder::MinByPhase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const Event& e : events_) {
    auto it = out.find(e.phase);
    if (it == out.end()) {
      out.emplace(e.phase, e.duration());
    } else {
      it->second = std::min(it->second, e.duration());
    }
  }
  return out;
}

double Recorder::PhaseEnd(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  double end = 0.0;
  for (const Event& e : events_) {
    if (e.phase == phase) end = std::max(end, e.end);
  }
  return end;
}

void Recorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

Table Recorder::ToTable() const {
  Table table({"phase", "max (s)", "mean (s)", "events"});
  auto max_by = MaxByPhase();
  auto mean_by = MeanByPhase();
  std::map<std::string, int> counts;
  for (const Event& e : events()) counts[e.phase] += 1;
  for (const auto& [phase, max_d] : max_by) {
    table.AddRow({phase, FormatDouble(max_d, 4),
                  FormatDouble(mean_by[phase], 4),
                  std::to_string(counts[phase])});
  }
  return table;
}

}  // namespace rcc::trace
