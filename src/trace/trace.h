// Phase-tagged event tracing: each recovery step (catch exception,
// shutdown, rendezvous, shrink, state sync, recompute, ...) records its
// per-rank [start, end] interval in virtual time. Benches aggregate
// these into the paper's per-phase cost breakdowns.
//
// Events are indexed by phase at record time: per-phase aggregates
// (max/mean/min/latest-end) are maintained incrementally, so queries are
// O(phases) instead of re-scanning every event under the mutex — per-op
// tracing (one event per gradient bucket) would otherwise degrade bench
// runtime quadratically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/endpoint.h"

namespace rcc::trace {

struct Event {
  int pid = -1;
  std::string phase;
  sim::Seconds start = 0.0;
  sim::Seconds end = 0.0;
  double duration() const { return end - start; }
};

// One collective operation as seen by a rank: submission and completion
// in virtual time, plus the op identity the resilient layer replays by.
struct OpEvent {
  int pid = -1;
  uint64_t op_id = 0;
  std::string algo;
  double bytes = 0.0;
  sim::Seconds submit = 0.0;
  sim::Seconds complete = 0.0;
  double latency() const { return complete - submit; }
};

// One op re-executed by the resilient layer during replay-from-MIN.
// Chaos oracles check every replayed id against the agreed MIN.
struct ReplayEvent {
  int pid = -1;
  int64_t op_id = 0;
  int64_t min_id = 0;  // the MIN agreed for the repair that replayed this op
};

// One sample of a named per-rank time series (world size, in-flight
// window depth). Exported as Chrome trace counter events (ph:"C").
struct CounterSample {
  int pid = -1;
  std::string name;
  sim::Seconds t = 0.0;
  double value = 0.0;
};

class Recorder {
 public:
  void Record(int pid, const std::string& phase, sim::Seconds start,
              sim::Seconds end);

  // Per-op tracing for the nonblocking pipeline.
  void RecordOp(int pid, uint64_t op_id, const std::string& algo,
                double bytes, sim::Seconds submit, sim::Seconds complete);

  // Replay audit trail for the chaos oracles.
  void RecordReplay(int pid, int64_t op_id, int64_t min_id);
  std::vector<ReplayEvent> replay_events() const;

  // Counter time series (world size, in-flight window, ...).
  void RecordCounter(int pid, const std::string& name, sim::Seconds t,
                     double value);
  std::vector<CounterSample> counter_samples() const;

  // --- phase-start hook -------------------------------------------------
  // Invoked on the *entering* rank's own thread the moment a trace::Scope
  // or obs::Span opens, before any phase work runs. The chaos harness uses
  // this to arm deterministic self-kills phase-locked to protocol spans
  // (mid-revoke, mid-agree, mid-join, ...). At most one hook; set nullptr
  // to clear. The hook must be cheap and must not re-enter the recorder.
  using PhaseStartHook =
      std::function<void(sim::Endpoint& ep, const std::string& phase)>;
  void SetPhaseStartHook(PhaseStartHook hook);
  void PhaseStarted(sim::Endpoint& ep, const std::string& phase);

  std::vector<Event> events() const;
  std::vector<Event> EventsForPhase(const std::string& phase) const;
  std::vector<OpEvent> op_events() const;

  // Critical-path duration: the longest single-rank duration per phase
  // (what an observer of the stalled training job experiences).
  std::map<std::string, double> MaxByPhase() const;
  // Mean duration per phase across ranks.
  std::map<std::string, double> MeanByPhase() const;
  // Shortest single event per phase: for phases that *wait* for slower
  // participants (rendezvous, expand), this is the pure work component.
  std::map<std::string, double> MinByPhase() const;
  // Latest end time recorded for a phase.
  double PhaseEnd(const std::string& phase) const;

  void Clear();
  Table ToTable() const;

 private:
  // Incremental aggregates + the indices of the phase's events in
  // events_, maintained by Record.
  struct PhaseAgg {
    double max = 0.0;
    double min = 0.0;
    double sum = 0.0;
    int count = 0;
    double latest_end = 0.0;
    std::vector<size_t> event_idx;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::string, PhaseAgg> by_phase_;
  std::vector<OpEvent> op_events_;
  std::vector<ReplayEvent> replay_events_;
  std::vector<CounterSample> counter_samples_;

  // Hook storage behind its own mutex so PhaseStarted never contends with
  // Record; has_hook_ lets the common (no hook) case skip the lock.
  mutable std::mutex hook_mu_;
  std::atomic<bool> has_hook_{false};
  PhaseStartHook phase_start_hook_;
};

// RAII phase scope: records [now at construction, now at destruction] on
// the endpoint's virtual clock.
class Scope {
 public:
  Scope(Recorder* rec, sim::Endpoint& ep, std::string phase)
      : rec_(rec), ep_(ep), phase_(std::move(phase)), start_(ep.now()) {
    if (rec_ != nullptr) rec_->PhaseStarted(ep_, phase_);
  }
  ~Scope() {
    if (rec_ != nullptr) rec_->Record(ep_.pid(), phase_, start_, ep_.now());
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Recorder* rec_;
  sim::Endpoint& ep_;
  std::string phase_;
  sim::Seconds start_;
};

}  // namespace rcc::trace
