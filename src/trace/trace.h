// Phase-tagged event tracing: each recovery step (catch exception,
// shutdown, rendezvous, shrink, state sync, recompute, ...) records its
// per-rank [start, end] interval in virtual time. Benches aggregate
// these into the paper's per-phase cost breakdowns.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/endpoint.h"

namespace rcc::trace {

struct Event {
  int pid = -1;
  std::string phase;
  sim::Seconds start = 0.0;
  sim::Seconds end = 0.0;
  double duration() const { return end - start; }
};

class Recorder {
 public:
  void Record(int pid, const std::string& phase, sim::Seconds start,
              sim::Seconds end);

  std::vector<Event> events() const;
  std::vector<Event> EventsForPhase(const std::string& phase) const;

  // Critical-path duration: the longest single-rank duration per phase
  // (what an observer of the stalled training job experiences).
  std::map<std::string, double> MaxByPhase() const;
  // Mean duration per phase across ranks.
  std::map<std::string, double> MeanByPhase() const;
  // Shortest single event per phase: for phases that *wait* for slower
  // participants (rendezvous, expand), this is the pure work component.
  std::map<std::string, double> MinByPhase() const;
  // Latest end time recorded for a phase.
  double PhaseEnd(const std::string& phase) const;

  void Clear();
  Table ToTable() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII phase scope: records [now at construction, now at destruction] on
// the endpoint's virtual clock.
class Scope {
 public:
  Scope(Recorder* rec, sim::Endpoint& ep, std::string phase)
      : rec_(rec), ep_(ep), phase_(std::move(phase)), start_(ep.now()) {}
  ~Scope() {
    if (rec_ != nullptr) rec_->Record(ep_.pid(), phase_, start_, ep_.now());
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Recorder* rec_;
  sim::Endpoint& ep_;
  std::string phase_;
  sim::Seconds start_;
};

}  // namespace rcc::trace
