// Communicator groups: the shared, immutable membership of one
// communicator instance, plus the revocation token ULFM uses to
// interrupt in-flight operations.
//
// In a real MPI these structures are replicated per process and kept
// consistent by the runtime; in the simulation the replicas are one
// shared object obtained through a deterministic GroupCache (all ranks
// deriving the same key get the same instance).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/fabric.h"

namespace rcc::mpi {

struct CommGroup {
  uint64_t ctx_id = 0;
  std::vector<int> pids;  // rank -> pid, immutable after creation
  sim::CancelToken revoke;

  int RankOfPid(int pid) const {
    for (size_t r = 0; r < pids.size(); ++r) {
      if (pids[r] == pid) return static_cast<int>(r);
    }
    return -1;
  }
};

// Allocates globally unique communicator context ids.
uint64_t AllocateContextId();

// Deterministic rendezvous for group creation: every rank computing the
// same key receives the same CommGroup instance (the first caller
// constructs it from `pids`).
std::shared_ptr<CommGroup> GetOrCreateGroup(const std::string& key,
                                            const std::vector<int>& pids);

// Builds a cache key for a derived communicator.
std::string GroupKey(uint64_t parent_ctx, const std::string& op,
                     const std::vector<int>& pids);

}  // namespace rcc::mpi
