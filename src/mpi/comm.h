// MPI-like communicator bound to one simulated rank.
//
// Semantics follow ULFM-era MPI: operations report failures
// *per-operation* through Status codes (kProcFailed with the observed
// failed pids, kRevoked once the communicator has been revoked) and the
// communicator stays usable for the survivor-side recovery operations in
// rcc::ulfm (failure_ack / agree / shrink).
//
// Allreduce and Bcast are request-based: IAllreduce/IBcast submit the op
// to a background worker (its own virtual clock over the fabric) and
// return a coll::Request; Wait merges the op's completion time into the
// rank's clock. The blocking calls are thin Start + Wait wrappers, so
// their virtual-time behaviour is identical to the old inline kernels.
// Ops on one communicator execute in submission order (engine chaining).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "coll/algorithms.h"
#include "coll/request.h"
#include "coll/transport.h"
#include "coll/tuning.h"
#include "common/status.h"
#include "mpi/group.h"
#include "sim/endpoint.h"

namespace rcc::mpi {

// Algorithm selection is shared across stacks; see coll/tuning.h.
using AllreduceAlgo = coll::AllreduceAlgo;
enum class AllgatherAlgo { kAuto, kRing, kBruck };

class Comm : public coll::Transport {
 public:
  Comm(sim::Endpoint* ep, std::shared_ptr<CommGroup> group);

  // Builds the initial world communicator over `pids` (every rank calls
  // this with the same pid list; instances share one group).
  static Comm World(sim::Endpoint& ep, const std::vector<int>& pids);

  // --- introspection ---
  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(group_->pids.size()); }
  uint64_t context_id() const { return group_->ctx_id; }
  const std::vector<int>& pids() const { return group_->pids; }
  int PidOfRank(int rank) const { return group_->pids[rank]; }
  sim::Endpoint& endpoint() const { return *ep_; }
  const std::shared_ptr<CommGroup>& group() const { return group_; }
  bool revoked() const { return group_->revoke.cancelled(); }

  // Failed pids this rank has locally observed on this communicator.
  const std::set<int>& locally_observed_failures() const { return observed_failed_; }
  void NoteFailedPids(const std::vector<int>& pids);

  // Cost scale: multiplies the modeled wire size of every message. Used
  // by benches to run full-size *virtual* tensors over reduced physical
  // buffers (see DESIGN.md "declared-size buckets").
  void set_cost_scale(double s) { cost_scale_ = s; }
  double cost_scale() const { return cost_scale_; }

  // Algorithm-selection table (bytes x ranks); overridable per comm and
  // via the RCC_ALLREDUCE_* environment knobs.
  void set_allreduce_tuning(coll::AllreduceTuning t) { tuning_ = std::move(t); }
  const coll::AllreduceTuning& allreduce_tuning() const { return tuning_; }

  // --- point-to-point (rank addressed, user tag space) ---
  Status Send(int dst_rank, int tag, const void* data, size_t bytes);
  Status Recv(int src_rank, int tag, void* data, size_t bytes);
  // Recv that additionally watches every member of the communicator:
  // returns kProcFailed as soon as ANY member dies, instead of blocking
  // forever on a sender that can no longer send (pipeline p2p needs
  // this — the peer that owes the activation may be three stages away
  // from the rank that died).
  Status RecvWatched(int src_rank, int tag, void* data, size_t bytes);
  Status RecvBlobFrom(int src_rank, int tag, std::vector<uint8_t>* out);

  // --- nonblocking collectives ---
  // The caller must keep sendbuf/recvbuf alive and untouched until the
  // request completes. Requests complete in submission order.
  template <typename T>
  coll::Request IAllreduce(const T* sendbuf, T* recvbuf, size_t count,
                           AllreduceAlgo algo = AllreduceAlgo::kAuto) {
    const double modeled_bytes =
        static_cast<double>(count * sizeof(T)) * cost_scale_;
    const AllreduceAlgo chosen =
        coll::ChooseAllreduce(tuning_, algo, modeled_bytes, size());
    coll::Request::Info info{0, coll::AllreduceAlgoName(chosen),
                             modeled_bytes};
    if (revoked()) {
      return coll::Request::Failed(info, ep_->now(),
                                   Status(Code::kRevoked, "communicator revoked"));
    }
    ++coll_seq_;
    info.op_id = coll_seq_;
    const uint64_t channel =
        sim::ChannelKey(group_->ctx_id, 1 + (coll_seq_ % 65534));
    auto group = group_;
    auto* ep = ep_;
    const int rank = rank_;
    const double cs = cost_scale_;
    return StartOp(info, [group, ep, rank, cs, channel, chosen, sendbuf,
                          recvbuf, count](sim::Seconds* now) -> Status {
      coll::FabricChannel ch(*ep, group->pids, rank, channel, cs, now,
                             &group->revoke, /*death_watch=*/nullptr);
      return coll::RunAllreduce<T>(chosen, ch, sendbuf, recvbuf, count);
    });
  }

  template <typename T>
  coll::Request IBcast(T* buf, size_t count, int root) {
    coll::Request::Info info{
        0, "binomial_bcast", static_cast<double>(count * sizeof(T)) * cost_scale_};
    if (revoked()) {
      return coll::Request::Failed(info, ep_->now(),
                                   Status(Code::kRevoked, "communicator revoked"));
    }
    ++coll_seq_;
    info.op_id = coll_seq_;
    const uint64_t channel =
        sim::ChannelKey(group_->ctx_id, 1 + (coll_seq_ % 65534));
    auto group = group_;
    auto* ep = ep_;
    const int rank = rank_;
    const double cs = cost_scale_;
    return StartOp(info, [group, ep, rank, cs, channel, buf, count,
                          root](sim::Seconds* now) -> Status {
      coll::FabricChannel ch(*ep, group->pids, rank, channel, cs, now,
                             &group->revoke, /*death_watch=*/nullptr);
      return coll::BinomialBcast<T>(ch, buf, count, root);
    });
  }

  // Blocks until the request completes; merges its completion time into
  // this rank's clock and records any observed failures.
  Status Wait(coll::Request* req);
  // Nonblocking completion probe (completion effects still via Wait).
  bool Test(const coll::Request* req) const;
  // Waits for every request; returns the first error encountered.
  Status WaitAll(std::vector<coll::Request>* reqs);

  // --- blocking collectives ---
  template <typename T>
  Status Allreduce(const T* sendbuf, T* recvbuf, size_t count,
                   AllreduceAlgo algo = AllreduceAlgo::kAuto) {
    coll::Request req = IAllreduce(sendbuf, recvbuf, count, algo);
    return Wait(&req);
  }

  template <typename T>
  Status Allgather(const T* sendbuf, T* recvbuf, size_t count,
                   AllgatherAlgo algo = AllgatherAlgo::kAuto) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    Status s;
    if (algo == AllgatherAlgo::kBruck ||
        (algo == AllgatherAlgo::kAuto && count * sizeof(T) <= 4096)) {
      s = coll::BruckAllgather<T>(*this, sendbuf, recvbuf, count);
    } else {
      s = coll::RingAllgather<T>(*this, sendbuf, recvbuf, count);
    }
    return FinishCollective(s);
  }

  template <typename T>
  Status Bcast(T* buf, size_t count, int root) {
    coll::Request req = IBcast(buf, count, root);
    return Wait(&req);
  }

  template <typename T>
  Status Reduce(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::BinomialReduce<T>(*this, sendbuf, recvbuf, count, root));
  }

  template <typename T>
  Status Gather(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::LinearGather<T>(*this, sendbuf, recvbuf, count, root));
  }

  template <typename T>
  Status Scatter(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::LinearScatter<T>(*this, sendbuf, recvbuf, count, root));
  }

  Status Barrier() {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(coll::DisseminationBarrier(*this));
  }

  Status AllgatherBlobs(const std::vector<uint8_t>& mine,
                        std::vector<std::vector<uint8_t>>* all) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(coll::AllgatherBlobs(*this, mine, all));
  }

  // Broadcast a variable-size blob from root (binomial tree). Non-root
  // callers receive into *blob.
  Status BcastBlob(std::vector<uint8_t>* blob, int root);

  // --- coll::Transport (used by the algorithm kernels) ---
  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override;
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override;
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override;

  // Used by ulfm::Agree to keep agreement instances aligned across ranks.
  uint64_t NextAgreeSeq() { return agree_seq_++; }

 private:
  Status BeginCollective();
  Status FinishCollective(Status s);

  // Launches the op worker chained after the previous op on this
  // communicator instance.
  coll::Request StartOp(coll::Request::Info info, coll::Request::Body body);

  Status RawSend(int dst_rank, uint64_t channel, int tag, const void* data,
                 size_t bytes);
  Status RawRecv(int src_rank, uint64_t channel, int tag, sim::Message* out,
                 bool watch_members = false);

  sim::Endpoint* ep_;
  std::shared_ptr<CommGroup> group_;
  int rank_;
  double cost_scale_ = 1.0;
  coll::AllreduceTuning tuning_ = coll::MpiAllreduceTuning();
  uint64_t coll_seq_ = 0;     // per-rank collective sequence (SPMD-aligned)
  uint64_t current_phase_ = 0;  // channel phase of the running collective
  uint64_t agree_seq_ = 0;
  coll::Request engine_tail_;  // last submitted op (ordering chain)
  std::set<int> observed_failed_;
};

}  // namespace rcc::mpi
