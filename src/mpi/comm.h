// MPI-like communicator bound to one simulated rank.
//
// Semantics follow ULFM-era MPI: operations report failures
// *per-operation* through Status codes (kProcFailed with the observed
// failed pids, kRevoked once the communicator has been revoked) and the
// communicator stays usable for the survivor-side recovery operations in
// rcc::ulfm (failure_ack / agree / shrink).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "coll/algorithms.h"
#include "coll/transport.h"
#include "common/status.h"
#include "mpi/group.h"
#include "sim/endpoint.h"

namespace rcc::mpi {

enum class AllreduceAlgo {
  kAuto,
  kRing,
  kRecursiveDoubling,
  kReduceBcast,
  kRabenseifner,
};
enum class AllgatherAlgo { kAuto, kRing, kBruck };

class Comm : public coll::Transport {
 public:
  Comm(sim::Endpoint* ep, std::shared_ptr<CommGroup> group);

  // Builds the initial world communicator over `pids` (every rank calls
  // this with the same pid list; instances share one group).
  static Comm World(sim::Endpoint& ep, const std::vector<int>& pids);

  // --- introspection ---
  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(group_->pids.size()); }
  uint64_t context_id() const { return group_->ctx_id; }
  const std::vector<int>& pids() const { return group_->pids; }
  int PidOfRank(int rank) const { return group_->pids[rank]; }
  sim::Endpoint& endpoint() const { return *ep_; }
  const std::shared_ptr<CommGroup>& group() const { return group_; }
  bool revoked() const { return group_->revoke.cancelled(); }

  // Failed pids this rank has locally observed on this communicator.
  const std::set<int>& locally_observed_failures() const { return observed_failed_; }
  void NoteFailedPids(const std::vector<int>& pids);

  // Cost scale: multiplies the modeled wire size of every message. Used
  // by benches to run full-size *virtual* tensors over reduced physical
  // buffers (see DESIGN.md "declared-size buckets").
  void set_cost_scale(double s) { cost_scale_ = s; }
  double cost_scale() const { return cost_scale_; }

  // --- point-to-point (rank addressed, user tag space) ---
  Status Send(int dst_rank, int tag, const void* data, size_t bytes);
  Status Recv(int src_rank, int tag, void* data, size_t bytes);
  Status RecvBlobFrom(int src_rank, int tag, std::vector<uint8_t>* out);

  // --- collectives ---
  template <typename T>
  Status Allreduce(const T* sendbuf, T* recvbuf, size_t count,
                   AllreduceAlgo algo = AllreduceAlgo::kAuto) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    Status s;
    switch (ChooseAllreduce(algo, count * sizeof(T))) {
      case AllreduceAlgo::kRing:
        s = coll::RingAllreduce<T>(*this, sendbuf, recvbuf, count);
        break;
      case AllreduceAlgo::kReduceBcast:
        s = coll::ReduceBcastAllreduce<T>(*this, sendbuf, recvbuf, count);
        break;
      case AllreduceAlgo::kRabenseifner:
        s = coll::RabenseifnerAllreduce<T>(*this, sendbuf, recvbuf, count);
        break;
      default:
        s = coll::RecursiveDoublingAllreduce<T>(*this, sendbuf, recvbuf, count);
        break;
    }
    return FinishCollective(s);
  }

  template <typename T>
  Status Allgather(const T* sendbuf, T* recvbuf, size_t count,
                   AllgatherAlgo algo = AllgatherAlgo::kAuto) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    Status s;
    if (algo == AllgatherAlgo::kBruck ||
        (algo == AllgatherAlgo::kAuto && count * sizeof(T) <= 4096)) {
      s = coll::BruckAllgather<T>(*this, sendbuf, recvbuf, count);
    } else {
      s = coll::RingAllgather<T>(*this, sendbuf, recvbuf, count);
    }
    return FinishCollective(s);
  }

  template <typename T>
  Status Bcast(T* buf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(coll::BinomialBcast<T>(*this, buf, count, root));
  }

  template <typename T>
  Status Reduce(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::BinomialReduce<T>(*this, sendbuf, recvbuf, count, root));
  }

  template <typename T>
  Status Gather(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::LinearGather<T>(*this, sendbuf, recvbuf, count, root));
  }

  template <typename T>
  Status Scatter(const T* sendbuf, T* recvbuf, size_t count, int root) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(
        coll::LinearScatter<T>(*this, sendbuf, recvbuf, count, root));
  }

  Status Barrier() {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(coll::DisseminationBarrier(*this));
  }

  Status AllgatherBlobs(const std::vector<uint8_t>& mine,
                        std::vector<std::vector<uint8_t>>* all) {
    RCC_RETURN_IF_ERROR(BeginCollective());
    return FinishCollective(coll::AllgatherBlobs(*this, mine, all));
  }

  // Broadcast a variable-size blob from root (binomial tree). Non-root
  // callers receive into *blob.
  Status BcastBlob(std::vector<uint8_t>* blob, int root);

  // --- coll::Transport (used by the algorithm kernels) ---
  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override;
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override;
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override;

  // Used by ulfm::Agree to keep agreement instances aligned across ranks.
  uint64_t NextAgreeSeq() { return agree_seq_++; }

 private:
  AllreduceAlgo ChooseAllreduce(AllreduceAlgo algo, size_t bytes) const {
    if (algo != AllreduceAlgo::kAuto) return algo;
    // Latency-bound below 64 KiB, bandwidth-bound above. The modeled
    // wire size decides (physical buffers may be reduced stand-ins).
    return static_cast<double>(bytes) * cost_scale_ <= 65536.0
               ? AllreduceAlgo::kRecursiveDoubling
               : AllreduceAlgo::kRing;
  }

  Status BeginCollective();
  Status FinishCollective(Status s);

  Status RawSend(int dst_rank, uint64_t channel, int tag, const void* data,
                 size_t bytes);
  Status RawRecv(int src_rank, uint64_t channel, int tag,
                 sim::Message* out);

  sim::Endpoint* ep_;
  std::shared_ptr<CommGroup> group_;
  int rank_;
  double cost_scale_ = 1.0;
  uint64_t coll_seq_ = 0;     // per-rank collective sequence (SPMD-aligned)
  uint64_t current_phase_ = 0;  // channel phase of the running collective
  uint64_t agree_seq_ = 0;
  std::set<int> observed_failed_;
};

}  // namespace rcc::mpi
