#include "mpi/comm.h"

#include <cstring>

#include "common/log.h"
#include "obs/metrics.h"

namespace rcc::mpi {

Comm::Comm(sim::Endpoint* ep, std::shared_ptr<CommGroup> group)
    : ep_(ep), group_(std::move(group)) {
  rank_ = group_->RankOfPid(ep_->pid());
  RCC_CHECK(rank_ >= 0) << "endpoint pid " << ep_->pid()
                        << " is not a member of the communicator";
}

Comm Comm::World(sim::Endpoint& ep, const std::vector<int>& pids) {
  auto group = GetOrCreateGroup(
      GroupKey(0, "world/f" + std::to_string(ep.fabric().id()), pids), pids);
  return Comm(&ep, group);
}

void Comm::NoteFailedPids(const std::vector<int>& pids) {
  observed_failed_.insert(pids.begin(), pids.end());
}

Status Comm::BeginCollective() {
  if (revoked()) return Status(Code::kRevoked, "communicator revoked");
  ++coll_seq_;
  current_phase_ = 1 + (coll_seq_ % 65534);
  return Status::Ok();
}

Status Comm::FinishCollective(Status s) {
  current_phase_ = 0;
  if (s.code() == Code::kProcFailed) NoteFailedPids(s.failed_pids());
  return s;
}

coll::Request Comm::StartOp(coll::Request::Info info,
                            coll::Request::Body body) {
  coll::Request req =
      coll::Request::Start(info, ep_->now(), std::move(body),
                           ep_->fabric().engine(), ep_->pid(), &engine_tail_);
  engine_tail_ = req;
  return req;
}

Status Comm::Wait(coll::Request* req) {
  if (req == nullptr || !req->active()) {
    return Status(Code::kInvalid, "wait on empty request");
  }
  Status s = req->Join();
  ep_->AdvanceTo(req->complete_time());
  if (s.ok()) {
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"algo", req->info().algo}, {"stack", "mpi"}};
    reg.GetHistogram("rcc_collective_latency_seconds", labels)
        ->Observe(req->complete_time() - req->submit_time());
    reg.GetCounter("rcc_collective_bytes_total", labels)
        ->Add(req->info().bytes);
    reg.GetCounter("rcc_collective_ops_total", labels)->Increment();
  }
  if (s.code() == Code::kProcFailed) NoteFailedPids(s.failed_pids());
  return s;
}

bool Comm::Test(const coll::Request* req) const {
  return req != nullptr && req->Test();
}

Status Comm::WaitAll(std::vector<coll::Request>* reqs) {
  Status first;
  for (auto& req : *reqs) {
    if (!req.active()) continue;
    Status s = Wait(&req);
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

Status Comm::RawSend(int dst_rank, uint64_t channel, int tag,
                     const void* data, size_t bytes) {
  if (revoked()) return Status(Code::kRevoked, "communicator revoked");
  if (dst_rank < 0 || dst_rank >= size()) {
    return Status(Code::kInvalid, "send to out-of-range rank");
  }
  const auto* p = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> payload(p, p + bytes);
  return ep_->Send(group_->pids[dst_rank], channel, tag, std::move(payload),
                   static_cast<double>(bytes) * cost_scale_);
}

Status Comm::RawRecv(int src_rank, uint64_t channel, int tag,
                     sim::Message* out, bool watch_members) {
  if (revoked()) return Status(Code::kRevoked, "communicator revoked");
  if (src_rank < 0 || src_rank >= size()) {
    return Status(Code::kInvalid, "recv from out-of-range rank");
  }
  Status s = ep_->Recv(group_->pids[src_rank], channel, tag, out,
                       &group_->revoke,
                       watch_members ? &group_->pids : nullptr);
  if (s.code() == Code::kProcFailed) NoteFailedPids(s.failed_pids());
  return s;
}

Status Comm::Send(int dst_rank, int tag, const void* data, size_t bytes) {
  return RawSend(dst_rank, sim::ChannelKey(group_->ctx_id, 0), tag, data,
                 bytes);
}

Status Comm::Recv(int src_rank, int tag, void* data, size_t bytes) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(
      RawRecv(src_rank, sim::ChannelKey(group_->ctx_id, 0), tag, &msg));
  if (msg.payload.size() != bytes) {
    return Status(Code::kInternal, "p2p size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status Comm::RecvWatched(int src_rank, int tag, void* data, size_t bytes) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(src_rank, sim::ChannelKey(group_->ctx_id, 0),
                              tag, &msg, /*watch_members=*/true));
  if (msg.payload.size() != bytes) {
    return Status(Code::kInternal, "p2p size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status Comm::RecvBlobFrom(int src_rank, int tag, std::vector<uint8_t>* out) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(
      RawRecv(src_rank, sim::ChannelKey(group_->ctx_id, 0), tag, &msg));
  *out = std::move(msg.payload);
  return Status::Ok();
}

Status Comm::SendTo(int dst_rank, int tag, const void* data, size_t bytes) {
  return RawSend(dst_rank, sim::ChannelKey(group_->ctx_id, current_phase_),
                 tag, data, bytes);
}

Status Comm::RecvFrom(int src_rank, int tag, void* data, size_t bytes) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(
      src_rank, sim::ChannelKey(group_->ctx_id, current_phase_), tag, &msg));
  if (msg.payload.size() != bytes) {
    return Status(Code::kInternal, "collective step size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status Comm::RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(
      src_rank, sim::ChannelKey(group_->ctx_id, current_phase_), tag, &msg));
  *out = std::move(msg.payload);
  return Status::Ok();
}

Status Comm::BcastBlob(std::vector<uint8_t>* blob, int root) {
  RCC_RETURN_IF_ERROR(BeginCollective());
  uint64_t size = rank_ == root ? blob->size() : 0;
  Status s = coll::BinomialBcast<uint64_t>(*this, &size, 1, root);
  if (s.ok()) {
    if (rank_ != root) blob->resize(size);
    s = coll::BinomialBcast<uint8_t>(*this, blob->data(), blob->size(), root);
  }
  return FinishCollective(s);
}

}  // namespace rcc::mpi
