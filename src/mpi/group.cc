#include "mpi/group.h"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

namespace rcc::mpi {

uint64_t AllocateContextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

namespace {
std::mutex g_cache_mu;
std::map<std::string, std::shared_ptr<CommGroup>> g_group_cache;
}  // namespace

std::shared_ptr<CommGroup> GetOrCreateGroup(const std::string& key,
                                            const std::vector<int>& pids) {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  auto it = g_group_cache.find(key);
  if (it != g_group_cache.end()) return it->second;
  auto group = std::make_shared<CommGroup>();
  group->ctx_id = AllocateContextId();
  group->pids = pids;
  g_group_cache.emplace(key, group);
  return group;
}

std::string GroupKey(uint64_t parent_ctx, const std::string& op,
                     const std::vector<int>& pids) {
  std::ostringstream os;
  os << parent_ctx << '/' << op;
  for (int pid : pids) os << ':' << pid;
  return os.str();
}

}  // namespace rcc::mpi
