#include "dnn/optimizer.h"

namespace rcc::dnn {

Sgd::Sgd(std::vector<Param*> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step(float lr_scale) {
  const float lr = opts_.lr * lr_scale;
  for (size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    Tensor& v = velocity_[k];
    for (size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i];
      if (opts_.weight_decay != 0.0f) g += opts_.weight_decay * p->value[i];
      v[i] = opts_.momentum * v[i] - lr * g;
      p->value[i] += v[i];
    }
  }
}

void Sgd::Serialize(ByteWriter* w) const {
  w->WriteF32(opts_.lr);
  w->WriteF32(opts_.momentum);
  w->WriteF32(opts_.weight_decay);
  w->WriteU64(velocity_.size());
  for (const Tensor& v : velocity_) v.Serialize(w);
}

Status Sgd::Deserialize(ByteReader* r) {
  RCC_RETURN_IF_ERROR(r->ReadF32(&opts_.lr));
  RCC_RETURN_IF_ERROR(r->ReadF32(&opts_.momentum));
  RCC_RETURN_IF_ERROR(r->ReadF32(&opts_.weight_decay));
  uint64_t count = 0;
  RCC_RETURN_IF_ERROR(r->ReadU64(&count));
  if (count != velocity_.size()) {
    return Status(Code::kIoError, "optimizer state layout mismatch");
  }
  for (Tensor& v : velocity_) {
    Tensor t;
    RCC_RETURN_IF_ERROR(t.Deserialize(r));
    if (t.shape() != v.shape()) {
      return Status(Code::kIoError, "optimizer tensor shape mismatch");
    }
    v = std::move(t);
  }
  return Status::Ok();
}

Status Sgd::Rebind(std::vector<Param*> params) {
  if (params.size() != params_.size()) {
    return Status(Code::kInvalid, "rebind: parameter count mismatch");
  }
  for (size_t k = 0; k < params.size(); ++k) {
    if (params[k]->value.shape() != velocity_[k].shape()) {
      return Status(Code::kInvalid, "rebind: parameter shape mismatch");
    }
  }
  params_ = std::move(params);
  return Status::Ok();
}

}  // namespace rcc::dnn
