#include "dnn/zoo.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rcc::dnn {

ModelSpec Vgg16Spec() {
  // Keras Applications VGG-16: 143.7M parameters, 549 MB, 16-deep,
  // 32 trainable tensors; ~15.5 GFLOP forward per 224x224 image.
  return ModelSpec{"VGG-16", 32, 16, 143.7e6, 549.0, 15.5e9};
}

ModelSpec ResNet50V2Spec() {
  // ResNet50V2: 25.6M parameters, 98 MB, depth 307 (Table 1 lists
  // trainable=272), ~4.1 GFLOP forward.
  return ModelSpec{"ResNet50V2", 272, 307, 25.6e6, 98.0, 4.1e9};
}

ModelSpec NasNetMobileSpec() {
  // NasNetMobile: 5.3M parameters, 23 MB, 1126 trainable tensors,
  // depth 389, ~0.56 GFLOP forward.
  return ModelSpec{"NasNetMobile", 1126, 389, 5.3e6, 23.0, 0.56e9};
}

std::vector<ModelSpec> KerasZoo() {
  return {Vgg16Spec(), ResNet50V2Spec(), NasNetMobileSpec()};
}

std::vector<size_t> TensorParameterCounts(const ModelSpec& spec) {
  // Log-normal raw sizes (sigma 1.6: a few dominant tensors, many small
  // ones - the shape of real conv/dense stacks), deterministically
  // seeded by the tensor count, normalised to the spec total.
  const int n = spec.trainable_tensors;
  Rng rng(0xB00C5 + static_cast<uint64_t>(n));
  std::vector<double> raw(n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    raw[i] = std::exp(rng.NextGaussian() * 1.6);
    sum += raw[i];
  }
  std::vector<size_t> counts(n);
  size_t assigned = 0;
  for (int i = 0; i < n; ++i) {
    counts[i] = std::max<size_t>(
        1, static_cast<size_t>(raw[i] / sum * spec.total_parameters));
    assigned += counts[i];
  }
  // Put the rounding remainder on the largest tensor.
  auto largest = std::max_element(counts.begin(), counts.end());
  const auto total = static_cast<size_t>(spec.total_parameters);
  if (total > assigned) {
    *largest += total - assigned;
  } else if (assigned > total && *largest > assigned - total) {
    *largest -= assigned - total;
  }
  return counts;
}

std::vector<size_t> FusionBucketBytes(const std::vector<size_t>& tensor_params,
                                      size_t bucket_bytes) {
  std::vector<size_t> buckets;
  size_t current = 0;
  for (size_t params : tensor_params) {
    const size_t bytes = params * sizeof(float);
    if (current > 0 && current + bytes > bucket_bytes) {
      buckets.push_back(current);
      current = 0;
    }
    current += bytes;
    if (current >= bucket_bytes) {
      buckets.push_back(current);
      current = 0;
    }
  }
  if (current > 0) buckets.push_back(current);
  return buckets;
}

double StepComputeSeconds(const ModelSpec& spec, int batch_per_worker,
                          double gpu_flops) {
  // Backward pass costs roughly twice the forward pass.
  return 3.0 * spec.forward_flops_per_sample * batch_per_worker / gpu_flops;
}

double StageForwardFlops(const ModelSpec& spec, int pp_stages, int tp_size,
                         int microbatch) {
  return spec.forward_flops_per_sample * microbatch / (pp_stages * tp_size);
}

double StageActivationBytes(const ModelSpec& spec, int tp_size,
                            int microbatch) {
  return 4.0 * std::sqrt(spec.total_parameters) * microbatch / tp_size;
}

double StageParamBytes(const ModelSpec& spec, int pp_stages, int tp_size) {
  return spec.size_mb * 1e6 / (pp_stages * tp_size);
}

}  // namespace rcc::dnn
