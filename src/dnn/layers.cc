#include "dnn/layers.h"

#include <cmath>

namespace rcc::dnn {

namespace {
// He-normal initialisation.
void HeInit(Tensor* t, int fan_in, uint64_t seed) {
  Rng rng(seed);
  const float std_dev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (size_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng.NextGaussian()) * std_dev;
  }
}
}  // namespace

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

Dense::Dense(int in_features, int out_features, uint64_t seed)
    : in_(in_features),
      out_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}) {
  HeInit(&weight_.value, in_features, seed);
}

Tensor Dense::Forward(const Tensor& x, bool /*train*/) {
  RCC_CHECK(x.ndim() == 2 && x.dim(1) == in_)
      << "Dense: bad input " << x.ShapeString();
  input_ = x;
  const int batch = x.dim(0);
  Tensor y({batch, out_});
  const float* w = weight_.value.data();
  const float* b = bias_.value.data();
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<size_t>(n) * in_;
    float* yn = y.data() + static_cast<size_t>(n) * out_;
    for (int o = 0; o < out_; ++o) yn[o] = b[o];
    for (int i = 0; i < in_; ++i) {
      const float xi = xn[i];
      if (xi == 0.0f) continue;
      const float* wi = w + static_cast<size_t>(i) * out_;
      for (int o = 0; o < out_; ++o) yn[o] += xi * wi[o];
    }
  }
  flops_ = 2.0 * batch * in_ * out_;
  return y;
}

Tensor Dense::Backward(const Tensor& grad_out) {
  const int batch = input_.dim(0);
  Tensor grad_in({batch, in_});
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  for (int n = 0; n < batch; ++n) {
    const float* xn = input_.data() + static_cast<size_t>(n) * in_;
    const float* gy = grad_out.data() + static_cast<size_t>(n) * out_;
    float* gx = grad_in.data() + static_cast<size_t>(n) * in_;
    for (int o = 0; o < out_; ++o) gb[o] += gy[o];
    for (int i = 0; i < in_; ++i) {
      const float* wi = w + static_cast<size_t>(i) * out_;
      float* gwi = gw + static_cast<size_t>(i) * out_;
      float acc = 0.0f;
      const float xi = xn[i];
      for (int o = 0; o < out_; ++o) {
        acc += gy[o] * wi[o];
        gwi[o] += xi * gy[o];
      }
      gx[i] = acc;
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

Tensor ReLU::Forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y(x.shape());
  for (size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  Tensor grad_in(input_.shape());
  for (size_t i = 0; i < input_.size(); ++i) {
    grad_in[i] = input_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int pad, uint64_t seed)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}) {
  HeInit(&weight_.value, in_channels * kernel * kernel, seed);
}

Tensor Conv2D::Forward(const Tensor& x, bool /*train*/) {
  RCC_CHECK(x.ndim() == 4 && x.dim(1) == in_ch_)
      << "Conv2D: bad input " << x.ShapeString();
  input_ = x;
  const int batch = x.dim(0), height = x.dim(2), width = x.dim(3);
  const int oh = (height + 2 * pad_ - k_) / stride_ + 1;
  const int ow = (width + 2 * pad_ - k_) / stride_ + 1;
  Tensor y({batch, out_ch_, oh, ow});
  const float* w = weight_.value.data();
  auto xat = [&](int n, int c, int h, int v) {
    return x.data()[((static_cast<size_t>(n) * in_ch_ + c) * height + h) * width + v];
  };
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float b = bias_.value[oc];
      for (int i = 0; i < oh; ++i) {
        for (int j = 0; j < ow; ++j) {
          float acc = b;
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int kh = 0; kh < k_; ++kh) {
              const int h = i * stride_ - pad_ + kh;
              if (h < 0 || h >= height) continue;
              for (int kw = 0; kw < k_; ++kw) {
                const int v = j * stride_ - pad_ + kw;
                if (v < 0 || v >= width) continue;
                acc += xat(n, ic, h, v) *
                       w[((static_cast<size_t>(oc) * in_ch_ + ic) * k_ + kh) * k_ + kw];
              }
            }
          }
          y.data()[((static_cast<size_t>(n) * out_ch_ + oc) * oh + i) * ow + j] = acc;
        }
      }
    }
  }
  flops_ = 2.0 * batch * out_ch_ * oh * ow * in_ch_ * k_ * k_;
  return y;
}

Tensor Conv2D::Backward(const Tensor& grad_out) {
  const int batch = input_.dim(0), height = input_.dim(2),
            width = input_.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor grad_in(input_.shape());
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      for (int i = 0; i < oh; ++i) {
        for (int j = 0; j < ow; ++j) {
          const float gy =
              grad_out.data()[((static_cast<size_t>(n) * out_ch_ + oc) * oh + i) * ow + j];
          if (gy == 0.0f) continue;
          gb[oc] += gy;
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int kh = 0; kh < k_; ++kh) {
              const int h = i * stride_ - pad_ + kh;
              if (h < 0 || h >= height) continue;
              for (int kw = 0; kw < k_; ++kw) {
                const int v = j * stride_ - pad_ + kw;
                if (v < 0 || v >= width) continue;
                const size_t xi =
                    ((static_cast<size_t>(n) * in_ch_ + ic) * height + h) * width + v;
                const size_t wi =
                    ((static_cast<size_t>(oc) * in_ch_ + ic) * k_ + kh) * k_ + kw;
                gw[wi] += input_.data()[xi] * gy;
                grad_in.data()[xi] += w[wi] * gy;
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// MaxPool2D
// ---------------------------------------------------------------------

Tensor MaxPool2D::Forward(const Tensor& x, bool /*train*/) {
  const int batch = x.dim(0), ch = x.dim(1), height = x.dim(2),
            width = x.dim(3);
  const int oh = (height - k_) / stride_ + 1;
  const int ow = (width - k_) / stride_ + 1;
  in_shape_ = x.shape();
  Tensor y({batch, ch, oh, ow});
  argmax_.assign(y.size(), 0);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < ch; ++c) {
      for (int i = 0; i < oh; ++i) {
        for (int j = 0; j < ow; ++j) {
          float best = -3.4e38f;
          int best_idx = 0;
          for (int kh = 0; kh < k_; ++kh) {
            for (int kw = 0; kw < k_; ++kw) {
              const int h = i * stride_ + kh;
              const int v = j * stride_ + kw;
              const size_t xi =
                  ((static_cast<size_t>(n) * ch + c) * height + h) * width + v;
              if (x.data()[xi] > best) {
                best = x.data()[xi];
                best_idx = static_cast<int>(xi);
              }
            }
          }
          const size_t yi =
              ((static_cast<size_t>(n) * ch + c) * oh + i) * ow + j;
          y.data()[yi] = best;
          argmax_[yi] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::Backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (size_t yi = 0; yi < grad_out.size(); ++yi) {
    grad_in.data()[argmax_[yi]] += grad_out.data()[yi];
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------

Tensor GlobalAvgPool::Forward(const Tensor& x, bool /*train*/) {
  const int batch = x.dim(0), ch = x.dim(1), height = x.dim(2),
            width = x.dim(3);
  in_shape_ = x.shape();
  Tensor y({batch, ch});
  const float inv = 1.0f / static_cast<float>(height * width);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < ch; ++c) {
      const float* xc =
          x.data() + (static_cast<size_t>(n) * ch + c) * height * width;
      float acc = 0.0f;
      for (int i = 0; i < height * width; ++i) acc += xc[i];
      y.data()[static_cast<size_t>(n) * ch + c] = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  const int ch = in_shape_[1], height = in_shape_[2], width = in_shape_[3];
  Tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(height * width);
  for (int n = 0; n < in_shape_[0]; ++n) {
    for (int c = 0; c < ch; ++c) {
      const float g =
          grad_out.data()[static_cast<size_t>(n) * ch + c] * inv;
      float* gx =
          grad_in.data() + (static_cast<size_t>(n) * ch + c) * height * width;
      for (int i = 0; i < height * width; ++i) gx[i] = g;
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------

Tensor Flatten::Forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  Tensor y = x;
  y.Reshape({x.dim(0), static_cast<int>(x.size()) / x.dim(0)});
  return y;
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  grad_in.Reshape(in_shape_);
  return grad_in;
}

// ---------------------------------------------------------------------
// BatchNorm2D
// ---------------------------------------------------------------------

BatchNorm2D::BatchNorm2D(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}) {
  gamma_.value.Fill(1.0f);
  running_var_.Fill(1.0f);
}

Tensor BatchNorm2D::Forward(const Tensor& x, bool train) {
  const int batch = x.dim(0), ch = x.dim(1), height = x.dim(2),
            width = x.dim(3);
  RCC_CHECK(ch == channels_) << "BatchNorm2D: channel mismatch";
  in_shape_ = x.shape();
  const int plane = height * width;
  const float m = static_cast<float>(batch * plane);
  Tensor y(x.shape());
  xhat_ = Tensor(x.shape());
  batch_mean_.assign(channels_, 0.0f);
  batch_inv_std_.assign(channels_, 0.0f);

  for (int c = 0; c < channels_; ++c) {
    float mean, inv_std;
    if (train) {
      float sum = 0.0f;
      for (int n = 0; n < batch; ++n) {
        const float* xc = x.data() + (static_cast<size_t>(n) * ch + c) * plane;
        for (int i = 0; i < plane; ++i) sum += xc[i];
      }
      mean = sum / m;
      float var_sum = 0.0f;
      for (int n = 0; n < batch; ++n) {
        const float* xc = x.data() + (static_cast<size_t>(n) * ch + c) * plane;
        for (int i = 0; i < plane; ++i) {
          const float d = xc[i] - mean;
          var_sum += d * d;
        }
      }
      const float var = var_sum / m;
      inv_std = 1.0f / std::sqrt(var + eps_);
      running_mean_[c] = momentum_ * running_mean_[c] + (1 - momentum_) * mean;
      running_var_[c] = momentum_ * running_var_[c] + (1 - momentum_) * var;
    } else {
      mean = running_mean_[c];
      inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
    }
    batch_mean_[c] = mean;
    batch_inv_std_[c] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (int n = 0; n < batch; ++n) {
      const size_t base = (static_cast<size_t>(n) * ch + c) * plane;
      for (int i = 0; i < plane; ++i) {
        const float xh = (x.data()[base + i] - mean) * inv_std;
        xhat_.data()[base + i] = xh;
        y.data()[base + i] = g * xh + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2D::Backward(const Tensor& grad_out) {
  const int batch = in_shape_[0], ch = in_shape_[1],
            plane = in_shape_[2] * in_shape_[3];
  const float m = static_cast<float>(batch * plane);
  Tensor grad_in(in_shape_);
  for (int c = 0; c < channels_; ++c) {
    float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
    for (int n = 0; n < batch; ++n) {
      const size_t base = (static_cast<size_t>(n) * ch + c) * plane;
      for (int i = 0; i < plane; ++i) {
        sum_dy += grad_out.data()[base + i];
        sum_dy_xhat += grad_out.data()[base + i] * xhat_.data()[base + i];
      }
    }
    gamma_.grad[c] += sum_dy_xhat;
    beta_.grad[c] += sum_dy;
    const float g_inv_std = gamma_.value[c] * batch_inv_std_[c];
    const float mean_dy = sum_dy / m;
    const float mean_dy_xhat = sum_dy_xhat / m;
    for (int n = 0; n < batch; ++n) {
      const size_t base = (static_cast<size_t>(n) * ch + c) * plane;
      for (int i = 0; i < plane; ++i) {
        grad_in.data()[base + i] =
            g_inv_std * (grad_out.data()[base + i] - mean_dy -
                         xhat_.data()[base + i] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------

Tensor Dropout::Forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  if (!train || rate_ <= 0.0f) {
    mask_.assign(x.size(), 1.0f);
    y = x;
    return y;
  }
  const float scale = 1.0f / (1.0f - rate_);
  mask_.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const bool keep = rng_.NextDouble() >= rate_;
    mask_[i] = keep ? scale : 0.0f;
    y[i] = x[i] * mask_[i];
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  Tensor grad_in(grad_out.shape());
  for (size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * mask_[i];
  }
  return grad_in;
}

// ---------------------------------------------------------------------
// SoftmaxCrossEntropy
// ---------------------------------------------------------------------

float SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  const int batch = logits.dim(0);
  const int classes = logits.dim(1);
  RCC_CHECK(static_cast<int>(labels.size()) == batch)
      << "labels/batch mismatch";
  probs_ = Tensor(logits.shape());
  labels_ = labels;
  float loss = 0.0f;
  for (int n = 0; n < batch; ++n) {
    const float* z = logits.data() + static_cast<size_t>(n) * classes;
    float* p = probs_.data() + static_cast<size_t>(n) * classes;
    float max_z = z[0];
    for (int c = 1; c < classes; ++c) max_z = std::max(max_z, z[c]);
    float denom = 0.0f;
    for (int c = 0; c < classes; ++c) {
      p[c] = std::exp(z[c] - max_z);
      denom += p[c];
    }
    const float inv = 1.0f / denom;
    for (int c = 0; c < classes; ++c) p[c] *= inv;
    loss -= std::log(std::max(p[labels[n]], 1e-12f));
  }
  return loss / static_cast<float>(batch);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  const int batch = probs_.dim(0);
  const int classes = probs_.dim(1);
  Tensor grad(probs_.shape());
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const float* p = probs_.data() + static_cast<size_t>(n) * classes;
    float* g = grad.data() + static_cast<size_t>(n) * classes;
    for (int c = 0; c < classes; ++c) {
      g[c] = (p[c] - (c == labels_[n] ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  return grad;
}

int SoftmaxCrossEntropy::CorrectCount() const {
  const int batch = probs_.dim(0);
  const int classes = probs_.dim(1);
  int correct = 0;
  for (int n = 0; n < batch; ++n) {
    const float* p = probs_.data() + static_cast<size_t>(n) * classes;
    int best = 0;
    for (int c = 1; c < classes; ++c) {
      if (p[c] > p[best]) best = c;
    }
    if (best == labels_[n]) ++correct;
  }
  return correct;
}

}  // namespace rcc::dnn
