#include "dnn/data.h"

#include <cmath>

namespace rcc::dnn {

ClusterDataset::ClusterDataset(int dim, int classes, int num_samples,
                               uint64_t seed, float noise)
    : dim_(dim),
      classes_(classes),
      num_samples_(num_samples),
      seed_(seed),
      noise_(noise) {
  centroids_.resize(static_cast<size_t>(classes) * dim);
  Rng rng(seed, /*stream=*/1);
  for (float& c : centroids_) c = rng.NextFloat(-2.0f, 2.0f);
}

int ClusterDataset::Sample(int i, float* x) const {
  Rng rng(seed_, /*stream=*/1000 + static_cast<uint64_t>(i));
  const int label = static_cast<int>(rng.NextBelow(classes_));
  const float* c = centroids_.data() + static_cast<size_t>(label) * dim_;
  for (int d = 0; d < dim_; ++d) {
    x[d] = c[d] + static_cast<float>(rng.NextGaussian()) * noise_;
  }
  return label;
}

Batch ClusterDataset::GetBatch(int start, int count) const {
  Batch batch;
  batch.x = Tensor({count, dim_});
  batch.labels.resize(count);
  for (int n = 0; n < count; ++n) {
    const int i = (start + n) % num_samples_;
    batch.labels[n] =
        Sample(i, batch.x.data() + static_cast<size_t>(n) * dim_);
  }
  return batch;
}

Batch ClusterDataset::ShardBatch(int epoch, int step, int batch_per_worker,
                                 int rank, int world) const {
  Batch batch;
  batch.x = Tensor({batch_per_worker, dim_});
  batch.labels.resize(batch_per_worker);
  // Round-robin shard with an epoch-dependent offset so successive
  // epochs visit samples in a different order.
  const int base = epoch * 7919 + step * batch_per_worker * world;
  for (int n = 0; n < batch_per_worker; ++n) {
    const int i = (base + n * world + rank) % num_samples_;
    batch.labels[n] =
        Sample(i, batch.x.data() + static_cast<size_t>(n) * dim_);
  }
  return batch;
}

SpiralDataset::SpiralDataset(int classes, int samples_per_class,
                             uint64_t seed, float noise)
    : classes_(classes) {
  Rng rng(seed, /*stream=*/2);
  const int n = samples_per_class;
  points_.reserve(static_cast<size_t>(classes) * n * 2);
  labels_.reserve(static_cast<size_t>(classes) * n);
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < n; ++i) {
      const float t = static_cast<float>(i) / static_cast<float>(n);
      const float radius = 0.1f + 0.9f * t;
      const float angle =
          t * 4.0f + static_cast<float>(c) * 6.2831853f / classes_ +
          static_cast<float>(rng.NextGaussian()) * noise;
      points_.push_back(radius * std::cos(angle));
      points_.push_back(radius * std::sin(angle));
      labels_.push_back(c);
    }
  }
}

Batch SpiralDataset::GetBatch(int start, int count) const {
  Batch batch;
  batch.x = Tensor({count, 2});
  batch.labels.resize(count);
  const int total = size();
  for (int n = 0; n < count; ++n) {
    const int i = (start + n) % total;
    batch.x.data()[2 * n] = points_[2 * i];
    batch.x.data()[2 * n + 1] = points_[2 * i + 1];
    batch.labels[n] = labels_[i];
  }
  return batch;
}

SyntheticImageDataset::SyntheticImageDataset(int channels, int hw,
                                             int classes, int num_samples,
                                             uint64_t seed)
    : channels_(channels),
      hw_(hw),
      classes_(classes),
      num_samples_(num_samples),
      seed_(seed) {}

Batch SyntheticImageDataset::GetBatch(int start, int count) const {
  Batch batch;
  batch.x = Tensor({count, channels_, hw_, hw_});
  batch.labels.resize(count);
  for (int n = 0; n < count; ++n) {
    const int i = (start + n) % num_samples_;
    Rng rng(seed_, /*stream=*/5000 + static_cast<uint64_t>(i));
    const int label = static_cast<int>(rng.NextBelow(classes_));
    batch.labels[n] = label;
    // Class signature: a horizontal wave whose frequency encodes the
    // class, plus noise.
    const float freq = 1.0f + static_cast<float>(label);
    float* img = batch.x.data() +
                 static_cast<size_t>(n) * channels_ * hw_ * hw_;
    for (int c = 0; c < channels_; ++c) {
      for (int y = 0; y < hw_; ++y) {
        for (int x = 0; x < hw_; ++x) {
          const float wave =
              std::sin(freq * 6.2831853f * static_cast<float>(x) / hw_);
          img[(static_cast<size_t>(c) * hw_ + y) * hw_ + x] =
              wave + 0.3f * static_cast<float>(rng.NextGaussian());
        }
      }
    }
  }
  return batch;
}

}  // namespace rcc::dnn
