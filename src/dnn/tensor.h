// Dense fp32 tensor with row-major layout. Deliberately minimal: the
// training substrate needs correct forward/backward math and stable
// serialisation, not a full autograd framework.
#pragma once

#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/serial.h"
#include "common/status.h"

namespace rcc::dnn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    data_.assign(ComputeSize(shape_), 0.0f);
  }
  Tensor(std::vector<int> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    RCC_CHECK(data_.size() == ComputeSize(shape_))
        << "tensor data/shape mismatch";
  }

  static size_t ComputeSize(const std::vector<int>& shape) {
    size_t n = 1;
    for (int d : shape) n *= static_cast<size_t>(d);
    return n;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_[i]; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  size_t size() const { return data_.size(); }
  size_t bytes() const { return data_.size() * sizeof(float); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  // Reshape without copying; total size must match.
  void Reshape(std::vector<int> shape) {
    RCC_CHECK(ComputeSize(shape) == data_.size()) << "reshape size mismatch";
    shape_ = std::move(shape);
  }

  std::string ShapeString() const {
    std::string s = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

  void Serialize(ByteWriter* w) const {
    w->WriteU64(shape_.size());
    for (int d : shape_) w->WriteI32(d);
    w->WriteFloats(data_.data(), data_.size());
  }
  Status Deserialize(ByteReader* r) {
    uint64_t ndim = 0;
    RCC_RETURN_IF_ERROR(r->ReadU64(&ndim));
    std::vector<int> shape(ndim);
    for (uint64_t i = 0; i < ndim; ++i) {
      int32_t d = 0;
      RCC_RETURN_IF_ERROR(r->ReadI32(&d));
      shape[i] = d;
    }
    std::vector<float> data;
    RCC_RETURN_IF_ERROR(r->ReadFloats(&data));
    if (data.size() != ComputeSize(shape)) {
      return Status(Code::kIoError, "tensor payload/shape mismatch");
    }
    shape_ = std::move(shape);
    data_ = std::move(data);
    return Status::Ok();
  }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

// A trainable parameter: value plus accumulated gradient.
struct Param {
  explicit Param(std::vector<int> shape)
      : value(shape), grad(std::move(shape)) {}
  Tensor value;
  Tensor grad;
};

}  // namespace rcc::dnn
