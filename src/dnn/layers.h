// Neural-network layers with explicit forward/backward implementations
// (NCHW layout). Gradients are *accumulated* into Param::grad so the
// data-parallel trainer controls when they are zeroed and reduced.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dnn/tensor.h"

namespace rcc::dnn {

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` toggles training-only behaviour (dropout masks, batch-norm
  // statistics).
  virtual Tensor Forward(const Tensor& x, bool train) = 0;
  // Consumes the gradient wrt this layer's output, accumulates parameter
  // gradients, and returns the gradient wrt the input.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  virtual std::vector<Param*> Params() { return {}; }
  virtual std::string Name() const = 0;
  // Approximate multiply-accumulate count per forward pass for the last
  // seen batch (used by the compute-time model; 0 = negligible).
  virtual double ForwardFlops() const { return 0.0; }
};

class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, uint64_t seed);
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Dense"; }
  double ForwardFlops() const override { return flops_; }

 private:
  int in_, out_;
  Param weight_;  // [in, out]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
  double flops_ = 0.0;
};

class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

class Conv2D : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, int stride, int pad,
         uint64_t seed);
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2D"; }
  double ForwardFlops() const override { return flops_; }

 private:
  int in_ch_, out_ch_, k_, stride_, pad_;
  Param weight_;  // [out_ch, in_ch, k, k]
  Param bias_;    // [out_ch]
  Tensor input_;
  double flops_ = 0.0;
};

class MaxPool2D : public Layer {
 public:
  MaxPool2D(int kernel, int stride) : k_(kernel), stride_(stride) {}
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "MaxPool2D"; }

 private:
  int k_, stride_;
  std::vector<int> argmax_;  // flat input index per output element
  std::vector<int> in_shape_;
};

// Global average pool over H and W: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int> in_shape_;
};

class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<int> in_shape_;
};

class BatchNorm2D : public Layer {
 public:
  explicit BatchNorm2D(int channels, float momentum = 0.9f,
                       float eps = 1e-5f);
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> Params() override { return {&gamma_, &beta_}; }
  std::string Name() const override { return "BatchNorm2D"; }

 private:
  int channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Cached training-pass state.
  Tensor xhat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  std::vector<int> in_shape_;
};

class Dropout : public Layer {
 public:
  Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {}
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Dropout"; }

 private:
  float rate_;
  Rng rng_;
  std::vector<float> mask_;
};

// Softmax + cross-entropy head (not a Layer: it terminates the graph).
// Labels are class indices.
class SoftmaxCrossEntropy {
 public:
  // Returns mean loss over the batch; caches probabilities.
  float Forward(const Tensor& logits, const std::vector<int>& labels);
  // Gradient wrt logits (already divided by batch size).
  Tensor Backward() const;
  // Correct top-1 predictions in the cached batch.
  int CorrectCount() const;

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace rcc::dnn
