// Sequential model container: forward/backward over a layer stack,
// flattened parameter access for the data-parallel trainer, and stable
// serialisation for checkpoints and joiner state sync.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dnn/layers.h"
#include "dnn/tensor.h"

namespace rcc::dnn {

class Model {
 public:
  Model() = default;

  Model& Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Model& Emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor Forward(const Tensor& x, bool train);
  // Backward through every layer; gradients accumulate into Param::grad.
  void Backward(const Tensor& loss_grad);

  std::vector<Param*> Params() const;
  void ZeroGrad();

  size_t ParameterCount() const;
  size_t ParameterBytes() const { return ParameterCount() * sizeof(float); }
  // MACs of the last forward pass (drives the simulated compute time).
  double LastForwardFlops() const;

  // Copies all parameter values into / out of one flat buffer (rank->rank
  // state sync). Order is the layer/param declaration order.
  void CopyParamsTo(std::vector<float>* flat) const;
  Status CopyParamsFrom(const std::vector<float>& flat);

  // Full state (parameter tensors) serialisation.
  void Serialize(ByteWriter* w) const;
  Status Deserialize(ByteReader* r);

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Builders used by tests and examples (small, fully-physical models).
Model BuildMlp(int in_features, const std::vector<int>& hidden, int classes,
               uint64_t seed);
Model BuildSmallCnn(int in_channels, int image_size, int classes,
                    uint64_t seed);

}  // namespace rcc::dnn
