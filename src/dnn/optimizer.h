// SGD with momentum and weight decay, plus the large-batch learning-rate
// schedule (linear scaling + gradual warmup, Goyal et al. 2017) the
// elastic trainer uses to stay stable when the worker count changes.
#pragma once

#include <vector>

#include "common/serial.h"
#include "dnn/tensor.h"

namespace rcc::dnn {

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdOptions opts);

  // Applies one update using Param::grad. `lr_scale` multiplies the base
  // learning rate (warmup / worker scaling).
  void Step(float lr_scale = 1.0f);

  const SgdOptions& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

  // Momentum buffers are part of the training state (checkpointed and
  // synced to joiners alongside the parameters).
  void Serialize(ByteWriter* w) const;
  Status Deserialize(ByteReader* r);

  // Rebinds the optimizer to a freshly-constructed model's parameters
  // (used when a joiner builds its model then restores state).
  Status Rebind(std::vector<Param*> params);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;  // one per param, same shape
  SgdOptions opts_;
};

// Linear-scaling learning-rate rule with gradual warmup: the effective
// rate ramps from base_lr to base_lr * (workers / base_workers) over
// `warmup_steps`, then stays at the scaled value. Recomputed whenever
// the worker count changes (elastic rescaling).
class LinearScalingLr {
 public:
  LinearScalingLr(float base_lr, int base_workers, int warmup_steps)
      : base_lr_(base_lr),
        base_workers_(base_workers),
        warmup_steps_(warmup_steps) {}

  float LrAt(int step, int workers) const {
    const float target =
        base_lr_ * static_cast<float>(workers) / static_cast<float>(base_workers_);
    if (warmup_steps_ <= 0 || step >= warmup_steps_) return target;
    const float frac = static_cast<float>(step) / static_cast<float>(warmup_steps_);
    return base_lr_ + (target - base_lr_) * frac;
  }

 private:
  float base_lr_;
  int base_workers_;
  int warmup_steps_;
};

}  // namespace rcc::dnn
