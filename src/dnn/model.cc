#include "dnn/model.h"

namespace rcc::dnn {

Tensor Model::Forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur, train);
  return cur;
}

void Model::Backward(const Tensor& loss_grad) {
  Tensor cur = loss_grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->Backward(cur);
  }
}

std::vector<Param*> Model::Params() const {
  std::vector<Param*> params;
  for (const auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

void Model::ZeroGrad() {
  for (Param* p : Params()) p->grad.Zero();
}

size_t Model::ParameterCount() const {
  size_t n = 0;
  for (Param* p : Params()) n += p->value.size();
  return n;
}

double Model::LastForwardFlops() const {
  double flops = 0.0;
  for (const auto& layer : layers_) flops += layer->ForwardFlops();
  return flops;
}

void Model::CopyParamsTo(std::vector<float>* flat) const {
  flat->clear();
  flat->reserve(ParameterCount());
  for (Param* p : Params()) {
    flat->insert(flat->end(), p->value.data(),
                 p->value.data() + p->value.size());
  }
}

Status Model::CopyParamsFrom(const std::vector<float>& flat) {
  if (flat.size() != ParameterCount()) {
    return Status(Code::kInvalid, "flat parameter size mismatch");
  }
  size_t off = 0;
  for (Param* p : Params()) {
    std::copy(flat.begin() + off, flat.begin() + off + p->value.size(),
              p->value.data());
    off += p->value.size();
  }
  return Status::Ok();
}

void Model::Serialize(ByteWriter* w) const {
  auto params = Params();
  w->WriteU64(params.size());
  for (Param* p : params) p->value.Serialize(w);
}

Status Model::Deserialize(ByteReader* r) {
  uint64_t count = 0;
  RCC_RETURN_IF_ERROR(r->ReadU64(&count));
  auto params = Params();
  if (count != params.size()) {
    return Status(Code::kIoError, "model layout mismatch in checkpoint");
  }
  for (Param* p : params) {
    Tensor t;
    RCC_RETURN_IF_ERROR(t.Deserialize(r));
    if (t.shape() != p->value.shape()) {
      return Status(Code::kIoError, "parameter shape mismatch in checkpoint");
    }
    p->value = std::move(t);
  }
  return Status::Ok();
}

Model BuildMlp(int in_features, const std::vector<int>& hidden, int classes,
               uint64_t seed) {
  Model m;
  int prev = in_features;
  uint64_t layer_seed = seed;
  for (int width : hidden) {
    m.Emplace<Dense>(prev, width, layer_seed++);
    m.Emplace<ReLU>();
    prev = width;
  }
  m.Emplace<Dense>(prev, classes, layer_seed++);
  return m;
}

Model BuildSmallCnn(int in_channels, int /*image_size*/, int classes,
                    uint64_t seed) {
  Model m;
  uint64_t layer_seed = seed;
  m.Emplace<Conv2D>(in_channels, 8, 3, 1, 1, layer_seed++);
  m.Emplace<BatchNorm2D>(8);
  m.Emplace<ReLU>();
  m.Emplace<MaxPool2D>(2, 2);
  m.Emplace<Conv2D>(8, 16, 3, 1, 1, layer_seed++);
  m.Emplace<ReLU>();
  m.Emplace<GlobalAvgPool>();
  m.Emplace<Dense>(16, classes, layer_seed++);
  return m;
}

}  // namespace rcc::dnn
