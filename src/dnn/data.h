// Deterministic synthetic datasets: substitutes for ImageNet in the
// paper's experiments (see DESIGN.md - pixel contents are irrelevant to
// the measured recovery/reconfiguration costs; tests and examples use
// these for real end-to-end numerics and convergence checks).
//
// Sample i is a pure function of (seed, i), so any worker can
// materialise any shard without data movement - exactly how the
// elastic trainer re-shards after a worker-count change.
#pragma once

#include <vector>

#include "common/rng.h"
#include "dnn/tensor.h"

namespace rcc::dnn {

struct Batch {
  Tensor x;
  std::vector<int> labels;
  int size() const { return static_cast<int>(labels.size()); }
};

// Gaussian-cluster classification in `dim` dimensions: class c has a
// deterministic random centroid; samples are centroid + noise.
class ClusterDataset {
 public:
  ClusterDataset(int dim, int classes, int num_samples, uint64_t seed,
                 float noise = 0.6f);

  int size() const { return num_samples_; }
  int dim() const { return dim_; }
  int classes() const { return classes_; }

  // Sample i (deterministic): fills `x` (dim floats) and returns label.
  int Sample(int i, float* x) const;

  // Batch [start, start+count), indices mod size().
  Batch GetBatch(int start, int count) const;

  // Data-parallel shard: worker `rank` of `world` draws sample indices
  // rank, rank+world, rank+2*world, ... within one epoch of `size()`
  // samples. Deterministic for any (rank, world) split.
  Batch ShardBatch(int epoch, int step, int batch_per_worker, int rank,
                   int world) const;

 private:
  int dim_, classes_, num_samples_;
  uint64_t seed_;
  float noise_;
  std::vector<float> centroids_;  // [classes, dim]
};

// 2-D interleaved spirals, `classes` arms: the classic nonlinearly
// separable toy problem used by the quickstart example to show real
// convergence across elastic events.
class SpiralDataset {
 public:
  SpiralDataset(int classes, int samples_per_class, uint64_t seed,
                float noise = 0.15f);
  int size() const { return static_cast<int>(labels_.size()); }
  int classes() const { return classes_; }
  Batch GetBatch(int start, int count) const;
  Batch All() const { return GetBatch(0, size()); }

 private:
  int classes_;
  std::vector<float> points_;  // [n, 2]
  std::vector<int> labels_;
};

// Image-like dataset for CNN paths: [channels, hw, hw] tensors whose
// per-class frequency signature makes them learnable.
class SyntheticImageDataset {
 public:
  SyntheticImageDataset(int channels, int hw, int classes, int num_samples,
                        uint64_t seed);
  int size() const { return num_samples_; }
  Batch GetBatch(int start, int count) const;

 private:
  int channels_, hw_, classes_, num_samples_;
  uint64_t seed_;
};

}  // namespace rcc::dnn
