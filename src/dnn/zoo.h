// Model zoo: the paper's Table 1 Keras benchmark applications, carried
// as *specs* (parameter footprint, tensor count, depth, per-sample
// compute) plus a deterministic per-tensor size layout.
//
// Benchmarks run these specs as declared-size gradient bucket sets
// (virtual bytes = real model bytes over reduced physical buffers);
// tests and examples use fully-physical small models from dnn/model.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcc::dnn {

struct ModelSpec {
  std::string name;
  int trainable_tensors = 0;   // Table 1 "Trainable"
  int depth = 0;               // Table 1 "Depth"
  double total_parameters = 0; // Table 1 "Total Parameters"
  double size_mb = 0;          // Table 1 "Size (MB)"
  double forward_flops_per_sample = 0;  // compute-time model (fp32 FLOPs)
};

// The three applications of Table 1.
ModelSpec Vgg16Spec();
ModelSpec ResNet50V2Spec();
ModelSpec NasNetMobileSpec();
std::vector<ModelSpec> KerasZoo();

// Deterministic per-tensor parameter counts: `trainable_tensors` entries
// summing to total_parameters, with a heavy-tailed (log-normal) size
// distribution resembling real conv/dense layer footprints. Identical on
// every rank (pure function of the spec).
std::vector<size_t> TensorParameterCounts(const ModelSpec& spec);

// Greedy fusion of the tensor list into buckets of at most
// `bucket_bytes` (Horovod tensor-fusion analogue): returns per-bucket
// byte sizes, preserving tensor order. A tensor larger than the
// threshold gets its own bucket.
std::vector<size_t> FusionBucketBytes(const std::vector<size_t>& tensor_params,
                                      size_t bucket_bytes);

// Training step cost (seconds of GPU time) for one worker processing
// `batch_per_worker` samples: forward + backward (~2x forward).
double StepComputeSeconds(const ModelSpec& spec, int batch_per_worker,
                          double gpu_flops);

// --- pipeline-parallel stage costs ---
// The pipeline trainer slices the model into `pp_stages` equal slices
// and shards each slice `tp_size` ways; these are the synthetic
// per-stage cost inputs for one microbatch of `microbatch` samples.

// Forward FLOPs of one stage shard for one microbatch (backward is the
// conventional 2x of this).
double StageForwardFlops(const ModelSpec& spec, int pp_stages, int tp_size,
                         int microbatch);
// Bytes of the activation tensor handed between adjacent stages for one
// microbatch (per TP shard): activation width is modeled as
// 4*sqrt(total_parameters) bytes per sample (fp32, roughly the hidden
// width of a square-ish network).
double StageActivationBytes(const ModelSpec& spec, int tp_size,
                            int microbatch);
// Parameter bytes held by one stage shard (model bytes / (pp*tp)): the
// unit of re-shard traffic when a spare adopts a slot or the grid
// reforms.
double StageParamBytes(const ModelSpec& spec, int pp_stages, int tp_size);

}  // namespace rcc::dnn
