#include "gloo/gloo.h"

#include <cstring>

#include "common/log.h"
#include "common/serial.h"
#include "obs/metrics.h"

namespace rcc::gloo {

Context::Context(sim::Endpoint* ep, std::shared_ptr<mpi::CommGroup> group,
                 double cost_scale)
    : ep_(ep), group_(std::move(group)), cost_scale_(cost_scale) {
  rank_ = group_->RankOfPid(ep_->pid());
  RCC_CHECK(rank_ >= 0) << "gloo context: pid not in membership";
}

std::unique_ptr<Context> Context::Connect(sim::Endpoint& ep, kv::Store& store,
                                          const std::string& round_key,
                                          int world_size, double cost_scale) {
  const auto& costs = ep.fabric().config().costs;
  const sim::Seconds rendezvous_start = ep.now();

  // 1. Allocate a rank slot (one KV round trip).
  auto slot = store.AddAndGet(&ep, round_key + "/slots", 1);
  if (!slot.ok()) throw IoException(slot.status());
  const int my_rank = static_cast<int>(slot.value() - 1);
  if (my_rank >= world_size) {
    throw IoException(Status(Code::kInvalid,
                             "rendezvous round oversubscribed"));
  }

  // 2. Publish this process's address.
  ByteWriter w;
  w.WriteI32(ep.pid());
  Status set = store.Set(&ep, round_key + "/addr/" + std::to_string(my_rank),
                         w.Take());
  if (!set.ok()) throw IoException(set);

  // 3. Wait for every peer's address: one blocking read per rank, as the
  // real store-based rendezvous does (O(P) round trips).
  std::vector<int> pids(world_size, -1);
  for (int r = 0; r < world_size; ++r) {
    auto blob = store.Wait(&ep, round_key + "/addr/" + std::to_string(r));
    if (!blob.ok()) throw IoException(blob.status());
    ByteReader reader(blob.value());
    int32_t pid = -1;
    Status rs = reader.ReadI32(&pid);
    if (!rs.ok()) throw IoException(rs);
    pids[r] = pid;
  }

  // 4. Eager full-mesh connection setup: P-1 TCP-class connects charged
  // serially at this endpoint (Gloo's createDevice/connectFullMesh).
  ep.Busy(costs.conn_setup_tcp * (world_size - 1));

  // A rendezvous participant dying before now leaves a dangling address:
  // detect and fail the whole round, as a timed-out TCP connect would.
  for (int pid : pids) {
    if (!ep.fabric().IsAlive(pid)) {
      throw IoException(Status::ProcFailed(
          {pid}, "peer died during rendezvous"));
    }
  }

  auto group = mpi::GetOrCreateGroup(
      "gloo/f" + std::to_string(ep.fabric().id()) + "/" + round_key, pids);
  obs::Registry::Global()
      .GetHistogram("rcc_rendezvous_seconds", {{"stack", "gloo"}})
      ->Observe(ep.now() - rendezvous_start);
  return std::unique_ptr<Context>(
      new Context(&ep, group, cost_scale));
}

void Context::BeginOp(const char* algo, double bytes) {
  if (broken_) {
    throw IoException(Status(Code::kIoError, "context is broken"));
  }
  ++op_seq_;
  current_phase_ = 1 + (op_seq_ % 65534);
  op_algo_ = algo;
  op_bytes_ = bytes;
  op_start_ = ep_->now();
}

void Context::Raise(const Status& s) {
  current_phase_ = 0;
  if (s.ok()) {
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"algo", op_algo_}, {"stack", "gloo"}};
    reg.GetHistogram("rcc_collective_latency_seconds", labels)
        ->Observe(ep_->now() - op_start_);
    reg.GetCounter("rcc_collective_bytes_total", labels)->Add(op_bytes_);
    reg.GetCounter("rcc_collective_ops_total", labels)->Increment();
    return;
  }
  broken_ = true;
  throw IoException(s);
}

Status Context::SendTo(int dst_rank, int tag, const void* data,
                       size_t bytes) {
  const auto* p = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> payload(p, p + bytes);
  return ep_->Send(group_->pids[dst_rank],
                   sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                   std::move(payload),
                   static_cast<double>(bytes) * cost_scale_);
}

Status Context::RecvFrom(int src_rank, int tag, void* data, size_t bytes) {
  sim::Message msg;
  // Gloo watches the whole membership: any member death tears the
  // context down (TCP RST semantics), not just the awaited peer.
  Status s = ep_->Recv(group_->pids[src_rank],
                       sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                       &msg, /*cancel=*/nullptr, &group_->pids);
  if (!s.ok()) return s;
  if (msg.payload.size() != bytes) {
    return Status(Code::kInternal, "gloo step size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status Context::RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) {
  sim::Message msg;
  Status s = ep_->Recv(group_->pids[src_rank],
                       sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                       &msg, /*cancel=*/nullptr, &group_->pids);
  if (!s.ok()) return s;
  *out = std::move(msg.payload);
  return Status::Ok();
}

}  // namespace rcc::gloo
