// Gloo-like CPU collective library: the baseline transport Elastic
// Horovod uses for host-side collectives and coordination.
//
// Deliberate differences from the MPI/ULFM stack, mirroring real Gloo:
//  * A context is built from a KV-store rendezvous plus eager full-mesh
//    connection setup (O(P) key reads + P-1 TCP-class connects per rank).
//  * There is NO fault tolerance: any member death observed during an
//    operation throws IoException and permanently breaks the context
//    (the paper's Fig. 3). Recovery requires a full new rendezvous.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/transport.h"
#include "coll/tuning.h"
#include "kvstore/kvstore.h"
#include "mpi/group.h"
#include "sim/endpoint.h"

namespace rcc::gloo {

class IoException : public std::runtime_error {
 public:
  explicit IoException(const Status& status)
      : std::runtime_error(status.ToString()), status_(status) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

class Context : public coll::Transport {
 public:
  // Collective over all participants of one rendezvous round: allocates a
  // rank slot, publishes this process's address, waits for the full
  // membership, then connects to every peer. `round_key` must be unique
  // per rendezvous and identical on all participants; `world_size` is
  // dictated by the driver.
  //
  // Throws IoException if a participant dies during the rendezvous.
  static std::unique_ptr<Context> Connect(sim::Endpoint& ep, kv::Store& store,
                                          const std::string& round_key,
                                          int world_size,
                                          double cost_scale = 1.0);

  // --- coll::Transport ---
  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(group_->pids.size()); }
  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override;
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override;
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override;

  // --- collectives (throwing API, like real Gloo) ---
  template <typename T>
  void Allreduce(const T* sendbuf, T* recvbuf, size_t count) {
    const double bytes = static_cast<double>(count * sizeof(T)) * cost_scale_;
    // Shared selection table (ring-only by default, like real Gloo's
    // ring allreduce; overridable via RCC_ALLREDUCE_* knobs).
    const coll::AllreduceAlgo algo = coll::ChooseAllreduce(
        tuning_, coll::AllreduceAlgo::kAuto, bytes, size());
    BeginOp(coll::AllreduceAlgoName(algo), bytes);
    Raise(coll::RunAllreduce<T>(algo, *this, sendbuf, recvbuf, count));
  }
  template <typename T>
  void Allgather(const T* sendbuf, T* recvbuf, size_t count) {
    BeginOp("ring_allgather",
            static_cast<double>(count * sizeof(T)) * cost_scale_ * size());
    Raise(coll::RingAllgather<T>(*this, sendbuf, recvbuf, count));
  }
  template <typename T>
  void Broadcast(T* buf, size_t count, int root) {
    BeginOp("binomial_bcast",
            static_cast<double>(count * sizeof(T)) * cost_scale_);
    Raise(coll::BinomialBcast<T>(*this, buf, count, root));
  }
  void Barrier() {
    BeginOp("dissemination_barrier", 0.0);
    Raise(coll::DisseminationBarrier(*this));
  }
  void AllgatherBlobs(const std::vector<uint8_t>& mine,
                      std::vector<std::vector<uint8_t>>* all) {
    BeginOp("allgather_blobs",
            static_cast<double>(mine.size()) * cost_scale_ * size());
    Raise(coll::AllgatherBlobs(*this, mine, all));
  }

  bool broken() const { return broken_; }
  const std::vector<int>& pids() const { return group_->pids; }
  sim::Endpoint& endpoint() const { return *ep_; }
  void set_cost_scale(double s) { cost_scale_ = s; }

 private:
  Context(sim::Endpoint* ep, std::shared_ptr<mpi::CommGroup> group,
          double cost_scale);

  void BeginOp(const char* algo = "", double bytes = 0.0);
  void Raise(const Status& s);  // marks broken + throws on failure

  sim::Endpoint* ep_;
  std::shared_ptr<mpi::CommGroup> group_;
  int rank_;
  double cost_scale_;
  coll::AllreduceTuning tuning_ = coll::GlooAllreduceTuning();
  bool broken_ = false;
  uint64_t op_seq_ = 0;
  uint64_t current_phase_ = 0;
  // Identity of the op in flight, observed into metrics by Raise.
  const char* op_algo_ = "";
  double op_bytes_ = 0.0;
  sim::Seconds op_start_ = 0.0;
};

}  // namespace rcc::gloo
