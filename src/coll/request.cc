#include "coll/request.h"

#include <cstring>
#include <utility>

namespace rcc::coll {

Request Request::Start(Info info, sim::Seconds submit, Body body,
                       const Request* after) {
  Request req;
  req.state_ = std::make_shared<State>();
  State* st = req.state_.get();
  st->info = info;
  st->submit = submit;
  st->complete = submit;
  std::shared_ptr<State> pred =
      (after != nullptr) ? after->state_ : nullptr;
  st->worker = std::thread(
      [st, pred = std::move(pred), body = std::move(body)]() mutable {
        if (pred) {
          std::unique_lock<std::mutex> lock(pred->mu);
          pred->cv.wait(lock, [&] { return pred->done; });
          // In-order engine: start no earlier than the predecessor's
          // completion.
          if (pred->complete > st->complete) st->complete = pred->complete;
        }
        pred.reset();
        Status s = body(&st->complete);
        {
          std::lock_guard<std::mutex> lock(st->mu);
          st->status = std::move(s);
          st->done = true;
        }
        st->done_flag.store(true, std::memory_order_release);
        st->cv.notify_all();
      });
  return req;
}

Request Request::Failed(Info info, sim::Seconds submit, Status status) {
  Request req;
  req.state_ = std::make_shared<State>();
  State* st = req.state_.get();
  st->info = info;
  st->submit = submit;
  st->complete = submit;
  st->status = std::move(status);
  st->done = true;
  st->done_flag.store(true, std::memory_order_release);
  return req;
}

Status Request::Join() {
  if (!state_) return Status(Code::kInvalid, "join on empty request");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->status;
}

bool FabricChannel::SelfKilled() {
  if (*now_ >= ep_->kill_at()) {
    fabric_->Kill(ep_->pid());
    return true;
  }
  return false;
}

Status FabricChannel::SendTo(int dst_rank, int tag, const void* data,
                             size_t bytes) {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status(Code::kRevoked, "communicator revoked");
  }
  if (dst_rank < 0 || dst_rank >= size()) {
    return Status(Code::kInvalid, "dst rank out of range");
  }
  if (SelfKilled()) return Status(Code::kAborted, "sender killed");
  *now_ += fabric_->config().net.send_overhead;
  sim::Message msg;
  msg.src = ep_->pid();
  msg.dst = (*pids_)[dst_rank];
  msg.channel = channel_;
  msg.tag = tag;
  msg.depart = *now_;
  msg.cost_bytes = static_cast<double>(bytes) * cost_scale_;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  return fabric_->Send(std::move(msg));
}

Status FabricChannel::RawRecv(int src_rank, int tag, sim::Message* out) {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status(Code::kRevoked, "communicator revoked");
  }
  if (src_rank < 0 || src_rank >= size()) {
    return Status(Code::kInvalid, "src rank out of range");
  }
  if (SelfKilled()) return Status(Code::kAborted, "receiver killed");
  Status s = fabric_->Recv(ep_->pid(), now_, (*pids_)[src_rank], channel_,
                           tag, out, cancel_, death_watch_);
  if (s.ok() && SelfKilled()) {
    return Status(Code::kAborted, "receiver killed");
  }
  return s;
}

Status FabricChannel::RecvFrom(int src_rank, int tag, void* data,
                               size_t bytes) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(src_rank, tag, &msg));
  if (msg.payload.size() != bytes) {
    return Status(Code::kInvalid, "payload size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status FabricChannel::RecvBlob(int src_rank, int tag,
                               std::vector<uint8_t>* out) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(src_rank, tag, &msg));
  *out = std::move(msg.payload);
  return Status::Ok();
}

}  // namespace rcc::coll
