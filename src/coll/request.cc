#include "coll/request.h"

#include <cstring>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace rcc::coll {
namespace {

// Queue-wait vs service breakdown and in-flight depth for the request
// pipeline. Instruments are resolved per algo label (cheap shared-lock
// lookup after first use); the gauge is global across communicators.
void RecordRequestMetrics(const Request::Info& info, sim::Seconds submit,
                          sim::Seconds start, sim::Seconds complete,
                          bool ok) {
  auto& reg = obs::Registry::Global();
  const obs::Labels algo{{"algo", info.algo}};
  reg.GetHistogram("rcc_coll_queue_wait_seconds", algo)
      ->Observe(start - submit);
  reg.GetHistogram("rcc_coll_service_seconds", algo)
      ->Observe(complete - start);
  reg.GetCounter(ok ? "rcc_coll_ops_total" : "rcc_coll_ops_failed_total",
                 algo)
      ->Increment();
}

}  // namespace

Request Request::Start(Info info, sim::Seconds submit, Body body,
                       sim::Engine& engine, int pid, const Request* after) {
  Request req;
  req.state_ = std::make_shared<State>();
  State* st = req.state_.get();
  st->info = info;
  st->submit = submit;
  st->start = submit;
  st->complete = submit;
  obs::Gauge* inflight =
      obs::Registry::Global().GetGauge("rcc_coll_inflight");
  inflight->Add(1.0);
  std::shared_ptr<State> pred =
      (after != nullptr) ? after->state_ : nullptr;
  sim::TaskOptions opts;
  opts.pid = pid;
  // The op task's run-queue position follows its virtual completion
  // clock (== the effective start time while the body runs).
  opts.clock = &st->complete;
  st->worker = engine.Spawn(
      opts,
      [st, inflight, pid, pred = std::move(pred),
       body = std::move(body)]() mutable {
        if (pred) {
          std::unique_lock<std::mutex> lock(pred->mu);
          while (!pred->done) pred->wp.Wait(lock);
          // In-order engine: start no earlier than the predecessor's
          // completion.
          if (pred->complete > st->complete) st->complete = pred->complete;
        }
        pred.reset();
        st->start = st->complete;
        Status s = body(&st->complete);
        RecordRequestMetrics(st->info, st->submit, st->start, st->complete,
                             s.ok());
        if (obs::flight::Enabled()) {
          obs::flight::ForRank(pid)->Record(
              obs::flight::Ev::kCollSvc, st->complete,
              static_cast<int64_t>(st->info.op_id), s.ok() ? 1 : 0,
              st->complete - st->start);
        }
        inflight->Add(-1.0);
        {
          std::lock_guard<std::mutex> lock(st->mu);
          st->status = std::move(s);
          st->done = true;
        }
        st->done_flag.store(true, std::memory_order_release);
        st->wp.NotifyAll();
      });
  return req;
}

Request Request::Failed(Info info, sim::Seconds submit, Status status) {
  Request req;
  req.state_ = std::make_shared<State>();
  State* st = req.state_.get();
  st->info = info;
  st->submit = submit;
  st->start = submit;
  st->complete = submit;
  st->status = std::move(status);
  st->done = true;
  st->done_flag.store(true, std::memory_order_release);
  return req;
}

Status Request::Join() {
  if (!state_) return Status(Code::kInvalid, "join on empty request");
  std::unique_lock<std::mutex> lock(state_->mu);
  while (!state_->done) state_->wp.Wait(lock);
  return state_->status;
}

bool FabricChannel::SelfKilled() {
  if (*now_ >= ep_->kill_at()) {
    fabric_->Kill(ep_->pid());
    return true;
  }
  return false;
}

Status FabricChannel::SendTo(int dst_rank, int tag, const void* data,
                             size_t bytes) {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status(Code::kRevoked, "communicator revoked");
  }
  if (dst_rank < 0 || dst_rank >= size()) {
    return Status(Code::kInvalid, "dst rank out of range");
  }
  if (SelfKilled()) return Status(Code::kAborted, "sender killed");
  *now_ += fabric_->config().net.send_overhead;
  sim::Message msg;
  msg.src = ep_->pid();
  msg.dst = (*pids_)[dst_rank];
  msg.channel = channel_;
  msg.tag = tag;
  msg.depart = *now_;
  msg.cost_bytes = static_cast<double>(bytes) * cost_scale_;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  return fabric_->Send(std::move(msg));
}

Status FabricChannel::RawRecv(int src_rank, int tag, sim::Message* out) {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status(Code::kRevoked, "communicator revoked");
  }
  if (src_rank < 0 || src_rank >= size()) {
    return Status(Code::kInvalid, "src rank out of range");
  }
  if (SelfKilled()) return Status(Code::kAborted, "receiver killed");
  Status s = fabric_->Recv(ep_->pid(), now_, (*pids_)[src_rank], channel_,
                           tag, out, cancel_, death_watch_);
  if (s.ok() && SelfKilled()) {
    return Status(Code::kAborted, "receiver killed");
  }
  return s;
}

Status FabricChannel::RecvFrom(int src_rank, int tag, void* data,
                               size_t bytes) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(src_rank, tag, &msg));
  if (msg.payload.size() != bytes) {
    return Status(Code::kInvalid, "payload size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status FabricChannel::RecvBlob(int src_rank, int tag,
                               std::vector<uint8_t>* out) {
  sim::Message msg;
  RCC_RETURN_IF_ERROR(RawRecv(src_rank, tag, &msg));
  *out = std::move(msg.payload);
  return Status::Ok();
}

}  // namespace rcc::coll
