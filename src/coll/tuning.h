// Shared allreduce algorithm selection.
//
// Every stack (mpi, nccl, gloo) used to hardcode its own byte threshold
// for picking a latency-bound vs bandwidth-bound allreduce. The decision
// now lives here as a bytes x ranks table so the stacks share one
// chooser, and so benches/users can override it (set_allreduce_tuning or
// the RCC_ALLREDUCE_* environment knobs) without recompiling.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/algorithms.h"
#include "coll/transport.h"
#include "common/status.h"

namespace rcc::coll {

enum class AllreduceAlgo {
  kAuto,               // pick by payload size
  kRing,               // bandwidth-optimal
  kRecursiveDoubling,  // latency-optimal
  kReduceBcast,        // reduce-to-root + bcast
  kRabenseifner,       // reduce-scatter + allgather, log rounds
};

// Decision table keyed by (modeled wire bytes, communicator ranks):
// the first row whose max_ranks covers the world supplies the byte
// cutoff below which the latency-bound algorithm wins.
struct AllreduceTuning {
  struct Row {
    int max_ranks;        // row applies to worlds of up to this many ranks
    double cutoff_bytes;  // modeled bytes at/below which small_algo wins
  };
  std::vector<Row> rows;  // sorted by max_ranks ascending; last row is the
                          // catch-all (max_ranks == INT_MAX)
  AllreduceAlgo small_algo = AllreduceAlgo::kRecursiveDoubling;
  AllreduceAlgo large_algo = AllreduceAlgo::kRing;
};

// Default tables reproducing each stack's historical thresholds.
// Environment overrides (RCC_ALLREDUCE_CUTOFF_BYTES,
// RCC_ALLREDUCE_SMALL_ALGO, RCC_ALLREDUCE_LARGE_ALGO) are applied on
// top, so one knob retunes all stacks at once.
AllreduceTuning MpiAllreduceTuning();   // 64 KiB: recursive-doubling / ring
AllreduceTuning NcclAllreduceTuning();  // 32 KiB: reduce+bcast / ring
AllreduceTuning GlooAllreduceTuning();  // ring-only (cutoff 0)

// Resolves the algorithm: an explicit `requested` wins; kAuto consults
// the table with the modeled payload size and world size.
AllreduceAlgo ChooseAllreduce(const AllreduceTuning& tuning,
                              AllreduceAlgo requested, double modeled_bytes,
                              int ranks);

// Parses "ring" / "recursive_doubling" / "reduce_bcast" / "rabenseifner"
// / "auto". Returns kAuto on unknown strings.
AllreduceAlgo ParseAllreduceAlgo(const char* name);
const char* AllreduceAlgoName(AllreduceAlgo algo);

// Applies the RCC_ALLREDUCE_* environment overrides to `t` (no-op when
// unset). Called by the default-table factories.
void ApplyAllreduceEnv(AllreduceTuning* t);

// Runs the chosen kernel. `algo` must be concrete (not kAuto).
template <typename T, typename Op = SumOp>
Status RunAllreduce(AllreduceAlgo algo, Transport& t, const T* sendbuf,
                    T* recvbuf, size_t count) {
  switch (algo) {
    case AllreduceAlgo::kRing:
      return RingAllreduce<T, Op>(t, sendbuf, recvbuf, count);
    case AllreduceAlgo::kRecursiveDoubling:
      return RecursiveDoublingAllreduce<T, Op>(t, sendbuf, recvbuf, count);
    case AllreduceAlgo::kReduceBcast:
      return ReduceBcastAllreduce<T, Op>(t, sendbuf, recvbuf, count);
    case AllreduceAlgo::kRabenseifner:
      return RabenseifnerAllreduce<T, Op>(t, sendbuf, recvbuf, count);
    case AllreduceAlgo::kAuto:
      break;
  }
  return Status(Code::kInvalid, "allreduce algorithm not resolved");
}

}  // namespace rcc::coll
