#include "coll/algorithms.h"

namespace rcc::coll {

Status AllgatherBlobs(Transport& t, const std::vector<uint8_t>& mine,
                      std::vector<std::vector<uint8_t>>* all) {
  const int P = t.size();
  const int r = t.rank();
  all->assign(P, {});
  (*all)[r] = mine;
  if (P == 1) return Status::Ok();
  const int right = (r + 1) % P;
  const int left = (r - 1 + P) % P;
  for (int s = 0; s < P - 1; ++s) {
    const int send_block = (r - s + P) % P;
    const int recv_block = (r - s - 1 + P) % P;
    const std::vector<uint8_t>& out = (*all)[send_block];
    RCC_RETURN_IF_ERROR(
        t.SendTo(right, /*tag=*/900 + s, out.data(), out.size()));
    RCC_RETURN_IF_ERROR(t.RecvBlob(left, /*tag=*/900 + s, &(*all)[recv_block]));
  }
  return Status::Ok();
}

Status DisseminationBarrier(Transport& t) {
  const int P = t.size();
  const int r = t.rank();
  uint8_t token = 1;
  int step = 0;
  for (int k = 1; k < P; k <<= 1, ++step) {
    const int dst = (r + k) % P;
    const int src = (r - k + P) % P;
    RCC_RETURN_IF_ERROR(t.SendTo(dst, /*tag=*/950 + step, &token, 1));
    RCC_RETURN_IF_ERROR(t.RecvFrom(src, /*tag=*/950 + step, &token, 1));
  }
  return Status::Ok();
}

}  // namespace rcc::coll
