#include "coll/tuning.h"

#include <climits>
#include <cstdlib>
#include <cstring>

#include "common/env.h"

namespace rcc::coll {

namespace {

AllreduceTuning WithEnv(AllreduceTuning t) {
  ApplyAllreduceEnv(&t);
  return t;
}

}  // namespace

AllreduceTuning MpiAllreduceTuning() {
  AllreduceTuning t;
  t.rows = {{INT_MAX, 65536.0}};
  t.small_algo = AllreduceAlgo::kRecursiveDoubling;
  t.large_algo = AllreduceAlgo::kRing;
  return WithEnv(t);
}

AllreduceTuning NcclAllreduceTuning() {
  AllreduceTuning t;
  t.rows = {{INT_MAX, 32768.0}};
  t.small_algo = AllreduceAlgo::kReduceBcast;
  t.large_algo = AllreduceAlgo::kRing;
  return WithEnv(t);
}

AllreduceTuning GlooAllreduceTuning() {
  AllreduceTuning t;
  t.rows = {{INT_MAX, 0.0}};
  t.small_algo = AllreduceAlgo::kRing;
  t.large_algo = AllreduceAlgo::kRing;
  return WithEnv(t);
}

AllreduceAlgo ChooseAllreduce(const AllreduceTuning& tuning,
                              AllreduceAlgo requested, double modeled_bytes,
                              int ranks) {
  if (requested != AllreduceAlgo::kAuto) return requested;
  double cutoff = 0.0;
  for (const auto& row : tuning.rows) {
    cutoff = row.cutoff_bytes;
    if (ranks <= row.max_ranks) break;
  }
  return modeled_bytes <= cutoff ? tuning.small_algo : tuning.large_algo;
}

AllreduceAlgo ParseAllreduceAlgo(const char* name) {
  if (name == nullptr) return AllreduceAlgo::kAuto;
  if (std::strcmp(name, "ring") == 0) return AllreduceAlgo::kRing;
  if (std::strcmp(name, "recursive_doubling") == 0) {
    return AllreduceAlgo::kRecursiveDoubling;
  }
  if (std::strcmp(name, "reduce_bcast") == 0) {
    return AllreduceAlgo::kReduceBcast;
  }
  if (std::strcmp(name, "rabenseifner") == 0) {
    return AllreduceAlgo::kRabenseifner;
  }
  return AllreduceAlgo::kAuto;
}

const char* AllreduceAlgoName(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive_doubling";
    case AllreduceAlgo::kReduceBcast: return "reduce_bcast";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
  }
  return "unknown";
}

void ApplyAllreduceEnv(AllreduceTuning* t) {
  // -1 sentinel: unset/invalid leaves the backend's tuned table alone.
  const double v = common::EnvDouble("RCC_ALLREDUCE_CUTOFF_BYTES", -1.0);
  if (v >= 0.0) {
    for (auto& row : t->rows) row.cutoff_bytes = v;
  }
  if (const char* small = std::getenv("RCC_ALLREDUCE_SMALL_ALGO")) {
    const AllreduceAlgo a = ParseAllreduceAlgo(small);
    if (a != AllreduceAlgo::kAuto) t->small_algo = a;
  }
  if (const char* large = std::getenv("RCC_ALLREDUCE_LARGE_ALGO")) {
    const AllreduceAlgo a = ParseAllreduceAlgo(large);
    if (a != AllreduceAlgo::kAuto) t->large_algo = a;
  }
}

}  // namespace rcc::coll
