// Collective algorithms over the Transport abstraction.
//
// All kernels are *out-of-place* (sendbuf is never destroyed): the ULFM
// resilient wrappers re-execute a failed collective on a shrunk
// communicator using the preserved input (paper Section 3.2).
//
// On any peer failure the algorithm returns the failure status
// immediately; the contents of recvbuf are then unspecified.
//
// Tag discipline: the owning communicator hands every collective call a
// fresh channel, so tags here only need to disambiguate steps *within*
// one call. Each algorithm uses its own tag range.
#pragma once

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "coll/transport.h"
#include "common/status.h"

namespace rcc::coll {

namespace detail {
inline int LargestPowerOfTwoAtMost(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

// Chunk layout used by ring algorithms: chunk c covers
// [offset(c), offset(c+1)) with the first (count % P) chunks one larger.
inline size_t ChunkOffset(size_t count, int nchunks, int c) {
  const size_t base = count / nchunks;
  const size_t extra = count % nchunks;
  return static_cast<size_t>(c) * base + std::min<size_t>(c, extra);
}
inline size_t ChunkSize(size_t count, int nchunks, int c) {
  return ChunkOffset(count, nchunks, c + 1) - ChunkOffset(count, nchunks, c);
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

// Ring allreduce: reduce-scatter pass followed by an allgather pass.
// Bandwidth-optimal (2(P-1)/P * bytes on the wire per rank); the
// algorithm of choice for large gradient tensors.
template <typename T, typename Op = SumOp>
Status RingAllreduce(Transport& t, const T* sendbuf, T* recvbuf,
                     size_t count) {
  const int P = t.size();
  const int r = t.rank();
  std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  if (P == 1 || count == 0) return Status::Ok();

  const int right = (r + 1) % P;
  const int left = (r - 1 + P) % P;
  std::vector<T> tmp(detail::ChunkSize(count, P, 0));  // max chunk size

  // Reduce-scatter: after step s, chunk (r - s - 1 + P) % P holds the
  // partial sum of s + 2 contributions.
  for (int s = 0; s < P - 1; ++s) {
    const int send_chunk = (r - s + P) % P;
    const int recv_chunk = (r - s - 1 + P) % P;
    const size_t send_off = detail::ChunkOffset(count, P, send_chunk);
    const size_t send_n = detail::ChunkSize(count, P, send_chunk);
    const size_t recv_off = detail::ChunkOffset(count, P, recv_chunk);
    const size_t recv_n = detail::ChunkSize(count, P, recv_chunk);
    RCC_RETURN_IF_ERROR(
        t.SendTo(right, /*tag=*/100 + s, recvbuf + send_off, send_n * sizeof(T)));
    RCC_RETURN_IF_ERROR(
        t.RecvFrom(left, /*tag=*/100 + s, tmp.data(), recv_n * sizeof(T)));
    for (size_t i = 0; i < recv_n; ++i) {
      recvbuf[recv_off + i] = Op::Apply(recvbuf[recv_off + i], tmp[i]);
    }
  }
  // Allgather: circulate the finished chunks.
  for (int s = 0; s < P - 1; ++s) {
    const int send_chunk = (r - s + 1 + P) % P;
    const int recv_chunk = (r - s + P) % P;
    const size_t send_off = detail::ChunkOffset(count, P, send_chunk);
    const size_t send_n = detail::ChunkSize(count, P, send_chunk);
    const size_t recv_off = detail::ChunkOffset(count, P, recv_chunk);
    const size_t recv_n = detail::ChunkSize(count, P, recv_chunk);
    RCC_RETURN_IF_ERROR(
        t.SendTo(right, /*tag=*/300 + s, recvbuf + send_off, send_n * sizeof(T)));
    RCC_RETURN_IF_ERROR(
        t.RecvFrom(left, /*tag=*/300 + s, recvbuf + recv_off, recv_n * sizeof(T)));
  }
  return Status::Ok();
}

// Ring reduce-scatter: the first pass of the ring allreduce, exposed for
// hierarchical compositions. On return, rank r holds the fully-reduced
// chunk (r + 1) % P (the standard ring ownership layout) inside recvbuf;
// *owned_chunk is set to that index. Other chunks of recvbuf hold
// partial sums.
template <typename T, typename Op = SumOp>
Status RingReduceScatter(Transport& t, const T* sendbuf, T* recvbuf,
                         size_t count, int* owned_chunk) {
  const int P = t.size();
  const int r = t.rank();
  std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  *owned_chunk = (r + 1) % P;
  if (P == 1 || count == 0) return Status::Ok();
  const int right = (r + 1) % P;
  const int left = (r - 1 + P) % P;
  std::vector<T> tmp(detail::ChunkSize(count, P, 0));
  for (int s = 0; s < P - 1; ++s) {
    const int send_chunk = (r - s + P) % P;
    const int recv_chunk = (r - s - 1 + P) % P;
    const size_t send_off = detail::ChunkOffset(count, P, send_chunk);
    const size_t send_n = detail::ChunkSize(count, P, send_chunk);
    const size_t recv_off = detail::ChunkOffset(count, P, recv_chunk);
    const size_t recv_n = detail::ChunkSize(count, P, recv_chunk);
    RCC_RETURN_IF_ERROR(t.SendTo(right, /*tag=*/100 + s, recvbuf + send_off,
                                 send_n * sizeof(T)));
    RCC_RETURN_IF_ERROR(
        t.RecvFrom(left, /*tag=*/100 + s, tmp.data(), recv_n * sizeof(T)));
    for (size_t i = 0; i < recv_n; ++i) {
      recvbuf[recv_off + i] = Op::Apply(recvbuf[recv_off + i], tmp[i]);
    }
  }
  return Status::Ok();
}

// Ring allgather over the ring ownership layout produced by
// RingReduceScatter (rank r contributes chunk (r + 1) % P in place).
template <typename T>
Status RingAllgatherChunks(Transport& t, T* recvbuf, size_t count) {
  const int P = t.size();
  const int r = t.rank();
  if (P == 1 || count == 0) return Status::Ok();
  const int right = (r + 1) % P;
  const int left = (r - 1 + P) % P;
  for (int s = 0; s < P - 1; ++s) {
    const int send_chunk = (r - s + 1 + P) % P;
    const int recv_chunk = (r - s + P) % P;
    const size_t send_off = detail::ChunkOffset(count, P, send_chunk);
    const size_t send_n = detail::ChunkSize(count, P, send_chunk);
    const size_t recv_off = detail::ChunkOffset(count, P, recv_chunk);
    const size_t recv_n = detail::ChunkSize(count, P, recv_chunk);
    RCC_RETURN_IF_ERROR(t.SendTo(right, /*tag=*/300 + s, recvbuf + send_off,
                                 send_n * sizeof(T)));
    RCC_RETURN_IF_ERROR(t.RecvFrom(left, /*tag=*/300 + s, recvbuf + recv_off,
                                   recv_n * sizeof(T)));
  }
  return Status::Ok();
}

// Recursive-doubling allreduce (MPICH-style non-power-of-two handling).
// Latency-optimal (ceil(log2 P) rounds); preferred for small messages.
template <typename T, typename Op = SumOp>
Status RecursiveDoublingAllreduce(Transport& t, const T* sendbuf, T* recvbuf,
                                  size_t count) {
  const int P = t.size();
  const int r = t.rank();
  std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  if (P == 1 || count == 0) return Status::Ok();

  const int pof2 = detail::LargestPowerOfTwoAtMost(P);
  const int rem = P - pof2;
  const size_t bytes = count * sizeof(T);
  std::vector<T> tmp(count);

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      // Fold: hand my contribution to the odd neighbour; rejoin at the end.
      RCC_RETURN_IF_ERROR(t.SendTo(r + 1, /*tag=*/400, recvbuf, bytes));
      newrank = -1;
    } else {
      RCC_RETURN_IF_ERROR(t.RecvFrom(r - 1, /*tag=*/400, tmp.data(), bytes));
      for (size_t i = 0; i < count; ++i) {
        recvbuf[i] = Op::Apply(recvbuf[i], tmp[i]);
      }
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank != -1) {
    int step = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++step) {
      const int newdst = newrank ^ mask;
      const int dst = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      RCC_RETURN_IF_ERROR(t.SendTo(dst, /*tag=*/410 + step, recvbuf, bytes));
      RCC_RETURN_IF_ERROR(
          t.RecvFrom(dst, /*tag=*/410 + step, tmp.data(), bytes));
      for (size_t i = 0; i < count; ++i) {
        recvbuf[i] = Op::Apply(recvbuf[i], tmp[i]);
      }
    }
  }

  if (r < 2 * rem) {
    if (r % 2 == 1) {
      RCC_RETURN_IF_ERROR(t.SendTo(r - 1, /*tag=*/490, recvbuf, bytes));
    } else {
      RCC_RETURN_IF_ERROR(t.RecvFrom(r + 1, /*tag=*/490, recvbuf, bytes));
    }
  }
  return Status::Ok();
}

// Rabenseifner allreduce: reduce-scatter by recursive halving followed
// by an allgather by recursive doubling. Bandwidth-optimal like the
// ring but with log2(P) rounds; requires a power-of-two world (falls
// back to recursive doubling otherwise).
template <typename T, typename Op = SumOp>
Status RabenseifnerAllreduce(Transport& t, const T* sendbuf, T* recvbuf,
                             size_t count) {
  const int P = t.size();
  const int r = t.rank();
  if ((P & (P - 1)) != 0 || static_cast<size_t>(P) > count || P <= 2) {
    return RecursiveDoublingAllreduce<T, Op>(t, sendbuf, recvbuf, count);
  }
  std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  std::vector<T> tmp(count / 2 + 1);

  // Reduce-scatter (recursive halving): after each step this rank is
  // responsible for half of its previous segment, fully reduced over
  // the partner group. Both partners derive the identical split point
  // from the shared segment bounds; the parent bounds are stacked so the
  // allgather can unwind the exact same splits.
  size_t lo = 0, hi = count;
  std::vector<std::pair<size_t, size_t>> parents;
  int step = 0;
  for (int mask = 1; mask < P; mask <<= 1, ++step) {
    const int partner = r ^ mask;
    const size_t mid = lo + (hi - lo) / 2;
    parents.emplace_back(lo, hi);
    if (r & mask) {
      // Keep the upper half; ship the lower half.
      RCC_RETURN_IF_ERROR(t.SendTo(partner, /*tag=*/430 + step,
                                   recvbuf + lo, (mid - lo) * sizeof(T)));
      RCC_RETURN_IF_ERROR(t.RecvFrom(partner, /*tag=*/430 + step, tmp.data(),
                                     (hi - mid) * sizeof(T)));
      for (size_t i = mid; i < hi; ++i) {
        recvbuf[i] = Op::Apply(recvbuf[i], tmp[i - mid]);
      }
      lo = mid;
    } else {
      RCC_RETURN_IF_ERROR(t.SendTo(partner, /*tag=*/430 + step,
                                   recvbuf + mid, (hi - mid) * sizeof(T)));
      RCC_RETURN_IF_ERROR(t.RecvFrom(partner, /*tag=*/430 + step, tmp.data(),
                                     (mid - lo) * sizeof(T)));
      for (size_t i = lo; i < mid; ++i) {
        recvbuf[i] = Op::Apply(recvbuf[i], tmp[i - lo]);
      }
      hi = mid;
    }
  }

  // Allgather (recursive doubling, reverse order): pop each parent
  // segment and swap halves with the same partner.
  for (int mask = P >> 1; mask > 0; mask >>= 1, ++step) {
    const int partner = r ^ mask;
    const auto [p_lo, p_hi] = parents.back();
    parents.pop_back();
    const size_t mid = p_lo + (p_hi - p_lo) / 2;
    RCC_RETURN_IF_ERROR(t.SendTo(partner, /*tag=*/430 + step, recvbuf + lo,
                                 (hi - lo) * sizeof(T)));
    if (r & mask) {
      // I own the upper half [mid, p_hi); receive the lower half.
      RCC_RETURN_IF_ERROR(t.RecvFrom(partner, /*tag=*/430 + step,
                                     recvbuf + p_lo,
                                     (mid - p_lo) * sizeof(T)));
    } else {
      RCC_RETURN_IF_ERROR(t.RecvFrom(partner, /*tag=*/430 + step,
                                     recvbuf + mid,
                                     (p_hi - mid) * sizeof(T)));
    }
    lo = p_lo;
    hi = p_hi;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Broadcast / Reduce
// ---------------------------------------------------------------------------

// Binomial-tree broadcast from `root`.
template <typename T>
Status BinomialBcast(Transport& t, T* buf, size_t count, int root) {
  const int P = t.size();
  const int r = t.rank();
  if (P == 1) return Status::Ok();
  const size_t bytes = count * sizeof(T);
  const int relative = (r - root + P) % P;

  int mask = 1;
  while (mask < P) {
    if (relative & mask) {
      const int src = (relative - mask + root) % P;
      RCC_RETURN_IF_ERROR(t.RecvFrom(src, /*tag=*/500, buf, bytes));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < P) {
      const int dst = (relative + mask + root) % P;
      RCC_RETURN_IF_ERROR(t.SendTo(dst, /*tag=*/500, buf, bytes));
    }
    mask >>= 1;
  }
  return Status::Ok();
}

// Binomial-tree reduce to `root` (commutative ops only, which covers
// every op in this library).
template <typename T, typename Op = SumOp>
Status BinomialReduce(Transport& t, const T* sendbuf, T* recvbuf,
                      size_t count, int root) {
  const int P = t.size();
  const int r = t.rank();
  std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  if (P == 1 || count == 0) return Status::Ok();
  const size_t bytes = count * sizeof(T);
  const int relative = (r - root + P) % P;
  std::vector<T> tmp(count);

  for (int mask = 1; mask < P; mask <<= 1) {
    if (relative & mask) {
      const int dst = (relative - mask + root) % P;
      return t.SendTo(dst, /*tag=*/520, recvbuf, bytes);
    }
    if (relative + mask < P) {
      const int src = (relative + mask + root) % P;
      RCC_RETURN_IF_ERROR(t.RecvFrom(src, /*tag=*/520, tmp.data(), bytes));
      for (size_t i = 0; i < count; ++i) {
        recvbuf[i] = Op::Apply(recvbuf[i], tmp[i]);
      }
    }
  }
  return Status::Ok();
}

// Reduce-to-root + broadcast; the latency-bound allreduce variant used by
// the NCCL-like layer for very small tensors.
template <typename T, typename Op = SumOp>
Status ReduceBcastAllreduce(Transport& t, const T* sendbuf, T* recvbuf,
                            size_t count) {
  RCC_RETURN_IF_ERROR((BinomialReduce<T, Op>(t, sendbuf, recvbuf, count, 0)));
  return BinomialBcast<T>(t, recvbuf, count, 0);
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

// Ring allgather: every rank contributes `count` elements; recvbuf holds
// size() * count elements ordered by rank.
template <typename T>
Status RingAllgather(Transport& t, const T* sendbuf, T* recvbuf,
                     size_t count) {
  const int P = t.size();
  const int r = t.rank();
  std::memcpy(recvbuf + static_cast<size_t>(r) * count, sendbuf,
              count * sizeof(T));
  if (P == 1 || count == 0) return Status::Ok();
  const int right = (r + 1) % P;
  const int left = (r - 1 + P) % P;
  for (int s = 0; s < P - 1; ++s) {
    const int send_block = (r - s + P) % P;
    const int recv_block = (r - s - 1 + P) % P;
    RCC_RETURN_IF_ERROR(t.SendTo(right, /*tag=*/600 + s,
                                 recvbuf + static_cast<size_t>(send_block) * count,
                                 count * sizeof(T)));
    RCC_RETURN_IF_ERROR(t.RecvFrom(left, /*tag=*/600 + s,
                                   recvbuf + static_cast<size_t>(recv_block) * count,
                                   count * sizeof(T)));
  }
  return Status::Ok();
}

// Bruck allgather: ceil(log2 P) rounds; latency-optimal for small blocks.
template <typename T>
Status BruckAllgather(Transport& t, const T* sendbuf, T* recvbuf,
                      size_t count) {
  const int P = t.size();
  const int r = t.rank();
  if (count == 0) return Status::Ok();
  // tmp[j] accumulates the block of rank (r + j) % P.
  std::vector<T> tmp(static_cast<size_t>(P) * count);
  std::memcpy(tmp.data(), sendbuf, count * sizeof(T));

  int step = 0;
  for (int k = 1; k < P; k <<= 1, ++step) {
    const int nblocks = std::min(k, P - k);
    const int dst = (r - k + P) % P;
    const int src = (r + k) % P;
    RCC_RETURN_IF_ERROR(t.SendTo(dst, /*tag=*/700 + step, tmp.data(),
                                 static_cast<size_t>(nblocks) * count * sizeof(T)));
    RCC_RETURN_IF_ERROR(t.RecvFrom(src, /*tag=*/700 + step,
                                   tmp.data() + static_cast<size_t>(k) * count,
                                   static_cast<size_t>(nblocks) * count * sizeof(T)));
  }
  for (int j = 0; j < P; ++j) {
    const int owner = (r + j) % P;
    std::memcpy(recvbuf + static_cast<size_t>(owner) * count,
                tmp.data() + static_cast<size_t>(j) * count, count * sizeof(T));
  }
  return Status::Ok();
}

// Allgather of variable-size blobs over a ring (serialised state,
// agreement payloads). all->at(i) receives rank i's blob.
Status AllgatherBlobs(Transport& t, const std::vector<uint8_t>& mine,
                      std::vector<std::vector<uint8_t>>* all);

// ---------------------------------------------------------------------------
// Gather / Scatter / Barrier
// ---------------------------------------------------------------------------

template <typename T>
Status LinearGather(Transport& t, const T* sendbuf, T* recvbuf, size_t count,
                    int root) {
  const int P = t.size();
  const int r = t.rank();
  if (r != root) {
    return t.SendTo(root, /*tag=*/800, sendbuf, count * sizeof(T));
  }
  std::memcpy(recvbuf + static_cast<size_t>(r) * count, sendbuf,
              count * sizeof(T));
  for (int src = 0; src < P; ++src) {
    if (src == root) continue;
    RCC_RETURN_IF_ERROR(t.RecvFrom(src, /*tag=*/800,
                                   recvbuf + static_cast<size_t>(src) * count,
                                   count * sizeof(T)));
  }
  return Status::Ok();
}

template <typename T>
Status LinearScatter(Transport& t, const T* sendbuf, T* recvbuf, size_t count,
                     int root) {
  const int P = t.size();
  const int r = t.rank();
  if (r == root) {
    for (int dst = 0; dst < P; ++dst) {
      if (dst == root) continue;
      RCC_RETURN_IF_ERROR(t.SendTo(dst, /*tag=*/820,
                                   sendbuf + static_cast<size_t>(dst) * count,
                                   count * sizeof(T)));
    }
    std::memcpy(recvbuf, sendbuf + static_cast<size_t>(root) * count,
                count * sizeof(T));
    return Status::Ok();
  }
  return t.RecvFrom(root, /*tag=*/820, recvbuf, count * sizeof(T));
}

// Dissemination barrier: ceil(log2 P) rounds, no root.
Status DisseminationBarrier(Transport& t);

}  // namespace rcc::coll
