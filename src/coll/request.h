// Nonblocking collective requests.
//
// A Request is a shared handle onto one in-flight collective op. Each op
// body runs as an engine task (an OS thread under the `threads` backend,
// a fiber on the discrete-event queue under `fibers`; see sim/engine.h)
// over the timestamped fabric with a *private* virtual clock: the
// fabric's Recv already takes the clock by pointer, which keeps the
// virtual-time cost model exact while the submitting rank's own clock
// keeps advancing through compute.
//
// Ops submitted on one communicator are chained (each op task starts at
// max(submit time, predecessor completion)): the modeled engine executes
// collectives in order, like a NCCL stream, so the in-flight window size
// controls how far compute can run ahead of communication rather than
// how many ops transfer concurrently. Under fibers the chain is driven
// by virtual completion time — a successor parks until its predecessor's
// completion is known, with no background threads involved.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "coll/transport.h"
#include "common/status.h"
#include "sim/endpoint.h"
#include "sim/engine.h"

namespace rcc::coll {

class Request {
 public:
  struct Info {
    uint64_t op_id = 0;       // communicator-local sequence number
    const char* algo = "";    // kernel name ("ring", "binomial_bcast", ...)
    double bytes = 0.0;       // modeled wire payload
  };

  // The op body. Runs on the op task; receives the op's private virtual
  // clock (pre-advanced to the effective start time) and leaves the
  // completion time in it.
  using Body = std::function<Status(sim::Seconds*)>;

  Request() = default;

  // Starts the op as a task on `engine`. `submit` is the submitting
  // rank's clock at submission; `pid` its rank id (the deterministic
  // run-queue tie-break for the op task); if `after` holds an active
  // request, the op task first waits for it and starts no earlier than
  // its completion.
  static Request Start(Info info, sim::Seconds submit, Body body,
                       sim::Engine& engine, int pid,
                       const Request* after = nullptr);

  // An already-completed failed request (submission-time errors such as
  // a revoked or aborted communicator).
  static Request Failed(Info info, sim::Seconds submit, Status status);

  bool active() const { return state_ != nullptr; }
  const Info& info() const { return state_->info; }
  sim::Seconds submit_time() const { return state_->submit; }
  // Valid once the op completed (Test() true or Join() returned).
  sim::Seconds complete_time() const { return state_->complete; }
  // Effective start time: max(submit, predecessor completion), i.e. when
  // the modeled engine actually began executing the op. complete - start
  // is the service time, start - submit the queue wait. Valid once the
  // op completed.
  sim::Seconds start_time() const { return state_->start; }

  // Nonblocking completion probe.
  bool Test() const {
    return state_ != nullptr &&
           state_->done_flag.load(std::memory_order_acquire);
  }

  // Blocks (in real time) until the op completes; idempotent; returns
  // the op status. Virtual-clock merging is the communicator's job
  // (mpi::Comm::Wait / nccl::Comm::Wait).
  Status Join();

 private:
  struct State {
    Info info;
    sim::Seconds submit = 0.0;
    sim::Seconds start = 0.0;
    sim::Seconds complete = 0.0;
    Status status;
    std::mutex mu;
    sim::WaitPoint wp;
    bool done = false;  // guarded by mu
    std::atomic<bool> done_flag{false};
    sim::TaskHandle worker;
    ~State() {
      if (worker.joinable()) worker.Join();
    }
  };

  std::shared_ptr<State> state_;
};

// A Transport over the raw fabric for background op workers: the same
// send/recv cost accounting as sim::Endpoint + mpi::Comm::RawSend/RawRecv
// (self-kill checks, per-byte cost scaling, cancel token or death watch),
// but advancing a private clock instead of the rank's clock.
class FabricChannel : public Transport {
 public:
  // `pids` must outlive the channel (the op body keeps the owning group
  // alive via shared_ptr). Exactly one of `cancel` / `death_watch` is
  // normally set (mpi-style revocation vs nccl-style peer watching);
  // both may be null.
  FabricChannel(sim::Endpoint& ep, const std::vector<int>& pids, int rank,
                uint64_t channel, double cost_scale, sim::Seconds* now,
                const sim::CancelToken* cancel,
                const std::vector<int>* death_watch)
      : fabric_(&ep.fabric()),
        ep_(&ep),
        pids_(&pids),
        rank_(rank),
        channel_(channel),
        cost_scale_(cost_scale),
        now_(now),
        cancel_(cancel),
        death_watch_(death_watch) {}

  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(pids_->size()); }

  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override;
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override;
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override;

 private:
  // Mirrors Endpoint::MaybeSelfKill against the op's private clock so
  // deterministic virtual-time failure injection still fires when the
  // blocking wrappers run Start + Wait.
  bool SelfKilled();
  Status RawRecv(int src_rank, int tag, sim::Message* out);

  sim::Fabric* fabric_;
  sim::Endpoint* ep_;
  const std::vector<int>* pids_;
  int rank_;
  uint64_t channel_;
  double cost_scale_;
  sim::Seconds* now_;
  const sim::CancelToken* cancel_;
  const std::vector<int>* death_watch_;
};

}  // namespace rcc::coll
