// Transport abstraction the collective algorithms run over.
//
// rcc::mpi::Comm, rcc::gloo::Context and rcc::nccl::Comm all implement
// this interface, so every algorithm (ring/recursive-doubling allreduce,
// Bruck allgather, binomial trees, dissemination barrier...) is written
// once and reused by all three stacks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace rcc::coll {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  // Fixed-size exchange. Receive verifies the payload length matches.
  virtual Status SendTo(int dst_rank, int tag, const void* data,
                        size_t bytes) = 0;
  virtual Status RecvFrom(int src_rank, int tag, void* data,
                          size_t bytes) = 0;

  // Variable-size receive (serialised blobs: agreement payloads, state
  // sync, rendezvous data).
  virtual Status RecvBlob(int src_rank, int tag,
                          std::vector<uint8_t>* out) = 0;
};

// A rank-remapped view of a transport: collectives run over the subset
// `members` (base-transport ranks) as if it were the whole world. Used
// by the hierarchical allreduce (intra-node group, inter-node leader
// group). `tag_offset` keeps subgroup traffic disjoint from any outer
// algorithm steps sharing the channel.
class SubgroupTransport : public Transport {
 public:
  SubgroupTransport(Transport& base, std::vector<int> members,
                    int tag_offset)
      : base_(base), members_(std::move(members)), tag_offset_(tag_offset) {
    for (size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == base_.rank()) rank_ = static_cast<int>(i);
    }
  }

  bool contains_self() const { return rank_ >= 0; }
  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(members_.size()); }

  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override {
    return base_.SendTo(members_[dst_rank], tag + tag_offset_, data, bytes);
  }
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override {
    return base_.RecvFrom(members_[src_rank], tag + tag_offset_, data,
                          bytes);
  }
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override {
    return base_.RecvBlob(members_[src_rank], tag + tag_offset_, out);
  }

 private:
  Transport& base_;
  std::vector<int> members_;
  int tag_offset_;
  int rank_ = -1;
};

// Reduction operators. Kept as small structs so algorithm templates can
// inline the inner loop.
struct SumOp {
  template <typename T>
  static T Apply(T a, T b) { return a + b; }
};
struct ProdOp {
  template <typename T>
  static T Apply(T a, T b) { return a * b; }
};
struct MaxOp {
  template <typename T>
  static T Apply(T a, T b) { return a > b ? a : b; }
};
struct MinOp {
  template <typename T>
  static T Apply(T a, T b) { return a < b ? a : b; }
};
// Bitwise AND over integer types (the ULFM agreement reduces its flag
// with this).
struct BandOp {
  template <typename T>
  static T Apply(T a, T b) { return a & b; }
};
struct BorOp {
  template <typename T>
  static T Apply(T a, T b) { return a | b; }
};

}  // namespace rcc::coll
