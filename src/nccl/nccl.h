// NCCL-like GPU collective layer.
//
// Both stacks delegate bulk gradient allreduce to this library (as the
// paper's modified Horovod does): ring collectives that exploit the
// higher intra-node bandwidth (the fabric prices same-node hops at
// NVLink-class parameters, so a pid-ordered ring gets 5 of 6 hops on
// NVLink for 6-GPU nodes, like real NCCL rings).
//
// Failure semantics mirror NCCL with async error handling enabled: a
// peer death surfaces as an error status after the detection latency and
// permanently breaks the communicator; rebuilding requires a fresh
// InitRank, whose cost (bootstrap + topology discovery + ring build)
// grows with the rank count.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/request.h"
#include "coll/transport.h"
#include "coll/tuning.h"
#include "mpi/group.h"
#include "sim/endpoint.h"

namespace rcc::nccl {

class Comm : public coll::Transport {
 public:
  // Collective over `pids` (identical list everywhere). `unique_id` must
  // be fresh per init round (ncclGetUniqueId analogue). Charges the
  // communicator bootstrap cost and synchronises the participants.
  // `init_cost_scale` scales the bootstrap charge only (the asynchronous
  // admission path pre-establishes the merged transports during joiner
  // staging and splices at scale 0; the synchronizing barrier still
  // runs, so mid-bootstrap deaths surface either way).
  // `death_watch` (optional) widens the member-death watch beyond the
  // communicator's own pids — see set_death_watch below; it applies to
  // the bootstrap barrier too, so a mid-init death anywhere in the
  // watched set surfaces as an init failure.
  static std::unique_ptr<Comm> InitRank(sim::Endpoint& ep,
                                        const std::vector<int>& pids,
                                        const std::string& unique_id,
                                        double cost_scale = 1.0,
                                        double init_cost_scale = 1.0,
                                        const std::vector<int>* death_watch =
                                            nullptr);

  // --- coll::Transport ---
  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(group_->pids.size()); }
  Status SendTo(int dst_rank, int tag, const void* data,
                size_t bytes) override;
  Status RecvFrom(int src_rank, int tag, void* data, size_t bytes) override;
  Status RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) override;

  // --- nonblocking collectives ---
  // Submits the op to a background worker (GPU-stream analogue: ops on
  // one communicator execute in submission order). Buffers must stay
  // alive and untouched until the request completes. Algorithm choice
  // follows the *modeled* wire size (physical buffers may be reduced
  // stand-ins for declared-size gradient buckets).
  template <typename T>
  coll::Request IAllreduce(const T* sendbuf, T* recvbuf, size_t count) {
    const double modeled_bytes =
        static_cast<double>(count * sizeof(T)) * cost_scale_;
    const coll::AllreduceAlgo chosen = coll::ChooseAllreduce(
        tuning_, coll::AllreduceAlgo::kAuto, modeled_bytes, size());
    coll::Request::Info info{0, coll::AllreduceAlgoName(chosen),
                             modeled_bytes};
    if (broken_) {
      return coll::Request::Failed(
          info, ep_->now(), Status(Code::kIoError, "nccl communicator aborted"));
    }
    ++op_seq_;
    info.op_id = op_seq_;
    const uint64_t channel =
        sim::ChannelKey(group_->ctx_id, 1 + (op_seq_ % 65534));
    auto group = group_;
    auto watch = watch_ext_;
    auto* ep = ep_;
    const int rank = rank_;
    const double cs = cost_scale_;
    return StartOp(info, [group, watch, ep, rank, cs, channel, chosen, sendbuf,
                          recvbuf, count](sim::Seconds* now) -> Status {
      // Async error handling: any member death is communicator-fatal.
      coll::FabricChannel ch(*ep, group->pids, rank, channel, cs, now,
                             /*cancel=*/nullptr,
                             watch ? watch.get() : &group->pids);
      return coll::RunAllreduce<T>(chosen, ch, sendbuf, recvbuf, count);
    });
  }

  template <typename T>
  coll::Request IBroadcast(T* buf, size_t count, int root) {
    coll::Request::Info info{
        0, "binomial_bcast", static_cast<double>(count * sizeof(T)) * cost_scale_};
    if (broken_) {
      return coll::Request::Failed(
          info, ep_->now(), Status(Code::kIoError, "nccl communicator aborted"));
    }
    ++op_seq_;
    info.op_id = op_seq_;
    const uint64_t channel =
        sim::ChannelKey(group_->ctx_id, 1 + (op_seq_ % 65534));
    auto group = group_;
    auto watch = watch_ext_;
    auto* ep = ep_;
    const int rank = rank_;
    const double cs = cost_scale_;
    return StartOp(info, [group, watch, ep, rank, cs, channel, buf, count,
                          root](sim::Seconds* now) -> Status {
      coll::FabricChannel ch(*ep, group->pids, rank, channel, cs, now,
                             /*cancel=*/nullptr,
                             watch ? watch.get() : &group->pids);
      return coll::BinomialBcast<T>(ch, buf, count, root);
    });
  }

  // Blocks until the request completes, merges its completion time into
  // this rank's clock; a failed op permanently breaks the communicator
  // (async error handling).
  Status Wait(coll::Request* req);
  bool Test(const coll::Request* req) const;
  Status WaitAll(std::vector<coll::Request>* reqs);

  // --- blocking collectives (Start + Wait) ---
  template <typename T>
  Status Allreduce(const T* sendbuf, T* recvbuf, size_t count) {
    coll::Request req = IAllreduce(sendbuf, recvbuf, count);
    return Wait(&req);
  }
  template <typename T>
  Status Broadcast(T* buf, size_t count, int root) {
    coll::Request req = IBroadcast(buf, count, root);
    return Wait(&req);
  }
  template <typename T>
  Status Allgather(const T* sendbuf, T* recvbuf, size_t count) {
    RCC_RETURN_IF_ERROR(BeginOp());
    return FinishOp(coll::RingAllgather<T>(*this, sendbuf, recvbuf, count));
  }
  // Dissemination barrier (used by the resilient layer as the
  // synchronizing phase of each resilient collective).
  Status Barrier() {
    RCC_RETURN_IF_ERROR(BeginOp());
    return FinishOp(coll::DisseminationBarrier(*this));
  }

  // Two-level (rail-optimized) hierarchical allreduce, the shape real
  // NCCL uses on multi-GPU nodes: ring reduce-scatter within each node
  // over the NVLink-class links, then every local rank ring-allreduces
  // *its chunk* with the same-index ranks of the other nodes (its
  // "rail") over the host network - all rails in parallel - and finally
  // a ring allgather within the node reassembles the tensor. Inter-node
  // bytes per rank drop by the node size versus a flat ring.
  template <typename T>
  Status HierarchicalAllreduce(const T* sendbuf, T* recvbuf, size_t count) {
    RCC_RETURN_IF_ERROR(BeginOp());
    return FinishOp(RunHierarchical<T>(sendbuf, recvbuf, count));
  }

  // ncclCommAbort analogue: tears the communicator down locally.
  void Abort() { broken_ = true; }
  bool broken() const { return broken_; }
  const std::vector<int>& pids() const { return group_->pids; }
  void set_cost_scale(double s) { cost_scale_ = s; }

  // Death-watch override (per instance): by default every collective
  // watches the communicator's OWN members and unblocks when one dies.
  // A grid sub-communicator (DP/TP group of a hybrid-parallel job) must
  // watch the whole world instead: a failure in another group makes a
  // peer abandon the step before entering this group's collective, and
  // without the wider watch the remaining members would block forever
  // on a collective that will never start. Pass the CURRENT world pid
  // list (stale lists containing already-dead pids fail collectives
  // immediately).
  void set_death_watch(std::vector<int> pids) {
    watch_ext_ = std::make_shared<const std::vector<int>>(std::move(pids));
  }

  // Drains and returns the accumulated per-op service seconds (engine
  // execution time of request-based ops observed at Wait, plus wall time
  // of inline ops) since the last call. Drivers read this per training
  // step to compute the comm-hidden fraction from *this communicator's*
  // traffic only, unpolluted by other communicators sharing the global
  // registry.
  double TakeServiceSeconds() {
    const double s = service_acc_;
    service_acc_ = 0.0;
    return s;
  }

  // Cost model for one InitRank over `nranks`, exposed for benches.
  static sim::Seconds InitCost(const sim::SimConfig& cfg, int nranks);

 private:
  Comm(sim::Endpoint* ep, std::shared_ptr<mpi::CommGroup> group,
       double cost_scale);
  Status BeginOp();
  Status FinishOp(Status s);
  coll::Request StartOp(coll::Request::Info info, coll::Request::Body body);
  // Stream-ordering for the inline collectives: drains any in-flight
  // request-based op before an inline op starts (real NCCL serializes
  // everything on the stream).
  void SyncStream();

  // Node-grouped rank lists: by_node[k] = ranks of the k-th distinct
  // node in rank order (each sorted ascending); local_group = ranks on
  // this rank's own node.
  void NodeGroups(std::vector<std::vector<int>>* by_node,
                  std::vector<int>* local_group) const;

  template <typename T>
  Status RunHierarchical(const T* sendbuf, T* recvbuf, size_t count) {
    std::vector<std::vector<int>> by_node;
    std::vector<int> local_group;
    NodeGroups(&by_node, &local_group);
    const size_t local_size = local_group.size();
    // Fall back to the flat ring for degenerate or irregular topologies
    // (rails need every node to host the same number of ranks).
    bool regular = by_node.size() > 1 && local_size > 1 &&
                   count >= local_size;
    for (const auto& node : by_node) {
      if (node.size() != local_size) regular = false;
    }
    if (!regular) {
      return coll::RingAllreduce<T>(*this, sendbuf, recvbuf, count);
    }
    coll::SubgroupTransport local(*this, local_group, /*tag_offset=*/5000);
    // 1. Intra-node ring reduce-scatter (NVLink-priced hops): I end up
    // owning chunk `owned` of the node-local sum.
    int owned = 0;
    RCC_RETURN_IF_ERROR(coll::RingReduceScatter<T>(local, sendbuf, recvbuf,
                                                   count, &owned));
    // 2. My rail: the rank with the same local index on every node.
    std::vector<int> rail;
    const int my_index = local.rank();
    for (const auto& node : by_node) rail.push_back(node[my_index]);
    coll::SubgroupTransport rail_t(*this, rail, /*tag_offset=*/7000);
    const size_t off = coll::detail::ChunkOffset(
        count, static_cast<int>(local_size), owned);
    const size_t n = coll::detail::ChunkSize(
        count, static_cast<int>(local_size), owned);
    std::vector<T> chunk(n);
    RCC_RETURN_IF_ERROR(
        coll::RingAllreduce<T>(rail_t, recvbuf + off, chunk.data(), n));
    std::memcpy(recvbuf + off, chunk.data(), n * sizeof(T));
    // 3. Intra-node ring allgather reassembles the globally-reduced
    // tensor on every rank.
    return coll::RingAllgatherChunks<T>(local, recvbuf, count);
  }

  sim::Endpoint* ep_;
  std::shared_ptr<mpi::CommGroup> group_;
  std::shared_ptr<const std::vector<int>> watch_ext_;  // see set_death_watch
  int rank_;
  double cost_scale_;
  coll::AllreduceTuning tuning_ = coll::NcclAllreduceTuning();
  bool broken_ = false;
  uint64_t op_seq_ = 0;
  uint64_t current_phase_ = 0;
  coll::Request engine_tail_;  // last submitted op (stream-order chain)
  // Service-seconds accumulator (rank-thread only; see TakeServiceSeconds).
  double service_acc_ = 0.0;
  sim::Seconds inline_op_start_ = 0.0;  // BeginOp timestamp for inline ops
};

}  // namespace rcc::nccl
