#include "nccl/nccl.h"

#include <cstring>
#include <map>

#include "common/log.h"
#include "obs/metrics.h"

namespace rcc::nccl {

Comm::Comm(sim::Endpoint* ep, std::shared_ptr<mpi::CommGroup> group,
           double cost_scale)
    : ep_(ep), group_(std::move(group)), cost_scale_(cost_scale) {
  rank_ = group_->RankOfPid(ep_->pid());
  RCC_CHECK(rank_ >= 0) << "nccl comm: pid not in membership";
}

sim::Seconds Comm::InitCost(const sim::SimConfig& cfg, int nranks) {
  return cfg.costs.nccl_init_base + cfg.costs.nccl_init_per_rank * nranks;
}

std::unique_ptr<Comm> Comm::InitRank(sim::Endpoint& ep,
                                     const std::vector<int>& pids,
                                     const std::string& unique_id,
                                     double cost_scale,
                                     double init_cost_scale,
                                     const std::vector<int>* death_watch) {
  ep.Busy(InitCost(ep.fabric().config(), static_cast<int>(pids.size())) *
          init_cost_scale);
  auto group = mpi::GetOrCreateGroup(
      "nccl/f" + std::to_string(ep.fabric().id()) + "/" + unique_id, pids);
  auto comm =
      std::unique_ptr<Comm>(new Comm(&ep, group, cost_scale));
  if (death_watch != nullptr) comm->set_death_watch(*death_watch);
  // Bootstrap synchronisation: the init is collective; a dissemination
  // barrier aligns the participants' clocks (and surfaces peers that died
  // mid-init as an init failure, matching ncclCommInitRank).
  comm->BeginOp().ok();
  Status s = coll::DisseminationBarrier(*comm);
  if (!comm->FinishOp(s).ok()) return nullptr;
  return comm;
}

void Comm::NodeGroups(std::vector<std::vector<int>>* by_node,
                      std::vector<int>* local_group) const {
  by_node->clear();
  local_group->clear();
  const int my_node = ep_->fabric().NodeOf(ep_->pid());
  std::map<int, size_t> index_of_node;  // node id -> by_node slot
  for (int rank = 0; rank < size(); ++rank) {
    const int node = ep_->fabric().NodeOf(group_->pids[rank]);
    auto [it, fresh] = index_of_node.emplace(node, by_node->size());
    if (fresh) by_node->emplace_back();
    (*by_node)[it->second].push_back(rank);
    if (node == my_node) local_group->push_back(rank);
  }
}

coll::Request Comm::StartOp(coll::Request::Info info,
                            coll::Request::Body body) {
  coll::Request req =
      coll::Request::Start(info, ep_->now(), std::move(body),
                           ep_->fabric().engine(), ep_->pid(), &engine_tail_);
  engine_tail_ = req;
  return req;
}

void Comm::SyncStream() {
  if (!engine_tail_.active()) return;
  engine_tail_.Join();
  ep_->AdvanceTo(engine_tail_.complete_time());
}

Status Comm::Wait(coll::Request* req) {
  if (req == nullptr || !req->active()) {
    return Status(Code::kInvalid, "wait on empty request");
  }
  Status s = req->Join();
  ep_->AdvanceTo(req->complete_time());
  if (s.ok()) {
    service_acc_ += req->complete_time() - req->start_time();
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"algo", req->info().algo}, {"stack", "nccl"}};
    reg.GetHistogram("rcc_collective_latency_seconds", labels)
        ->Observe(req->complete_time() - req->submit_time());
    reg.GetCounter("rcc_collective_bytes_total", labels)
        ->Add(req->info().bytes);
    reg.GetCounter("rcc_collective_ops_total", labels)->Increment();
  }
  if (!s.ok()) broken_ = true;
  return s;
}

bool Comm::Test(const coll::Request* req) const {
  return req != nullptr && req->Test();
}

Status Comm::WaitAll(std::vector<coll::Request>* reqs) {
  Status first;
  for (auto& req : *reqs) {
    if (!req.active()) continue;
    Status s = Wait(&req);
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

Status Comm::BeginOp() {
  SyncStream();
  if (broken_) return Status(Code::kIoError, "nccl communicator aborted");
  ++op_seq_;
  current_phase_ = 1 + (op_seq_ % 65534);
  inline_op_start_ = ep_->now();
  RCC_LOG(kTrace) << "nccl pid " << ep_->pid() << " ctx "
                  << group_->ctx_id << " begin op " << op_seq_;
  return Status::Ok();
}

Status Comm::FinishOp(Status s) {
  current_phase_ = 0;
  // Inline ops (allgather, barrier, hierarchical allreduce) run on the
  // rank clock itself; their wall time is pure service time.
  if (s.ok()) service_acc_ += ep_->now() - inline_op_start_;
  if (!s.ok()) broken_ = true;
  RCC_LOG(kTrace) << "nccl pid " << ep_->pid() << " ctx "
                  << group_->ctx_id << " end op " << op_seq_ << " "
                  << s.ToString();
  return s;
}

Status Comm::SendTo(int dst_rank, int tag, const void* data, size_t bytes) {
  const auto* p = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> payload(p, p + bytes);
  return ep_->Send(group_->pids[dst_rank],
                   sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                   std::move(payload),
                   static_cast<double>(bytes) * cost_scale_);
}

Status Comm::RecvFrom(int src_rank, int tag, void* data, size_t bytes) {
  sim::Message msg;
  RCC_LOG(kTrace) << "nccl pid " << ep_->pid() << " ctx " << group_->ctx_id
                  << " op " << op_seq_ << " recv from rank " << src_rank
                  << " tag " << tag << " bytes " << bytes;
  // Async error handling: any member death is communicator-fatal.
  Status s = ep_->Recv(group_->pids[src_rank],
                       sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                       &msg, /*cancel=*/nullptr,
                       watch_ext_ ? watch_ext_.get() : &group_->pids);
  if (!s.ok()) return s;
  if (msg.payload.size() != bytes) {
    return Status(Code::kInternal, "nccl step size mismatch");
  }
  std::memcpy(data, msg.payload.data(), bytes);
  return Status::Ok();
}

Status Comm::RecvBlob(int src_rank, int tag, std::vector<uint8_t>* out) {
  sim::Message msg;
  Status s = ep_->Recv(group_->pids[src_rank],
                       sim::ChannelKey(group_->ctx_id, current_phase_), tag,
                       &msg, /*cancel=*/nullptr,
                       watch_ext_ ? watch_ext_.get() : &group_->pids);
  if (!s.ok()) return s;
  *out = std::move(msg.payload);
  return Status::Ok();
}

}  // namespace rcc::nccl
