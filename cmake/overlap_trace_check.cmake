# Script-mode ctest driving the observability acceptance check: run
# bench_ablation_overlap with the RCC_TRACE_JSON / RCC_METRICS_OUT env
# knobs set, then require that
#   (1) the bench's own cross-check passed ("overlap metrics check: OK"
#       -- the rcc_step_*-derived comm-hidden fraction within 2 points
#       of the bench's wall-clock ratio),
#   (2) the emitted Chrome trace JSON validates against the schema
#       (trace_json_check), and
#   (3) the metrics dumps (Prometheus text + CSV) were written.
#
# Usage:
#   cmake -DBENCH=<bench exe> -DCHECKER=<checker exe> -DOUT_DIR=<dir> \
#         -P overlap_trace_check.cmake
foreach(var BENCH CHECKER OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(TRACE_JSON "${OUT_DIR}/ablation_overlap_trace.json")
set(METRICS_OUT "${OUT_DIR}/ablation_overlap_metrics.prom")
set(ENV{RCC_TRACE_JSON} "${TRACE_JSON}")
set(ENV{RCC_METRICS_OUT} "${METRICS_OUT}")

execute_process(
  COMMAND "${BENCH}"
  WORKING_DIRECTORY "${OUT_DIR}"
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err
  RESULT_VARIABLE bench_rc)
message("${bench_out}")
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench failed (rc=${bench_rc}): ${bench_err}")
endif()
string(FIND "${bench_out}" "overlap metrics check: OK" ok_pos)
if(ok_pos EQUAL -1)
  message(FATAL_ERROR "bench output lacks 'overlap metrics check: OK'")
endif()

foreach(f "${TRACE_JSON}" "${METRICS_OUT}" "${METRICS_OUT}.csv")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "expected observability dump missing: ${f}")
  endif()
endforeach()

execute_process(
  COMMAND "${CHECKER}" "${TRACE_JSON}"
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "trace schema check failed: ${check_out}${check_err}")
endif()
message("overlap trace + metrics dumps validated")
