// ImageNet-scale elastic training (simulated): ResNet50V2 across 24
// simulated V100s (4 Summit-like nodes), run through both stacks with
// the same failure + upscale schedule, printing the per-phase recovery
// trace for each. This is the "big picture" companion to the figure
// benches: one schedule, two systems, side-by-side timelines.
//
//   ./examples/imagenet_scale_training
#include <cstdio>

#include "core/ulfm_elastic.h"
#include "horovod/elastic_horovod.h"

using namespace rcc;

namespace {

horovod::SyntheticPlan Schedule() {
  horovod::SyntheticPlan plan;
  plan.spec = dnn::ResNet50V2Spec();
  plan.initial_world = 24;
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 4;
  plan.epochs = 3;
  plan.drop_policy = horovod::DropPolicy::kNode;
  // Epoch 1: a node blows up mid-step. Epoch 2: six new workers arrive.
  plan.failures.push_back({1, 1, 0, /*victim_rank=*/7,
                           sim::FailScope::kNode});
  plan.joins.push_back({/*epoch=*/2, /*count=*/6, /*cold=*/true});
  return plan;
}

void Report(const char* name, const horovod::RunStats& stats,
            const trace::Recorder& rec) {
  std::printf("\n--- %s ---\n", name);
  std::printf("virtual completion time: %.2f s, final world: %d, "
              "resets/repairs: %d\n",
              stats.completion_time, stats.final_world, stats.resets);
  rec.ToTable().Print("per-phase costs (max / mean over ranks)");
}

}  // namespace

int main() {
  auto plan = Schedule();
  {
    trace::Recorder rec;
    sim::Cluster cluster;
    auto stats = horovod::RunElasticHorovod(cluster, plan, &rec);
    Report("Elastic Horovod (Gloo + NCCL, checkpoint rollback)", stats, rec);
  }
  {
    trace::Recorder rec;
    sim::Cluster cluster;
    auto stats = core::RunUlfmElastic(cluster, plan, &rec);
    Report("ULFM MPI (resilient collectives, forward recovery)", stats, rec);
  }
  std::printf(
      "\nSame schedule, same cluster model: the ULFM stack repairs the\n"
      "communicator in place and admits the new node at the epoch\n"
      "boundary, while the baseline tears everything down twice.\n");
  return 0;
}
