// Quickstart: elastic data-parallel training that survives a worker
// failure mid-epoch with forward recovery.
//
// Four simulated workers train a small MLP on the spiral dataset through
// the resilient collectives. Halfway through training one worker dies;
// the survivors revoke/agree/shrink, re-execute only the failed gradient
// allreduce, and keep training - no checkpoint, no rollback, no restart.
//
//   ./examples/quickstart
#include <atomic>
#include <cstdio>
#include <mutex>

#include "core/elastic_trainer.h"
#include "core/resilient.h"
#include "dnn/data.h"
#include "dnn/model.h"

using namespace rcc;

int main() {
  const int kWorkers = 4;
  const int kClasses = 3;
  dnn::ClusterDataset data(/*dim=*/8, kClasses, /*num_samples=*/2048,
                           /*seed=*/2026);

  core::TrainerOptions opts;
  opts.batch_per_worker = 16;
  opts.steps_per_epoch = 20;
  opts.epochs = 4;
  opts.sgd = {0.08f, 0.9f, 0.0f};
  // Scripted fault: the worker holding rank 2 dies at epoch 1, step 10.
  opts.failures.push_back({/*epoch=*/1, /*step=*/10, /*bucket=*/0,
                           /*victim_rank=*/2, sim::FailScope::kProcess});

  std::vector<std::atomic<bool>> failure_flags(1);
  failure_flags[0] = false;

  sim::Cluster cluster;  // Summit-like simulated cluster (see rcc::sim)
  std::vector<int> pids{0, 1, 2, 3};
  std::mutex mu;
  std::vector<core::TrainerReport> reports;

  cluster.Spawn(kWorkers, [&](sim::Endpoint& ep) {
    dnn::Model model = dnn::BuildMlp(8, {32, 16}, kClasses, /*seed=*/7);
    dnn::Sgd opt(model.Params(), opts.sgd);
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess,
                           /*rec=*/nullptr);
    core::ElasticTrainer trainer(&rc, &model, &opt, &data, opts,
                                 &failure_flags);
    auto report = trainer.Run();
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(std::move(report));
  });
  cluster.Join();

  std::printf("worker reports:\n");
  for (const auto& r : reports) {
    if (r.aborted) {
      std::printf("  [failed worker] executed %d steps, then died\n",
                  r.steps_run);
    } else {
      std::printf(
          "  [survivor] %d steps, loss %.3f -> %.3f, final world %d, "
          "repairs %d\n",
          r.steps_run, r.first_loss, r.last_loss, r.final_world, r.repairs);
    }
  }

  // Every survivor executed every planned step exactly once (forward
  // recovery re-runs collectives, never training steps) and all replicas
  // hold bit-identical parameters.
  const core::TrainerReport* ref = nullptr;
  bool consistent = true;
  for (const auto& r : reports) {
    if (r.aborted) continue;
    if (ref == nullptr) {
      ref = &r;
    } else if (r.final_params != ref->final_params) {
      consistent = false;
    }
  }
  std::printf("replicas consistent after recovery: %s\n",
              consistent ? "yes" : "NO");
  std::printf("loss decreased across the failure: %s\n",
              (ref != nullptr && ref->last_loss < ref->first_loss) ? "yes"
                                                                   : "NO");
  return consistent ? 0 : 1;
}
