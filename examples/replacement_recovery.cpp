// Scenario II (replacement recovery) on a real model: a worker fails
// mid-epoch; the survivors finish the epoch in degraded mode (forward
// recovery), and at the next epoch boundary a pre-provisioned
// replacement joins, receives the full training state (model + optimizer
// + cursor) from rank 0, and training continues at the original world
// size - exactly the paper's Section 3.3.2.
//
//   ./examples/replacement_recovery
#include <atomic>
#include <cstdio>
#include <mutex>

#include "core/elastic_trainer.h"
#include "core/resilient.h"
#include "dnn/data.h"
#include "dnn/model.h"

using namespace rcc;

namespace {
dnn::Model MakeModel() { return dnn::BuildMlp(8, {24}, 3, /*seed=*/31); }
}  // namespace

int main() {
  dnn::ClusterDataset data(8, 3, 2048, /*seed=*/11);
  core::TrainerOptions opts;
  opts.batch_per_worker = 16;
  opts.steps_per_epoch = 12;
  opts.epochs = 3;
  // Epoch 0: rank 1 dies at step 6. Epoch 1 boundary: one replacement.
  opts.failures.push_back({0, 6, 0, 1, sim::FailScope::kProcess});
  opts.joins[1] = 1;

  std::vector<std::atomic<bool>> flags(1);
  flags[0] = false;
  sim::Cluster cluster;
  std::vector<int> pids{0, 1, 2, 3};
  std::mutex mu;
  std::vector<core::TrainerReport> reports;

  cluster.Spawn(4, [&](sim::Endpoint& ep) {
    dnn::Model model = MakeModel();
    dnn::Sgd opt(model.Params(), opts.sgd);
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess, nullptr);
    core::ElasticTrainer trainer(&rc, &model, &opt, &data, opts, &flags);
    auto report = trainer.Run();
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(std::move(report));
  });
  // The replacement: joins the session named by the merge epoch, then
  // restores the broadcast state before training.
  cluster.SpawnOnFreshNodes(1, [&](sim::Endpoint& ep) {
    dnn::Model model = MakeModel();
    dnn::Sgd opt(model.Params(), opts.sgd);
    // Warm start: the standby process only re-creates its device context.
    ep.Busy(ep.fabric().config().costs.worker_warmstart);
    auto rc = core::ResilientComm::JoinExisting(
        ep, "trainer-epoch1", /*expected_joiners=*/1,
        horovod::DropPolicy::kProcess, nullptr);
    if (rc == nullptr) return;
    checkpoint::TrainingCursor cursor;
    if (!core::ElasticTrainer::SyncState(rc.get(), &model, &opt, &cursor,
                                         /*receiver=*/true)
             .ok()) {
      return;
    }
    std::printf("[replacement] joined at epoch %d with synced state\n",
                cursor.epoch);
    core::ElasticTrainer trainer(rc.get(), &model, &opt, &data, opts,
                                 &flags);
    auto report = trainer.Run(cursor, /*joined_at_epoch=*/cursor.epoch);
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(std::move(report));
  }, /*start_time=*/0.0);
  cluster.Join();

  int final_world = -1;
  int finishers = 0;
  bool consistent = true;
  const core::TrainerReport* ref = nullptr;
  for (const auto& r : reports) {
    if (r.aborted) continue;
    ++finishers;
    final_world = r.final_world;
    if (ref == nullptr) {
      ref = &r;
    } else if (r.final_params != ref->final_params) {
      consistent = false;
    }
  }
  std::printf(
      "finishers: %d, final world: %d (original 4), replicas consistent: "
      "%s\n",
      finishers, final_world, consistent ? "yes" : "NO");
  return (final_world == 4 && consistent) ? 0 : 1;
}
