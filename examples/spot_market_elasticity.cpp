// Cloud spot-market elasticity: the paper's motivation for scaling the
// training up and down with external factors ("spot node pricing").
//
// A deterministic synthetic spot-price series drives the worker count:
// whenever the price spikes above the bid, a node is reclaimed
// (= node failure mid-epoch, forward recovery); whenever it drops,
// a new node is provisioned and merges at the next epoch boundary.
// The ULFM elastic stack rides the whole series without a restart.
//
//   ./examples/spot_market_elasticity
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/ulfm_elastic.h"

using namespace rcc;

int main() {
  const int kEpochs = 6;
  const double kBid = 1.0;

  // Deterministic mean-reverting price walk, one sample per epoch.
  Rng rng(/*seed=*/777);
  std::vector<double> price(kEpochs);
  double p = 0.8;
  for (int e = 0; e < kEpochs; ++e) {
    p += 0.25 * (0.9 - p) + 0.22 * rng.NextGaussian();
    price[e] = p;
  }

  horovod::SyntheticPlan plan;
  plan.spec = dnn::ResNet50V2Spec();
  plan.initial_world = 18;  // 3 nodes
  plan.batch_per_worker = 32;
  plan.steps_per_epoch = 3;
  plan.epochs = kEpochs;
  plan.drop_policy = horovod::DropPolicy::kNode;

  Table schedule({"epoch", "spot price", "event"});
  int world = plan.initial_world;
  for (int e = 1; e < kEpochs; ++e) {
    if (price[e] > kBid && world > 6) {
      // Reclaimed: one node is pulled mid-epoch.
      plan.failures.push_back(
          {e, /*step=*/1, /*bucket=*/0, /*victim_rank=*/world - 1,
           sim::FailScope::kNode});
      world -= 6;
      schedule.AddRow({std::to_string(e), FormatDouble(price[e], 2),
                       "price > bid: node reclaimed (forward recovery)"});
    } else if (price[e] < 0.85 * kBid) {
      plan.joins.push_back({e, /*count=*/6, /*cold=*/true});
      world += 6;
      schedule.AddRow({std::to_string(e), FormatDouble(price[e], 2),
                       "price low: +1 node provisioned (merge at boundary)"});
    } else {
      schedule.AddRow({std::to_string(e), FormatDouble(price[e], 2), "-"});
    }
  }
  schedule.Print("spot-price schedule (bid = 1.00)");

  trace::Recorder rec;
  sim::Cluster cluster;
  auto stats = core::RunUlfmElastic(cluster, plan, &rec);
  std::printf(
      "\ncompleted %d epochs in %.2f virtual seconds; final world %d GPUs; "
      "%d repair/merge events, zero restarts, zero checkpoints.\n",
      kEpochs, stats.completion_time, stats.final_world, stats.resets);
  rec.ToTable().Print("recovery/merge phase costs");
  return 0;
}
