// Scale smoke: N simulated ranks (default 1024) found a resilient
// communicator, allreduce for a few rounds, lose one rank mid-run,
// repair/shrink, and keep reducing. Verifies every survivor saw the
// repair, ends at world N-1, and holds bit-identical final reductions.
//
//   ./tools/scale_smoke [--ranks N] [--engine threads|fibers]
//                       [--max-rss-mb M] [--stall-timeout-s S]
//
// --engine pins the rank-execution backend directly (no RCC_SIM_ENGINE
// needed in CI matrices); unset keeps the env-resolved default.
//
// Distinct exit codes so CI can tell failure classes apart:
//   0  pass
//   1  resource budget exceeded (peak RSS above --max-rss-mb)
//   2  verification mismatch (divergent replicas, wrong membership, or
//      a survivor that missed the repair)
//   3  stall — the fibers scheduler proved a deadlock (via the
//      sim::SetStallHandler hook), or the real-time watchdog expired
//      (threads-backend hangs can only be caught by wall clock).
#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/resilient.h"
#include "sim/cluster.h"
#include "sim/engine.h"

using namespace rcc;

namespace {

struct Report {
  bool aborted = false;
  int repairs = 0;
  int final_world = 0;
  std::vector<float> last;
};

void WatchdogExpired(int) {
  // Async-signal-safe: raw write + immediate exit.
  const char msg[] = "scale_smoke: STALL (real-time watchdog expired)\n";
  ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)ignored;
  _exit(3);
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 1024;
  double max_rss_mb = 0;       // 0 = no budget check
  int stall_timeout_s = 300;   // 0 = no watchdog
  sim::SimConfig cfg;          // engine defaults to env-resolved kAuto
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--max-rss-mb") == 0)
      max_rss_mb = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--stall-timeout-s") == 0)
      stall_timeout_s = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--engine") == 0) {
      if (std::strcmp(argv[i + 1], "fibers") == 0) {
        cfg.engine = sim::EngineKind::kFibers;
      } else if (std::strcmp(argv[i + 1], "threads") == 0) {
        cfg.engine = sim::EngineKind::kThreads;
      } else {
        std::fprintf(stderr, "unknown --engine %s\n", argv[i + 1]);
        return 2;
      }
    }
  }

  // Stall detection, both backends: the fibers scheduler proves a
  // deadlock deterministically and calls the handler; a threads-backend
  // deadlock just hangs, so a wall-clock watchdog backstops it.
  sim::SetStallHandler([](const std::string& report) {
    std::fprintf(stderr, "scale_smoke: STALL: %s\n", report.c_str());
    std::exit(3);
  });
  if (stall_timeout_s > 0) {
    std::signal(SIGALRM, WatchdogExpired);
    alarm(static_cast<unsigned>(stall_timeout_s));
  }

  constexpr int kRounds = 8;
  constexpr size_t kCount = 256;
  constexpr double kRoundBusy = 0.01;   // virtual seconds per round
  const int victim = ranks / 3;
  // Dies during round 4's reduction (clock passes 0.035 inside it).
  const sim::Seconds kKillAt = 3 * kRoundBusy + kRoundBusy / 2;

  std::vector<int> pids(ranks);
  for (int i = 0; i < ranks; ++i) pids[i] = i;

  std::mutex mu;
  std::vector<Report> reports;

  sim::Cluster cluster(cfg);
  cluster.AddPendingFailure(
      {sim::FailScope::kProcess, victim, kKillAt});
  cluster.Spawn(ranks, [&](sim::Endpoint& ep) {
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess,
                           /*rec=*/nullptr);
    Report rep;
    std::vector<float> send(kCount), recv(kCount);
    for (int round = 0; round < kRounds && !rep.aborted; ++round) {
      ep.Busy(kRoundBusy);
      for (size_t i = 0; i < kCount; ++i) {
        send[i] = static_cast<float>((ep.pid() % 7) + round) +
                  static_cast<float>(i) * 0.001f;
      }
      if (!rc.Allreduce(send.data(), recv.data(), kCount).ok()) {
        rep.aborted = true;
      }
    }
    rep.repairs = rc.repairs();
    rep.final_world = rc.size();
    rep.last = recv;
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(std::move(rep));
  });
  cluster.Join();
  alarm(0);
  sim::SetStallHandler(nullptr);

  int survivors = 0, aborted = 0, repaired = 0;
  const Report* ref = nullptr;
  bool identical = true, world_ok = true;
  for (const auto& r : reports) {
    if (r.aborted) {
      ++aborted;
      continue;
    }
    ++survivors;
    if (r.repairs > 0) ++repaired;
    if (r.final_world != ranks - 1) world_ok = false;
    if (ref == nullptr) {
      ref = &r;
    } else if (r.last != ref->last) {
      identical = false;
    }
  }

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  const double rss_mb = ru.ru_maxrss / 1024.0;  // Linux: ru_maxrss in KB

  const bool verified = survivors == ranks - 1 && aborted == 1 &&
                        repaired == survivors && world_ok && identical;
  const bool rss_ok = max_rss_mb <= 0 || rss_mb <= max_rss_mb;
  std::printf(
      "scale_smoke: ranks=%d engine=%s survivors=%d aborted=%d repaired=%d "
      "world_ok=%d identical=%d peak_rss_mb=%.1f -> %s\n",
      ranks,
      sim::ResolveEngineKind(cfg.engine) == sim::EngineKind::kFibers
          ? "fibers"
          : "threads",
      survivors, aborted, repaired, static_cast<int>(world_ok),
      static_cast<int>(identical), rss_mb,
      verified && rss_ok ? "PASS" : "FAIL");
  if (!verified) return 2;
  return rss_ok ? 0 : 1;
}
