// Scale smoke: N simulated ranks (default 1024, CI runs fibers via
// RCC_SIM_ENGINE) found a resilient communicator, allreduce for a few
// rounds, lose one rank mid-run, repair/shrink, and keep reducing.
// Verifies every survivor saw the repair, ends at world N-1, and holds
// bit-identical final reductions. Exits non-zero on any mismatch or
// when peak RSS exceeds --max-rss-mb (the CI memory budget).
//
//   ./tools/scale_smoke [--ranks N] [--max-rss-mb M]
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/resilient.h"
#include "sim/cluster.h"

using namespace rcc;

namespace {

struct Report {
  bool aborted = false;
  int repairs = 0;
  int final_world = 0;
  std::vector<float> last;
};

}  // namespace

int main(int argc, char** argv) {
  int ranks = 1024;
  double max_rss_mb = 0;  // 0 = no budget check
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--max-rss-mb") == 0)
      max_rss_mb = std::atof(argv[i + 1]);
  }

  constexpr int kRounds = 8;
  constexpr size_t kCount = 256;
  constexpr double kRoundBusy = 0.01;   // virtual seconds per round
  const int victim = ranks / 3;
  // Dies during round 4's reduction (clock passes 0.035 inside it).
  const sim::Seconds kKillAt = 3 * kRoundBusy + kRoundBusy / 2;

  std::vector<int> pids(ranks);
  for (int i = 0; i < ranks; ++i) pids[i] = i;

  std::mutex mu;
  std::vector<Report> reports;

  sim::Cluster cluster;
  cluster.AddPendingFailure(
      {sim::FailScope::kProcess, victim, kKillAt});
  cluster.Spawn(ranks, [&](sim::Endpoint& ep) {
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess,
                           /*rec=*/nullptr);
    Report rep;
    std::vector<float> send(kCount), recv(kCount);
    for (int round = 0; round < kRounds && !rep.aborted; ++round) {
      ep.Busy(kRoundBusy);
      for (size_t i = 0; i < kCount; ++i) {
        send[i] = static_cast<float>((ep.pid() % 7) + round) +
                  static_cast<float>(i) * 0.001f;
      }
      if (!rc.Allreduce(send.data(), recv.data(), kCount).ok()) {
        rep.aborted = true;
      }
    }
    rep.repairs = rc.repairs();
    rep.final_world = rc.size();
    rep.last = recv;
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(std::move(rep));
  });
  cluster.Join();

  int survivors = 0, aborted = 0, repaired = 0;
  const Report* ref = nullptr;
  bool identical = true, world_ok = true;
  for (const auto& r : reports) {
    if (r.aborted) {
      ++aborted;
      continue;
    }
    ++survivors;
    if (r.repairs > 0) ++repaired;
    if (r.final_world != ranks - 1) world_ok = false;
    if (ref == nullptr) {
      ref = &r;
    } else if (r.last != ref->last) {
      identical = false;
    }
  }

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  const double rss_mb = ru.ru_maxrss / 1024.0;  // Linux: ru_maxrss in KB

  const bool pass = survivors == ranks - 1 && aborted == 1 &&
                    repaired == survivors && world_ok && identical &&
                    (max_rss_mb <= 0 || rss_mb <= max_rss_mb);
  std::printf(
      "scale_smoke: ranks=%d survivors=%d aborted=%d repaired=%d "
      "world_ok=%d identical=%d peak_rss_mb=%.1f -> %s\n",
      ranks, survivors, aborted, repaired, static_cast<int>(world_ok),
      static_cast<int>(identical), rss_mb, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
