// Merges per-rank flight-recorder dumps into one causal timeline and
// prints the forensic report: root-cause rank, collective lifecycles,
// and the per-repair recovery critical path. See obs/postmortem.h for
// the analysis rules.
//
//   ./tools/postmortem [--dir D] [--json] [dump.json ...]
//
// With --dir (or no arguments: current directory), every
// *flight_rank*.json in the directory is read. Exit codes: 0 = report
// produced with a named root cause, 2 = no dumps / parse failure /
// no root cause identifiable.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/postmortem.h"

using namespace rcc::obs;

int main(int argc, char** argv) {
  std::string dir;
  bool as_json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: postmortem [--dir D] [--json] [dump.json ...]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    files = postmortem::ListDumpFiles(dir.empty() ? "." : dir);
  }
  if (files.empty()) {
    std::fprintf(stderr, "postmortem: no flight_rank*.json dumps found\n");
    return 2;
  }

  std::vector<postmortem::RankDump> dumps;
  for (const std::string& path : files) {
    postmortem::RankDump d;
    std::string error;
    if (!postmortem::ParseDumpFile(path, &d, &error)) {
      std::fprintf(stderr, "postmortem: %s: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
    dumps.push_back(std::move(d));
  }

  const postmortem::Report rep = postmortem::Analyze(std::move(dumps));
  if (as_json) {
    std::fputs(postmortem::ReportToJson(rep).c_str(), stdout);
  } else {
    std::fputs(postmortem::FormatReport(rep).c_str(), stdout);
  }
  return rep.root_cause.rank >= 0 ? 0 : 2;
}
