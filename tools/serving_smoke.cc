// Serving smoke for CI: N simulated ranks (default 64, fibers via
// --engine) serve a 10k-request continuous-batching stream over the
// resilient collectives, lose one rank mid-service, repair/shrink, and
// keep decoding. Verifies the serving plane's P8 guarantee at scale —
// zero admitted requests dropped or double-completed, replicated-state
// digests bit-identical across every survivor — plus an SLO bound on
// the TTFT p999 quantile exported by the obs registry.
//
//   ./tools/serving_smoke [--ranks N] [--requests R] [--rps RPS]
//                         [--engine threads|fibers] [--p999-ms B]
//                         [--stall-timeout-s S]
//
// Distinct exit codes so CI can tell failure classes apart:
//   0  pass
//   2  verification mismatch (dropped/double-completed requests,
//      divergent digests, or a missed repair)
//   3  stall — fibers scheduler proved a deadlock, or the real-time
//      watchdog expired
//   4  SLO breach (TTFT p999 above --p999-ms)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/resilient.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "sim/cluster.h"
#include "sim/engine.h"

using namespace rcc;

namespace {

void WatchdogExpired(int) {
  const char msg[] = "serving_smoke: STALL (real-time watchdog expired)\n";
  ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)ignored;
  _exit(3);
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 64;
  int requests = 10000;
  double rps = 800.0;
  // The TTFT p999 is dominated by the recovery blip: arrivals that land
  // inside the single repair wait out the communicator rebuild (~0.9
  // virtual seconds at 63 ranks). The bound polices that the tail stays
  // at repair-blip scale — a regression to teardown-style recovery
  // (tens of seconds of outage) trips it immediately.
  double p999_ms = 2000.0;
  int stall_timeout_s = 300;
  sim::SimConfig cfg;
  cfg.engine = sim::EngineKind::kFibers;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--requests") == 0)
      requests = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--rps") == 0) rps = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--p999-ms") == 0)
      p999_ms = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--stall-timeout-s") == 0)
      stall_timeout_s = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--engine") == 0) {
      if (std::strcmp(argv[i + 1], "threads") == 0) {
        cfg.engine = sim::EngineKind::kThreads;
      } else if (std::strcmp(argv[i + 1], "fibers") == 0) {
        cfg.engine = sim::EngineKind::kFibers;
      } else {
        std::fprintf(stderr, "unknown --engine %s\n", argv[i + 1]);
        return 2;
      }
    }
  }

  sim::SetStallHandler([](const std::string& report) {
    std::fprintf(stderr, "serving_smoke: STALL: %s\n", report.c_str());
    std::exit(3);
  });
  if (stall_timeout_s > 0) {
    std::signal(SIGALRM, WatchdogExpired);
    alarm(static_cast<unsigned>(stall_timeout_s));
  }

  serve::ServeOptions o;
  o.traffic.seed = 29;
  o.traffic.requests = requests;
  o.traffic.base_rps = rps;
  o.traffic.min_prompt = 4;
  o.traffic.max_prompt = 8;
  o.traffic.min_decode = 4;
  o.traffic.max_decode = 8;
  o.max_batch = 32;
  o.hidden = 64;
  o.flops_per_token = 5e8;
  o.autoscale.enabled = false;

  const int victim = ranks / 3;
  const double kill_at = 0.25 * requests / rps;  // mid-service

  std::vector<int> pids(ranks);
  for (int i = 0; i < ranks; ++i) pids[i] = i;
  std::mutex mu;
  std::vector<serve::ServeReport> finished;
  int aborted = 0;

  sim::Cluster cluster(cfg);
  cluster.AddPendingFailure({sim::FailScope::kProcess, victim, kill_at});
  cluster.Spawn(ranks, [&](sim::Endpoint& ep) {
    core::ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess, nullptr);
    serve::ServingDriver d(&rc, o);
    serve::ServeReport r = d.Run();
    if (r.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
    std::lock_guard<std::mutex> lock(mu);
    if (r.aborted) {
      ++aborted;
    } else {
      finished.push_back(std::move(r));
    }
  });
  cluster.Join();
  alarm(0);
  sim::SetStallHandler(nullptr);

  bool verified = static_cast<int>(finished.size()) == ranks - 1 &&
                  aborted == 1;
  int repaired = 0;
  for (const auto& r : finished) {
    if (r.completed != requests) verified = false;
    if (r.digest != finished[0].digest) verified = false;
    if (r.final_world != ranks - 1) verified = false;
    if (r.repairs > 0) ++repaired;
  }
  if (repaired != static_cast<int>(finished.size())) verified = false;

  const obs::Labels labels{{"mode", "resilient"}};
  const obs::Histogram::Snapshot ttft =
      obs::Registry::Global().HistogramSnapshot("rcc_serve_ttft_seconds",
                                                labels);
  const double p999 = ttft.Quantile(0.999) * 1e3;
  const bool slo_ok = p999 <= p999_ms;

  std::printf(
      "serving_smoke: ranks=%d engine=%s requests=%d survivors=%zu "
      "aborted=%d repaired=%d ttft_p999_ms=%.2f (bound %.2f) -> %s\n",
      ranks,
      sim::ResolveEngineKind(cfg.engine) == sim::EngineKind::kFibers
          ? "fibers"
          : "threads",
      requests, finished.size(), aborted, repaired, p999, p999_ms,
      verified && slo_ok ? "PASS" : "FAIL");
  // Failure classes 2 (verification) and 4 (SLO breach) leave the black
  // box behind: one flight dump per rank in RCC_FLIGHT_DIR, for
  // tools/postmortem and the CI artifact upload.
  if (!verified) {
    obs::flight::DumpAll("serving verification failed");
    return 2;
  }
  if (!slo_ok) {
    obs::flight::DumpAll("SLO breach: ttft_p999_ms=" + std::to_string(p999));
    return 4;
  }
  return 0;
}
