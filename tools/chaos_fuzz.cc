// chaos_fuzz: seeded failure-schedule fuzzing over the virtual-time
// simulator.
//
//   chaos_fuzz [--campaigns N] [--seed-base S] [--out DIR] [--no-shrink]
//              [--max-shrink-runs N] [--plant-skip-replay]
//   chaos_fuzz --replay FILE [--plant-skip-replay]
//
// Default mode generates and runs N seeded campaigns (seeds S..S+N-1),
// checks every oracle, and on a violation shrinks the schedule to a
// minimal reproducer written as JSON under --out (replayable with
// --replay, byte-deterministically). Exit status: 0 clean, 1 any
// violation, 2 usage/IO error.
//
// Env knobs: RCC_CHAOS_CAMPAIGNS, RCC_CHAOS_SEED_BASE, RCC_CHAOS_OUT
// mirror the flags (flags win); RCC_CHAOS_MIN_WORLD, RCC_CHAOS_MAX_WORLD,
// RCC_CHAOS_MAX_TIMED, RCC_CHAOS_MAX_PHASED, RCC_CHAOS_RATE,
// RCC_CHAOS_NODE_SCOPE shape the generator (see chaos/generator.h).
//
// --plant-skip-replay arms the deliberate replay-skipping bug in
// ResilientComm (pid 0 silently skips every replayed op) to prove the
// oracle + shrinker pipeline catches a real recovery bug end to end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/generator.h"
#include "chaos/oracle.h"
#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "core/resilient.h"
#include "obs/flight.h"

namespace {

using rcc::chaos::CampaignOutcome;
using rcc::chaos::CheckOracles;
using rcc::chaos::FormatViolations;
using rcc::chaos::GenConfig;
using rcc::chaos::GenerateSchedule;
using rcc::chaos::RunSchedule;
using rcc::chaos::Schedule;
using rcc::chaos::ShrinkResult;
using rcc::chaos::ShrinkSchedule;
using rcc::chaos::Violation;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

std::string EnvStr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

void PrintOutcome(const Schedule& s, const CampaignOutcome& o) {
  int finishers = 0;
  for (const auto& r : o.results) {
    if (!r.report.aborted) ++finishers;
  }
  std::printf(
      "  world=%d window=%d buckets=%d policy=%s events=%d "
      "finishers=%d/%zu repairs=%.0f replays=%zu horizon=%.4fs\n",
      s.shape.world, s.shape.inflight_window, s.shape.grad_buckets,
      s.shape.policy == rcc::horovod::DropPolicy::kNode ? "node" : "process",
      s.EventCount(), finishers, o.results.size(), o.repairs_metric,
      o.replay_events.size(), o.horizon);
}

int WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "chaos_fuzz: cannot write %s\n", path.c_str());
    return 2;
  }
  out << body;
  return 0;
}

int Replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chaos_fuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream body;
  body << in.rdbuf();
  Schedule s;
  std::string error;
  if (!Schedule::FromJson(body.str(), &s, &error)) {
    std::fprintf(stderr, "chaos_fuzz: bad schedule %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("replaying %s (seed %llu)\n", path.c_str(),
              static_cast<unsigned long long>(s.seed));
  CampaignOutcome o = RunSchedule(s);
  const std::vector<Violation> v = CheckOracles(s, o);
  PrintOutcome(s, o);
  if (v.empty()) {
    std::printf("  no oracle violations\n");
    return 0;
  }
  std::printf("%s", FormatViolations(v).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int campaigns = EnvInt("RCC_CHAOS_CAMPAIGNS", 10);
  int seed_base = EnvInt("RCC_CHAOS_SEED_BASE", 1);
  std::string out_dir = EnvStr("RCC_CHAOS_OUT", ".");
  std::string replay_path;
  bool shrink = true;
  int max_shrink_runs = 80;
  bool plant = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaos_fuzz: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--campaigns") == 0) {
      campaigns = std::atoi(next(a));
    } else if (std::strcmp(a, "--seed-base") == 0) {
      seed_base = std::atoi(next(a));
    } else if (std::strcmp(a, "--out") == 0) {
      out_dir = next(a);
    } else if (std::strcmp(a, "--replay") == 0) {
      replay_path = next(a);
    } else if (std::strcmp(a, "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(a, "--max-shrink-runs") == 0) {
      max_shrink_runs = std::atoi(next(a));
    } else if (std::strcmp(a, "--plant-skip-replay") == 0) {
      plant = true;
    } else {
      std::fprintf(stderr, "chaos_fuzz: unknown flag %s\n", a);
      return 2;
    }
  }

  if (plant) {
    rcc::core::ResilientComm::TestOnlySetReplaySkip(
        [](int pid, int64_t) { return pid == 0; });
  }

  if (!replay_path.empty()) return Replay(replay_path);

  const GenConfig cfg = GenConfig::FromEnv();
  int violated = 0;
  for (int i = 0; i < campaigns; ++i) {
    const uint64_t seed = static_cast<uint64_t>(seed_base) + i;
    const Schedule s = GenerateSchedule(seed, cfg);
    CampaignOutcome o = RunSchedule(s);
    const std::vector<Violation> v = CheckOracles(s, o);
    std::printf("campaign seed=%llu %s\n",
                static_cast<unsigned long long>(seed),
                v.empty() ? "ok" : "VIOLATION");
    PrintOutcome(s, o);
    if (v.empty()) continue;
    ++violated;
    std::printf("%s", FormatViolations(v).c_str());

    Schedule repro = s;
    if (shrink) {
      ShrinkResult shrunk = ShrinkSchedule(s, v.front().oracle,
                                           max_shrink_runs);
      std::printf("  shrunk %d -> %d events in %d runs\n", s.EventCount(),
                  shrunk.schedule.EventCount(), shrunk.runs);
      repro = shrunk.schedule;
    }
    const std::string path = out_dir + "/chaos_repro_seed" +
                             std::to_string(seed) + ".json";
    if (WriteFile(path, repro.ToJson()) != 0) return 2;
    std::printf("  reproducer: %s (replay with --replay)\n", path.c_str());

    // Re-run the minimized reproducer once and park its flight-recorder
    // rings next to the schedule JSON: seed<N>_flight_rank<P>.json, ready
    // for tools/postmortem without re-running anything.
    if (rcc::obs::flight::Enabled()) {
      (void)RunSchedule(repro);
      rcc::obs::flight::DumpAll("oracle violation seed=" +
                                    std::to_string(seed),
                                out_dir,
                                "seed" + std::to_string(seed) + "_");
    }
  }

  std::printf("%d/%d campaigns violated an oracle\n", violated, campaigns);
  return violated == 0 ? 0 : 1;
}
