// Validates a Chrome trace-event JSON file (as written via
// RCC_TRACE_JSON) against the schema Perfetto needs: a traceEvents
// array whose complete events carry name/ph/ts/dur/pid/tid with finite
// values and non-negative durations, and whose counter events (ph:"C")
// carry a finite numeric series. Exits 0 when the file validates.
// The overlap_trace_check ctest runs this on the bench's emitted trace.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_json.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  size_t checked = 0;
  size_t counters = 0;
  if (!rcc::obs::ValidateChromeTraceJson(buf.str(), &err, &checked,
                                         &counters)) {
    std::fprintf(stderr, "%s: %s\n", argv[1], err.c_str());
    return 1;
  }
  std::printf("%s: %zu complete events, %zu counter samples OK\n", argv[1],
              checked, counters);
  return 0;
}
