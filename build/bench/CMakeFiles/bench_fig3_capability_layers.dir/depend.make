# Empty dependencies file for bench_fig3_capability_layers.
# This may be replaced when dependencies are built.
