# Empty compiler generated dependencies file for bench_ablation_hierarchical.
# This may be replaced when dependencies are built.
