file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_resnet50.dir/bench_fig6_resnet50.cc.o"
  "CMakeFiles/bench_fig6_resnet50.dir/bench_fig6_resnet50.cc.o.d"
  "bench_fig6_resnet50"
  "bench_fig6_resnet50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_resnet50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
