# Empty dependencies file for bench_fig6_resnet50.
# This may be replaced when dependencies are built.
