# Empty dependencies file for rcc_bench_util.
# This may be replaced when dependencies are built.
