file(REMOVE_RECURSE
  "librcc_bench_util.a"
)
