file(REMOVE_RECURSE
  "CMakeFiles/rcc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/rcc_bench_util.dir/bench_util.cc.o.d"
  "librcc_bench_util.a"
  "librcc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
