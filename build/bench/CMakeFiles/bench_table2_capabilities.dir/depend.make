# Empty dependencies file for bench_table2_capabilities.
# This may be replaced when dependencies are built.
