file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nasnet.dir/bench_fig7_nasnet.cc.o"
  "CMakeFiles/bench_fig7_nasnet.dir/bench_fig7_nasnet.cc.o.d"
  "bench_fig7_nasnet"
  "bench_fig7_nasnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nasnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
