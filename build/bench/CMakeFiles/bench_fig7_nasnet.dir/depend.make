# Empty dependencies file for bench_fig7_nasnet.
# This may be replaced when dependencies are built.
