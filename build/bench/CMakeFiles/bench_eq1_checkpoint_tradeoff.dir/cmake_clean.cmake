file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_checkpoint_tradeoff.dir/bench_eq1_checkpoint_tradeoff.cc.o"
  "CMakeFiles/bench_eq1_checkpoint_tradeoff.dir/bench_eq1_checkpoint_tradeoff.cc.o.d"
  "bench_eq1_checkpoint_tradeoff"
  "bench_eq1_checkpoint_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_checkpoint_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
