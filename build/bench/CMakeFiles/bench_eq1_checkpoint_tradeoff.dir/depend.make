# Empty dependencies file for bench_eq1_checkpoint_tradeoff.
# This may be replaced when dependencies are built.
