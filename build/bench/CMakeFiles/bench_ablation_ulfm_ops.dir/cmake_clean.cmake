file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ulfm_ops.dir/bench_ablation_ulfm_ops.cc.o"
  "CMakeFiles/bench_ablation_ulfm_ops.dir/bench_ablation_ulfm_ops.cc.o.d"
  "bench_ablation_ulfm_ops"
  "bench_ablation_ulfm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ulfm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
