# Empty dependencies file for bench_ablation_ulfm_ops.
# This may be replaced when dependencies are built.
