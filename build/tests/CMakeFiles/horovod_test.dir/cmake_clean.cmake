file(REMOVE_RECURSE
  "CMakeFiles/horovod_test.dir/horovod_test.cc.o"
  "CMakeFiles/horovod_test.dir/horovod_test.cc.o.d"
  "horovod_test"
  "horovod_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horovod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
