
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/horovod_test.cc" "tests/CMakeFiles/horovod_test.dir/horovod_test.cc.o" "gcc" "tests/CMakeFiles/horovod_test.dir/horovod_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/horovod/CMakeFiles/rcc_horovod.dir/DependInfo.cmake"
  "/root/repo/build/src/gloo/CMakeFiles/rcc_gloo.dir/DependInfo.cmake"
  "/root/repo/build/src/nccl/CMakeFiles/rcc_nccl.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/rcc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/rcc_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/rcc_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/rcc_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
