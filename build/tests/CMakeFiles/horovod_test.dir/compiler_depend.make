# Empty compiler generated dependencies file for horovod_test.
# This may be replaced when dependencies are built.
