file(REMOVE_RECURSE
  "CMakeFiles/dnn_test.dir/dnn_test.cc.o"
  "CMakeFiles/dnn_test.dir/dnn_test.cc.o.d"
  "dnn_test"
  "dnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
