# Empty compiler generated dependencies file for ulfm_test.
# This may be replaced when dependencies are built.
