file(REMOVE_RECURSE
  "CMakeFiles/ulfm_test.dir/ulfm_test.cc.o"
  "CMakeFiles/ulfm_test.dir/ulfm_test.cc.o.d"
  "ulfm_test"
  "ulfm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
