file(REMOVE_RECURSE
  "CMakeFiles/coll_test.dir/coll_test.cc.o"
  "CMakeFiles/coll_test.dir/coll_test.cc.o.d"
  "coll_test"
  "coll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
