file(REMOVE_RECURSE
  "CMakeFiles/nccl_test.dir/nccl_test.cc.o"
  "CMakeFiles/nccl_test.dir/nccl_test.cc.o.d"
  "nccl_test"
  "nccl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nccl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
