# Empty dependencies file for nccl_test.
# This may be replaced when dependencies are built.
