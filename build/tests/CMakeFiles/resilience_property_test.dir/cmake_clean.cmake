file(REMOVE_RECURSE
  "CMakeFiles/resilience_property_test.dir/resilience_property_test.cc.o"
  "CMakeFiles/resilience_property_test.dir/resilience_property_test.cc.o.d"
  "resilience_property_test"
  "resilience_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
