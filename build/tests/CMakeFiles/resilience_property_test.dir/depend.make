# Empty dependencies file for resilience_property_test.
# This may be replaced when dependencies are built.
