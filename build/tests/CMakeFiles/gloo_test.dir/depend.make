# Empty dependencies file for gloo_test.
# This may be replaced when dependencies are built.
