file(REMOVE_RECURSE
  "CMakeFiles/gloo_test.dir/gloo_test.cc.o"
  "CMakeFiles/gloo_test.dir/gloo_test.cc.o.d"
  "gloo_test"
  "gloo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gloo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
