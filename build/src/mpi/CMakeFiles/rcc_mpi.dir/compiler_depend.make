# Empty compiler generated dependencies file for rcc_mpi.
# This may be replaced when dependencies are built.
