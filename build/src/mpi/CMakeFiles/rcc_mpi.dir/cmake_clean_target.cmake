file(REMOVE_RECURSE
  "librcc_mpi.a"
)
