file(REMOVE_RECURSE
  "CMakeFiles/rcc_mpi.dir/comm.cc.o"
  "CMakeFiles/rcc_mpi.dir/comm.cc.o.d"
  "CMakeFiles/rcc_mpi.dir/group.cc.o"
  "CMakeFiles/rcc_mpi.dir/group.cc.o.d"
  "librcc_mpi.a"
  "librcc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
