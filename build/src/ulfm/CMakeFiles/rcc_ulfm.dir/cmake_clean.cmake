file(REMOVE_RECURSE
  "CMakeFiles/rcc_ulfm.dir/ulfm.cc.o"
  "CMakeFiles/rcc_ulfm.dir/ulfm.cc.o.d"
  "librcc_ulfm.a"
  "librcc_ulfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_ulfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
