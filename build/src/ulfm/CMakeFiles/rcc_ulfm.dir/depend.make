# Empty dependencies file for rcc_ulfm.
# This may be replaced when dependencies are built.
