file(REMOVE_RECURSE
  "librcc_ulfm.a"
)
