file(REMOVE_RECURSE
  "CMakeFiles/rcc_costmodel.dir/costmodel.cc.o"
  "CMakeFiles/rcc_costmodel.dir/costmodel.cc.o.d"
  "librcc_costmodel.a"
  "librcc_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
