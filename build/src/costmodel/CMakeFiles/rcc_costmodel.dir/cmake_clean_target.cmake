file(REMOVE_RECURSE
  "librcc_costmodel.a"
)
