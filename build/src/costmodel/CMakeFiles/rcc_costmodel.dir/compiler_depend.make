# Empty compiler generated dependencies file for rcc_costmodel.
# This may be replaced when dependencies are built.
