file(REMOVE_RECURSE
  "CMakeFiles/rcc_trace.dir/trace.cc.o"
  "CMakeFiles/rcc_trace.dir/trace.cc.o.d"
  "librcc_trace.a"
  "librcc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
