# Empty dependencies file for rcc_trace.
# This may be replaced when dependencies are built.
