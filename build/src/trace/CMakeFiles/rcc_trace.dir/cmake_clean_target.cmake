file(REMOVE_RECURSE
  "librcc_trace.a"
)
