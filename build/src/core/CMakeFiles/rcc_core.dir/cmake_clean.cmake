file(REMOVE_RECURSE
  "CMakeFiles/rcc_core.dir/elastic_trainer.cc.o"
  "CMakeFiles/rcc_core.dir/elastic_trainer.cc.o.d"
  "CMakeFiles/rcc_core.dir/resilient.cc.o"
  "CMakeFiles/rcc_core.dir/resilient.cc.o.d"
  "CMakeFiles/rcc_core.dir/ulfm_elastic.cc.o"
  "CMakeFiles/rcc_core.dir/ulfm_elastic.cc.o.d"
  "librcc_core.a"
  "librcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
