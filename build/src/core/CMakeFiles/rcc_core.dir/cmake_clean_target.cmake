file(REMOVE_RECURSE
  "librcc_core.a"
)
