# Empty dependencies file for rcc_dnn.
# This may be replaced when dependencies are built.
