
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/data.cc" "src/dnn/CMakeFiles/rcc_dnn.dir/data.cc.o" "gcc" "src/dnn/CMakeFiles/rcc_dnn.dir/data.cc.o.d"
  "/root/repo/src/dnn/layers.cc" "src/dnn/CMakeFiles/rcc_dnn.dir/layers.cc.o" "gcc" "src/dnn/CMakeFiles/rcc_dnn.dir/layers.cc.o.d"
  "/root/repo/src/dnn/model.cc" "src/dnn/CMakeFiles/rcc_dnn.dir/model.cc.o" "gcc" "src/dnn/CMakeFiles/rcc_dnn.dir/model.cc.o.d"
  "/root/repo/src/dnn/optimizer.cc" "src/dnn/CMakeFiles/rcc_dnn.dir/optimizer.cc.o" "gcc" "src/dnn/CMakeFiles/rcc_dnn.dir/optimizer.cc.o.d"
  "/root/repo/src/dnn/zoo.cc" "src/dnn/CMakeFiles/rcc_dnn.dir/zoo.cc.o" "gcc" "src/dnn/CMakeFiles/rcc_dnn.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
