file(REMOVE_RECURSE
  "librcc_dnn.a"
)
