file(REMOVE_RECURSE
  "CMakeFiles/rcc_dnn.dir/data.cc.o"
  "CMakeFiles/rcc_dnn.dir/data.cc.o.d"
  "CMakeFiles/rcc_dnn.dir/layers.cc.o"
  "CMakeFiles/rcc_dnn.dir/layers.cc.o.d"
  "CMakeFiles/rcc_dnn.dir/model.cc.o"
  "CMakeFiles/rcc_dnn.dir/model.cc.o.d"
  "CMakeFiles/rcc_dnn.dir/optimizer.cc.o"
  "CMakeFiles/rcc_dnn.dir/optimizer.cc.o.d"
  "CMakeFiles/rcc_dnn.dir/zoo.cc.o"
  "CMakeFiles/rcc_dnn.dir/zoo.cc.o.d"
  "librcc_dnn.a"
  "librcc_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
