# Empty dependencies file for rcc_kvstore.
# This may be replaced when dependencies are built.
