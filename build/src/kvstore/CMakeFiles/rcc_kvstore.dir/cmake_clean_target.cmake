file(REMOVE_RECURSE
  "librcc_kvstore.a"
)
