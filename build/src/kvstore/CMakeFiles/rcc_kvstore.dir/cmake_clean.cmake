file(REMOVE_RECURSE
  "CMakeFiles/rcc_kvstore.dir/kvstore.cc.o"
  "CMakeFiles/rcc_kvstore.dir/kvstore.cc.o.d"
  "librcc_kvstore.a"
  "librcc_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
