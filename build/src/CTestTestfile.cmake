# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("kvstore")
subdirs("coll")
subdirs("mpi")
subdirs("ulfm")
subdirs("gloo")
subdirs("nccl")
subdirs("dnn")
subdirs("checkpoint")
subdirs("trace")
subdirs("horovod")
subdirs("core")
subdirs("costmodel")
