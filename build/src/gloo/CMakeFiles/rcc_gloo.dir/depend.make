# Empty dependencies file for rcc_gloo.
# This may be replaced when dependencies are built.
