file(REMOVE_RECURSE
  "librcc_gloo.a"
)
