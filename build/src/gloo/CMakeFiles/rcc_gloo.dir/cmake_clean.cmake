file(REMOVE_RECURSE
  "CMakeFiles/rcc_gloo.dir/gloo.cc.o"
  "CMakeFiles/rcc_gloo.dir/gloo.cc.o.d"
  "librcc_gloo.a"
  "librcc_gloo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_gloo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
