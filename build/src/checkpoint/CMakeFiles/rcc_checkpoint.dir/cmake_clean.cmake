file(REMOVE_RECURSE
  "CMakeFiles/rcc_checkpoint.dir/checkpoint.cc.o"
  "CMakeFiles/rcc_checkpoint.dir/checkpoint.cc.o.d"
  "librcc_checkpoint.a"
  "librcc_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
