# Empty dependencies file for rcc_checkpoint.
# This may be replaced when dependencies are built.
