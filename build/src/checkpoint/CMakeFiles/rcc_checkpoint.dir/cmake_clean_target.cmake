file(REMOVE_RECURSE
  "librcc_checkpoint.a"
)
