file(REMOVE_RECURSE
  "CMakeFiles/rcc_common.dir/log.cc.o"
  "CMakeFiles/rcc_common.dir/log.cc.o.d"
  "CMakeFiles/rcc_common.dir/status.cc.o"
  "CMakeFiles/rcc_common.dir/status.cc.o.d"
  "CMakeFiles/rcc_common.dir/table.cc.o"
  "CMakeFiles/rcc_common.dir/table.cc.o.d"
  "librcc_common.a"
  "librcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
