# Empty dependencies file for rcc_common.
# This may be replaced when dependencies are built.
