file(REMOVE_RECURSE
  "librcc_common.a"
)
