file(REMOVE_RECURSE
  "librcc_horovod.a"
)
