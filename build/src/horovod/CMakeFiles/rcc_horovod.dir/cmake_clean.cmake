file(REMOVE_RECURSE
  "CMakeFiles/rcc_horovod.dir/elastic_horovod.cc.o"
  "CMakeFiles/rcc_horovod.dir/elastic_horovod.cc.o.d"
  "CMakeFiles/rcc_horovod.dir/plan.cc.o"
  "CMakeFiles/rcc_horovod.dir/plan.cc.o.d"
  "librcc_horovod.a"
  "librcc_horovod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_horovod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
