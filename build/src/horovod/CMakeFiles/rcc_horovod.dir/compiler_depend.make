# Empty compiler generated dependencies file for rcc_horovod.
# This may be replaced when dependencies are built.
