file(REMOVE_RECURSE
  "CMakeFiles/rcc_nccl.dir/nccl.cc.o"
  "CMakeFiles/rcc_nccl.dir/nccl.cc.o.d"
  "librcc_nccl.a"
  "librcc_nccl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_nccl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
