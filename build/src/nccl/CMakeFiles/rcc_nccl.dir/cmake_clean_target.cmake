file(REMOVE_RECURSE
  "librcc_nccl.a"
)
