# Empty compiler generated dependencies file for rcc_nccl.
# This may be replaced when dependencies are built.
