file(REMOVE_RECURSE
  "CMakeFiles/rcc_sim.dir/cluster.cc.o"
  "CMakeFiles/rcc_sim.dir/cluster.cc.o.d"
  "CMakeFiles/rcc_sim.dir/fabric.cc.o"
  "CMakeFiles/rcc_sim.dir/fabric.cc.o.d"
  "CMakeFiles/rcc_sim.dir/failure.cc.o"
  "CMakeFiles/rcc_sim.dir/failure.cc.o.d"
  "librcc_sim.a"
  "librcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
