file(REMOVE_RECURSE
  "librcc_sim.a"
)
