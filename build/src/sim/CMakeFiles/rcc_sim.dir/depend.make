# Empty dependencies file for rcc_sim.
# This may be replaced when dependencies are built.
