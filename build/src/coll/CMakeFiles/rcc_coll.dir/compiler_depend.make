# Empty compiler generated dependencies file for rcc_coll.
# This may be replaced when dependencies are built.
