file(REMOVE_RECURSE
  "librcc_coll.a"
)
