file(REMOVE_RECURSE
  "CMakeFiles/rcc_coll.dir/algorithms.cc.o"
  "CMakeFiles/rcc_coll.dir/algorithms.cc.o.d"
  "librcc_coll.a"
  "librcc_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
