file(REMOVE_RECURSE
  "CMakeFiles/imagenet_scale_training.dir/imagenet_scale_training.cpp.o"
  "CMakeFiles/imagenet_scale_training.dir/imagenet_scale_training.cpp.o.d"
  "imagenet_scale_training"
  "imagenet_scale_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_scale_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
