# Empty dependencies file for imagenet_scale_training.
# This may be replaced when dependencies are built.
