file(REMOVE_RECURSE
  "CMakeFiles/replacement_recovery.dir/replacement_recovery.cpp.o"
  "CMakeFiles/replacement_recovery.dir/replacement_recovery.cpp.o.d"
  "replacement_recovery"
  "replacement_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
