# Empty dependencies file for replacement_recovery.
# This may be replaced when dependencies are built.
