file(REMOVE_RECURSE
  "CMakeFiles/spot_market_elasticity.dir/spot_market_elasticity.cpp.o"
  "CMakeFiles/spot_market_elasticity.dir/spot_market_elasticity.cpp.o.d"
  "spot_market_elasticity"
  "spot_market_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_market_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
