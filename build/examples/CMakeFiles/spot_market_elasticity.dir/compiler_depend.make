# Empty compiler generated dependencies file for spot_market_elasticity.
# This may be replaced when dependencies are built.
