// Collective algorithm correctness over the simulated fabric,
// parameterized across world sizes (including non-powers-of-two) and
// message sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <cmath>

#include "coll/algorithms.h"
#include "coll/tuning.h"
#include "mpi/comm.h"
#include "test_util.h"

namespace rcc::coll {
namespace {

using rcc::testing::RunWorld;

// Deterministic per-rank input: value depends on (rank, index).
std::vector<float> RankInput(int rank, size_t count) {
  std::vector<float> v(count);
  for (size_t i = 0; i < count; ++i) {
    v[i] = static_cast<float>((rank + 1) * 0.5 + static_cast<double>(i) * 0.25);
  }
  return v;
}

std::vector<float> ExpectedSum(int world, size_t count) {
  std::vector<float> v(count, 0.0f);
  for (int r = 0; r < world; ++r) {
    auto in = RankInput(r, count);
    for (size_t i = 0; i < count; ++i) v[i] += in[i];
  }
  return v;
}

struct CollParam {
  int world;
  size_t count;
};

class AllreduceTest : public ::testing::TestWithParam<CollParam> {};

TEST_P(AllreduceTest, RingMatchesExpectedSum) {
  const auto [world, count] = GetParam();
  std::atomic<int> checked{0};
  RunWorld(world, [&, world = world, count = count](mpi::Comm& comm,
                                                    sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(count);
    ASSERT_TRUE(
        RingAllreduce<float>(comm, in.data(), out.data(), count).ok());
    auto expected = ExpectedSum(world, count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_NEAR(out[i], expected[i], 1e-3) << "i=" << i;
    }
    checked++;
  });
  EXPECT_EQ(checked.load(), world);
}

TEST_P(AllreduceTest, RecursiveDoublingMatchesExpectedSum) {
  const auto [world, count] = GetParam();
  std::atomic<int> checked{0};
  RunWorld(world, [&, world = world, count = count](mpi::Comm& comm,
                                                    sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(count);
    ASSERT_TRUE(RecursiveDoublingAllreduce<float>(comm, in.data(), out.data(),
                                                  count)
                    .ok());
    auto expected = ExpectedSum(world, count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_NEAR(out[i], expected[i], 1e-3) << "i=" << i;
    }
    checked++;
  });
  EXPECT_EQ(checked.load(), world);
}

TEST_P(AllreduceTest, ReduceBcastMatchesExpectedSum) {
  const auto [world, count] = GetParam();
  std::atomic<int> checked{0};
  RunWorld(world, [&, world = world, count = count](mpi::Comm& comm,
                                                    sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(count);
    ASSERT_TRUE(
        ReduceBcastAllreduce<float>(comm, in.data(), out.data(), count).ok());
    auto expected = ExpectedSum(world, count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_NEAR(out[i], expected[i], 1e-3) << "i=" << i;
    }
    checked++;
  });
  EXPECT_EQ(checked.load(), world);
}

TEST_P(AllreduceTest, RabenseifnerMatchesExpectedSum) {
  const auto [world, count] = GetParam();
  std::atomic<int> checked{0};
  RunWorld(world, [&, world = world, count = count](mpi::Comm& comm,
                                                    sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(count);
    ASSERT_TRUE(
        RabenseifnerAllreduce<float>(comm, in.data(), out.data(), count)
            .ok());
    auto expected = ExpectedSum(world, count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_NEAR(out[i], expected[i], 1e-3) << "i=" << i;
    }
    checked++;
  });
  EXPECT_EQ(checked.load(), world);
}

TEST(Rabenseifner, PowerOfTwoUsesHalvedSegments) {
  // For pow2 worlds with count >= P the dedicated path runs; verify the
  // result matches ring exactly on an awkward (non-divisible) count.
  for (int world : {4, 8, 16}) {
    for (size_t count : {size_t(17), size_t(64), size_t(129)}) {
      RunWorld(world, [count, world](mpi::Comm& comm, sim::Endpoint&) {
        auto in = RankInput(comm.rank(), count);
        std::vector<float> a(count), b(count);
        ASSERT_TRUE(
            RabenseifnerAllreduce<float>(comm, in.data(), a.data(), count)
                .ok());
        ASSERT_TRUE(RingAllreduce<float>(comm, in.data(), b.data(), count)
                        .ok());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_NEAR(a[i], b[i], 1e-3)
              << "w=" << world << " n=" << count << " i=" << i;
        }
      });
    }
  }
}

TEST_P(AllreduceTest, SendbufPreservedByAllAlgorithms) {
  const auto [world, count] = GetParam();
  RunWorld(world, [count = count](mpi::Comm& comm, sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    const auto original = in;
    std::vector<float> out(count);
    ASSERT_TRUE(
        RingAllreduce<float>(comm, in.data(), out.data(), count).ok());
    EXPECT_EQ(in, original);
    ASSERT_TRUE(RecursiveDoublingAllreduce<float>(comm, in.data(), out.data(),
                                                  count)
                    .ok());
    EXPECT_EQ(in, original);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, AllreduceTest,
    ::testing::Values(CollParam{1, 16}, CollParam{2, 7}, CollParam{3, 64},
                      CollParam{4, 1}, CollParam{5, 33}, CollParam{6, 100},
                      CollParam{8, 256}, CollParam{12, 3}, CollParam{16, 40}),
    [](const ::testing::TestParamInfo<CollParam>& info) {
      return "w" + std::to_string(info.param.world) + "_n" +
             std::to_string(info.param.count);
    });

class AllgatherTest : public ::testing::TestWithParam<CollParam> {};

TEST_P(AllgatherTest, RingGathersAllBlocks) {
  const auto [world, count] = GetParam();
  RunWorld(world, [world = world, count = count](mpi::Comm& comm,
                                                 sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(world * count);
    ASSERT_TRUE(RingAllgather<float>(comm, in.data(), out.data(), count).ok());
    for (int r = 0; r < world; ++r) {
      auto expect = RankInput(r, count);
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[r * count + i], expect[i]) << "r=" << r << " i=" << i;
      }
    }
  });
}

TEST_P(AllgatherTest, BruckGathersAllBlocks) {
  const auto [world, count] = GetParam();
  RunWorld(world, [world = world, count = count](mpi::Comm& comm,
                                                 sim::Endpoint&) {
    auto in = RankInput(comm.rank(), count);
    std::vector<float> out(world * count);
    ASSERT_TRUE(
        BruckAllgather<float>(comm, in.data(), out.data(), count).ok());
    for (int r = 0; r < world; ++r) {
      auto expect = RankInput(r, count);
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[r * count + i], expect[i]) << "r=" << r << " i=" << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, AllgatherTest,
    ::testing::Values(CollParam{1, 4}, CollParam{2, 8}, CollParam{3, 5},
                      CollParam{4, 16}, CollParam{5, 1}, CollParam{7, 9},
                      CollParam{8, 32}, CollParam{13, 2}),
    [](const ::testing::TestParamInfo<CollParam>& info) {
      return "w" + std::to_string(info.param.world) + "_n" +
             std::to_string(info.param.count);
    });

class RootedCollTest : public ::testing::TestWithParam<int> {};

TEST_P(RootedCollTest, BcastFromEveryRoot) {
  const int world = GetParam();
  for (int root = 0; root < world; ++root) {
    RunWorld(world, [root](mpi::Comm& comm, sim::Endpoint&) {
      std::vector<float> buf(9, comm.rank() == root ? 42.5f : 0.0f);
      ASSERT_TRUE(BinomialBcast<float>(comm, buf.data(), buf.size(), root)
                      .ok());
      for (float v : buf) ASSERT_EQ(v, 42.5f);
    });
  }
}

TEST_P(RootedCollTest, ReduceToEveryRoot) {
  const int world = GetParam();
  for (int root = 0; root < world; ++root) {
    RunWorld(world, [root, world](mpi::Comm& comm, sim::Endpoint&) {
      auto in = RankInput(comm.rank(), 12);
      std::vector<float> out(12);
      ASSERT_TRUE(
          (BinomialReduce<float, SumOp>(comm, in.data(), out.data(), 12, root)
               .ok()));
      if (comm.rank() == root) {
        auto expected = ExpectedSum(world, 12);
        for (size_t i = 0; i < 12; ++i) ASSERT_NEAR(out[i], expected[i], 1e-3);
      }
    });
  }
}

TEST_P(RootedCollTest, GatherCollectsInRankOrder) {
  const int world = GetParam();
  RunWorld(world, [world](mpi::Comm& comm, sim::Endpoint&) {
    float mine = static_cast<float>(comm.rank() * 10);
    std::vector<float> out(world);
    ASSERT_TRUE(LinearGather<float>(comm, &mine, out.data(), 1, 0).ok());
    if (comm.rank() == 0) {
      for (int r = 0; r < world; ++r) ASSERT_EQ(out[r], r * 10.0f);
    }
  });
}

TEST_P(RootedCollTest, ScatterDistributesSlices) {
  const int world = GetParam();
  RunWorld(world, [world](mpi::Comm& comm, sim::Endpoint&) {
    std::vector<float> src(world * 2);
    for (int i = 0; i < world * 2; ++i) src[i] = static_cast<float>(i);
    std::vector<float> mine(2);
    ASSERT_TRUE(LinearScatter<float>(comm, src.data(), mine.data(), 2, 0)
                    .ok());
    ASSERT_EQ(mine[0], comm.rank() * 2.0f);
    ASSERT_EQ(mine[1], comm.rank() * 2.0f + 1.0f);
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, RootedCollTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 11));

TEST(Barrier, SynchronisesClocks) {
  std::atomic<int> past_barrier{0};
  RunWorld(6, [&](mpi::Comm& comm, sim::Endpoint& ep) {
    // Stagger the ranks in virtual time; the barrier must line them up.
    ep.Busy(0.01 * comm.rank());
    ASSERT_TRUE(DisseminationBarrier(comm).ok());
    EXPECT_GE(ep.now(), 0.05);  // nobody leaves before the slowest arrives
    past_barrier++;
  });
  EXPECT_EQ(past_barrier.load(), 6);
}

TEST(AllgatherBlobs, VariableSizesDeliveredToAll) {
  RunWorld(5, [](mpi::Comm& comm, sim::Endpoint&) {
    std::vector<uint8_t> mine(static_cast<size_t>(comm.rank()) * 3 + 1,
                              static_cast<uint8_t>(comm.rank()));
    std::vector<std::vector<uint8_t>> all;
    ASSERT_TRUE(AllgatherBlobs(comm, mine, &all).ok());
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<size_t>(r) * 3 + 1);
      for (uint8_t b : all[r]) ASSERT_EQ(b, r);
    }
  });
}

TEST(AllreduceOps, MaxAndMinAndBand) {
  RunWorld(4, [](mpi::Comm& comm, sim::Endpoint&) {
    float mine = static_cast<float>(comm.rank());
    float out = 0;
    ASSERT_TRUE(
        (RingAllreduce<float, MaxOp>(comm, &mine, &out, 1).ok()));
    EXPECT_EQ(out, 3.0f);
    ASSERT_TRUE(
        (RecursiveDoublingAllreduce<float, MinOp>(comm, &mine, &out, 1).ok()));
    EXPECT_EQ(out, 0.0f);
    int flag = comm.rank() == 2 ? 0 : 1;
    int agreed = 0;
    ASSERT_TRUE(
        (RecursiveDoublingAllreduce<int, BandOp>(comm, &flag, &agreed, 1)
             .ok()));
    EXPECT_EQ(agreed, 0);  // one dissenter forces the AND to 0
  });
}

TEST(RingAllreduce, BandwidthTermScalesWithMessageSize) {
  // Time for 2x the bytes should be close to 2x (bandwidth-bound regime).
  std::atomic<double> t_small{0}, t_large{0};
  const size_t kSmall = 1 << 18;
  RunWorld(4, [&](mpi::Comm& comm, sim::Endpoint& ep) {
    std::vector<float> in(kSmall, 1.0f), out(kSmall);
    ASSERT_TRUE(RingAllreduce<float>(comm, in.data(), out.data(), kSmall)
                    .ok());
    if (comm.rank() == 0) t_small = ep.now();
  });
  RunWorld(4, [&](mpi::Comm& comm, sim::Endpoint& ep) {
    std::vector<float> in(2 * kSmall, 1.0f), out(2 * kSmall);
    ASSERT_TRUE(RingAllreduce<float>(comm, in.data(), out.data(), 2 * kSmall)
                    .ok());
    if (comm.rank() == 0) t_large = ep.now();
  });
  EXPECT_GT(t_large.load(), 1.5 * t_small.load());
  EXPECT_LT(t_large.load(), 2.5 * t_small.load());
}

TEST(SubgroupTransport, RemapsRanksAndRunsCollectives) {
  // World of 6; the even ranks form a subgroup and allreduce among
  // themselves without disturbing the odd ranks.
  RunWorld(6, [](mpi::Comm& comm, sim::Endpoint&) {
    SubgroupTransport evens(comm, {0, 2, 4}, /*tag_offset=*/9000);
    if (comm.rank() % 2 == 0) {
      ASSERT_TRUE(evens.contains_self());
      EXPECT_EQ(evens.size(), 3);
      EXPECT_EQ(evens.rank(), comm.rank() / 2);
      float mine = static_cast<float>(comm.rank());
      float sum = 0;
      ASSERT_TRUE(RingAllreduce<float>(evens, &mine, &sum, 1).ok());
      EXPECT_EQ(sum, 6.0f);  // 0 + 2 + 4
    } else {
      EXPECT_FALSE(evens.contains_self());
      EXPECT_EQ(evens.rank(), -1);
    }
  });
}

TEST(SubgroupTransport, DisjointSubgroupsRunConcurrently) {
  RunWorld(6, [](mpi::Comm& comm, sim::Endpoint&) {
    const bool low = comm.rank() < 3;
    SubgroupTransport mine(comm, low ? std::vector<int>{0, 1, 2}
                                     : std::vector<int>{3, 4, 5},
                           /*tag_offset=*/9000);
    float v = static_cast<float>(comm.rank());
    float sum = 0;
    ASSERT_TRUE(RingAllreduce<float>(mine, &v, &sum, 1).ok());
    EXPECT_EQ(sum, low ? 3.0f : 12.0f);
  });
}

TEST(RingReduceScatter, OwnershipLayoutAndAllgatherRoundTrip) {
  for (int world : {2, 4, 5, 7}) {
    RunWorld(world, [world](mpi::Comm& comm, sim::Endpoint&) {
      const size_t count = 23;
      auto in = RankInput(comm.rank(), count);
      std::vector<float> buf(count);
      int owned = -1;
      ASSERT_TRUE(
          RingReduceScatter<float>(comm, in.data(), buf.data(), count, &owned)
              .ok());
      EXPECT_EQ(owned, (comm.rank() + 1) % world);
      // The owned chunk carries the full sum.
      auto expected = ExpectedSum(world, count);
      const size_t off = detail::ChunkOffset(count, world, owned);
      const size_t n = detail::ChunkSize(count, world, owned);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(buf[off + i], expected[off + i], 1e-3);
      }
      // Chained allgather reconstructs the full reduced tensor.
      ASSERT_TRUE(RingAllgatherChunks<float>(comm, buf.data(), count).ok());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_NEAR(buf[i], expected[i], 1e-3) << i;
      }
    });
  }
}

TEST(AllreduceTuning, SelectionRecomputedPerRequestAfterResize) {
  // Audit pin: every stack resolves kAuto at request-build time against
  // the communicator's *current* size (mpi/comm.h, nccl/nccl.h,
  // gloo/gloo.h all call ChooseAllreduce per request), so a shrink or
  // expand changes the selection on the very next collective — there is
  // no cached choice to invalidate.
  AllreduceTuning t;
  t.rows = {{8, 65536.0}, {INT_MAX, 1024.0}};
  t.small_algo = AllreduceAlgo::kRecursiveDoubling;
  t.large_algo = AllreduceAlgo::kRing;
  // Same payload, different world sizes: the row lookup tracks the size
  // passed with each request.
  EXPECT_EQ(ChooseAllreduce(t, AllreduceAlgo::kAuto, 4096.0, 8),
            AllreduceAlgo::kRecursiveDoubling);
  EXPECT_EQ(ChooseAllreduce(t, AllreduceAlgo::kAuto, 4096.0, 9),
            AllreduceAlgo::kRing);
  // An explicit request bypasses the table at any size.
  EXPECT_EQ(ChooseAllreduce(t, AllreduceAlgo::kRabenseifner, 1e9, 128),
            AllreduceAlgo::kRabenseifner);
  // Default NCCL table: the 32 KiB cutoff is honoured per request.
  AllreduceTuning nccl = NcclAllreduceTuning();
  EXPECT_EQ(ChooseAllreduce(nccl, AllreduceAlgo::kAuto, 32768.0, 12),
            nccl.small_algo);
  EXPECT_EQ(ChooseAllreduce(nccl, AllreduceAlgo::kAuto, 32769.0, 12),
            nccl.large_algo);
}

}  // namespace
}  // namespace rcc::coll
