#include <gtest/gtest.h>

#include <atomic>

#include "mpi/comm.h"
#include "test_util.h"

namespace rcc::mpi {
namespace {

using rcc::testing::RunWorld;
using rcc::testing::RunWorldOn;

TEST(Comm, WorldRanksMatchPidOrder) {
  RunWorld(4, [](Comm& comm, sim::Endpoint& ep) {
    EXPECT_EQ(comm.rank(), ep.pid());
    EXPECT_EQ(comm.size(), 4);
    EXPECT_EQ(comm.PidOfRank(comm.rank()), ep.pid());
  });
}

TEST(Comm, WorldSharesOneContextId) {
  std::atomic<uint64_t> ctx{0};
  std::atomic<int> mismatches{0};
  RunWorld(4, [&](Comm& comm, sim::Endpoint&) {
    uint64_t expected = 0;
    if (!ctx.compare_exchange_strong(expected, comm.context_id())) {
      if (expected != comm.context_id()) mismatches++;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Comm, PointToPointRoundTrip) {
  RunWorld(2, [](Comm& comm, sim::Endpoint&) {
    if (comm.rank() == 0) {
      double v = 3.14;
      ASSERT_TRUE(comm.Send(1, 7, &v, sizeof(v)).ok());
      float reply = 0;
      ASSERT_TRUE(comm.Recv(1, 8, &reply, sizeof(reply)).ok());
      EXPECT_EQ(reply, 2.5f);
    } else {
      double v = 0;
      ASSERT_TRUE(comm.Recv(0, 7, &v, sizeof(v)).ok());
      EXPECT_EQ(v, 3.14);
      float reply = 2.5f;
      ASSERT_TRUE(comm.Send(0, 8, &reply, sizeof(reply)).ok());
    }
  });
}

TEST(Comm, AllreduceAutoSelectsBySize) {
  // Both regimes must produce correct sums regardless of the algorithm
  // the size heuristic picks.
  for (size_t count : {size_t{4}, size_t{64 * 1024}}) {
    RunWorld(5, [count](Comm& comm, sim::Endpoint&) {
      std::vector<float> in(count, static_cast<float>(comm.rank() + 1));
      std::vector<float> out(count);
      ASSERT_TRUE(comm.Allreduce(in.data(), out.data(), count).ok());
      for (float v : out) ASSERT_EQ(v, 15.0f);  // 1+2+3+4+5
    });
  }
}

TEST(Comm, SuccessiveCollectivesDoNotCrossTalk) {
  RunWorld(4, [](Comm& comm, sim::Endpoint&) {
    for (int iter = 0; iter < 20; ++iter) {
      float mine = static_cast<float>(comm.rank() + iter);
      float sum = 0;
      ASSERT_TRUE(comm.Allreduce(&mine, &sum, 1).ok());
      ASSERT_EQ(sum, 6.0f + 4 * iter);
    }
  });
}

TEST(Comm, BcastBlobVariableSize) {
  RunWorld(6, [](Comm& comm, sim::Endpoint&) {
    std::vector<uint8_t> blob;
    if (comm.rank() == 2) blob.assign(1000, 0x5A);
    ASSERT_TRUE(comm.BcastBlob(&blob, 2).ok());
    ASSERT_EQ(blob.size(), 1000u);
    EXPECT_EQ(blob[999], 0x5A);
  });
}

TEST(Comm, CollectiveReportsFailedPeer) {
  // Without revoke, only a rank communicating *directly* with the dead
  // process observes the failure (ULFM's per-operation semantics) - a
  // 2-rank world keeps the survivor's observation deterministic.
  sim::Cluster cluster;
  std::atomic<int> failures_seen{0};
  RunWorldOn(cluster, 2, [&](Comm& comm, sim::Endpoint& ep) {
    if (comm.rank() == 1) {
      ep.fabric().Kill(ep.pid());
      return;
    }
    float mine = 1.0f, out = 0.0f;
    Status st = comm.Allreduce(&mine, &out, 1);
    if (st.code() == Code::kProcFailed) {
      failures_seen++;
      // The observed failure is recorded for failure_ack.
      EXPECT_FALSE(comm.locally_observed_failures().empty());
      EXPECT_EQ(st.failed_pids(), std::vector<int>{1});
    }
  });
  cluster.Join();
  EXPECT_EQ(failures_seen.load(), 1);
}

TEST(Comm, RevokedCommRefusesNewOperations) {
  RunWorld(3, [](Comm& comm, sim::Endpoint&) {
    comm.group()->revoke.Cancel();
    float v = 1.0f, out = 0.0f;
    EXPECT_EQ(comm.Allreduce(&v, &out, 1).code(), Code::kRevoked);
    EXPECT_EQ(comm.Send(0, 1, &v, sizeof(v)).code(), Code::kRevoked);
    EXPECT_EQ(comm.Barrier().code(), Code::kRevoked);
  });
}

TEST(Comm, CostScaleMultipliesModeledTime) {
  std::atomic<double> t_scaled{0}, t_plain{0};
  const size_t count = 1 << 16;
  RunWorld(2, [&](Comm& comm, sim::Endpoint& ep) {
    std::vector<float> in(count, 1.0f), out(count);
    ASSERT_TRUE(comm.Allreduce(in.data(), out.data(), count).ok());
    if (comm.rank() == 0) t_plain = ep.now();
  });
  RunWorld(2, [&](Comm& comm, sim::Endpoint& ep) {
    comm.set_cost_scale(100.0);
    std::vector<float> in(count, 1.0f), out(count);
    ASSERT_TRUE(comm.Allreduce(in.data(), out.data(), count).ok());
    if (comm.rank() == 0) t_scaled = ep.now();
  });
  EXPECT_GT(t_scaled.load(), 10 * t_plain.load());
}

TEST(Comm, GatherScatterBarrierSmoke) {
  RunWorld(7, [](Comm& comm, sim::Endpoint&) {
    int mine = comm.rank();
    std::vector<int> all(7);
    ASSERT_TRUE(comm.Gather(&mine, all.data(), 1, 3).ok());
    if (comm.rank() == 3) {
      for (int r = 0; r < 7; ++r) ASSERT_EQ(all[r], r);
    }
    std::vector<int> src(7);
    for (int i = 0; i < 7; ++i) src[i] = 100 + i;
    int got = 0;
    ASSERT_TRUE(comm.Scatter(src.data(), &got, 1, 3).ok());
    ASSERT_EQ(got, 100 + comm.rank());
    ASSERT_TRUE(comm.Barrier().ok());
  });
}

TEST(Group, GetOrCreateIsIdempotent) {
  auto a = GetOrCreateGroup("test/idem", {1, 2, 3});
  auto b = GetOrCreateGroup("test/idem", {1, 2, 3});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->ctx_id, b->ctx_id);
}

TEST(Group, DistinctKeysDistinctContexts) {
  auto a = GetOrCreateGroup("test/k1", {0, 1});
  auto b = GetOrCreateGroup("test/k2", {0, 1});
  EXPECT_NE(a->ctx_id, b->ctx_id);
}

TEST(Group, RankOfPid) {
  CommGroup g;
  g.pids = {10, 20, 30};
  EXPECT_EQ(g.RankOfPid(20), 1);
  EXPECT_EQ(g.RankOfPid(99), -1);
}

TEST(Group, KeyEncodesPidsAndOp) {
  EXPECT_NE(GroupKey(1, "shrink", {0, 1}), GroupKey(1, "shrink", {0, 2}));
  EXPECT_NE(GroupKey(1, "shrink", {0, 1}), GroupKey(2, "shrink", {0, 1}));
  EXPECT_NE(GroupKey(1, "shrink", {0, 1}), GroupKey(1, "expand", {0, 1}));
}

}  // namespace
}  // namespace rcc::mpi
