// ProcessGroupGrid: deterministic rank -> (d, p, t) mapping and its
// stability guarantees across shrink (per dimension), spare adoption,
// and the ReCycle owner re-routing the pipeline trainer builds on.
#include "core/grid.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

namespace rcc::core {
namespace {

std::vector<int> Iota(int n, int start = 0) {
  std::vector<int> pids(n);
  std::iota(pids.begin(), pids.end(), start);
  return pids;
}

TEST(Grid, FoundingLayoutFillsSlotsInPidOrder) {
  // dp=2, pp=2, tp=2 over 9 pids: 8 slotted + 1 spare.
  ProcessGroupGrid g(GridDims{2, 2, 2}, Iota(9));
  for (int d = 0; d < 2; ++d) {
    for (int p = 0; p < 2; ++p) {
      for (int t = 0; t < 2; ++t) {
        EXPECT_EQ(g.PidAt(d, p, t), d * 4 + p * 2 + t);
      }
    }
  }
  ASSERT_EQ(g.spares().size(), 1u);
  EXPECT_EQ(g.spares()[0], 8);
  const GridCoord c = g.CoordOf(6);
  EXPECT_EQ(c.d, 1);
  EXPECT_EQ(c.p, 1);
  EXPECT_EQ(c.t, 0);
  EXPECT_FALSE(g.HasSlot(8));
  EXPECT_TRUE(g.Routable());
}

TEST(Grid, SurvivorsNeverMoveAcrossShrinkInAnyDimension) {
  // Kill one pid per dimension in turn; every surviving slotted pid must
  // keep its exact coordinate (sub-comms in the other dimensions stay
  // membership-stable).
  for (int victim : {0, 3, 5}) {  // (0,0,0), (0,1,1), (1,0,1) under 2x2x2
    ProcessGroupGrid g(GridDims{2, 2, 2}, Iota(8));
    std::vector<GridCoord> before(8);
    for (int pid = 0; pid < 8; ++pid) before[pid] = g.CoordOf(pid);
    std::vector<int> alive;
    for (int pid = 0; pid < 8; ++pid) {
      if (pid != victim) alive.push_back(pid);
    }
    g.Update(alive);
    EXPECT_FALSE(g.HasSlot(victim));
    for (int pid : alive) {
      const GridCoord a = g.CoordOf(pid);
      EXPECT_EQ(a.d, before[pid].d) << "pid " << pid;
      EXPECT_EQ(a.p, before[pid].p) << "pid " << pid;
      EXPECT_EQ(a.t, before[pid].t) << "pid " << pid;
    }
  }
}

TEST(Grid, SpareAdoptsExactlyTheVacatedSlot) {
  ProcessGroupGrid g(GridDims{2, 2, 1}, Iota(6));  // 4 slots + spares 4,5
  // Pid 2 = slot (1, 0); the lowest spare must inherit that exact slot.
  std::vector<int> alive = {0, 1, 3, 4, 5};
  g.Update(alive);
  const GridCoord c = g.CoordOf(4);
  EXPECT_EQ(c.d, 1);
  EXPECT_EQ(c.p, 0);
  ASSERT_EQ(g.spares().size(), 1u);
  EXPECT_EQ(g.spares()[0], 5);
  // A second vacancy drains the remaining spare.
  alive = {0, 1, 4, 5};
  g.Update(alive);
  const GridCoord c2 = g.CoordOf(5);
  EXPECT_EQ(c2.d, 1);
  EXPECT_EQ(c2.p, 1);
  EXPECT_TRUE(g.spares().empty());
}

TEST(Grid, UpdateIsDeterministicSpmd) {
  // Two members applying the same agreed survivor lists derive the
  // same mapping bytes at every generation.
  ProcessGroupGrid a(GridDims{2, 3, 1}, Iota(8));
  ProcessGroupGrid b(GridDims{2, 3, 1}, Iota(8));
  const std::vector<std::vector<int>> history = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {0, 1, 3, 4, 5, 6, 7},
      {0, 1, 3, 4, 6, 7},
      {0, 3, 4, 6, 7},
  };
  for (const auto& alive : history) {
    a.Update(alive);
    b.Update(alive);
    EXPECT_EQ(a.Format(), b.Format());
  }
}

TEST(Grid, PartialTpReplicaIsNotFunctional) {
  ProcessGroupGrid g(GridDims{2, 2, 2}, Iota(8));
  // Kill one TP shard of replica (0, stage 1): slot (0,1,1) = pid 3.
  g.Update({0, 1, 2, 4, 5, 6, 7});
  EXPECT_FALSE(g.Functional(0, 1));
  EXPECT_TRUE(g.Functional(0, 0));
  EXPECT_TRUE(g.Functional(1, 1));
  // The stage still has a functional replica, so the grid routes.
  ASSERT_EQ(g.FunctionalReplicas(1).size(), 1u);
  EXPECT_EQ(g.FunctionalReplicas(1)[0], 1);
  EXPECT_TRUE(g.Routable());
}

TEST(Grid, OwnerReroutesMicrobatchesOfBrokenReplicas) {
  ProcessGroupGrid g(GridDims{2, 2, 1}, Iota(4));
  // Healthy: home replica m % dp owns m.
  EXPECT_EQ(g.OwnerReplica(0, 0), 0);
  EXPECT_EQ(g.OwnerReplica(0, 1), 1);
  // Break replica 0 of stage 1 (slot (0,1) = pid 1, no spare refill).
  g.Update({0, 2, 3});
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(g.OwnerReplica(1, m), 1) << "m" << m;  // survivor adopts all
  }
  EXPECT_EQ(g.OwnerReplica(0, 0), 0);  // stage 0 untouched
  // Kill the adopter too: the stage is dead, the grid is unroutable.
  g.Update({0, 2});
  EXPECT_EQ(g.OwnerReplica(1, 0), -1);
  EXPECT_FALSE(g.Routable());
}

TEST(Grid, GroupPidListsFollowTheMapping) {
  ProcessGroupGrid g(GridDims{2, 2, 2}, Iota(8));
  EXPECT_EQ(g.TpGroupPids(1, 0), (std::vector<int>{4, 5}));
  EXPECT_EQ(g.DpGroupPids(1, 1), (std::vector<int>{3, 7}));
  g.Update({0, 1, 2, 4, 5, 6, 7});  // vacate (0,1,1)
  EXPECT_EQ(g.TpGroupPids(0, 1), (std::vector<int>{2}));
  EXPECT_EQ(g.DpGroupPids(1, 1), (std::vector<int>{7}));
}

TEST(Grid, DimsFromEnvUsesCheckedKnobs) {
  ::setenv("RCC_PP_STAGES", "3", 1);
  ::setenv("RCC_TP_SIZE", "2", 1);
  GridDims d = GridDimsFromEnv();
  EXPECT_EQ(d.pp, 3);
  EXPECT_EQ(d.tp, 2);
  ::unsetenv("RCC_PP_STAGES");
  ::unsetenv("RCC_TP_SIZE");
  d = GridDimsFromEnv();
  EXPECT_EQ(d.pp, 1);
  EXPECT_EQ(d.tp, 1);
}

}  // namespace
}  // namespace rcc::core
