// Shared helpers for the simulated-world tests.
#pragma once

#include <functional>
#include <numeric>
#include <vector>

#include "mpi/comm.h"
#include "sim/cluster.h"

namespace rcc::testing {

// Spawns an `n`-rank world on a fresh cluster (pids are 0..n-1) and runs
// `fn` on every rank with a world communicator. Blocks until all ranks
// return.
inline void RunWorld(
    int n, const std::function<void(mpi::Comm&, sim::Endpoint&)>& fn,
    sim::SimConfig cfg = sim::SimConfig{}) {
  sim::Cluster cluster(cfg);
  std::vector<int> pids(n);
  std::iota(pids.begin(), pids.end(), 0);
  cluster.Spawn(n, [fn, pids](sim::Endpoint& ep) {
    mpi::Comm comm = mpi::Comm::World(ep, pids);
    fn(comm, ep);
  });
  cluster.Join();
}

// Same, exposing the cluster to the caller (failure injection etc.).
inline void RunWorldOn(
    sim::Cluster& cluster, int n,
    const std::function<void(mpi::Comm&, sim::Endpoint&)>& fn) {
  std::vector<int> pids(n);
  std::iota(pids.begin(), pids.end(), 0);
  // NB: capture fn by value - the spawned threads outlive this call.
  cluster.Spawn(n, [fn, pids](sim::Endpoint& ep) {
    mpi::Comm comm = mpi::Comm::World(ep, pids);
    fn(comm, ep);
  });
}

}  // namespace rcc::testing
