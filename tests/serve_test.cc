// The serving plane: deterministic traffic generation, the replicated
// continuous batcher, load-driven autoscaling, and the end-to-end
// guarantee the chaos oracle P8 audits — no admitted request is lost or
// double-completed across any repair.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "core/resilient.h"
#include "kvstore/kvstore.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "sim/cluster.h"

namespace rcc::serve {
namespace {

using core::ResilientComm;

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

TEST(Generator, DeterministicSortedAndBounded) {
  TrafficConfig cfg;
  cfg.seed = 7;
  cfg.requests = 100;
  cfg.base_rps = 40.0;
  const std::vector<Request> a = GenerateArrivals(cfg);
  const std::vector<Request> b = GenerateArrivals(cfg);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    EXPECT_GE(a[i].prompt_tokens, cfg.min_prompt);
    EXPECT_LE(a[i].prompt_tokens, cfg.max_prompt);
    EXPECT_GE(a[i].decode_tokens, cfg.min_decode);
    EXPECT_LE(a[i].decode_tokens, cfg.max_decode);
  }
  cfg.seed = 8;
  const std::vector<Request> c = GenerateArrivals(cfg);
  EXPECT_NE(a[1].arrival, c[1].arrival);
}

TEST(Generator, DiurnalLoadCurveShiftsArrivals) {
  TrafficConfig flat;
  flat.seed = 11;
  flat.requests = 200;
  flat.base_rps = 50.0;
  TrafficConfig diurnal = flat;
  diurnal.diurnal_amplitude = 0.9;
  diurnal.diurnal_period_s = 2.0;
  const std::vector<Request> f = GenerateArrivals(flat);
  const std::vector<Request> d = GenerateArrivals(diurnal);
  ASSERT_EQ(d.size(), 200u);
  bool differs = false;
  for (size_t i = 0; i < f.size(); ++i) {
    if (f[i].arrival != d[i].arrival) differs = true;
  }
  EXPECT_TRUE(differs);
  // Same seed, same sizes: the size stream is independent of thinning.
  EXPECT_EQ(f[0].prompt_tokens, d[0].prompt_tokens);
}

TEST(Generator, EnvOverrides) {
  ::setenv("RCC_SERVE_SEED", "42", 1);
  ::setenv("RCC_SERVE_REQUESTS", "17", 1);
  ::setenv("RCC_SERVE_RPS", "123.5", 1);
  TrafficConfig cfg = TrafficFromEnv();
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.requests, 17);
  EXPECT_EQ(cfg.base_rps, 123.5);
  ::unsetenv("RCC_SERVE_SEED");
  ::unsetenv("RCC_SERVE_REQUESTS");
  ::unsetenv("RCC_SERVE_RPS");
}

// ---------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------

std::vector<Request> TinyStream() {
  // Two requests, immediate arrivals, 2 decode tokens each.
  std::vector<Request> s;
  s.push_back(Request{0, 0.0, 4, 2});
  s.push_back(Request{1, 0.01, 3, 2});
  return s;
}

TEST(Batcher, LifecycleCompletesRequests) {
  const std::vector<Request> stream = TinyStream();
  Batcher b(1);  // force queueing
  int prompts = 0;
  EXPECT_EQ(b.Admit(stream, 0.02, &prompts), 1);
  EXPECT_EQ(prompts, 4);
  EXPECT_EQ(b.waiting(), 1);
  EXPECT_EQ(b.running(), 1);
  b.CommitStep(stream, 0.03, 1.0f, 0.01);
  b.CommitStep(stream, 0.04, 1.0f, 0.01);  // request 0 finishes
  EXPECT_EQ(b.completions().size(), 1u);
  EXPECT_EQ(b.Admit(stream, 0.04), 1);  // request 1 scheduled
  b.CommitStep(stream, 0.05, 1.0f, 0.01);
  b.CommitStep(stream, 0.06, 1.0f, 0.01);
  ASSERT_EQ(b.completions().size(), 2u);
  EXPECT_TRUE(b.Drained(static_cast<int>(stream.size())));
  const Completion& c0 = b.completions()[0];
  EXPECT_EQ(c0.id, 0);
  EXPECT_EQ(c0.first_token, 0.03);
  EXPECT_EQ(c0.done, 0.04);
  EXPECT_EQ(c0.tokens, 2);
  // TTFT observations accumulate until drained, then drain exactly once.
  EXPECT_EQ(b.TakeFirstTokenLatencies().size(), 2u);
  EXPECT_EQ(b.TakeFirstTokenLatencies().size(), 0u);
}

TEST(Batcher, SerializeRestoreRoundTrip) {
  const std::vector<Request> stream = TinyStream();
  Batcher b(1);
  b.Admit(stream, 0.02);
  b.CommitStep(stream, 0.03, 2.0f, 0.01);
  const std::vector<uint8_t> blob = b.Serialize();
  Batcher r(8);
  ASSERT_TRUE(r.Restore(blob).ok());
  EXPECT_EQ(r.digest(), b.digest());
  EXPECT_EQ(r.waiting(), b.waiting());
  EXPECT_EQ(r.running(), b.running());
  EXPECT_EQ(r.steps(), b.steps());
  EXPECT_EQ(r.next_arrival(), b.next_arrival());
  // The restored copy continues identically.
  b.CommitStep(stream, 0.04, 2.0f, 0.01);
  r.CommitStep(stream, 0.04, 2.0f, 0.01);
  EXPECT_EQ(r.digest(), b.digest());
  ASSERT_EQ(r.completions().size(), b.completions().size());
  EXPECT_TRUE(r.completions()[0] == b.completions()[0]);
  // Corrupt blob: trailing garbage is rejected.
  std::vector<uint8_t> bad = blob;
  bad.push_back(0xAB);
  EXPECT_FALSE(Batcher(1).Restore(bad).ok());
}

TEST(Batcher, RestartRunningResetsPositionsOnly) {
  const std::vector<Request> stream = TinyStream();
  Batcher b(4);
  b.Admit(stream, 0.02);
  b.CommitStep(stream, 0.03, 1.0f, 0.01);
  ASSERT_EQ(b.running(), 2);
  b.RestartRunning();
  // Positions reset: both requests need their full decode again.
  b.CommitStep(stream, 0.05, 1.0f, 0.01);
  EXPECT_EQ(b.completions().size(), 0u);
  b.CommitStep(stream, 0.06, 1.0f, 0.01);
  EXPECT_EQ(b.completions().size(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end serving over ResilientComm
// ---------------------------------------------------------------------

ServeOptions SmallServe(int requests, double rps) {
  ServeOptions o;
  o.traffic.seed = 5;
  o.traffic.requests = requests;
  o.traffic.base_rps = rps;
  o.traffic.min_prompt = 4;
  o.traffic.max_prompt = 8;
  o.traffic.min_decode = 4;
  o.traffic.max_decode = 8;
  o.max_batch = 4;
  o.hidden = 64;
  return o;
}

struct RunOut {
  std::vector<ServeReport> finished;  // reports from ranks that drained
  std::vector<ServeReport> left;
  std::vector<ServeReport> joined;  // standby joiners that served
};

// Every admitted request completes exactly once across the union of any
// finisher's completion log (they must all agree anyway).
void ExpectNoDropsNoDoubles(const RunOut& out, int requests) {
  ASSERT_FALSE(out.finished.empty());
  const ServeReport& ref = out.finished.front();
  EXPECT_EQ(ref.completed, requests);
  std::map<int, int> seen;
  for (const Completion& c : ref.completions) seen[c.id]++;
  for (int id = 0; id < requests; ++id) {
    EXPECT_EQ(seen[id], 1) << "request " << id;
  }
  for (const ServeReport& r : out.finished) {
    EXPECT_EQ(r.digest, ref.digest);
    EXPECT_EQ(r.completed, ref.completed);
    EXPECT_EQ(r.end_time, ref.end_time);
    ASSERT_EQ(r.completions.size(), ref.completions.size());
    for (size_t i = 0; i < r.completions.size(); ++i) {
      EXPECT_TRUE(r.completions[i] == ref.completions[i])
          << "completion " << i << ": id " << r.completions[i].id << "/"
          << ref.completions[i].id << " admit " << r.completions[i].admit
          << "/" << ref.completions[i].admit << " first "
          << r.completions[i].first_token << "/"
          << ref.completions[i].first_token << " done "
          << r.completions[i].done << "/" << ref.completions[i].done;
    }
  }
}

RunOut RunServe(int world, const ServeOptions& opts, kv::Store* store,
                sim::SimConfig cfg = sim::SimConfig{},
                double kill_at = -1.0, int kill_pid = -1,
                int standbys = 0) {
  sim::Cluster cluster(cfg);
  std::mutex mu;
  RunOut out;
  std::vector<int> pids(static_cast<size_t>(world));
  for (int i = 0; i < world; ++i) pids[static_cast<size_t>(i)] = i;
  ServeOptions o = opts;
  o.store = store;
  cluster.Spawn(world, [&, o, pids](sim::Endpoint& ep) {
    if (ep.pid() == kill_pid && kill_at >= 0) ep.ArmKillAt(kill_at);
    ResilientComm rc(ep, pids, o.policy, nullptr);
    ServingDriver d(&rc, o);
    ServeReport r = d.Run();
    if (r.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
    std::lock_guard<std::mutex> lock(mu);
    if (r.left) {
      out.left.push_back(std::move(r));
    } else if (!r.aborted) {
      out.finished.push_back(std::move(r));
    }
  });
  for (int i = 0; i < standbys; ++i) {
    cluster.SpawnOnFreshNodes(
        1,
        [&, o, i](sim::Endpoint& ep) {
          ServeReport r =
              ServingDriver::RunStandbyJoiner(ep, o.store, o, i, nullptr);
          if (r.aborted && ep.alive()) ep.fabric().Kill(ep.pid());
          std::lock_guard<std::mutex> lock(mu);
          if (!r.aborted && !r.idle_standby) {
            out.finished.push_back(r);
            out.joined.push_back(std::move(r));
          }
        },
        /*start_time=*/0.0);
  }
  cluster.Join();
  return out;
}

TEST(Serving, DrainsEveryRequestWithoutFailures) {
  const ServeOptions o = SmallServe(40, 200.0);
  RunOut out = RunServe(4, o, nullptr);
  ASSERT_EQ(out.finished.size(), 4u);
  ExpectNoDropsNoDoubles(out, 40);
  EXPECT_EQ(out.finished[0].repairs, 0);
  EXPECT_EQ(out.finished[0].final_world, 4);
}

TEST(Serving, RankFailureMidDecodePreservesEveryAdmittedRequest) {
  obs::Registry::Global().ResetAll();
  const ServeOptions o = SmallServe(40, 200.0);
  RunOut out = RunServe(4, o, nullptr, sim::SimConfig{}, /*kill_at=*/0.05,
                        /*kill_pid=*/3);
  ASSERT_EQ(out.finished.size(), 3u);
  ExpectNoDropsNoDoubles(out, 40);
  EXPECT_GE(out.finished[0].repairs, 1);
  EXPECT_EQ(out.finished[0].final_world, 3);
  // The in-flight decode step was re-executed, not rolled back: the run
  // recovered within the step and recovery metrics captured it.
  EXPECT_GE(out.finished[0].recovery_steps, 1);
  obs::Registry& reg = obs::Registry::Global();
  const obs::Labels labels{{"mode", "resilient"}};
  EXPECT_GT(reg.CounterValue("rcc_serve_tokens_total", labels), 0.0);
  EXPECT_GE(reg.CounterValue("rcc_serve_recovery_steps_total", labels), 1.0);
  EXPECT_GT(reg.CounterValue("rcc_serve_recovery_seconds_total", labels), 0.0);
  EXPECT_GT(
      reg.HistogramSnapshot("rcc_serve_ttft_seconds", labels).count, 0u);
  EXPECT_GT(
      reg.HistogramSnapshot("rcc_serve_token_seconds", labels).count, 0u);
}

TEST(Serving, ResilientRecoveryBeatsTeardownRebuild) {
  ServeOptions o = SmallServe(40, 200.0);
  o.mode = RecoveryMode::kResilient;
  RunOut resilient = RunServe(4, o, nullptr, sim::SimConfig{}, 0.05, 3);
  o.mode = RecoveryMode::kTeardownRebuild;
  RunOut teardown = RunServe(4, o, nullptr, sim::SimConfig{}, 0.05, 3);
  ASSERT_FALSE(resilient.finished.empty());
  ASSERT_FALSE(teardown.finished.empty());
  // Same failure schedule; both preserve the stream (the baseline
  // re-decodes, it does not drop), but resilient recovery finishes
  // strictly earlier because it replays one decode step instead of
  // rebuilding the job and every KV cache.
  ExpectNoDropsNoDoubles(resilient, 40);
  ExpectNoDropsNoDoubles(teardown, 40);
  EXPECT_LT(resilient.finished[0].end_time, teardown.finished[0].end_time);
}

TEST(Serving, QueuePressureAdmitsStandbyThroughAsyncExpand) {
  kv::Store store;
  ServeOptions o = SmallServe(120, 300.0);
  o.autoscale.enabled = true;
  o.autoscale.queue_high = 6;
  o.autoscale.queue_low = 0;  // never count a low step
  o.autoscale.low_steps = 1 << 30;
  o.autoscale.cooldown_steps = 8;
  o.autoscale.standby_pool = 1;
  o.autoscale.min_world = 3;
  o.model_bytes = 1e6;
  o.session = "serve-expand-test";
  sim::SimConfig cfg;
  cfg.costs.worker_coldstart = 0.2;
  RunOut out = RunServe(3, o, &store, cfg, -1.0, -1, /*standbys=*/1);
  ASSERT_EQ(out.joined.size(), 1u) << "standby was not admitted";
  ASSERT_EQ(out.finished.size(), 4u);  // 3 founders + 1 joiner drain
  ExpectNoDropsNoDoubles(out, 120);
  int splices_observed = 0;
  for (const ServeReport& r : out.finished) {
    splices_observed = std::max(splices_observed, r.expands);
  }
  EXPECT_GE(splices_observed, 1);  // the founders saw the splice
  for (const ServeReport& r : out.finished) EXPECT_EQ(r.final_world, 4);
}

TEST(Serving, SustainedLowLoadTriggersVoluntaryShrink) {
  ServeOptions o = SmallServe(24, 30.0);
  o.max_batch = 8;
  o.autoscale.enabled = true;
  o.autoscale.queue_high = 1 << 30;  // never expand
  o.autoscale.queue_low = 1;
  o.autoscale.low_steps = 6;
  o.autoscale.cooldown_steps = 4;
  o.autoscale.min_world = 2;
  // Deterministic engine: whether a survivor reaches its own shrink
  // decision before the leaver's departure repairs the world down to
  // min_world (turning the decision into a hold) is a scheduling race
  // under the threads backend; fibers pin the order so the survivors'
  // shrink count is stable.
  sim::SimConfig cfg;
  cfg.engine = sim::EngineKind::kFibers;
  RunOut out = RunServe(3, o, nullptr, cfg);
  ASSERT_EQ(out.left.size(), 1u) << "no rank left voluntarily";
  ASSERT_EQ(out.finished.size(), 2u);
  ExpectNoDropsNoDoubles(out, 24);
  for (const ServeReport& r : out.finished) {
    EXPECT_EQ(r.final_world, 2);
    EXPECT_GE(r.shrinks, 1);
  }
}

TEST(Serving, DeterministicAcrossEngineBackends) {
  const ServeOptions o = SmallServe(40, 200.0);
  sim::SimConfig threads;
  threads.engine = sim::EngineKind::kThreads;
  sim::SimConfig fibers;
  fibers.engine = sim::EngineKind::kFibers;
  RunOut a = RunServe(3, o, nullptr, threads, 0.05, 2);
  RunOut b = RunServe(3, o, nullptr, fibers, 0.05, 2);
  RunOut c = RunServe(3, o, nullptr, fibers, 0.05, 2);
  ASSERT_FALSE(a.finished.empty());
  ASSERT_FALSE(b.finished.empty());
  ASSERT_FALSE(c.finished.empty());
  // Threads backend: OS scheduling can shift how the mid-decode kill
  // interleaves with the survivors' repair, moving virtual completion
  // time — but the served data must be identical regardless.
  EXPECT_EQ(a.finished[0].digest, b.finished[0].digest);
  EXPECT_EQ(a.finished[0].completed, b.finished[0].completed);
  // Fibers backend: fully deterministic, timing included.
  EXPECT_EQ(b.finished[0].digest, c.finished[0].digest);
  EXPECT_EQ(b.finished[0].end_time, c.finished[0].end_time);
  EXPECT_EQ(b.finished[0].completed, c.finished[0].completed);
}

}  // namespace
}  // namespace rcc::serve
