// Adaptive recovery policy unit tests: MTBF estimator convergence on
// planted exponential failure traces, window reset semantics on
// non-failure membership changes, the PolicyInputs wire round-trip, the
// pinned decision boundaries of every mode (static forcing + fallback,
// adaptive argmin + lowest-index tie break), and the controller's
// tick/log bookkeeping that oracle P9 replays.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "policy/policy.h"

namespace rcc::policy {
namespace {

// A representative failure tick: two replacement slots left, kvstore up,
// boundary snapshot held, mid-run with real measured costs.
PolicyInputs FailureInputs() {
  PolicyInputs in;
  in.event = static_cast<int32_t>(EventKind::kFailure);
  in.seq = 3;
  in.world = 7;
  in.lost = 1;
  in.replacements = 2;
  in.slots_used = 1;
  in.flags = kFlagStoreOk | kFlagRestoreOk;
  in.gstep = 40;
  in.remaining_steps = 60;
  in.rollback_steps = 4;
  in.now = 1.25;
  in.step_seconds = 0.015;
  in.mtbf_seconds = 0.8;
  in.failures_observed = 3.0;
  in.snapshot_bytes = 4096.0;
  in.staging_seconds = 0.002;
  in.rebuild_seconds = 0.03;
  in.grace_seconds = 0.005;
  return in;
}

PolicyInputs JoinInputs() {
  PolicyInputs in = FailureInputs();
  in.event = static_cast<int32_t>(EventKind::kJoin);
  in.lost = 2;  // joiners due
  in.flags = kFlagStoreOk;
  in.rollback_steps = 0;
  return in;
}

TEST(MtbfEstimator, ConvergesOnPlantedExponentialTrace) {
  // Failures planted by a Poisson process with rate 2/s (mean gap 0.5s
  // of virtual time): the windowed mean inter-failure time must settle
  // near the true MTBF.
  Rng rng(/*seed=*/17);
  MtbfEstimator est;
  const double rate = 2.0;
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    t += rng.NextExponential(rate);
    est.ObserveFailure(t, /*world_after=*/8 - (i % 3));
  }
  EXPECT_EQ(est.window_failures(), 600);
  EXPECT_NEAR(est.Estimate(), 1.0 / rate, 0.1 / rate);
}

TEST(MtbfEstimator, NoEstimateBeforeTwoObservations) {
  MtbfEstimator est;
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
  est.ObserveFailure(1.0, 4);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
  est.ObserveFailure(1.5, 3);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.5);
}

TEST(MtbfEstimator, WindowResetsOnNonFailureWorldChange) {
  MtbfEstimator est;
  est.ObserveFailure(1.0, 5);
  est.ObserveFailure(2.0, 4);
  ASSERT_GT(est.Estimate(), 0.0);
  // A failure-driven shrink keeps the window (the shrink IS the
  // observation)...
  est.ObserveFailure(3.0, 3);
  EXPECT_EQ(est.window_failures(), 3);
  EXPECT_DOUBLE_EQ(est.Estimate(), 1.0);
  // ...but an admission growing the world invalidates it: the aggregate
  // failure rate scales with the worker count.
  est.OnWorldChange(4, 3.5);
  EXPECT_EQ(est.window_failures(), 0);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
  EXPECT_DOUBLE_EQ(est.window_start(), 3.5);
  // A world report matching the current membership is not a change.
  est.ObserveFailure(4.0, 3);
  est.OnWorldChange(3, 4.25);
  EXPECT_EQ(est.window_failures(), 1);
}

TEST(PolicyInputs, EncodeDecodeRoundTripIsExact) {
  PolicyInputs in = FailureInputs();
  in.now = 0.1 + 1e-17;  // not representable tidily: bit-exactness check
  in.mtbf_seconds = -0.0;
  const std::vector<uint8_t> blob = EncodeInputs(in);
  ASSERT_EQ(blob.size(), kPolicyInputsBytes);
  PolicyInputs out;
  ASSERT_TRUE(DecodeInputs(blob, &out));
  EXPECT_EQ(EncodeInputs(out), blob);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.world, in.world);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.gstep, in.gstep);
  EXPECT_DOUBLE_EQ(out.now, in.now);
  EXPECT_TRUE(std::signbit(out.mtbf_seconds));
  // Truncated or padded blobs are rejected, never partially decoded.
  std::vector<uint8_t> bad(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(DecodeInputs(bad, &out));
  bad = blob;
  bad.push_back(0);
  EXPECT_FALSE(DecodeInputs(bad, &out));
}

TEST(Applicability, MatrixMatchesEventAndFlags) {
  PolicyInputs in = FailureInputs();
  EXPECT_TRUE(Applicable(Strategy::kShrink, in));
  EXPECT_TRUE(Applicable(Strategy::kWait, in));
  EXPECT_TRUE(Applicable(Strategy::kAsync, in));
  EXPECT_TRUE(Applicable(Strategy::kRestore, in));
  in.replacements = 0;
  EXPECT_FALSE(Applicable(Strategy::kWait, in));
  EXPECT_FALSE(Applicable(Strategy::kAsync, in));
  in.flags = 0;
  EXPECT_FALSE(Applicable(Strategy::kRestore, in));
  PolicyInputs join = JoinInputs();
  EXPECT_FALSE(Applicable(Strategy::kShrink, join));
  EXPECT_FALSE(Applicable(Strategy::kRestore, join));
  EXPECT_TRUE(Applicable(Strategy::kWait, join));
  EXPECT_TRUE(Applicable(Strategy::kAsync, join));
  join.flags = 0;
  EXPECT_FALSE(Applicable(Strategy::kAsync, join));
}

TEST(Decide, StaticModesForceTheirStrategyWhenApplicable) {
  const PolicyInputs in = FailureInputs();
  EXPECT_EQ(Decide(Mode::kShrinkOnly, in).chosen, Strategy::kShrink);
  EXPECT_EQ(Decide(Mode::kWaitOnly, in).chosen, Strategy::kWait);
  EXPECT_EQ(Decide(Mode::kAsyncOnly, in).chosen, Strategy::kAsync);
  EXPECT_EQ(Decide(Mode::kRestoreOnly, in).chosen, Strategy::kRestore);
}

TEST(Decide, StaticModesFallBackWhenInapplicable) {
  PolicyInputs in = FailureInputs();
  in.replacements = 0;  // no slot: wait/async impossible
  in.flags = 0;         // no store, no snapshot: restore impossible
  EXPECT_EQ(Decide(Mode::kWaitOnly, in).chosen, Strategy::kShrink);
  EXPECT_EQ(Decide(Mode::kAsyncOnly, in).chosen, Strategy::kShrink);
  EXPECT_EQ(Decide(Mode::kRestoreOnly, in).chosen, Strategy::kShrink);
  // Joins never shrink or restore: the fallback is the blocking expand.
  PolicyInputs join = JoinInputs();
  join.flags = 0;
  EXPECT_EQ(Decide(Mode::kShrinkOnly, join).chosen, Strategy::kWait);
  EXPECT_EQ(Decide(Mode::kRestoreOnly, join).chosen, Strategy::kWait);
  EXPECT_EQ(Decide(Mode::kAsyncOnly, join).chosen, Strategy::kWait);
}

TEST(Decide, AdaptivePicksOnlyApplicableStrategy) {
  PolicyInputs in = FailureInputs();
  in.replacements = 0;
  in.flags = 0;
  const Decision d = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(d.chosen, Strategy::kShrink);
  EXPECT_TRUE(std::isinf(d.cost[1]));
  EXPECT_TRUE(std::isinf(d.cost[2]));
  EXPECT_TRUE(std::isinf(d.cost[3]));
}

TEST(Decide, AdaptivePrefersAsyncOverStallingAlternatives) {
  // Long remaining horizon, cheap staging: shrink forfeits a worker for
  // the rest of the run, wait stalls the whole world on the rendezvous
  // grace; the overlapped admission must win.
  PolicyInputs in = FailureInputs();
  in.remaining_steps = 500;
  const Decision d = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(d.chosen, Strategy::kAsync);
  EXPECT_LT(d.cost[2], d.cost[0]);
  EXPECT_LT(d.cost[2], d.cost[1]);
}

TEST(Decide, AdaptiveShrinksWhenNoHorizonRemains) {
  // With nothing left to run, every admission is pure overhead: the
  // degraded continue is free.
  PolicyInputs in = FailureInputs();
  in.remaining_steps = 0;
  in.rebuild_seconds = 0.0;
  const Decision d = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(d.chosen, Strategy::kShrink);
  EXPECT_DOUBLE_EQ(d.cost[0], 0.0);
}

TEST(Decide, RestorePricesTheRepairPlusRollbackOnFailures) {
  // Rolling back does not bypass the forward-recovery repair: the
  // membership shrinks through the same ULFM critical path either way,
  // and the Eq.1 load + recompute comes on top. On failures restore is
  // therefore never strictly cheaper than shrink — with zero rollback
  // and zero snapshot the two tie exactly and the tie breaks toward
  // shrink; any rollback distance strictly separates them.
  PolicyInputs in = FailureInputs();
  in.replacements = 0;  // isolate the shrink-vs-restore boundary
  in.rebuild_seconds = 5.0;
  in.rollback_steps = 0;
  in.snapshot_bytes = 0.0;
  in.staging_seconds = 0.0;
  const Decision tie = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(tie.chosen, Strategy::kShrink);
  EXPECT_DOUBLE_EQ(tie.cost[3], tie.cost[0]);

  in.rollback_steps = 40;
  const Decision rolled = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(rolled.chosen, Strategy::kShrink);
  EXPECT_GT(rolled.cost[3], rolled.cost[0]);
  // The static mode still forces the strategy it names.
  EXPECT_EQ(Decide(Mode::kRestoreOnly, in).chosen, Strategy::kRestore);
}

TEST(Decide, AdaptiveTieBreaksTowardLowestIndex) {
  // Zero rebuild, zero snapshot, zero rollback: shrink and restore cost
  // exactly the same lost capacity; the tie must break toward shrink
  // (lowest strategy index) on every rank identically.
  PolicyInputs in = FailureInputs();
  in.replacements = 0;
  in.rebuild_seconds = 0.0;
  in.rollback_steps = 0;
  in.snapshot_bytes = 0.0;
  in.staging_seconds = 0.0;
  const Decision d = Decide(Mode::kAdaptive, in);
  ASSERT_DOUBLE_EQ(d.cost[0], d.cost[3]);
  EXPECT_EQ(d.chosen, Strategy::kShrink);
}

TEST(Decide, JoinPrefersAsyncWithStoreElseWait) {
  PolicyInputs join = JoinInputs();
  EXPECT_EQ(Decide(Mode::kAdaptive, join).chosen, Strategy::kAsync);
  join.flags = 0;
  EXPECT_EQ(Decide(Mode::kAdaptive, join).chosen, Strategy::kWait);
}

TEST(Decide, IsPureOverTheWire) {
  // The broadcast bytes ARE the decision input: decode must reproduce
  // the identical Decision, including every modeled cost bit.
  const PolicyInputs in = FailureInputs();
  PolicyInputs decoded;
  ASSERT_TRUE(DecodeInputs(EncodeInputs(in), &decoded));
  const Decision a = Decide(Mode::kAdaptive, in);
  const Decision b = Decide(Mode::kAdaptive, decoded);
  EXPECT_EQ(FormatDecision(a), FormatDecision(b));
}

TEST(Decide, RerouteNeedsTheRoutableFlagAndAFailure) {
  PolicyInputs in = FailureInputs();
  EXPECT_FALSE(Applicable(Strategy::kReroute, in));  // no flag
  in.flags |= kFlagReroutable;
  EXPECT_TRUE(Applicable(Strategy::kReroute, in));
  PolicyInputs join = JoinInputs();
  join.flags |= kFlagReroutable;
  EXPECT_FALSE(Applicable(Strategy::kReroute, join));  // joins never reroute
}

TEST(Decide, RerouteOnlyForcesWithFlagElseFallsBack) {
  PolicyInputs in = FailureInputs();
  in.flags |= kFlagReroutable;
  EXPECT_EQ(Decide(Mode::kRerouteOnly, in).chosen, Strategy::kReroute);
  in.flags &= ~kFlagReroutable;  // grid unroutable -> shrink fallback
  EXPECT_EQ(Decide(Mode::kRerouteOnly, in).chosen, Strategy::kShrink);
}

TEST(Decide, AdaptivePrefersRerouteWhenShrinkRetiresAWholeReplica) {
  // Pipeline grid with pp*tp = 4: shrinking after a one-rank loss
  // retires all 4 ranks of the replica, while re-routing pays only the
  // bubble fraction of the single lost rank. Disable the admission arms
  // so the comparison is shrink/restore vs reroute.
  PolicyInputs in = FailureInputs();
  in.flags = kFlagRestoreOk | kFlagReroutable;
  in.replacements = 0;  // wait/async need a slot
  in.replica_ranks = 4;
  const Decision d = Decide(Mode::kAdaptive, in);
  EXPECT_EQ(d.chosen, Strategy::kReroute);
  EXPECT_LT(d.cost[4], d.cost[0]);
  EXPECT_TRUE(std::isinf(d.cost[1]));
  EXPECT_TRUE(std::isinf(d.cost[2]));
}

TEST(Decide, FormatCarriesReplicaRanksAndRerouteCost) {
  PolicyInputs in = FailureInputs();
  in.flags |= kFlagReroutable;
  in.replica_ranks = 2;
  const std::string s = FormatDecision(Decide(Mode::kAdaptive, in));
  EXPECT_NE(s.find("rr=2"), std::string::npos);
  EXPECT_NE(s.find("cost_reroute="), std::string::npos);
  EXPECT_EQ(s.find("cost_reroute=inf"), std::string::npos);
}

TEST(ModeParsing, NamesRoundTripAndUnknownsAreRejected) {
  const char* names[] = {"adaptive", "shrink", "wait", "async", "restore"};
  for (const char* n : names) {
    Mode m = Mode::kLegacy;
    ASSERT_TRUE(ModeFromName(n, &m)) << n;
    EXPECT_STREQ(ModeName(m), n);
  }
  Mode m = Mode::kAdaptive;
  ASSERT_TRUE(ModeFromName("", &m));
  EXPECT_EQ(m, Mode::kLegacy);
  EXPECT_FALSE(ModeFromName("chameleon", &m));
}

TEST(PolicyController, LogsOnlyEventTicksAndTracksSeq) {
  PolicyController ctl(Mode::kAdaptive);
  PolicyInputs none;
  none.event = static_cast<int32_t>(EventKind::kNone);
  none.world = 4;
  none.slots_used = 2;
  none.now = 0.5;
  ctl.OnTick(none);
  EXPECT_TRUE(ctl.log().empty());
  EXPECT_EQ(ctl.slots_used(), 2);
  EXPECT_EQ(ctl.next_seq(), 0);

  PolicyInputs fail = FailureInputs();
  fail.seq = 0;
  const Decision d = ctl.OnTick(fail);
  ASSERT_EQ(ctl.log().size(), 1u);
  EXPECT_EQ(ctl.next_seq(), 1);
  EXPECT_EQ(FormatDecision(ctl.log().front()), FormatDecision(d));
}

TEST(PolicyController, FeedsEstimatorFromTicksDeterministically) {
  // Two controllers fed the same tick bytes evolve identically: same
  // estimator window, same decisions, byte-identical logs. This is the
  // SPMD property the cross-rank half of oracle P9 audits.
  PolicyController a(Mode::kAdaptive);
  PolicyController b(Mode::kAdaptive);
  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    PolicyInputs in = FailureInputs();
    in.seq = i;
    t += 0.4;
    in.now = t;
    in.world = 7 - i;
    in.mtbf_seconds = a.estimator().Estimate();
    a.OnTick(in);
    b.OnTick(in);
  }
  EXPECT_EQ(a.estimator().window_failures(), 5);
  EXPECT_NEAR(a.estimator().Estimate(), 0.4, 1e-12);
  ASSERT_EQ(a.log().size(), 5u);
  EXPECT_EQ(FormatDecisionLog(a.log()), FormatDecisionLog(b.log()));
  // A join tick growing the world resets the shared window.
  PolicyInputs join = JoinInputs();
  join.seq = 5;
  join.world = 9;
  join.now = t + 0.1;
  a.OnTick(join);
  EXPECT_EQ(a.estimator().window_failures(), 0);
  EXPECT_DOUBLE_EQ(a.estimator().Estimate(), 0.0);
}

}  // namespace
}  // namespace rcc::policy
