// Flight recorder unit tests: seqlock ring semantics (ordering,
// wraparound, torn-write rejection under concurrency), the JSON dump
// round-trip through the postmortem parser, and the live-metric feeds
// (recovery-phase histograms, MTBF estimator).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"

namespace rcc::obs::flight {
namespace {

TEST(FlightRing, RecordsInOrderWithPayloads) {
  Ring ring(/*pid=*/7, /*slots=*/64);
  ring.Record(Ev::kCollPost, 1.0, 100, 256, 1024.0);
  ring.Record(Ev::kCollComplete, 2.0, 100, 0, 1.0);
  ring.Record(Ev::kRevoke, 3.0, 42);

  const std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].index, 0u);
  EXPECT_EQ(events[0].kind, Ev::kCollPost);
  EXPECT_DOUBLE_EQ(events[0].t, 1.0);
  EXPECT_EQ(events[0].a, 100);
  EXPECT_EQ(events[0].b, 256);
  EXPECT_DOUBLE_EQ(events[0].c, 1024.0);
  EXPECT_EQ(events[1].kind, Ev::kCollComplete);
  EXPECT_DOUBLE_EQ(events[1].c, 1.0);
  EXPECT_EQ(events[2].kind, Ev::kRevoke);
  EXPECT_EQ(events[2].a, 42);
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRing, WraparoundKeepsNewestAndCountsDropped) {
  Ring ring(/*pid=*/1, /*slots=*/16);
  for (int i = 0; i < 40; ++i) {
    ring.Record(Ev::kCollPost, static_cast<double>(i), i);
  }
  EXPECT_EQ(ring.recorded(), 40u);
  EXPECT_EQ(ring.dropped(), 24u);
  const std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].index, 24 + k);
    EXPECT_EQ(events[k].a, static_cast<int64_t>(24 + k));
  }
}

TEST(FlightRing, ResetEmptiesInPlace) {
  Ring ring(/*pid=*/2, /*slots=*/16);
  for (int i = 0; i < 20; ++i) ring.Record(Ev::kAgree, 0.0, i);
  ring.Reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Record(Ev::kShrink, 5.0, 3, 1);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].index, 0u);
  EXPECT_EQ(events[0].kind, Ev::kShrink);
}

// Writers hammer a deliberately tiny ring while a reader snapshots
// continuously: every event a snapshot returns must be internally
// consistent (the seqlock must reject torn slots). The TSan preset runs
// this under both engines.
TEST(FlightRing, ConcurrentSnapshotsNeverSeeTornEvents) {
  Ring ring(/*pid=*/3, /*slots=*/32);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Event& e : ring.Snapshot()) {
        // Writer w records a=w, b=i, c=w*1e6+i: any mix of two writes
        // breaks the identity.
        if (e.c != static_cast<double>(e.a) * 1e6 + static_cast<double>(e.b)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.Record(Ev::kCollPost, static_cast<double>(i), w, i,
                    static_cast<double>(w) * 1e6 + i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // Quiescent snapshot: the last `slots` events are all intact.
  EXPECT_EQ(ring.Snapshot().size(), 32u);
}

TEST(Flight, EnabledToggles) {
  ASSERT_TRUE(Enabled());  // default-on (RCC_FLIGHT unset in tests)
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(Flight, ForRankReturnsStablePointer) {
  Ring* a = ForRank(1234);
  Ring* b = ForRank(1234);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->pid(), 1234);
  EXPECT_NE(ForRank(1235), a);
}

// Dump -> parse round-trip through the postmortem reader: every field
// the recorder wrote must come back bit-identically (%.17g doubles).
TEST(Flight, DumpJsonRoundTrip) {
  Ring* ring = ForRank(919);
  ring->Reset();
  ring->Record(Ev::kCollPost, 1.25, 17, 4096, 16384.0);
  ring->Record(Ev::kRecoveryPhase, 2.5, 2, 1, 0.125);
  // Key hashes are 53-bit by contract: exactly representable as a
  // double, so they survive the JSON round-trip bit-identically.
  ring->Record(Ev::kKvWaitBegin, 3.0,
               0x1234567890abcdefLL & ((1LL << 53) - 1));

  const std::string json = ring->ToJson("unit \"test\" reason");
  postmortem::RankDump dump;
  std::string err;
  ASSERT_TRUE(postmortem::ParseDumpJson(json, &dump, &err)) << err;
  EXPECT_EQ(dump.pid, 919);
  EXPECT_EQ(dump.reason, "unit \"test\" reason");
  EXPECT_EQ(dump.recorded, 3u);
  EXPECT_EQ(dump.dropped, 0u);
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events[0].kind, Ev::kCollPost);
  EXPECT_EQ(dump.events[0].a, 17);
  EXPECT_EQ(dump.events[0].b, 4096);
  EXPECT_DOUBLE_EQ(dump.events[0].c, 16384.0);
  EXPECT_DOUBLE_EQ(dump.events[0].t, 1.25);
  EXPECT_EQ(dump.events[1].kind, Ev::kRecoveryPhase);
  EXPECT_DOUBLE_EQ(dump.events[1].c, 0.125);
  EXPECT_EQ(dump.events[2].kind, Ev::kKvWaitBegin);
  EXPECT_EQ(dump.events[2].a, 0x1234567890abcdefLL & ((1LL << 53) - 1));
}

// DumpAll writes one file per rank with the prefix; the postmortem
// lister finds them.
TEST(Flight, DumpAllWritesPerRankFiles) {
  Ring* ring = ForRank(7777);
  ring->Reset();
  ring->Record(Ev::kSelfAbort, 9.0);
  const std::vector<std::string> paths =
      DumpAll("flight_test", ".", "ut7777_");
  ASSERT_FALSE(paths.empty());
  bool found = false;
  for (const std::string& p : paths) {
    if (p.find("ut7777_flight_rank7777.json") == std::string::npos) continue;
    found = true;
    postmortem::RankDump dump;
    std::string err;
    ASSERT_TRUE(postmortem::ParseDumpFile(p, &dump, &err)) << err;
    EXPECT_EQ(dump.pid, 7777);
    EXPECT_EQ(dump.reason, "flight_test");
    ASSERT_EQ(dump.events.size(), 1u);
    EXPECT_EQ(dump.events[0].kind, Ev::kSelfAbort);
  }
  EXPECT_TRUE(found);
  for (const std::string& p : paths) std::remove(p.c_str());
}

// RecordRecoveryPhase must observe the *identical* duration into the
// flight event and the rcc_recovery_phase_seconds histogram — the
// phase-sum == metric-delta acceptance check rests on this.
TEST(Flight, RecoveryPhaseFeedsEventAndHistogramIdentically) {
  auto& reg = Registry::Global();
  const Labels agree{{"phase", "agree"}};
  const double sum0 =
      reg.HistogramSnapshot("rcc_recovery_phase_seconds", agree).sum;
  const uint64_t count0 =
      reg.HistogramSnapshot("rcc_recovery_phase_seconds", agree).count;

  Ring* ring = ForRank(5555);
  ring->Reset();
  const double duration = 0.015625;  // exactly representable
  RecordRecoveryPhase(ring, Phase::kAgree, /*t_end=*/12.0,
                      /*repair_ordinal=*/4, duration);

  const auto events = ring->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Ev::kRecoveryPhase);
  EXPECT_EQ(events[0].a, static_cast<int64_t>(Phase::kAgree));
  EXPECT_EQ(events[0].b, 4);
  EXPECT_DOUBLE_EQ(events[0].c, duration);

  const auto snap =
      reg.HistogramSnapshot("rcc_recovery_phase_seconds", agree);
  EXPECT_EQ(snap.count, count0 + 1);
  EXPECT_DOUBLE_EQ(snap.sum - sum0, duration);
}

// MTBF estimator: dedupes by pid (every survivor reports the same
// victim), estimates mean inter-failure time once two distinct pids
// have failed.
TEST(Flight, MtbfEstimatorDedupesAndAverages) {
  auto& reg = Registry::Global();
  ResetAll();
  const double failures0 = reg.CounterValue("rcc_failures_observed_total");

  NoteFailureDetected(50, 10.0);
  NoteFailureDetected(50, 11.0);  // duplicate detection, ignored
  EXPECT_DOUBLE_EQ(reg.CounterValue("rcc_failures_observed_total"),
                   failures0 + 1);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("rcc_mtbf_seconds"), 10.0);

  NoteFailureDetected(51, 30.0);
  NoteFailureDetected(52, 50.0);
  EXPECT_DOUBLE_EQ(reg.CounterValue("rcc_failures_observed_total"),
                   failures0 + 3);
  // (50 - 10) / (3 - 1)
  EXPECT_DOUBLE_EQ(reg.GaugeValue("rcc_mtbf_seconds"), 20.0);

  ResetAll();
  NoteFailureDetected(60, 5.0);  // fresh run: time-to-first-failure again
  EXPECT_DOUBLE_EQ(reg.GaugeValue("rcc_mtbf_seconds"), 5.0);
}

}  // namespace
}  // namespace rcc::obs::flight
