// PipelineTrainer: 1F1B schedule structure, exactly-once commits on a
// clean run, the three recovery arms (re-route / shrink / restore) under
// a deterministic mid-schedule kill, and byte-identical replay of that
// kill under both simulator engines.
#include "core/pipeline_trainer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "core/grid.h"
#include "core/resilient.h"
#include "sim/cluster.h"
#include "trace/trace.h"

namespace rcc::core {
namespace {

struct PipeOutcome {
  std::vector<PipelineReport> reports;  // indexed by pid
  double horizon = 0.0;
};

PipeOutcome RunPipeline(int world, const PipelineOptions& opts,
                        double kill_at = -1.0, int victim = -1,
                        sim::EngineKind engine = sim::EngineKind::kThreads) {
  sim::SimConfig cfg;
  cfg.engine = engine;
  sim::Cluster cluster(cfg);
  if (kill_at >= 0.0 && victim >= 0) {
    cluster.AddPendingFailure(
        sim::FailureEvent{sim::FailScope::kProcess, victim, kill_at});
  }
  std::vector<int> pids(world);
  std::iota(pids.begin(), pids.end(), 0);
  trace::Recorder rec;
  std::mutex mu;
  PipeOutcome out;
  out.reports.resize(static_cast<size_t>(world));
  cluster.Spawn(world, [&](sim::Endpoint& ep) {
    ResilientComm rc(ep, pids, horovod::DropPolicy::kProcess, &rec);
    PipelineTrainer trainer(&rc, opts);
    PipelineReport r = trainer.Run();
    std::lock_guard<std::mutex> lock(mu);
    out.horizon = std::max(out.horizon, ep.now());
    out.reports[static_cast<size_t>(ep.pid())] = std::move(r);
  });
  cluster.Join();
  return out;
}

PipelineOptions SmallOptions() {
  PipelineOptions o;
  o.dims = GridDims{0, 2, 1};  // dp derived from the world
  o.microbatches = 4;
  o.steps = 6;
  o.checkpoint_interval = 2;
  return o;
}

TEST(PipelineSchedule, OneFOneBCoversEveryMicrobatchOncePerStage) {
  std::vector<int> pids(6);
  std::iota(pids.begin(), pids.end(), 0);
  ProcessGroupGrid grid(GridDims{2, 3, 1}, pids);
  const int M = 4;
  auto sched = PipelineTrainer::BuildSchedule(grid, M);
  ASSERT_EQ(sched.size(), 6u);
  for (int d = 0; d < 2; ++d) {
    for (int p = 0; p < 3; ++p) {
      const auto& ops = sched[static_cast<size_t>(d) * 3 + p];
      std::set<int> fwd;
      std::set<int> bwd;
      int seen_fwd = 0;
      for (const auto& op : ops) {
        EXPECT_EQ(op.p, p);
        EXPECT_EQ(grid.OwnerReplica(p, op.m), d);
        if (op.bwd) {
          // 1F1B: the matching forward always precedes the backward.
          EXPECT_TRUE(fwd.count(op.m)) << "d" << d << " p" << p;
          EXPECT_TRUE(bwd.insert(op.m).second);
        } else {
          EXPECT_TRUE(fwd.insert(op.m).second);
          ++seen_fwd;
        }
      }
      // Home owner of this replica: microbatches m % 2 == d, each
      // exactly once forward and once backward.
      EXPECT_EQ(static_cast<int>(fwd.size()), M / 2);
      EXPECT_EQ(fwd, bwd);
      (void)seen_fwd;
    }
  }
}

TEST(PipelineSchedule, BrokenReplicaRoutesToTheSurvivor) {
  std::vector<int> pids(4);
  std::iota(pids.begin(), pids.end(), 0);
  ProcessGroupGrid grid(GridDims{2, 2, 1}, pids);
  grid.Update({0, 2, 3});  // replica 0 loses stage 1 (pid 1)
  const int M = 4;
  auto sched = PipelineTrainer::BuildSchedule(grid, M);
  // The broken replica's stage-1 slot runs nothing; replica 1's stage 1
  // adopts every microbatch of the stage.
  EXPECT_TRUE(sched[0 * 2 + 1].empty());
  std::set<int> bwd;
  for (const auto& op : sched[1 * 2 + 1]) {
    if (op.bwd) bwd.insert(op.m);
  }
  EXPECT_EQ(static_cast<int>(bwd.size()), M);
}

TEST(PipelineTrainer, CleanRunCommitsEveryStepExactlyOnce) {
  PipelineOptions opts = SmallOptions();
  // 5 pids over 2x2x1: dp=2 (4 slots) + 1 spare.
  PipeOutcome out = RunPipeline(5, opts);
  const std::string ref = FormatCommitLog(out.reports[0].commits);
  for (int pid = 0; pid < 5; ++pid) {
    const PipelineReport& r = out.reports[static_cast<size_t>(pid)];
    EXPECT_FALSE(r.aborted) << "pid " << pid;
    EXPECT_EQ(r.steps_run, opts.steps);
    EXPECT_EQ(r.rollback_steps, 0);
    EXPECT_EQ(r.repairs, 0);
    EXPECT_EQ(r.adopted_microbatches, 0);
    EXPECT_EQ(r.final_world, 5);
    ASSERT_EQ(r.commits.size(), static_cast<size_t>(opts.steps));
    EXPECT_EQ(FormatCommitLog(r.commits), ref);
    // Exactly-once execution: this rank ran precisely the microbatches
    // the agreed mapping assigned to its slot, each once.
    std::set<std::tuple<int64_t, int, int>> got;
    for (const ExecRecord& e : r.execs) {
      EXPECT_TRUE(got.emplace(e.gstep, e.stage, e.mb).second);
    }
    size_t expect = 0;
    for (const StepCommit& c : r.commits) {
      int my_slot = -1;
      for (size_t i = 0; i < c.slot_pids.size(); ++i) {
        if (c.slot_pids[i] == pid) my_slot = static_cast<int>(i);
      }
      if (my_slot < 0) continue;  // spare
      const int d = my_slot / 2;
      for (int m = 0; m < opts.microbatches; ++m) {
        const int p = (my_slot / 1) % 2;
        if (c.owner[p * opts.microbatches + m] == d) ++expect;
      }
    }
    EXPECT_EQ(got.size(), expect) << "pid " << pid;
    if (pid == 4) EXPECT_TRUE(r.execs.empty());  // the spare idles
  }
}

TEST(PipelineTrainer, RerouteAdoptsTheDeadReplicasMicrobatches) {
  PipelineOptions opts = SmallOptions();
  opts.policy_mode = policy::Mode::kRerouteOnly;
  // Clean horizon first, then land the kill mid-schedule. Victim pid 3
  // holds slot (d=1, p=1): replica 1 breaks, replica 0 must adopt its
  // microbatches while stage 0's sub-groups keep streaming.
  const double horizon = RunPipeline(4, opts).horizon;
  ASSERT_GT(horizon, 0.0);
  PipeOutcome out = RunPipeline(4, opts, 0.5 * horizon, /*victim=*/3);

  const PipelineReport* ref = nullptr;
  int finishers = 0;
  for (int pid = 0; pid < 4; ++pid) {
    const PipelineReport& r = out.reports[static_cast<size_t>(pid)];
    if (r.aborted) continue;
    ++finishers;
    if (ref == nullptr) ref = &r;
    EXPECT_GE(r.repairs, 1) << "pid " << pid;
    EXPECT_GE(r.reroutes, 1) << "pid " << pid;
    EXPECT_EQ(r.reforms, 0);
    EXPECT_EQ(r.restores, 0);
    EXPECT_EQ(r.steps_run, opts.steps + r.rollback_steps);
    EXPECT_EQ(r.final_world, 3);
    ASSERT_EQ(r.commits.size(), static_cast<size_t>(opts.steps));
    EXPECT_EQ(FormatCommitLog(r.commits), FormatCommitLog(ref->commits));
  }
  ASSERT_GE(finishers, 3);
  EXPECT_TRUE(out.reports[3].aborted);
  // After the re-route the post-failure commits keep dp=2 slots with a
  // vacancy, and every stage-1 microbatch is owned by replica 0.
  const StepCommit& last = ref->commits.back();
  EXPECT_EQ(last.slot_pids.size(), 4u);
  EXPECT_EQ(std::count(last.slot_pids.begin(), last.slot_pids.end(), -1), 1);
  for (int m = 0; m < opts.microbatches; ++m) {
    EXPECT_EQ(last.owner[1 * opts.microbatches + m], 0);
  }
  // ReCycle actually happened: replica 0's stage ranks ran foreign
  // microbatches.
  EXPECT_GT(out.reports[0].adopted_microbatches +
                out.reports[1].adopted_microbatches,
            0);
}

TEST(PipelineTrainer, ShrinkReformsTheGridOverSurvivors) {
  PipelineOptions opts = SmallOptions();
  opts.policy_mode = policy::Mode::kShrinkOnly;
  const double horizon = RunPipeline(4, opts).horizon;
  PipeOutcome out = RunPipeline(4, opts, 0.5 * horizon, /*victim=*/3);
  const PipelineReport* ref = nullptr;
  for (int pid = 0; pid < 3; ++pid) {
    const PipelineReport& r = out.reports[static_cast<size_t>(pid)];
    ASSERT_FALSE(r.aborted) << "pid " << pid;
    if (ref == nullptr) ref = &r;
    EXPECT_GE(r.reforms, 1);
    EXPECT_EQ(r.reroutes, 0);
    EXPECT_EQ(r.steps_run, opts.steps + r.rollback_steps);
    EXPECT_EQ(FormatCommitLog(r.commits), FormatCommitLog(ref->commits));
  }
  // The reformed ledger ends on a dp=1 grid: 2 slots, no vacancies.
  const StepCommit& last = ref->commits.back();
  EXPECT_EQ(last.slot_pids.size(), 2u);
  EXPECT_EQ(std::count(last.slot_pids.begin(), last.slot_pids.end(), -1), 0);
}

TEST(PipelineTrainer, RestoreRollsBackToTheLastCheckpoint) {
  PipelineOptions opts = SmallOptions();
  opts.policy_mode = policy::Mode::kRestoreOnly;
  const double horizon = RunPipeline(4, opts).horizon;
  PipeOutcome out = RunPipeline(4, opts, 0.6 * horizon, /*victim=*/3);
  bool rolled_back = false;
  for (int pid = 0; pid < 3; ++pid) {
    const PipelineReport& r = out.reports[static_cast<size_t>(pid)];
    ASSERT_FALSE(r.aborted) << "pid " << pid;
    EXPECT_GE(r.restores, 1);
    EXPECT_EQ(r.steps_run, opts.steps + r.rollback_steps);
    ASSERT_EQ(r.commits.size(), static_cast<size_t>(opts.steps));
    if (r.rollback_steps > 0) rolled_back = true;
    // The final ledger still covers each gstep exactly once, in order.
    for (int g = 0; g < opts.steps; ++g) {
      EXPECT_EQ(r.commits[static_cast<size_t>(g)].gstep, g);
    }
  }
  EXPECT_TRUE(rolled_back);
}

TEST(PipelineTrainer, MidScheduleKillReplaysByteIdenticallyOnFibers) {
  PipelineOptions opts = SmallOptions();
  const double horizon = RunPipeline(4, opts).horizon;
  // Replay identity holds on the fibers engine only: the threads
  // engine's death-watch drain grace is measured in real milliseconds,
  // so two identical runs under scheduler load can admit different
  // drain outcomes and shift virtual time by microseconds. The threads
  // engine's cross-RANK agreement invariants are covered by the other
  // kill tests in this suite.
  for (sim::EngineKind engine : {sim::EngineKind::kFibers}) {
    PipeOutcome x = RunPipeline(4, opts, 0.5 * horizon, 3, engine);
    PipeOutcome y = RunPipeline(4, opts, 0.5 * horizon, 3, engine);
    EXPECT_EQ(x.horizon, y.horizon);
    for (int pid = 0; pid < 4; ++pid) {
      const PipelineReport& a = x.reports[static_cast<size_t>(pid)];
      const PipelineReport& b = y.reports[static_cast<size_t>(pid)];
      EXPECT_EQ(a.aborted, b.aborted) << "pid " << pid;
      EXPECT_EQ(a.steps_run, b.steps_run);
      EXPECT_EQ(a.rollback_steps, b.rollback_steps);
      EXPECT_EQ(a.reroutes, b.reroutes);
      EXPECT_EQ(a.reforms, b.reforms);
      EXPECT_EQ(a.restores, b.restores);
      EXPECT_EQ(a.adopted_microbatches, b.adopted_microbatches);
      EXPECT_EQ(FormatCommitLog(a.commits), FormatCommitLog(b.commits));
      EXPECT_EQ(FormatExecLog(a.execs), FormatExecLog(b.execs));
      EXPECT_EQ(policy::FormatDecisionLog(a.decisions),
                policy::FormatDecisionLog(b.decisions));
    }
  }
}

TEST(PipelineTrainer, TensorParallelGridRunsAndCommitsConsistently) {
  PipelineOptions opts;
  opts.dims = GridDims{0, 2, 2};  // dp=2 over 8 pids
  opts.microbatches = 4;
  opts.steps = 4;
  opts.checkpoint_interval = 2;
  PipeOutcome out = RunPipeline(8, opts);
  const std::string ref = FormatCommitLog(out.reports[0].commits);
  for (int pid = 0; pid < 8; ++pid) {
    const PipelineReport& r = out.reports[static_cast<size_t>(pid)];
    ASSERT_FALSE(r.aborted) << "pid " << pid;
    EXPECT_EQ(r.steps_run, opts.steps);
    EXPECT_EQ(FormatCommitLog(r.commits), ref);
    // Both TP shards of a stage replica execute its microbatches.
    EXPECT_FALSE(r.execs.empty()) << "pid " << pid;
  }
}

}  // namespace
}  // namespace rcc::core
